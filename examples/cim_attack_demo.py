"""CIM weight-extraction walkthrough (paper Section III-C, Figs. 1-2).

Run:  python examples/cim_attack_demo.py

Reproduces the attack narrative step by step on a 16-weight digital CIM
macro, then ablates the countermeasures.
"""

import numpy as np

from repro.cim import (DigitalCimMacro, MaskedCimMacro, PowerModel,
                       ShuffledCimMacro, WeightExtractionAttack,
                       assess_macro, hamming_weight,
                       phase2_power_patterns)


def main():
    rng = np.random.default_rng(7)
    weights = [int(w) for w in rng.integers(0, 16, 16)]
    weights[0], weights[1] = 0, 15          # the anchor values
    print("secret weights:", weights)

    macro = DigitalCimMacro(weights)
    attack = WeightExtractionAttack(macro, PowerModel(noise_sigma=0.0),
                                    repetitions=1)

    print("\n-- Phase 1: one-hot activations + k-means (Fig. 1) --")
    phase1 = attack.phase1_cluster()
    print(f"{'idx':>3} {'weight':>6} {'HW':>3} {'power':>7} "
          f"{'cluster':>7} {'est HW':>6}")
    for i, w in enumerate(weights):
        print(f"{i:>3} {w:>6} {hamming_weight(w):>3} "
              f"{phase1.mean_powers[i]:>7.1f} "
              f"{phase1.cluster_labels[i]:>7} "
              f"{phase1.hw_estimates[i]:>6}")
    print(f"phase-1 accuracy: {phase1.accuracy(weights):.0%}")

    print("\n-- Phase 2: combination with known weights (Fig. 2) --")
    patterns = phase2_power_patterns([7, 11, 13, 14], companion_value=1)
    print("HW=3 candidates activated alone vs with a known weight 1:")
    for value, (alone, combined) in patterns.items():
        print(f"  value {value:>2} ({value:04b}): alone {alone:5.1f}  "
              f"with companion {combined:5.1f}")
    print("identical alone, distinct with the companion -> recoverable")

    print("\n-- Full attack --")
    result = attack.run()
    print("recovered:     ", result.recovered)
    print(f"accuracy {result.accuracy(weights):.0%} with "
          f"{result.queries_used} queries "
          f"({result.phase1.traces_used} phase-1 traces)")

    print("\n-- With measurement noise (sigma=0.4, 40 traces/query) --")
    noisy = WeightExtractionAttack(
        DigitalCimMacro(weights), PowerModel(0.4, seed=3),
        repetitions=40)
    noisy_result = noisy.run(tolerance=0.4)
    print(f"accuracy under noise: {noisy_result.accuracy(weights):.0%}")

    print("\n-- Countermeasure ablation --")
    for label, protected in (
            ("arithmetic masking", MaskedCimMacro(weights, seed=1)),
            ("column shuffling", ShuffledCimMacro(weights, seed=1))):
        protected_attack = WeightExtractionAttack(
            protected, PowerModel(0.0), repetitions=3)
        protected_result = protected_attack.run()
        print(f"{label:>20}: attack accuracy "
              f"{protected_result.accuracy(weights):.0%}")

    print("\n-- TVLA leakage assessment (fixed-vs-random weights) --")
    tvla_weights = [15] * 8 + [0] * 8
    plain = assess_macro(lambda w: DigitalCimMacro(w), tvla_weights)
    masked = assess_macro(lambda w: MaskedCimMacro(w, seed=5),
                          tvla_weights)
    print(f"unprotected: |t| = {abs(plain.t_statistic):5.1f}  "
          f"leaks: {plain.leaks}")
    print(f"masked:      |t| = {abs(masked.t_statistic):5.1f}  "
          f"leaks: {masked.leaks}  (threshold 4.5)")


if __name__ == "__main__":
    main()

"""Real-time + TEE: why CONVOLVE needs a customized solution.

Run:  python examples/realtime_tee_integration.py

Executes the argument of paper Section II-C as three live systems: the
two naive nestings each lose one property, the customized integration
keeps both.
"""

from repro.tee import evaluate_realtime_tee


def main():
    print("== Combining real-time constraints and TEEs (Sec. II-C) ==")
    print()
    outcomes = evaluate_realtime_tee()
    width = max(len(o.name) for o in outcomes)
    print(f"{'configuration'.ljust(width)}  security  deadlines  viable")
    for outcome in outcomes:
        security = "kept  " if outcome.security_preserved else "BROKEN"
        deadlines = "met   " if outcome.deadlines_met else "MISSED"
        print(f"{outcome.name.ljust(width)}  {security}    {deadlines}"
              f"     {'yes' if outcome.viable else 'no'}")
        if outcome.detail:
            print(f"{' ' * width}    ({outcome.detail})")
    print()
    print("TEE inside RTOS: the kernel stays in the TCB — machine-mode")
    print("driver code reads the 'enclave' secret while deadlines hold.")
    print("RTOS inside TEE: the monitor's ML-DSA attestation stalls the")
    print("entire scheduled world past the control loop's deadline.")
    print("CONVOLVE integration: a locked PMP carve-out (RISC-V L bit)")
    print("removes the kernel from the enclave's TCB, and SM services")
    print("run as budgeted preemptible tasks — both properties hold.")


if __name__ == "__main__":
    main()

"""HADES design-space exploration walkthrough (paper Section III-A).

Run:  python examples/hades_dse.py

1. regenerates the Table I configuration counts,
2. explores the masked AES-256 space per optimization goal (Table II),
3. shows the local-search heuristic matching the exhaustive optimum on
   the 1.1M-point Kyber-CCA space at a fraction of the cost,
4. compares HADES-native masking against the AGEMA baseline.
"""

import time

from repro.hades import (DesignContext, ExhaustiveExplorer,
                         LocalSearchExplorer, OptimizationGoal,
                         agema_adder, enumerate_designs)
from repro.hades.library import TABLE_I_ROWS, adder_family, aes256, \
    kyber_cca


def table_i():
    print("== Table I: exhaustive DSE over the template library ==")
    print(f"{'algorithm':<34} {'#configs':>9} {'time':>10}")
    for name, factory, expected in TABLE_I_ROWS:
        template = factory()
        count = template.count_configurations()
        assert count == expected
        started = time.perf_counter()
        ExhaustiveExplorer(template, DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA)
        elapsed = time.perf_counter() - started
        print(f"{name:<34} {count:>9} {elapsed:>9.3f}s")


def table_ii():
    print("\n== Table II: masked AES-256 design points ==")
    for order in (0, 1, 2):
        explorer = ExhaustiveExplorer(aes256(),
                                      DesignContext(masking_order=order))
        results = explorer.run_all_goals()
        for goal, result in results.items():
            m = result.best.metrics
            config = result.best.configuration
            print(f"d={order} {goal.value:>4}: {m.area_kge:8.1f} kGE  "
                  f"{m.randomness_bits:6.0f} bits  "
                  f"{m.latency_cc:5.0f} cc   "
                  f"[{config.param('datapath')}-bit "
                  f"{config.param('sbox')}]")


def local_search():
    print("\n== Local search vs exhaustive on Kyber-CCA (1 148 364) ==")
    context = DesignContext(masking_order=1)
    started = time.perf_counter()
    exhaustive = ExhaustiveExplorer(kyber_cca(), context).run(
        OptimizationGoal.AREA)
    exhaustive_time = time.perf_counter() - started
    print(f"exhaustive: best {exhaustive.best_score:.2f} kGE in "
          f"{exhaustive_time:.1f}s ({exhaustive.explored} designs)")
    for starts in (1, 10, 50):
        local = LocalSearchExplorer(kyber_cca(), context, seed=42).run(
            OptimizationGoal.AREA, starts=starts)
        gap = (local.best_score - exhaustive.best_score) \
            / exhaustive.best_score
        print(f"local x{starts:<3}: best {local.best_score:.2f} kGE, "
              f"{local.evaluations} evaluations, gap {gap:.1%}")


def agema():
    print("\n== HADES vs AGEMA on first-order masked 32-bit adders ==")
    context = DesignContext(masking_order=1, width=32)
    print(f"{'architecture':<38} {'HADES kGE':>10} {'AGEMA kGE':>10}")
    for template in adder_family():
        design = min(enumerate_designs(template, context),
                     key=lambda d: d.metrics.area_kge)
        params = dict(design.configuration.params)
        baseline = agema_adder(template.name, params, context)
        label = design.configuration.describe()[:38]
        print(f"{label:<38} {design.metrics.area_kge:>10.2f} "
              f"{baseline.metrics.area_kge:>10.2f}")


def main():
    table_i()
    table_ii()
    local_search()
    agema()


if __name__ == "__main__":
    main()

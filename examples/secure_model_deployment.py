"""Secure model deployment: the paper's motivating end-to-end flow.

Run:  python examples/secure_model_deployment.py

A model vendor wants NN weights to run only inside a genuine,
uncompromised device (paper Section III-B: "ensure that only a genuine,
uncompromised devices get access to sensitive data such as model
weights, and even then the data is restricted to an enclave").

Flow (all post-quantum):
1. the device boots its PQ-enabled Keystone stack (measured boot),
2. the enclave generates an ML-KEM-768 key pair and binds the key hash
   into a hybrid-signed attestation report,
3. the vendor verifies the chain (device identity + pinned SM
   measurement + expected enclave measurement + key binding), then
   encapsulates a session secret and encrypts the weights to it,
4. the enclave decapsulates, re-seals the weights for local storage,
   and loads them into the CIM macro for inference,
5. negative paths: tampered SM, wrong enclave, swapped KEM key — all
   refused.
"""

import numpy as np

from repro.cim import DigitalCimMacro
from repro.tee import (AttestedPublisher, EnclaveKemIdentity, build_tee,
                       seal, unseal)

MODEL_WEIGHTS = [3, 14, 15, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3]


def main():
    print("== Secure model deployment (ML-KEM attested delivery) ==")

    # 1. Device-side: boot and create the inference enclave.
    platform = build_tee(b"\x21" * 32, post_quantum=True)
    enclave = platform.sm.create_enclave(b"cim-inference-runtime-v1")
    print(f"device booted; enclave measurement "
          f"{enclave.measurement.hex()[:16]}...")

    # 2. The enclave generates its KEM identity and attests with the
    #    key hash bound into the report.
    kem_identity = EnclaveKemIdentity(seed_d=b"\x5a" * 32,
                                      seed_z=b"\x5b" * 32)
    report = platform.sm.attest_enclave(enclave,
                                        kem_identity.report_binding())
    print(f"attestation report: {len(report.encode())} bytes "
          f"(binds SHA3 of a {len(kem_identity.ek)}-byte ML-KEM key)")

    # 3. Vendor-side: pin device identity + SM + enclave, verify,
    #    encapsulate, encrypt.
    vendor = AttestedPublisher(
        device_identity=platform.device.public_identity(),
        expected_sm_hash=platform.boot_report.sm_measurement,
        expected_enclave_hash=enclave.measurement)
    package = vendor.deliver(report.encode(), kem_identity.ek,
                             bytes(MODEL_WEIGHTS), label=b"model-v1",
                             entropy=b"\x11" * 32)
    assert package is not None, "vendor refused a genuine device!"
    print(f"vendor released: {len(package.kem_ciphertext)} B KEM "
          f"ciphertext + {len(package.sealed_payload)} B sealed model")

    # 4. Enclave-side: decapsulate + decrypt, re-seal locally, infer.
    weights = list(kem_identity.unwrap(package))
    assert weights == MODEL_WEIGHTS
    sealing_key = platform.sm.sealing_key(enclave)
    stored = seal(sealing_key, bytes(12), bytes(weights), b"local")
    restored = list(unseal(sealing_key, bytes(12), stored, b"local"))
    macro = DigitalCimMacro(restored)
    activations = [int(b) for b in
                   np.random.default_rng(0).integers(0, 2, 16)]
    mac_value, _ = macro.operate(activations)
    print(f"weights unsealed in-enclave; CIM MAC output: {mac_value}")

    # 5a. Tampered SM: measures differently -> report refused, sealing
    #     keys unrelated.
    evil = build_tee(b"\x21" * 32, post_quantum=True, sm_version=666)
    evil_enclave = evil.sm.create_enclave(b"cim-inference-runtime-v1")
    evil_report = evil.sm.attest_enclave(evil_enclave,
                                         kem_identity.report_binding())
    refused = vendor.deliver(evil_report.encode(), kem_identity.ek,
                             bytes(MODEL_WEIGHTS))
    print(f"tampered-SM device refused: {refused is None}")
    assert refused is None
    try:
        unseal(evil.sm.sealing_key(evil_enclave), bytes(12), stored,
               b"local")
        raise SystemExit("ERROR: tampered SM unsealed the weights!")
    except ValueError:
        print("tampered-SM device cannot unseal the stored weights")

    # 5b. Wrong enclave on the genuine device.
    other = platform.sm.create_enclave(b"debug-shell")
    other_report = platform.sm.attest_enclave(
        other, kem_identity.report_binding())
    refused = vendor.deliver(other_report.encode(), kem_identity.ek,
                             bytes(MODEL_WEIGHTS))
    print(f"wrong enclave refused: {refused is None}")
    assert refused is None

    # 5c. MITM swaps the KEM key: binding check catches it.
    mitm = EnclaveKemIdentity(seed_d=b"\x66" * 32, seed_z=b"\x67" * 32)
    refused = vendor.deliver(report.encode(), mitm.ek,
                             bytes(MODEL_WEIGHTS))
    print(f"swapped KEM key refused: {refused is None}")
    assert refused is None

    print("deployment flow complete.")


if __name__ == "__main__":
    main()

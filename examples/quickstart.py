"""Quickstart: a tour of the CONVOLVE security stack in five minutes.

Run:  python examples/quickstart.py

Walks the paper's storyline end to end:
1. derive a security architecture for a use case (Section II),
2. boot a post-quantum TEE and attest an enclave (Section III-B),
3. seal model weights to that enclave,
4. show the CIM power side channel and its countermeasure (III-C),
5. explore masked AES-256 hardware with HADES (III-A).
"""

from repro.cim import (DigitalCimMacro, MaskedCimMacro, PowerModel,
                       WeightExtractionAttack)
from repro.core import SecurityFramework, satellite_imagery, \
    speech_enhancement
from repro.hades import (DesignContext, ExhaustiveExplorer,
                         OptimizationGoal)
from repro.hades.library import aes256
from repro.tee import build_tee, seal, unseal, verify_report


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def step1_framework():
    banner("1. Security-by-design: derive per-use-case architectures")
    framework = SecurityFramework()
    for profile in (speech_enhancement(), satellite_imagery()):
        architecture = framework.derive(profile)
        print(framework.explain(architecture))
        print()


def step2_tee():
    banner("2. Post-quantum TEE: measured boot + hybrid attestation")
    platform = build_tee(post_quantum=True)
    print(f"bootrom image: {platform.bootrom.image_size} bytes "
          f"({platform.bootrom.image_size / 1024:.1f} KB)")
    enclave = platform.sm.create_enclave(b"model-runner-v1")
    report = platform.sm.attest_enclave(enclave, b"verifier-nonce")
    encoded = report.encode()
    ok = verify_report(report, platform.device.public_identity(),
                       enclave.measurement)
    print(f"attestation report: {len(encoded)} bytes, verifies: {ok}")
    return platform, enclave


def step3_sealing(platform, enclave):
    banner("3. Data sealing: weights only this enclave can open")
    key = platform.sm.sealing_key(enclave)
    weights_blob = bytes(range(16)) * 4
    sealed = seal(key, bytes(12), weights_blob, b"model-v1")
    print(f"sealed blob: {len(sealed)} bytes")
    recovered = unseal(key, bytes(12), sealed, b"model-v1")
    print(f"unsealed inside enclave, match: {recovered == weights_blob}")


def step4_cim():
    banner("4. CIM side channel: extraction attack vs masking")
    weights = [0, 15, 7, 11, 13, 14, 3, 8, 5, 10, 12, 6, 9, 1, 2, 4]
    attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                    PowerModel(0.0), repetitions=1)
    result = attack.run()
    print(f"unprotected macro: {result.accuracy(weights):.0%} of "
          f"weights recovered with {result.queries_used} queries")
    masked_attack = WeightExtractionAttack(
        MaskedCimMacro(weights, seed=1), PowerModel(0.0), repetitions=3)
    masked_result = masked_attack.run()
    print(f"masked macro:      {masked_result.accuracy(weights):.0%} "
          f"recovered (chance level)")


def step5_hades():
    banner("5. HADES: explore 1440 masked AES-256 designs")
    explorer = ExhaustiveExplorer(aes256(),
                                  DesignContext(masking_order=1))
    for goal in (OptimizationGoal.LATENCY, OptimizationGoal.AREA,
                 OptimizationGoal.RANDOMNESS):
        result = explorer.run(goal)
        m = result.best.metrics
        print(f"{goal.value:>4}-optimal: {m.area_kge:8.1f} kGE  "
              f"{m.randomness_bits:6.0f} rand bits/cc  "
              f"{m.latency_cc:5.0f} cc   "
              f"({result.feasible} feasible designs)")


def main():
    step1_framework()
    platform, enclave = step2_tee()
    step3_sealing(platform, enclave)
    step4_cim()
    step5_hades()
    print("\nDone - see examples/*.py for deeper scenarios.")


if __name__ == "__main__":
    main()

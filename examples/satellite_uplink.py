"""Satellite imagery node: the paper's canonical tailoring example.

Run:  python examples/satellite_uplink.py

"Chips deployed to space are not susceptible to side-channel based IP
theft, but have a strong need for long-term secure communication
channels with a remote controller" (paper Section I).

This example shows both halves:
1. the framework derives the orbit architecture — every side-channel
   countermeasure is shed, all the long-term (post-quantum) machinery
   stays,
2. a full PQ uplink session: ground verifies the satellite's hybrid
   attestation, establishes an ML-KEM-768 session key with the
   on-board enclave, and exchanges AEAD-protected tasking/telemetry —
   nothing in the session falls to a future quantum adversary
   recording it today.
"""

from repro.core import SecurityFramework, satellite_imagery, \
    speech_enhancement
from repro.crypto import derive_key, open_aead, seal_aead
from repro.tee import (AttestedPublisher, EnclaveKemIdentity, build_tee)


def step1_architecture():
    print("== 1. Architecture: orbit vs consumer device ==")
    framework = SecurityFramework()
    orbit = framework.derive(satellite_imagery())
    consumer = framework.derive(speech_enhancement())
    orbit_only = set(consumer.feature_names) - set(orbit.feature_names)
    print(f"orbit features:    {', '.join(orbit.feature_names)}")
    print(f"shed in orbit:     {', '.join(sorted(orbit_only))}")
    orbit_energy = orbit.total_overhead().energy_factor
    consumer_energy = consumer.total_overhead().energy_factor
    print(f"energy overhead:   x{orbit_energy:.2f} (orbit) vs "
          f"x{consumer_energy:.2f} (consumer)")
    assert "masked_crypto_hw" not in orbit.feature_names
    return framework, orbit


def step2_uplink():
    print("\n== 2. Long-term secure uplink session ==")
    # On-board: boot, start the imaging enclave, generate its KEM key.
    satellite = build_tee(b"\x53\x41\x54" + b"\x00" * 29,
                          post_quantum=True)
    enclave = satellite.sm.create_enclave(b"imaging-pipeline-v3")
    kem = EnclaveKemIdentity(seed_d=b"\x01" * 32, seed_z=b"\x02" * 32)
    report = satellite.sm.attest_enclave(enclave, kem.report_binding())
    print(f"satellite attests: {len(report.encode())} B hybrid report")

    # Ground station: verify and establish the session.
    ground = AttestedPublisher(
        device_identity=satellite.device.public_identity(),
        expected_sm_hash=satellite.boot_report.sm_measurement,
        expected_enclave_hash=enclave.measurement)
    session_seed = b"\x99" * 32
    package = ground.deliver(report.encode(), kem.ek, session_seed,
                             label=b"session-v1", entropy=b"\x10" * 32)
    assert package is not None
    print(f"ground released a session seed via ML-KEM-768 "
          f"({len(package.kem_ciphertext)} B encapsulation)")

    # Both sides derive directional channel keys from the seed.
    board_seed = kem.unwrap(package)
    assert board_seed == session_seed
    uplink_key = derive_key(session_seed, "uplink")
    downlink_key = derive_key(session_seed, "downlink")

    # Ground -> satellite tasking.
    tasking = b"TASK: image region 52.3N 4.8E, band=NIR, pass=1842"
    uplink_msg = seal_aead(uplink_key, (1).to_bytes(12, "big"), tasking)
    onboard = open_aead(derive_key(board_seed, "uplink"),
                        (1).to_bytes(12, "big"), uplink_msg)
    print(f"satellite received tasking: {onboard.decode()[:40]}...")

    # Satellite -> ground telemetry.
    telemetry = b"ACK pass=1842; thermal=nominal; tiles=96"
    downlink_msg = seal_aead(derive_key(board_seed, "downlink"),
                             (1).to_bytes(12, "big"), telemetry)
    received = open_aead(downlink_key, (1).to_bytes(12, "big"),
                         downlink_msg)
    print(f"ground received telemetry:  {received.decode()}")

    # A recorded session stays sealed against quantum attack: the only
    # public-key material on the wire is ML-KEM + hybrid signatures.
    print("session uses ML-KEM-768 + Ed25519&ML-DSA-44 only: "
          "harvest-now-decrypt-later resistant")


def main():
    step1_architecture()
    step2_uplink()


if __name__ == "__main__":
    main()

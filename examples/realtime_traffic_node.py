"""Traffic-supervision node: real-time + security, combined.

Run:  python examples/realtime_traffic_node.py

The traffic-supervision use case (paper Section I) needs hard timing
guarantees *and* protection from co-located software — the combination
Sections III-D/III-E address.  This example builds the node:

1. the framework derives the architecture for the use case,
2. a PMP-hardened RTOS runs the detection pipeline next to a
   third-party app that turns hostile (and is contained),
3. the shared interconnect runs under composable TDM so the camera
   pipeline's timing is provably independent of co-runners,
4. detections leave the node through a hybrid-signed secure channel.
"""

from repro.compsoc import (ComposablePlatform, ExternalChannel,
                           PlatformRootOfTrust, periodic_workload,
                           verify_composability)
from repro.core import SecurityFramework, traffic_supervision
from repro.rtos import Delay, Kernel, Receive, Send, TaskState


def step1_architecture():
    print("== 1. Derived architecture for traffic supervision ==")
    framework = SecurityFramework()
    architecture = framework.derive(traffic_supervision())
    print(framework.explain(architecture))


def step2_rtos():
    print("\n== 2. PMP-hardened RTOS: pipeline + hostile app ==")
    kernel = Kernel(protected=True, budget_window=50)
    frames = kernel.queue(capacity=4)
    detections = []

    def camera(ctx):
        for frame_id in range(8):
            yield Delay(3)                    # sensor frame period
            yield Send(frames, f"frame-{frame_id}")

    def detector(ctx):
        for _ in range(8):
            frame = yield Receive(frames)
            yield                             # one tick of inference
            detections.append(frame)

    def third_party(ctx):
        yield Delay(4)
        # Turns hostile: tries to read the detector's stack.
        ctx.load(detector_task.stack_region.base, 16)
        yield

    kernel.create_task("camera", priority=5, entry=camera)
    detector_task = kernel.create_task("detector", priority=4,
                                       entry=detector)
    hostile = kernel.create_task("3rdparty", priority=3,
                                 entry=third_party, budget_ticks=10)
    kernel.run(200)
    print(f"frames detected: {len(detections)}/8")
    print(f"hostile task state: {hostile.state.value} "
          f"(fault: {hostile.fault is not None})")
    assert hostile.state is TaskState.FAULTED
    assert len(detections) == 8


def step3_composability():
    print("\n== 3. Composable interconnect: timing independent of "
          "co-runners ==")
    pipeline = lambda: periodic_workload(
        "pipeline", compute_ticks=4, requests=10,
        base_address=0x1000_0000)
    burst = lambda: periodic_workload(
        "burst", compute_ticks=0, requests=300,
        base_address=0x1010_0000)
    for policy in ("tdm", "round_robin"):
        report = verify_composability(policy, pipeline,
                                      [[burst], [burst, burst]])
        print(f"{policy:>12}: composable={report.composable} "
              f"(divergent runs: {report.divergent_runs})")


def step4_secure_uplink():
    print("\n== 4. Signed + sealed uplink to the control centre ==")
    root = PlatformRootOfTrust(b"\x33" * 32)
    shared = b"\x44" * 32           # provisioned with the control centre
    channel = ExternalChannel(root, "pipeline-vep", shared)
    message = channel.send(b"17:03 lane2 speeding event #4411")
    print(f"message: {len(message.ciphertext)} B ciphertext, "
          f"{len(message.signature)} B hybrid signature")
    payload = ExternalChannel.verify_and_open(
        message, root.public_identity, shared)
    print(f"control centre verified + decrypted: {payload.decode()}")


def main():
    step1_architecture()
    step2_rtos()
    step3_composability()
    step4_secure_uplink()


if __name__ == "__main__":
    main()

"""Attestation service at fleet scale (ISSUE 10).

Sweeps the :class:`~repro.tee.service.AttestationService` over 10k /
100k / 1M simulated clients drawn from a bounded device pool — a mixed
stream of fresh verifications (first sight of each report content),
session-cache hits (steady-state re-attestation) and invalid lanes
(tampered signatures, unregistered devices, malformed bytes) — and
gates a verifications-per-second floor at the 100k tier on CI-class
machines.  A second measurement pins the Ed25519 Pippenger bucket MSM
against the interleaved-Straus chain it replaces above the lane
crossover, and a third asserts the service's serial-vs-sharded byte
parity (results, audit ledger, PERF counters) on a representative
workload.

The tier sweep runs with no telemetry subscriber: a subscriber
deliberately bypasses the session cache (timed spans cannot be
replayed), which is its own benchmark — ``bench_obs_overhead`` — not
this one.  PERF counting stays on, so the bench-history gate tracks
the service counters run over run.
"""

import time

import pytest

from repro.crypto import ed25519 as ed
from repro.obs import TELEMETRY
from repro.obs.audit import AUDIT, canonical_encode
from repro.obs.perf import counting
from repro.runtime import available_cpus
from repro.tee import AttestationService, build_tee

from conftest import write_table

#: Simulated-client tiers for the throughput sweep.
TIERS = (10_000, 100_000, 1_000_000)

#: Requests per drain wave in the steady-state phase (one drain's
#: batches all read the cache frozen at drain start, so hits only
#: accrue *across* waves — exactly a serving loop's arrival windows).
WAVE = 50_000

#: Verifications/s floor gated at the 100k tier on CI-class machines.
SERVICE_FLOOR_100K = 20_000.0

#: Pippenger-over-Straus speedup floor at the gate lane count.
MSM_SPEEDUP_FLOOR = 1.5
MSM_GATE_LANES = 256

_GATE_MIN_CPUS = 4


@pytest.fixture(scope="session")
def fleet():
    """Bounded device pool: 2 hybrid-PQ + 2 classical devices, two
    enclaves each, four report-data variants per enclave."""
    devices = {}
    pool = []            # (device_id, report_bytes) distinct contents
    for idx, post_quantum in ((0, True), (1, True), (2, False),
                              (3, False)):
        root = b"bench-service-device-%02d-root-pad" % idx
        platform = build_tee(root[:32], post_quantum=post_quantum)
        device_id = f"dev{idx}"
        devices[device_id] = platform.device.public_identity()
        enclaves = [platform.sm.create_enclave(b"enclave-%d" % e)
                    for e in range(2)]
        for enclave in enclaves:
            for variant in range(4):
                report = platform.sm.attestation_requests(
                    [enclave], [b"variant-%d" % variant])[0]
                pool.append((device_id, report))
    tampered = bytearray(pool[0][1])
    tampered[-1] ^= 0x01                      # device-signature break
    invalid = [
        (pool[0][0], bytes(tampered)),        # fails crypto (cached)
        ("ghost", pool[1][1]),                # unregistered device
        (pool[2][0], b"\x17" * 33),           # malformed encoding
    ]
    return {"devices": devices, "pool": pool, "invalid": invalid}


def _mixed_stream(fleet, count, seed):
    """Deterministic request mix: ~0.5% invalid lanes interleaved into
    a rotation over the valid pool (seed-stable admission order)."""
    pool = fleet["pool"]
    invalid = fleet["invalid"]
    stream = []
    state = seed & 0x7FFFFFFF
    for i in range(count):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        if state % 200 == 0:
            stream.append(invalid[state % len(invalid)])
        else:
            stream.append(pool[state % len(pool)])
    return stream


def _run_tier(fleet, count):
    """One tier: onboarding drain (every distinct content once), then
    steady-state waves; returns (wall seconds, ok lanes, lanes)."""
    service = AttestationService(dict(fleet["devices"]), max_batch=256)
    warmup = list(fleet["pool"]) + list(fleet["invalid"])
    stream = _mixed_stream(fleet, count - len(warmup), seed=count)
    ok = 0
    start = time.perf_counter()
    for result in service.process(warmup):
        ok += result["ok"]
    for lo in range(0, len(stream), WAVE):
        for result in service.process(stream[lo:lo + WAVE]):
            ok += result["ok"]
    wall = time.perf_counter() - start
    return wall, ok, len(warmup) + len(stream)


def test_service_tier_sweep(benchmark, fleet, report_dir):
    telemetry_was, TELEMETRY.enabled = TELEMETRY.enabled, False
    try:
        rows = []
        gate_rate = None
        for tier in TIERS:
            wall, ok, lanes = _run_tier(fleet, tier)
            assert lanes == tier
            # ~0.5% of the steady-state stream is invalid by
            # construction; everything else must verify.
            assert 0.99 <= ok / lanes < 1.0
            rate = lanes / wall
            if tier == 100_000:
                gate_rate = rate
            rows.append([f"{tier:,}", f"{wall:.3f} s",
                         f"{rate:,.0f}/s", f"{lanes - ok}"])
    finally:
        TELEMETRY.enabled = telemetry_was
    write_table(report_dir, "attestation_service",
                "Attestation-service throughput: mixed fresh/cached/"
                "invalid lanes over a bounded device pool "
                f"(floor {SERVICE_FLOOR_100K:,.0f}/s at the 100k tier "
                "on CI-class machines)",
                ["clients", "wall", "verifications/s", "rejected"],
                rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if available_cpus() >= _GATE_MIN_CPUS:
        assert gate_rate >= SERVICE_FLOOR_100K, rows


def test_pippenger_vs_straus_crossover(benchmark, report_dir,
                                       monkeypatch):
    """The bucket MSM must beat the interleaved-Straus chain by the
    documented factor at the gate lane count, while staying
    boolean-identical to it and to the scalar loop."""
    items = []
    for i in range(MSM_GATE_LANES):
        seed = bytes([i % 256, i // 256]) * 16
        message = b"msm-lane-%04d" % i
        items.append((ed.public_key(seed), message,
                      ed.sign(seed, message)))

    def clock(fn, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    scalar = [ed.verify(*item) for item in items]
    monkeypatch.setattr(ed, "_MSM_LANES", 10 ** 9)
    assert ed.verify_batch(items) == scalar == [True] * len(items)
    straus_wall = clock(lambda: ed.verify_batch(items), 3)
    monkeypatch.setattr(ed, "_MSM_LANES", 2)
    with counting() as window:
        assert ed.verify_batch(items) == scalar
    assert window.delta()["crypto.ed25519.msm_points"] == \
        2 * len(items) + 1
    msm_wall = clock(lambda: ed.verify_batch(items), 3)
    monkeypatch.undo()
    # The shipped crossover must route this batch to the MSM path.
    assert len(items) >= ed._MSM_LANES
    speedup = straus_wall / msm_wall
    write_table(report_dir, "attestation_service_msm",
                f"Ed25519 combined-equation chain at {MSM_GATE_LANES} "
                "lanes: Pippenger bucket MSM vs interleaved Straus "
                f"(floor {MSM_SPEEDUP_FLOOR:.1f}x on CI-class machines)",
                ["chain", "wall", "speedup"],
                [["interleaved Straus", f"{straus_wall * 1e3:.1f} ms",
                  ""],
                 ["Pippenger bucket MSM", f"{msm_wall * 1e3:.1f} ms",
                  f"{speedup:.2f}x"]])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if available_cpus() >= _GATE_MIN_CPUS:
        assert speedup >= MSM_SPEEDUP_FLOOR, (straus_wall, msm_wall)


def test_service_serial_vs_sharded_parity(benchmark, fleet):
    """Service results, audit ledger and PERF counters byte-identical
    between a serial drain and ``run_sharded`` workers."""

    def run(jobs):
        service = AttestationService(dict(fleet["devices"]),
                                     max_batch=64)
        submissions = (list(fleet["pool"]) + list(fleet["invalid"])
                       + _mixed_stream(fleet, 2000, seed=7))
        audit_was = AUDIT.enabled
        AUDIT.reset()
        AUDIT.enable()
        try:
            with counting() as window:
                results = service.process(submissions, jobs=jobs)
            audit_blob = canonical_encode(AUDIT.export_records())
        finally:
            AUDIT.reset()
            AUDIT.enabled = audit_was
        counters = {k: v for k, v in sorted(window.delta().items())
                    if not k.startswith("runtime.")}
        return (canonical_encode(results), audit_blob,
                canonical_encode(counters))

    serial = run(jobs=1)
    sharded = run(jobs=2)
    assert sharded[0] == serial[0], "service results diverged"
    assert sharded[1] == serial[1], "audit ledgers diverged"
    assert sharded[2] == serial[2], "PERF counters diverged"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

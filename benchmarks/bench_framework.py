"""X6 — the security-by-design framework derivation (Section II).

For each of the four CONVOLVE use cases the framework derives a
concrete architecture from the worst-case adversary model; the bench
regenerates the feature matrix and the per-use-case overhead — the
"shed any unnecessary overhead" claim made measurable (the satellite
use case drops every side-channel countermeasure).
"""

import pytest

from repro.core import (ALL_USE_CASES, SecurityFramework,
                        default_catalog)

from conftest import write_table

_architectures = {}


@pytest.mark.parametrize("factory", ALL_USE_CASES,
                         ids=[f().name for f in ALL_USE_CASES])
def test_derivation(benchmark, factory):
    framework = SecurityFramework()
    profile = factory()
    architecture = benchmark(lambda: framework.derive(profile))
    assert architecture.verify(framework.catalog)
    _architectures[profile.name] = architecture


def test_report_framework(benchmark, report_dir):
    def build():
        catalog = default_catalog()
        names = sorted(catalog)
        use_cases = sorted(_architectures)
        rows = []
        for feature in names:
            row = [feature]
            for use_case in use_cases:
                row.append("x" if feature in
                           _architectures[use_case].feature_names
                           else "")
            rows.append(row)
        overhead_row = ["-- energy factor --"]
        for use_case in use_cases:
            overhead = _architectures[use_case].total_overhead()
            overhead_row.append(f"{overhead.energy_factor:.2f}")
        rows.append(overhead_row)
        write_table(report_dir, "framework",
                    "Derived security architectures per use case",
                    ["feature"] + use_cases, rows)
        return rows

    benchmark.pedantic(build, rounds=1, iterations=1)
    satellite = _architectures["satellite-imagery"]
    consumer = _architectures["speech-quality-enhancement"]
    # The tailoring claim: no side-channel hardening in orbit, strictly
    # lower overhead than the consumer profile.
    assert "masked_crypto_hw" not in satellite.feature_names
    assert "cim_masking" not in satellite.feature_names
    assert satellite.total_overhead().energy_factor < \
        consumer.total_overhead().energy_factor

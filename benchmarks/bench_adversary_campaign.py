"""Coverage-guided adversary campaign at scale (ISSUE 7).

Runs >= 10^5 scheduled adversarial injections (mutated boot images,
hostile RTOS task programs, delivery replay schedules, bus transaction
storms) through the coverage-guided generator and asserts the
robustness acceptance bar:

* the full budget completes inside the wall gate (memo dedup and the
  sharded executor are what make that feasible);
* **zero silent corruption on hardened scenarios** — every adversary
  fired into a hardened family classifies masked / detected /
  recovered, with any violation delta-debug minimized into a
  replayable repro;
* coverage-guided search finds strictly more distinct PERF-signature
  behaviours than the fixed-grid baseline campaign;
* the campaign JSON, the corpus and the coverage map are
  byte-identical serial vs fanned across workers;
* corpus entries replay bit-identically (the corpus is a repro suite).

Scale knobs: ``REPRO_ADVERSARY_GENERATIONS`` x
``REPRO_ADVERSARY_POPULATION`` (default 10 x 10000 = the 10^5 budget;
CI's time-boxed job runs 10 x 1000).

Artifacts: ``results/adversary_campaign.json`` (canonical campaign
JSON), ``results/adversary_corpus.json`` (replayable corpus),
``results/coverage_adversary.json`` (the steering coverage map),
``results/adversary_repros.json`` (minimized hardening violations,
empty when the gate holds) and the human summary table.
"""

import json
import os
import time

import pytest

from conftest import write_table
from repro.faults.adversary import standard_adversary_campaign
from repro.faults.campaign import standard_campaign
from repro.obs import CoverageMap, atomic_write_text
from repro.runtime import available_cpus

SEED = 2026
GENERATIONS = int(os.environ.get("REPRO_ADVERSARY_GENERATIONS", "10"))
POPULATION = int(os.environ.get("REPRO_ADVERSARY_POPULATION", "10000"))
WALL_BUDGET_S = 360.0

#: Serial-vs-parallel parity runs at a reduced budget: byte equality
#: is structural (parent-side folding), not statistical, so 10^3
#: injections pin it as well as 10^5 would.
PARITY_GENERATIONS = 4
PARITY_POPULATION = 250
PARALLEL_JOBS = 2

#: Corpus entries replayed for the bit-identity spot check.
REPLAY_SAMPLE = 20


@pytest.fixture(scope="module")
def campaign():
    coverage = CoverageMap("adversary")
    start = time.perf_counter()
    result = standard_adversary_campaign(
        seed=SEED, generations=GENERATIONS, population=POPULATION,
        coverage=coverage)
    wall = time.perf_counter() - start
    return result, wall, coverage


def test_campaign_meets_budget(campaign):
    result, wall, _ = campaign
    assert result.injections == GENERATIONS * POPULATION
    assert result.executed + result.memo_hits == result.injections
    assert wall < WALL_BUDGET_S, (
        f"adversary campaign took {wall:.1f}s for "
        f"{result.injections} injections")


def test_zero_silent_corruption_on_hardened(campaign):
    """The hardening gate: no adversary drives a hardened family to
    silent corruption or crash."""
    result, _, _ = campaign
    assert result.hardened_violations() == []
    for family in result.hardened:
        outcomes = result.by_family.get(family, {})
        assert outcomes.get("silent_corruption", 0) == 0, outcomes
        assert outcomes.get("crash", 0) == 0, outcomes


def test_flat_baseline_still_exhibits_silent_corruption(campaign):
    """The unhardened flat-RTOS family keeps demonstrating the defect
    class the PMP port removes — the control that proves the gate is
    not vacuous."""
    result, _, _ = campaign
    flat = result.by_family.get("adv-task-flat", {})
    assert flat.get("silent_corruption", 0) > 0, flat


def test_memo_dedup_removes_re_executions(campaign):
    """Mutation converges on revisited op sequences; the memo must be
    absorbing them rather than re-running the subsystems."""
    result, _, _ = campaign
    assert result.memo_hits > 0
    assert result.executed < result.injections


def test_coverage_beats_fixed_grid_baseline(campaign):
    """Coverage-guided search must find strictly more distinct
    PERF-signature behaviours than the fixed 5-scenario grid."""
    result, _, coverage = campaign
    baseline_cover = CoverageMap("fault_campaign")
    standard_campaign(seed=SEED, injections=240,
                      coverage=baseline_cover)
    assert coverage.distinct() > baseline_cover.distinct(), (
        f"adversary {coverage.distinct()} vs "
        f"fixed grid {baseline_cover.distinct()}")
    assert result.coverage_distinct == coverage.distinct()


def test_parallel_campaign_byte_identical(report_dir):
    """The same campaign serially and fanned across workers: campaign
    JSON, corpus JSON and coverage map all byte-identical."""
    serial_cover = CoverageMap("adversary")
    start = time.perf_counter()
    serial = standard_adversary_campaign(
        seed=SEED, generations=PARITY_GENERATIONS,
        population=PARITY_POPULATION, jobs=1, coverage=serial_cover)
    serial_wall = time.perf_counter() - start

    parallel_cover = CoverageMap("adversary")
    start = time.perf_counter()
    parallel = standard_adversary_campaign(
        seed=SEED, generations=PARITY_GENERATIONS,
        population=PARITY_POPULATION, jobs=PARALLEL_JOBS,
        coverage=parallel_cover)
    parallel_wall = time.perf_counter() - start

    assert parallel.canonical_json() == serial.canonical_json()
    assert parallel.corpus_json() == serial.corpus_json()
    assert parallel_cover.to_json() == serial_cover.to_json()

    injections = PARITY_GENERATIONS * PARITY_POPULATION
    write_table(
        report_dir, "adversary_campaign_parallel",
        f"Adversary campaign parity: {injections} injections, serial "
        f"vs {PARALLEL_JOBS} workers ({available_cpus()} CPUs "
        f"available), byte-identical campaign/corpus/coverage JSON",
        ["mode", "jobs", "wall", "inj/s"],
        [["serial", 1, f"{serial_wall:.3f} s",
          f"{injections / serial_wall:,.0f}"],
         ["sharded", PARALLEL_JOBS, f"{parallel_wall:.3f} s",
          f"{injections / parallel_wall:,.0f}"]])


def test_corpus_replays_bit_identical(campaign):
    """Corpus entries are replayable repros: re-executing from the
    record reproduces outcome, reason and digest exactly."""
    from repro.faults.adversary import replay
    result, _, _ = campaign
    entries = result.corpus_dict()["entries"]
    assert entries, "campaign produced an empty corpus"
    step = max(1, len(entries) // REPLAY_SAMPLE)
    for entry in entries[::step][:REPLAY_SAMPLE]:
        record = replay(entry)
        assert record.outcome == entry["outcome"], entry
        assert record.reason == entry["reason"], entry
        assert record.digest == entry["digest"], entry


def test_every_family_and_outcome_class_exercised(campaign):
    result, _, _ = campaign
    assert sorted(result.by_family) == sorted(result.families)
    assert set(result.totals) >= {"detected", "masked"}
    for family, outcomes in result.by_family.items():
        assert sum(outcomes.values()) > 0, family


def test_write_artifacts(campaign, report_dir):
    result, wall, coverage = campaign
    path = result.write(report_dir / "adversary_campaign.json")
    corpus_path = result.write_corpus(report_dir /
                                      "adversary_corpus.json")
    coverage.write(report_dir / "coverage_adversary.json")
    atomic_write_text(
        report_dir / "adversary_repros.json",
        json.dumps({"schema_version": 1, "name": "adversary-repros",
                    "seed": result.seed,
                    "violations": result.violations},
                   indent=2, sort_keys=True) + "\n")
    assert path.exists() and corpus_path.exists()

    rows = []
    for family in sorted(result.by_family):
        outcomes = result.by_family[family]
        rows.append([
            family,
            "yes" if family in result.hardened else "no",
            sum(outcomes.values()),
            outcomes.get("masked", 0),
            outcomes.get("detected", 0),
            outcomes.get("recovered", 0),
            outcomes.get("silent_corruption", 0),
            outcomes.get("crash", 0),
        ])
    rows.append([
        "TOTAL", "-", result.injections,
        result.totals.get("masked", 0),
        result.totals.get("detected", 0),
        result.totals.get("recovered", 0),
        result.totals.get("silent_corruption", 0),
        result.totals.get("crash", 0),
    ])
    write_table(
        report_dir, "adversary_campaign_summary",
        f"Adversary campaign: seed={result.seed}, "
        f"{result.injections} injections "
        f"({result.executed} executed, {result.memo_hits} memo hits) "
        f"in {wall:.1f}s; corpus {len(result.corpus)}, coverage "
        f"{result.coverage_distinct} distinct, hardening violations "
        f"{len(result.violations)}",
        ["family", "hardened", "injections", "masked", "detected",
         "recovered", "silent-corrupt", "crash"],
        rows)

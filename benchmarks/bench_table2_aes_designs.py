"""Table II — AES-256 design points by optimization goal and masking
order.

Paper values (area kGE / randomness bits / latency cc):

    d=0  L/ALP  41.4 / 0 / 19          A      12.9 / 0 / 1378
    d=1  L      1205.3 / 16200 / 71    A      29.9 / 144 / 2948
         R/ALRP 32.2 / 68 / 4514       ALP    142.8 / 1224 / 75
    d=2  L      2321.1 / 48588 / 71    A      49.1 / 408 / 2946
         R/ALRP 58.2 / 204 / 4514      ALP    252.7 / 3660 / 75

The bench regenerates the table by running the exhaustive DSE on the
AES-256 template per (order, goal) and asserts the headline shape:
latencies match the paper exactly, randomness within a few percent,
areas within the calibration tolerance with the correct ordering.
"""

import pytest

from repro.hades import DesignContext, ExhaustiveExplorer, \
    OptimizationGoal as G
from repro.hades.library import aes256

from conftest import write_table

PAPER = {
    (0, "L"): (41.4, 0, 19),
    (0, "A"): (12.9, 0, 1378),
    (1, "L"): (1205.3, 16200, 71),
    (1, "A"): (29.9, 144, 2948),
    (1, "R"): (32.2, 68, 4514),
    (1, "ALP"): (142.8, 1224, 75),
    (2, "L"): (2321.1, 48588, 71),
    (2, "A"): (49.1, 408, 2946),
    (2, "R"): (58.2, 204, 4514),
    (2, "ALP"): (252.7, 3660, 75),
}

GOALS = {"L": G.LATENCY, "A": G.AREA, "R": G.RANDOMNESS,
         "ALP": G.AREA_LATENCY}

_measured = {}


@pytest.mark.parametrize("order,goal_key",
                         sorted(PAPER),
                         ids=[f"d{o}-{g}" for o, g in sorted(PAPER)])
def test_aes_design_point(benchmark, order, goal_key):
    explorer = ExhaustiveExplorer(aes256(),
                                  DesignContext(masking_order=order))

    result = benchmark.pedantic(
        lambda: explorer.run(GOALS[goal_key]), rounds=1, iterations=1)
    metrics = result.best.metrics
    _measured[(order, goal_key)] = (
        metrics, result.best.configuration.describe())

    paper_area, paper_rand, paper_latency = PAPER[(order, goal_key)]
    # Latency calibration is exact (within the d=1 vs d=2 2-cycle
    # wiggle the paper itself shows for the serial design).
    assert metrics.latency_cc == pytest.approx(paper_latency, abs=2)
    if paper_rand:
        assert metrics.randomness_bits == pytest.approx(paper_rand,
                                                        rel=0.07)
    else:
        assert metrics.randomness_bits == 0
    # Areas: correct within calibration tolerance.
    assert metrics.area_kge == pytest.approx(paper_area, rel=0.45)


def test_report_table2(benchmark, report_dir):
    def build():
        rows = []
        for (order, goal_key) in sorted(_measured):
            metrics, described = _measured[(order, goal_key)]
            paper_area, paper_rand, paper_latency = \
                PAPER[(order, goal_key)]
            rows.append([
                order, goal_key,
                f"{metrics.area_kge:.1f}",
                f"{metrics.randomness_bits:.0f}",
                f"{metrics.latency_cc:.0f}",
                f"{paper_area}/{paper_rand}/{paper_latency}"])
        write_table(report_dir, "table2",
                    "Table II: AES-256 design points (measured)",
                    ["d", "goal", "area kGE", "rand bits", "lat cc",
                     "paper (A/R/L)"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == len(PAPER)
    # Cross-order shape: masking inflates area superlinearly, and the
    # latency-optimal design keeps 71 cycles at both orders.
    assert _measured[(1, "L")][0].area_kge > \
        20 * _measured[(0, "L")][0].area_kge
    assert _measured[(2, "L")][0].latency_cc == \
        _measured[(1, "L")][0].latency_cc == 71
    assert _measured[(2, "R")][0].randomness_bits == \
        3 * _measured[(1, "R")][0].randomness_bits

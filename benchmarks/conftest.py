"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper and writes the
reproduced rows to ``benchmarks/results/<name>.txt`` so the comparison
against the paper (EXPERIMENTS.md) is a saved artifact, not just
transient stdout.  Since ISSUE 1 each table is additionally persisted
as machine-readable ``results/<name>.json`` (title, header, rows), and
a session hook aggregates per-bench wall-clock times into
``BENCH_SUMMARY.json`` at the repo root — the perf trajectory of the
whole suite, trackable across PRs.

Run with ``REPRO_TELEMETRY=1`` to also capture a structured trace of
every instrumented subsystem; it is exported on session exit to
``results/trace.jsonl`` + ``results/metrics.json`` and summarized by
``scripts/trace_report.py``.

Run with ``REPRO_PERF=1`` to additionally count architectural events
(bus grants, PMP checks, context switches, crypto invocations, ...):
each bench's counter deltas land in its ``BENCH_SUMMARY.json`` entry,
the session totals in ``results/perf_counters.json``, and — when
telemetry is also on — a per-span attribution of those events in
``results/profile.collapsed`` (flamegraph-compatible collapsed
stacks).  ``scripts/bench_history.py`` appends each summary to
``results/bench_history.jsonl`` and gates on run-over-run
regressions.

All artifacts are written atomically (tmp file + ``os.replace``) so
an interrupted session never leaves a truncated JSON behind.
"""

import json
import pathlib
import time

import pytest

from repro.obs import PERF, PROFILER, TELEMETRY, PerfSnapshot, \
    atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_PATH = pathlib.Path(__file__).parent.parent / \
    "BENCH_SUMMARY.json"

#: bench module stem -> {"wall_time_s", "tests", "failures", "skips"}
_bench_times = {}
#: bench module stem -> PerfSnapshot of architectural-event deltas
_bench_counters = {}
_session_started = None


@pytest.fixture(scope="session")
def report_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def _json_cell(cell):
    """Keep JSON-native cell values; stringify everything else (numpy
    scalars, Path, ...) so artifacts never fail to serialize."""
    if isinstance(cell, (str, int, float, bool)) or cell is None:
        return cell
    return str(cell)


def write_table(report_dir, name: str, title: str, header: list,
                rows: list) -> str:
    """Format and persist one reproduced table; returns the text.

    Writes the aligned ``<name>.txt`` for humans and ``<name>.json``
    (title, header, rows) for tooling.
    """
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w)
                           for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    atomic_write_text(report_dir / f"{name}.txt", text)
    payload = {
        "name": name,
        "title": title,
        "header": [str(h) for h in header],
        "rows": [[_json_cell(c) for c in row] for row in rows],
    }
    atomic_write_text(report_dir / f"{name}.json",
                      json.dumps(payload, indent=2) + "\n")
    return text


# -- per-bench wall-time aggregation (BENCH_SUMMARY.json) ----------------

def pytest_sessionstart(session):
    global _session_started
    _session_started = time.time()
    if PERF.enabled and TELEMETRY.enabled:
        # Per-span attribution of architectural events; exported as a
        # collapsed-stack profile on session exit.
        PROFILER.attach(TELEMETRY.tracer)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_protocol(item, nextitem):
    """Attribute architectural-event deltas to the running bench.

    Wraps the whole protocol (not just the call phase) so events from
    module-scoped fixtures — e.g. the fault campaign — are attributed
    to the bench whose setup ran them.
    """
    if not PERF.enabled:
        yield
        return
    before = PERF.snapshot()
    yield
    delta = PERF.snapshot() - before
    stem = pathlib.Path(item.nodeid.split("::")[0]).stem
    if stem.startswith("bench_") and delta:
        _bench_counters[stem] = \
            _bench_counters.get(stem, PerfSnapshot()) + delta


def pytest_runtest_logreport(report):
    """Accumulate call durations per bench module."""
    module = report.nodeid.split("::")[0]
    stem = pathlib.Path(module).stem
    if not stem.startswith("bench_"):
        return
    entry = _bench_times.setdefault(stem, {
        "wall_time_s": 0.0, "tests": 0, "failures": 0, "skips": 0})
    entry["wall_time_s"] += report.duration
    if report.when == "call":
        entry["tests"] += 1
        if report.skipped:
            entry["skips"] += 1
    if report.failed:
        entry["failures"] += 1


def _bench_status(entry) -> str:
    if entry["failures"]:
        return "failed"
    if entry["tests"] and entry["tests"] == entry["skips"]:
        return "skipped"
    return "passed"


def pytest_sessionfinish(session, exitstatus):
    if not _bench_times:
        return
    benches = [
        {"name": stem,
         "wall_time_s": round(entry["wall_time_s"], 6),
         "status": _bench_status(entry),
         "tests": entry["tests"],
         "counters": dict(_bench_counters.get(stem, {}))}
        for stem, entry in sorted(_bench_times.items())]
    summary = {
        "session_wall_time_s": round(time.time() - _session_started, 6)
        if _session_started else None,
        "telemetry_enabled": TELEMETRY.enabled,
        "perf_enabled": PERF.enabled,
        "benches": benches,
    }
    atomic_write_text(SUMMARY_PATH, json.dumps(summary, indent=2) + "\n")
    if TELEMETRY.enabled or PERF.enabled:
        RESULTS_DIR.mkdir(exist_ok=True)
    if PERF.enabled:
        atomic_write_text(
            RESULTS_DIR / "perf_counters.json",
            json.dumps(dict(PERF.snapshot()), indent=2,
                       sort_keys=True) + "\n")
    if PROFILER.attached:
        PROFILER.write_collapsed(RESULTS_DIR / "profile.collapsed")
        PROFILER.detach()
    if TELEMETRY.enabled:
        TELEMETRY.export(RESULTS_DIR)

"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper and writes the
reproduced rows to ``benchmarks/results/<name>.txt`` so the comparison
against the paper (EXPERIMENTS.md) is a saved artifact, not just
transient stdout.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_table(report_dir, name: str, title: str, header: list,
                rows: list) -> str:
    """Format and persist one reproduced table; returns the text."""
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w)
                           for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    (report_dir / f"{name}.txt").write_text(text)
    return text

"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper and writes the
reproduced rows to ``benchmarks/results/<name>.txt`` so the comparison
against the paper (EXPERIMENTS.md) is a saved artifact, not just
transient stdout.  Since ISSUE 1 each table is additionally persisted
as machine-readable ``results/<name>.json`` (title, header, rows), and
a session hook aggregates per-bench wall-clock times into
``BENCH_SUMMARY.json`` at the repo root — the perf trajectory of the
whole suite, trackable across PRs.

Run with ``REPRO_TELEMETRY=1`` to also capture a structured trace of
every instrumented subsystem; it is exported on session exit to
``results/trace.jsonl`` + ``results/metrics.json`` and summarized by
``scripts/trace_report.py``.
"""

import json
import pathlib
import time

import pytest

from repro.obs import TELEMETRY

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_PATH = pathlib.Path(__file__).parent.parent / \
    "BENCH_SUMMARY.json"

#: bench module stem -> {"wall_time_s", "tests", "failures", "skips"}
_bench_times = {}
_session_started = None


@pytest.fixture(scope="session")
def report_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def _json_cell(cell):
    """Keep JSON-native cell values; stringify everything else (numpy
    scalars, Path, ...) so artifacts never fail to serialize."""
    if isinstance(cell, (str, int, float, bool)) or cell is None:
        return cell
    return str(cell)


def write_table(report_dir, name: str, title: str, header: list,
                rows: list) -> str:
    """Format and persist one reproduced table; returns the text.

    Writes the aligned ``<name>.txt`` for humans and ``<name>.json``
    (title, header, rows) for tooling.
    """
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(w)
                           for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w)
                               for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    (report_dir / f"{name}.txt").write_text(text)
    payload = {
        "name": name,
        "title": title,
        "header": [str(h) for h in header],
        "rows": [[_json_cell(c) for c in row] for row in rows],
    }
    (report_dir / f"{name}.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    return text


# -- per-bench wall-time aggregation (BENCH_SUMMARY.json) ----------------

def pytest_sessionstart(session):
    global _session_started
    _session_started = time.time()


def pytest_runtest_logreport(report):
    """Accumulate call durations per bench module."""
    module = report.nodeid.split("::")[0]
    stem = pathlib.Path(module).stem
    if not stem.startswith("bench_"):
        return
    entry = _bench_times.setdefault(stem, {
        "wall_time_s": 0.0, "tests": 0, "failures": 0, "skips": 0})
    entry["wall_time_s"] += report.duration
    if report.when == "call":
        entry["tests"] += 1
        if report.skipped:
            entry["skips"] += 1
    if report.failed:
        entry["failures"] += 1


def _bench_status(entry) -> str:
    if entry["failures"]:
        return "failed"
    if entry["tests"] and entry["tests"] == entry["skips"]:
        return "skipped"
    return "passed"


def pytest_sessionfinish(session, exitstatus):
    if not _bench_times:
        return
    benches = [
        {"name": stem,
         "wall_time_s": round(entry["wall_time_s"], 6),
         "status": _bench_status(entry),
         "tests": entry["tests"]}
        for stem, entry in sorted(_bench_times.items())]
    summary = {
        "session_wall_time_s": round(time.time() - _session_started, 6)
        if _session_started else None,
        "telemetry_enabled": TELEMETRY.enabled,
        "benches": benches,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    if TELEMETRY.enabled:
        RESULTS_DIR.mkdir(exist_ok=True)
        TELEMETRY.export(RESULTS_DIR)

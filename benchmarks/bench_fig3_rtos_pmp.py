"""Fig. 3 — FreeRTOS on RISC-V with PMP: the attack-scenario evaluation.

The paper's figure shows the architecture (PMP-isolated tasks above the
hardened kernel); its evaluation ran "diverse attack scenarios ... to
evaluate the system's capacity to endure and recuperate from these
attacks".  The bench runs the full scenario suite on the flat baseline
and on the PMP-hardened kernel and regenerates the outcome matrix.
"""

from repro.obs import counting
from repro.rtos import run_all_scenarios

from conftest import write_table

_outcomes = {}


def test_flat_kernel_scenarios(benchmark):
    outcomes = benchmark.pedantic(
        lambda: run_all_scenarios(protected=False), rounds=1,
        iterations=1)
    _outcomes[False] = outcomes
    assert all(o.attack_succeeded for o in outcomes)


def test_protected_kernel_scenarios(benchmark):
    with counting() as window:
        outcomes = benchmark.pedantic(
            lambda: run_all_scenarios(protected=True), rounds=1,
            iterations=1)
    counters = window.delta()
    # Containment is architecturally real: the hardened run must have
    # exercised PMP checks, denied the attacks, and kept scheduling.
    assert counters["soc.pmp.checks"] > 0
    assert counters["soc.pmp.denials"] > 0
    assert counters["rtos.context_switches"] > 0
    _outcomes[True] = outcomes
    assert not any(o.attack_succeeded for o in outcomes)
    assert all(o.victim_survived for o in outcomes)
    assert all(o.attacker_contained for o in outcomes)


def test_report_fig3(benchmark, report_dir):
    def build():
        rows = []
        flat = {o.name: o for o in _outcomes[False]}
        hard = {o.name: o for o in _outcomes[True]}
        for name in sorted(flat):
            rows.append([
                name,
                "succeeded" if flat[name].attack_succeeded
                else "blocked",
                "succeeded" if hard[name].attack_succeeded
                else "blocked",
                "yes" if hard[name].attacker_contained else "no",
                "yes" if hard[name].victim_survived else "no"])
        write_table(report_dir, "fig3",
                    "Fig. 3 evaluation: attack scenarios, flat vs "
                    "PMP-hardened FreeRTOS",
                    ["scenario", "flat kernel", "PMP kernel",
                     "attacker contained", "victim survived"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 5

"""X7 — the HADES power extension (the paper's future-work item).

"In future work, this could even be extended to power consumption,
given that the relevant data sets are available" — this bench runs the
extension: for every feasible AES-256 design the power model predicts
dynamic/leakage power and energy per block, and the resulting energy
ranking is compared against the paper's area/latency/ALP optima.
"""

import pytest

from repro.hades import (DesignContext, HardwarePowerModel,
                         aes_activity_factor, enumerate_designs,
                         rank_by_energy)
from repro.hades.library import aes256

from conftest import write_table

_results = {}


@pytest.mark.parametrize("order", [0, 1])
def test_energy_ranking(benchmark, order):
    designs = list(enumerate_designs(aes256(),
                                     DesignContext(masking_order=order)))
    ranked = benchmark.pedantic(
        lambda: rank_by_energy(designs, aes_activity_factor),
        rounds=1, iterations=1)
    _results[order] = (designs, ranked)
    assert len(ranked) == len(designs)


def test_report_power(benchmark, report_dir):
    def build():
        rows = []
        for order, (designs, ranked) in sorted(_results.items()):
            energy_best, estimate = ranked[0]
            area_best = min(designs, key=lambda d: d.metrics.area_kge)
            alp_best = min(designs,
                           key=lambda d: d.metrics.area_latency_product)
            model = HardwarePowerModel()
            for label, design in (("energy-opt", energy_best),
                                  ("area-opt", area_best),
                                  ("ALP-opt", alp_best)):
                est = model.estimate(
                    design.metrics,
                    aes_activity_factor(design.configuration))
                rows.append([
                    f"d={order} {label}",
                    design.configuration.param("datapath"),
                    f"{design.metrics.area_kge:.1f}",
                    f"{design.metrics.latency_cc:.0f}",
                    f"{est.total_mw:.3f}",
                    f"{est.energy_per_op_nj:.2f}"])
        write_table(report_dir, "power_extension",
                    "HADES power extension: energy vs area vs ALP "
                    "optima (AES-256, 100 MHz)",
                    ["design", "datapath", "area kGE", "lat cc",
                     "power mW", "energy/block nJ"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 6
    # The ablation claim: the three optima are not all the same design.
    designs, ranked = _results[0]
    energy_best = ranked[0][0]
    area_best = min(designs, key=lambda d: d.metrics.area_kge)
    assert energy_best.configuration != area_best.configuration

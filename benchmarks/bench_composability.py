"""X4 — composability and its cost (Section III-E).

Two measurements: (a) the composability property itself — an
application's cycle-accurate timeline is invariant to co-runners under
TDM and diverges under the work-conserving baselines; (b) "a drawback
of composable execution [is] the additional processing overhead" — the
TDM makespan penalty versus round-robin and FCFS.
"""

import pytest

from repro.compsoc import (measure_overhead, periodic_workload,
                           verify_composability)
from repro.obs import counting

from conftest import write_table

_results = {}


def _app():
    return periodic_workload("app", compute_ticks=3, requests=12,
                             base_address=0x1000_0000)


def _hog(name="hog", base=0x1010_0000):
    return periodic_workload(name, compute_ticks=0, requests=200,
                             base_address=base)


CORUNNER_SETS = [[_hog],
                 [_hog, lambda: _hog("hog2", 0x1020_0000)],
                 [_hog, lambda: _hog("hog2", 0x1020_0000),
                  lambda: _hog("hog3", 0x1030_0000)]]


@pytest.mark.parametrize("policy", ["tdm", "round_robin", "fcfs"])
def test_composability_per_policy(benchmark, policy):
    report = benchmark.pedantic(
        lambda: verify_composability(policy, _app, CORUNNER_SETS),
        rounds=1, iterations=1)
    _results[policy] = report
    if policy == "tdm":
        assert report.composable
    else:
        assert not report.composable


def test_overhead(benchmark):
    with counting() as window:
        report = benchmark.pedantic(
            lambda: measure_overhead([_app, _hog,
                                      lambda: _hog("hog2",
                                                   0x1020_0000)]),
            rounds=1, iterations=1)
    counters = window.delta()
    # The makespan numbers come from a real cycle-level simulation:
    # bus cycles elapsed, requests were submitted and granted.
    assert counters["soc.bus.cycles"] > 0
    assert counters["soc.bus.requests"] > 0
    assert counters["soc.bus.grants"] > 0
    assert counters["compsoc.runs"] >= 3      # one per policy
    _results["overhead"] = report
    assert report.tdm_overhead_vs_best > 0


def test_report_composability(benchmark, report_dir):
    def build():
        rows = []
        for policy in ("tdm", "round_robin", "fcfs"):
            report = _results[policy]
            rows.append([policy,
                         "yes" if report.composable else "no",
                         len(report.divergent_runs)])
        write_table(report_dir, "composability",
                    "Composability: is the app timeline invariant to "
                    "co-runners?",
                    ["policy", "composable", "divergent runs"], rows)
        overhead = _results["overhead"]
        overhead_rows = [[policy, cycles] for policy, cycles
                         in sorted(overhead.makespans.items())]
        overhead_rows.append(["tdm overhead vs best",
                              f"{overhead.tdm_overhead_vs_best:.1%}"])
        write_table(report_dir, "composability_overhead",
                    "Composability overhead: makespan per policy",
                    ["policy", "makespan cycles"], overhead_rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 3

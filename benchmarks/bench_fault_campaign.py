"""Seeded fault-injection campaign over the full stack (ISSUE 2).

Runs >= 200 deterministic injections across the standard scenario
suite (measured boot + attestation, attested delivery, RTOS protected
and flat baseline, SoC fabric) and asserts the hardening acceptance
bar: every fault fired into a hardened path is masked, detected or
recovered — zero silent corruption, zero crashes — while the flat RTOS
baseline still exhibits the silent-corruption class the PMP port
removes.

Artifacts: ``results/fault_campaign.json`` (canonical campaign JSON,
byte-identical for a given seed), ``results/fault_campaign_runs.jsonl``
(per-run records) and the ``results/fault_campaign_summary.txt``
human table (named so the table writer's companion ``.json`` does not
clobber the canonical artifact).
"""

import time

import pytest

from conftest import write_table
from repro.faults.campaign import standard_campaign
from repro.obs import CoverageMap
from repro.faults.report import Outcome
from repro.runtime import available_cpus

SEED = 2026
INJECTIONS = 240
WALL_BUDGET_S = 60.0

#: Fixed worker count for the parallel rerun (not CPU-derived, so the
#: counters recorded into bench history stay machine-independent).
PARALLEL_JOBS = 4
PARALLEL_SPEEDUP_FLOOR = 1.2


@pytest.fixture(scope="module")
def campaign():
    coverage = CoverageMap("fault_campaign")
    start = time.perf_counter()
    result = standard_campaign(seed=SEED, injections=INJECTIONS,
                               coverage=coverage)
    wall = time.perf_counter() - start
    return result, wall, coverage


def test_campaign_meets_budget(campaign):
    result, wall, _ = campaign
    assert result.injections >= 200
    assert wall < WALL_BUDGET_S, (
        f"campaign took {wall:.1f}s for {result.injections} injections")


def test_hardened_paths_zero_silent_corruption(campaign):
    result, _, _ = campaign
    violations = result.hardened_violations()
    assert violations == [], [v.to_record() for v in violations]


def test_no_crashes_anywhere(campaign):
    result, _, _ = campaign
    assert result.outcome_totals().get(Outcome.CRASH.value, 0) == 0


def test_boot_attest_fired_faults_detected_or_recovered(campaign):
    result, _, _ = campaign
    for run in result.runs:
        if run.scenario == "boot-attest" and run.fired:
            assert run.outcome in ("detected", "recovered"), \
                run.to_record()


def test_flat_baseline_demonstrates_silent_corruption(campaign):
    result, _, _ = campaign
    flat = result.by_scenario()["rtos-flat"]
    assert flat.get("silent_corruption", 0) > 0, (
        "the unhardened baseline should show the defect class the "
        "PMP port removes")


def test_parallel_campaign_byte_identical_and_faster(campaign,
                                                     report_dir):
    """Rerun the exact campaign fanned across worker processes: the
    canonical JSON must match the serial run byte for byte, and on
    hardware with enough CPUs (CI) the wall time must beat serial."""
    serial, serial_wall, serial_cover = campaign
    parallel_cover = CoverageMap("fault_campaign")
    start = time.perf_counter()
    parallel = standard_campaign(seed=SEED, injections=INJECTIONS,
                                 jobs=PARALLEL_JOBS,
                                 coverage=parallel_cover)
    parallel_wall = time.perf_counter() - start

    assert parallel.canonical_json() == serial.canonical_json()
    # The coverage map rides the same shard-order merge: its canonical
    # JSON must be byte-identical to the serial run's too.
    assert parallel_cover.to_json() == serial_cover.to_json()

    speedup = serial_wall / parallel_wall
    write_table(
        report_dir, "fault_campaign_parallel",
        f"Fault campaign parallel: {INJECTIONS} injections across "
        f"{PARALLEL_JOBS} workers ({available_cpus()} CPUs "
        f"available), byte-identical canonical JSON",
        ["mode", "jobs", "wall", "runs/s", "speedup"],
        [["serial", 1, f"{serial_wall:.3f} s",
          f"{INJECTIONS / serial_wall:,.0f}", "1.00x"],
         ["chunked", PARALLEL_JOBS, f"{parallel_wall:.3f} s",
          f"{INJECTIONS / parallel_wall:,.0f}", f"{speedup:.2f}x"]])
    if available_cpus() >= PARALLEL_JOBS:
        assert speedup >= PARALLEL_SPEEDUP_FLOOR, (
            f"campaign chunked {PARALLEL_JOBS} ways on "
            f"{available_cpus()} CPUs sped up only {speedup:.2f}x")


def test_every_fault_model_was_exercised(campaign):
    result, _, _ = campaign
    models = set(result.by_model())
    assert len(models) >= 10


def test_write_artifacts(campaign, report_dir):
    result, wall, coverage = campaign
    path = result.write(report_dir / "fault_campaign.json")
    result.write_runs_jsonl(report_dir / "fault_campaign_runs.jsonl")
    assert path.exists()

    # Perf-signature coverage over the campaign: one group per
    # scenario, distinct log-bucketized counter vectors within it.
    assert set(coverage.groups()) == set(result.scenarios)
    assert coverage.observations == result.injections
    assert coverage.distinct() > 0
    coverage.write(report_dir / "coverage_fault_campaign.json")

    totals = result.outcome_totals()
    rows = []
    for scenario in result.scenarios:
        outcomes = result.by_scenario()[scenario]
        rows.append([
            scenario,
            "yes" if scenario in result.hardened else "no",
            sum(outcomes.values()),
            outcomes.get("masked", 0),
            outcomes.get("detected", 0),
            outcomes.get("recovered", 0),
            outcomes.get("silent_corruption", 0),
            outcomes.get("crash", 0),
        ])
    rows.append([
        "TOTAL", "-", result.injections,
        totals.get("masked", 0), totals.get("detected", 0),
        totals.get("recovered", 0), totals.get("silent_corruption", 0),
        totals.get("crash", 0),
    ])
    # Named *_summary so write_table's JSON twin does not clobber the
    # canonical campaign artifact written above.
    write_table(
        report_dir, "fault_campaign_summary",
        f"Fault-injection campaign: seed={result.seed}, "
        f"{result.injections} injections in {wall:.1f}s "
        f"(hardened violations: {len(result.hardened_violations())})",
        ["scenario", "hardened", "runs", "masked", "detected",
         "recovered", "silent-corrupt", "crash"],
        rows)

"""X3 — end-to-end CIM weight extraction and countermeasure ablation.

Extends Figs. 1-2 to the full attack: recovery accuracy and query cost
on random weight arrays, robustness to measurement noise, and the
effect of the masking / shuffling countermeasures (attack accuracy
collapses to chance, TVLA leakage disappears under masking).
"""

import numpy as np
import pytest

from repro.cim import (DigitalCimMacro, MaskedCimMacro, PowerModel,
                       ShuffledCimMacro, WeightExtractionAttack,
                       assess_macro)

from conftest import write_table

_results = {}


def _weights(count, seed=21):
    rng = np.random.default_rng(seed)
    weights = [int(w) for w in rng.integers(0, 16, count)]
    weights[0], weights[1] = 0, 15
    return weights


@pytest.mark.parametrize("count", [16, 32, 64])
def test_extraction_scaling(benchmark, count):
    weights = _weights(count)
    attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                    PowerModel(0.0), repetitions=1)
    result = benchmark.pedantic(lambda: attack.run(), rounds=1,
                                iterations=1)
    _results[f"scale_{count}"] = (result.accuracy(weights),
                                  result.queries_used)
    assert result.accuracy(weights) == 1.0


@pytest.mark.parametrize("sigma", [0.0, 0.25, 0.5])
def test_extraction_noise(benchmark, sigma):
    weights = _weights(16, seed=22)
    attack = WeightExtractionAttack(
        DigitalCimMacro(weights), PowerModel(sigma, seed=23),
        repetitions=40 if sigma else 1)
    result = benchmark.pedantic(
        lambda: attack.run(tolerance=max(0.25, sigma)), rounds=1,
        iterations=1)
    _results[f"noise_{sigma}"] = result.accuracy(weights)
    assert result.accuracy(weights) >= (1.0 if sigma == 0 else 0.8)


@pytest.mark.parametrize("defence", ["none", "masking", "shuffling"])
def test_countermeasure_ablation(benchmark, defence):
    weights = _weights(16, seed=24)
    if defence == "none":
        macro = DigitalCimMacro(weights)
    elif defence == "masking":
        macro = MaskedCimMacro(weights, seed=1)
    else:
        macro = ShuffledCimMacro(weights, seed=1)
    attack = WeightExtractionAttack(macro, PowerModel(0.0),
                                    repetitions=3)
    result = benchmark.pedantic(lambda: attack.run(), rounds=1,
                                iterations=1)
    _results[f"defence_{defence}"] = result.accuracy(weights)
    if defence == "none":
        assert result.accuracy(weights) == 1.0
    else:
        assert result.accuracy(weights) < 0.5


def test_tvla_ablation(benchmark):
    weights = [15] * 8 + [0] * 8

    def run():
        plain = assess_macro(lambda w: DigitalCimMacro(w), weights)
        masked = assess_macro(lambda w: MaskedCimMacro(w, seed=5),
                              weights)
        return plain, masked

    plain, masked = benchmark.pedantic(run, rounds=1, iterations=1)
    _results["tvla"] = (plain.t_statistic, masked.t_statistic)
    assert plain.leaks
    assert not masked.leaks


def test_report_extraction(benchmark, report_dir):
    def build():
        rows = []
        for count in (16, 32, 64):
            accuracy, queries = _results[f"scale_{count}"]
            rows.append([f"{count} weights, noise-free",
                         f"{accuracy:.0%}", queries])
        for sigma in (0.0, 0.25, 0.5):
            rows.append([f"16 weights, sigma={sigma}",
                         f"{_results[f'noise_{sigma}']:.0%}", "-"])
        for defence in ("none", "masking", "shuffling"):
            rows.append([f"defence: {defence}",
                         f"{_results[f'defence_{defence}']:.0%}", "-"])
        t_plain, t_masked = _results["tvla"]
        rows.append(["TVLA |t| plain vs masked",
                     f"{abs(t_plain):.1f} vs {abs(t_masked):.1f}",
                     "threshold 4.5"])
        write_table(report_dir, "cim_extraction",
                    "CIM weight extraction: scaling, noise, "
                    "countermeasures",
                    ["experiment", "recovery accuracy", "queries"],
                    rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 10

"""X2 — HADES-generated adders vs the AGEMA baseline (Section III-A).

Paper: "HADES produces adders which outperform those generated with
AGEMA, which applies straight-forward post-processing to synthesized
netlists."  The bench masks every adder in the 31-configuration family
at d=1 and d=2 with both flows and regenerates the comparison.
"""

import pytest

from repro.hades import DesignContext, agema_adder, enumerate_designs
from repro.hades.library import adder_family

from conftest import write_table

_rows = {}


@pytest.mark.parametrize("order", [1, 2])
def test_family_comparison(benchmark, order):
    context = DesignContext(masking_order=order, width=32)

    def run():
        comparisons = []
        for template in adder_family():
            for design in enumerate_designs(template, context):
                params = dict(design.configuration.params)
                baseline = agema_adder(template.name, params, context)
                comparisons.append((design, baseline))
        return comparisons

    comparisons = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(comparisons) == 31
    _rows[order] = comparisons
    for design, baseline in comparisons:
        assert design.metrics.area_kge < baseline.metrics.area_kge
        assert design.metrics.latency_cc <= baseline.metrics.latency_cc
        assert design.metrics.randomness_bits <= \
            baseline.metrics.randomness_bits


def test_report_agema(benchmark, report_dir):
    def build():
        rows = []
        for order, comparisons in sorted(_rows.items()):
            area_savings = []
            rand_savings = []
            for design, baseline in comparisons:
                area_savings.append(
                    1 - design.metrics.area_kge
                    / baseline.metrics.area_kge)
                rand_savings.append(
                    1 - design.metrics.randomness_bits
                    / baseline.metrics.randomness_bits)
            rows.append([
                f"d={order}", len(comparisons),
                f"{min(area_savings):.1%}..{max(area_savings):.1%}",
                f"{sum(area_savings)/len(area_savings):.1%}",
                f"{sum(rand_savings)/len(rand_savings):.1%}"])
        write_table(report_dir, "agema",
                    "HADES vs AGEMA on the 31-adder family "
                    "(savings of HADES over the baseline)",
                    ["order", "designs", "area savings range",
                     "mean area savings", "mean randomness savings"],
                    rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 2

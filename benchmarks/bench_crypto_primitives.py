"""X5 — cost of the cryptographic primitives (Section II-C context).

The paper's challenge statement: "Post-Quantum Cryptography (PQC) ...
has significantly larger resource requirements than classic asymmetric
schemes."  The bench quantifies that on this reproduction's own
implementations: sizes and operation timings of Ed25519 vs ML-DSA-44
(and the larger parameter sets), plus the symmetric substrate.
"""

import pytest

from repro.crypto import (AES, Ed25519KeyPair, HybridKeyPair, MLDSA,
                          MLKEM, ML_DSA_44, ML_DSA_65, ML_DSA_87,
                          ML_KEM_512, ML_KEM_768, ML_KEM_1024,
                          seal_aead, sha3_256)
from repro.crypto import ed25519 as ed

from conftest import write_table

_sizes = {}

_ED = Ed25519KeyPair(bytes(32))
_SCHEMES = {p.name: MLDSA(p) for p in (ML_DSA_44, ML_DSA_65, ML_DSA_87)}
_KEYS = {name: scheme.key_gen(bytes(32))
         for name, scheme in _SCHEMES.items()}
_SIGS = {name: scheme.sign(_KEYS[name][1], b"attestation")
         for name, scheme in _SCHEMES.items()}


def test_ed25519_sign(benchmark):
    signature = benchmark(lambda: _ED.sign(b"attestation"))
    _sizes["Ed25519"] = (32, 64)
    assert len(signature) == 64


def test_ed25519_verify(benchmark):
    signature = _ED.sign(b"attestation")
    assert benchmark(lambda: ed.verify(_ED.public, b"attestation",
                                       signature))


@pytest.mark.parametrize("name", sorted(_SCHEMES))
def test_mldsa_sign(benchmark, name):
    scheme = _SCHEMES[name]
    _, secret = _KEYS[name]
    signature = benchmark(lambda: scheme.sign(secret, b"attestation"))
    _sizes[name] = (scheme.params.public_key_bytes,
                    scheme.params.signature_bytes)
    assert len(signature) == scheme.params.signature_bytes


@pytest.mark.parametrize("name", sorted(_SCHEMES))
def test_mldsa_verify(benchmark, name):
    scheme = _SCHEMES[name]
    public, _ = _KEYS[name]
    assert benchmark(lambda: scheme.verify(public, b"attestation",
                                           _SIGS[name]))


_KEMS = {p.name: MLKEM(p) for p in (ML_KEM_512, ML_KEM_768,
                                    ML_KEM_1024)}
_KEM_KEYS = {name: kem.key_gen(bytes(32), bytes(32))
             for name, kem in _KEMS.items()}


@pytest.mark.parametrize("name", sorted(_KEMS))
def test_mlkem_encaps(benchmark, name):
    kem = _KEMS[name]
    ek, _ = _KEM_KEYS[name]
    key, ciphertext = benchmark(lambda: kem.encaps(ek, bytes(32)))
    assert len(ciphertext) == kem.params.ciphertext_bytes
    _sizes[name] = (kem.params.ek_bytes, kem.params.ciphertext_bytes)


@pytest.mark.parametrize("name", sorted(_KEMS))
def test_mlkem_decaps(benchmark, name):
    kem = _KEMS[name]
    ek, dk = _KEM_KEYS[name]
    key, ciphertext = kem.encaps(ek, bytes(32))
    assert benchmark(lambda: kem.decaps(dk, ciphertext)) == key


def test_hybrid_sign(benchmark):
    pair = HybridKeyPair(bytes(32), bytes(32))
    signature = benchmark(lambda: pair.sign(b"attestation"))
    assert len(signature) == 64 + 2420


def test_aes256_block(benchmark):
    cipher = AES(bytes(32))
    benchmark(lambda: cipher.encrypt_block(bytes(16)))


def test_sealing(benchmark):
    key, nonce = bytes(32), bytes(12)
    payload = bytes(4096)
    benchmark(lambda: seal_aead(key, nonce, payload))


def test_sha3(benchmark):
    benchmark(lambda: sha3_256(bytes(1024)))


def test_report_sizes(benchmark, report_dir):
    def build():
        rows = []
        for name in ("Ed25519", "ML-DSA-44", "ML-DSA-65", "ML-DSA-87"):
            public, signature = _sizes[name]
            rows.append([name, public, signature])
        rows.append(["hybrid (Ed25519+ML-DSA-44)", 32 + 1312,
                     64 + 2420])
        for name in ("ML-KEM-512", "ML-KEM-768", "ML-KEM-1024"):
            ek, ciphertext = _sizes[name]
            rows.append([f"{name} (KEM: ek/ct)", ek, ciphertext])
        write_table(report_dir, "crypto_sizes",
                    "Classic vs PQ material sizes (bytes; signatures "
                    "and KEM)",
                    ["scheme", "public key", "signature/ciphertext"],
                    rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    # PQC >> classical, the paper's resource-requirements point.
    assert _sizes["ML-DSA-44"][1] > 30 * _sizes["Ed25519"][1]

"""X5 — cost of the cryptographic primitives (Section II-C context).

The paper's challenge statement: "Post-Quantum Cryptography (PQC) ...
has significantly larger resource requirements than classic asymmetric
schemes."  The bench quantifies that on this reproduction's own
implementations: sizes and operation timings of Ed25519 vs ML-DSA-44
(and the larger parameter sets), plus the symmetric substrate.

Key material is built lazily in session fixtures — importing this
module costs nothing, so collection stays fast and the keygen/sign work
is attributed to the benchmarked session instead of import time.  Two
gate tests ride along: the kernel PERF counters must move when the
primitives run, and the fast paths must beat their retained in-tree
references by the documented floors (checked on CI-class machines).
"""

import time

import pytest

from repro.crypto import (AES, Ed25519KeyPair, HybridKeyPair, MLDSA,
                          MLKEM, ML_DSA_44, ML_DSA_65, ML_DSA_87,
                          ML_KEM_512, ML_KEM_768, ML_KEM_1024,
                          seal_aead, sha3_256)
from repro.crypto import ed25519 as ed
from repro.crypto.keccak import pure_sha3_256
from repro.obs.perf import counting
from repro.runtime import available_cpus

from conftest import write_table

_sizes = {}

_MLDSA_NAMES = [p.name for p in (ML_DSA_44, ML_DSA_65, ML_DSA_87)]
_MLKEM_NAMES = [p.name for p in (ML_KEM_512, ML_KEM_768, ML_KEM_1024)]

#: Fast-path-over-reference floors asserted on CI-class machines
#: (>= ``_GATE_MIN_CPUS`` CPUs, mirroring the fault-campaign gate).
MLDSA_SIGN_SPEEDUP_FLOOR = 3.0
MLDSA_VERIFY_SPEEDUP_FLOOR = 3.0
ED25519_VERIFY_SPEEDUP_FLOOR = 2.0
_GATE_MIN_CPUS = 4


def _timed(benchmark, fn, rounds, iterations=1):
    """Fixed-round timing: the bench-history gate compares per-bench
    PERF counter totals *strictly* across recorded runs, so the
    primitives must execute a deterministic number of times (adaptive
    calibration would drift the counters with machine load)."""
    return benchmark.pedantic(fn, rounds=rounds, iterations=iterations,
                              warmup_rounds=1)


@pytest.fixture(scope="session")
def ed_pair():
    return Ed25519KeyPair(bytes(32))


@pytest.fixture(scope="session")
def mldsa_schemes():
    return {p.name: MLDSA(p) for p in (ML_DSA_44, ML_DSA_65, ML_DSA_87)}


@pytest.fixture(scope="session")
def mldsa_keys(mldsa_schemes):
    return {name: scheme.key_gen(bytes(32))
            for name, scheme in mldsa_schemes.items()}


@pytest.fixture(scope="session")
def mldsa_sigs(mldsa_schemes, mldsa_keys):
    return {name: scheme.sign(mldsa_keys[name][1], b"attestation")
            for name, scheme in mldsa_schemes.items()}


@pytest.fixture(scope="session")
def mlkem_schemes():
    return {p.name: MLKEM(p) for p in (ML_KEM_512, ML_KEM_768,
                                       ML_KEM_1024)}


@pytest.fixture(scope="session")
def mlkem_keys(mlkem_schemes):
    return {name: kem.key_gen(bytes(32), bytes(32))
            for name, kem in mlkem_schemes.items()}


def test_ed25519_sign(benchmark, ed_pair):
    signature = _timed(benchmark, lambda: ed_pair.sign(b"attestation"),
                       rounds=20)
    _sizes["Ed25519"] = (32, 64)
    assert len(signature) == 64


def test_ed25519_verify(benchmark, ed_pair):
    signature = ed_pair.sign(b"attestation")
    assert _timed(benchmark,
                  lambda: ed.verify(ed_pair.public, b"attestation",
                                    signature), rounds=20)


@pytest.mark.parametrize("name", sorted(_MLDSA_NAMES))
def test_mldsa_sign(benchmark, name, mldsa_schemes, mldsa_keys):
    scheme = mldsa_schemes[name]
    _, secret = mldsa_keys[name]
    signature = _timed(benchmark,
                       lambda: scheme.sign(secret, b"attestation"),
                       rounds=10)
    _sizes[name] = (scheme.params.public_key_bytes,
                    scheme.params.signature_bytes)
    assert len(signature) == scheme.params.signature_bytes


@pytest.mark.parametrize("name", sorted(_MLDSA_NAMES))
def test_mldsa_verify(benchmark, name, mldsa_schemes, mldsa_keys,
                      mldsa_sigs):
    scheme = mldsa_schemes[name]
    public, _ = mldsa_keys[name]
    assert _timed(benchmark,
                  lambda: scheme.verify(public, b"attestation",
                                        mldsa_sigs[name]), rounds=10)


@pytest.mark.parametrize("name", sorted(_MLKEM_NAMES))
def test_mlkem_encaps(benchmark, name, mlkem_schemes, mlkem_keys):
    kem = mlkem_schemes[name]
    ek, _ = mlkem_keys[name]
    key, ciphertext = _timed(benchmark,
                             lambda: kem.encaps(ek, bytes(32)),
                             rounds=10)
    assert len(ciphertext) == kem.params.ciphertext_bytes
    _sizes[name] = (kem.params.ek_bytes, kem.params.ciphertext_bytes)


@pytest.mark.parametrize("name", sorted(_MLKEM_NAMES))
def test_mlkem_decaps(benchmark, name, mlkem_schemes, mlkem_keys):
    kem = mlkem_schemes[name]
    ek, dk = mlkem_keys[name]
    key, ciphertext = kem.encaps(ek, bytes(32))
    assert _timed(benchmark, lambda: kem.decaps(dk, ciphertext),
                  rounds=10) == key


def test_hybrid_sign(benchmark):
    pair = HybridKeyPair(bytes(32), bytes(32))
    signature = _timed(benchmark, lambda: pair.sign(b"attestation"),
                       rounds=10)
    assert len(signature) == 64 + 2420


def test_aes256_block(benchmark):
    cipher = AES(bytes(32))
    _timed(benchmark, lambda: cipher.encrypt_block(bytes(16)),
           rounds=30, iterations=10)


def test_sealing(benchmark):
    key, nonce = bytes(32), bytes(12)
    payload = bytes(4096)
    _timed(benchmark, lambda: seal_aead(key, nonce, payload),
           rounds=20)


def test_sha3(benchmark):
    _timed(benchmark, lambda: sha3_256(bytes(1024)),
           rounds=30, iterations=10)


def test_kernel_counters_move(benchmark, ed_pair, mldsa_schemes,
                              mldsa_keys, mldsa_sigs):
    """The architectural kernel counters must attribute work to one
    pass over the signature schemes — a silently dead counter would
    invalidate the recorded bench history."""
    scheme = mldsa_schemes["ML-DSA-44"]
    public, secret = mldsa_keys["ML-DSA-44"]

    def one_pass():
        # The public SHA-3/SHAKE entry points dispatch to hashlib when
        # it provides Keccak; the pinned pure sponge (what the
        # permutation counter instruments) must be driven explicitly.
        assert pure_sha3_256(b"attestation") == sha3_256(b"attestation")
        signature = ed_pair.sign(b"attestation")
        assert ed.verify(ed_pair.public, b"attestation", signature)
        assert scheme.verify(public, b"attestation",
                             mldsa_sigs["ML-DSA-44"])
        return scheme.sign(secret, b"attestation")

    with counting() as window:
        benchmark.pedantic(one_pass, rounds=1, iterations=1)
    delta = window.delta()
    assert delta["crypto.keccak.permutations"] > 0
    assert delta["crypto.ed25519.point_adds"] > 0
    assert delta["crypto.mldsa.ntt_calls"] > 0


def test_fastpath_speedup_floors(benchmark, ed_pair, mldsa_schemes,
                                 mldsa_keys, report_dir):
    """Time the fast paths against the retained in-tree references on
    identical inputs (identical rejection schedules, so the ratio is
    machine-portable) and assert the documented floors on CI-class
    machines."""
    scheme = mldsa_schemes["ML-DSA-44"]
    public, secret = mldsa_keys["ML-DSA-44"]
    message = b"attest me"
    ed_sig = ed_pair.sign(message)

    def clock(fn, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    signature = scheme.sign(secret, message)
    assert scheme.sign_reference(secret, message) == signature
    assert scheme.verify_reference(public, message, signature)
    assert ed.verify_reference(ed_pair.public, message, ed_sig)

    fast_sign = clock(lambda: scheme.sign(secret, message), 5)
    ref_sign = clock(lambda: scheme.sign_reference(secret, message), 3)
    fast_verify = clock(
        lambda: scheme.verify(public, message, signature), 10)
    ref_verify = clock(
        lambda: scheme.verify_reference(public, message, signature), 5)
    fast_ed = clock(
        lambda: ed.verify(ed_pair.public, message, ed_sig), 10)
    ref_ed = clock(
        lambda: ed.verify_reference(ed_pair.public, message, ed_sig), 5)

    rows = [
        ["ML-DSA-44 sign", f"{ref_sign * 1e3:.2f} ms",
         f"{fast_sign * 1e3:.2f} ms", f"{ref_sign / fast_sign:.2f}x",
         f">= {MLDSA_SIGN_SPEEDUP_FLOOR:.0f}x"],
        ["ML-DSA-44 verify", f"{ref_verify * 1e3:.2f} ms",
         f"{fast_verify * 1e3:.2f} ms",
         f"{ref_verify / fast_verify:.2f}x",
         f">= {MLDSA_VERIFY_SPEEDUP_FLOOR:.0f}x"],
        ["Ed25519 verify", f"{ref_ed * 1e3:.2f} ms",
         f"{fast_ed * 1e3:.2f} ms", f"{ref_ed / fast_ed:.2f}x",
         f">= {ED25519_VERIFY_SPEEDUP_FLOOR:.0f}x"],
    ]
    write_table(report_dir, "crypto_fastpath_speedups",
                "Fast path vs retained reference (same inputs, best of "
                "N; floors asserted on CI-class machines)",
                ["operation", "reference", "fast path", "speedup",
                 "floor"], rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if available_cpus() >= _GATE_MIN_CPUS:
        assert ref_sign / fast_sign >= MLDSA_SIGN_SPEEDUP_FLOOR, rows[0]
        assert ref_verify / fast_verify >= MLDSA_VERIFY_SPEEDUP_FLOOR, \
            rows[1]
        assert ref_ed / fast_ed >= ED25519_VERIFY_SPEEDUP_FLOOR, rows[2]


def test_report_sizes(benchmark, report_dir):
    def build():
        rows = []
        for name in ("Ed25519", "ML-DSA-44", "ML-DSA-65", "ML-DSA-87"):
            public, signature = _sizes[name]
            rows.append([name, public, signature])
        rows.append(["hybrid (Ed25519+ML-DSA-44)", 32 + 1312,
                     64 + 2420])
        for name in ("ML-KEM-512", "ML-KEM-768", "ML-KEM-1024"):
            ek, ciphertext = _sizes[name]
            rows.append([f"{name} (KEM: ek/ct)", ek, ciphertext])
        write_table(report_dir, "crypto_sizes",
                    "Classic vs PQ material sizes (bytes; signatures "
                    "and KEM)",
                    ["scheme", "public key", "signature/ciphertext"],
                    rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    # PQC >> classical, the paper's resource-requirements point.
    assert _sizes["ML-DSA-44"][1] > 30 * _sizes["Ed25519"][1]

"""X10 — independent verification of dataflow applications.

Section III-E: "Since tasks executed in composable architectures are
protected from interference ... verification for each application can
be done in isolation."  The bench makes that concrete with an SDF
pipeline: its worst-case iteration period is computed from VEP-local
quantities only, and the observed period stays within the bound under
0, 1 and 3 saturating co-runners — while the same application on a
work-conserving platform blows through the bound.
"""

import pytest

from repro.compsoc import (ComposablePlatform, SdfGraph,
                           iteration_period_bound,
                           measure_iteration_periods, periodic_workload)

from conftest import write_table

_results = {}


def _graph():
    graph = SdfGraph("vision-pipeline")
    graph.add_actor("capture", wcet=3, memory_accesses=2)
    graph.add_actor("detect", wcet=6, memory_accesses=2)
    graph.add_actor("encode", wcet=2, memory_accesses=1)
    graph.connect("capture", "detect")
    graph.connect("detect", "encode")
    return graph


def _run(policy, corunners, vep_count=4):
    platform = ComposablePlatform(policy)
    vep = platform.create_vep("v0")
    for index in range(vep_count - 1):
        other = platform.create_vep(f"v{index + 1}")
        if index < corunners:
            other.attach(periodic_workload(
                f"hog{index}", 0, 600, other.memory.base))
    graph = _graph()
    # The bound the application was *verified* against: the 4-VEP TDM
    # platform it was provisioned for.
    tdm_reference = ComposablePlatform("tdm")
    for index in range(4):
        tdm_reference.create_vep(f"v{index}")
    bound = iteration_period_bound(graph, tdm_reference)
    periods = measure_iteration_periods(graph, platform, vep,
                                        iterations=5)
    return bound, periods


@pytest.mark.parametrize("corunners", [0, 1, 3])
def test_tdm_bound_holds(benchmark, corunners):
    bound, periods = benchmark.pedantic(
        lambda: _run("tdm", corunners), rounds=1, iterations=1)
    _results[("tdm", corunners)] = (bound, max(periods))
    assert all(p <= bound for p in periods)


def test_fcfs_violates_bound_under_load(benchmark):
    """The verified-for-TDM application deployed on a work-conserving
    platform with a heavier co-runner population: the bound, which no
    longer has a composability guarantee behind it, is blown."""
    bound, periods = benchmark.pedantic(
        lambda: _run("fcfs", 8, vep_count=9), rounds=1, iterations=1)
    _results[("fcfs", 8)] = (bound, max(periods))
    assert max(periods) > bound


def test_report_dataflow(benchmark, report_dir):
    def build():
        rows = []
        for (policy, corunners), (bound, worst) in sorted(
                _results.items()):
            rows.append([policy, corunners, bound, worst,
                         "holds" if worst <= bound else "VIOLATED"])
        write_table(report_dir, "dataflow_bounds",
                    "SDF worst-case iteration period: analysis bound "
                    "vs observed",
                    ["policy", "co-runners", "analysis bound",
                     "worst observed", "verdict"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 4
    # TDM: observed worst case is identical across co-runner counts
    # (composability) and within the bound.
    tdm_values = {_results[("tdm", c)][1] for c in (0, 1, 3)}
    assert len(tdm_values) == 1

"""X9 — masking-order ablation on the CIM macro.

Masking theory: a d-th-order scheme resists attacks combining up to d
statistical moments.  Reproduced on the CIM substrate:

* unprotected     -> first-order attack recovers everything,
* order-1 masked  -> first-order attack fails (means are flat), but the
                     variance still leaks and a second-order attack
                     recovers values,
* order-2 masked  -> both fail.

This motivates the "arbitrary masking order" that HADES automates for
crypto cores (Section III-A) applied to the CIM data path.

The second-order attacks run at 10^5 attack + 10^5 profiling traces —
2x10^5 synthesized queries per run, each expanded into order+1 share
passes — which the vectorized ``query_fresh_many`` synthesis makes a
seconds-scale bench (the pointwise loop needed minutes, forcing the
earlier 2500/3500-trace compromise).  More traces push the order-1
second-order attack to full recovery while order-2 stays at chance,
sharpening the masking-theory diagonal the bench pins.
"""

import numpy as np
import pytest

from repro.cim import (DigitalCimMacro, MaskedCimMacro, PowerModel,
                       SecondOrderAttack, WeightExtractionAttack)

from conftest import write_table

# Values with well-separated second-order signatures.
WEIGHTS = [0, 3, 7, 15, 15, 0, 7, 3]

_results = {}


def _macro(order):
    if order == 0:
        return DigitalCimMacro(list(WEIGHTS))
    return MaskedCimMacro(list(WEIGHTS), seed=6, order=order)


@pytest.mark.parametrize("order", [0, 1, 2])
def test_first_order_attack(benchmark, order):
    attack = WeightExtractionAttack(_macro(order), PowerModel(0.0),
                                    repetitions=3)
    result = benchmark.pedantic(lambda: attack.run(), rounds=1,
                                iterations=1)
    _results[("first", order)] = result.accuracy(WEIGHTS)
    if order == 0:
        assert result.accuracy(WEIGHTS) == 1.0
    else:
        assert result.accuracy(WEIGHTS) < 0.5


@pytest.mark.parametrize("order", [1, 2])
def test_second_order_attack(benchmark, order):
    attack = SecondOrderAttack(_macro(order), PowerModel(0.0))
    result = benchmark.pedantic(
        lambda: attack.run(traces=100_000, profile_traces=100_000),
        rounds=1, iterations=1)
    _results[("second", order)] = result.accuracy(WEIGHTS)
    if order == 1:
        # 2x10^5 traces fully separate the second-moment classes.
        assert result.accuracy(WEIGHTS) >= 0.75
    else:
        assert result.accuracy(WEIGHTS) < 0.5


@pytest.mark.parametrize("order", [0, 1, 2])
def test_throughput_cost(benchmark, order):
    """Masking cost: order d evaluates d+1 share passes per MAC."""
    macro = _macro(order)
    mask = [1] * len(WEIGHTS)
    benchmark(lambda: macro.query_fresh(mask))
    _results[("passes", order)] = order + 1


def test_report_higher_order(benchmark, report_dir):
    def build():
        rows = []
        for order in (0, 1, 2):
            first = _results[("first", order)]
            second = _results.get(("second", order))
            rows.append([
                f"order {order}" if order else "unprotected",
                f"{first:.0%}",
                f"{second:.0%}" if second is not None else "n/a",
                _results[("passes", order)]])
        write_table(report_dir, "cim_higher_order",
                    "Masking-order ablation: attack accuracy by "
                    "statistical moment",
                    ["protection", "1st-order attack",
                     "2nd-order attack", "share passes/MAC"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 3
    # The theory's diagonal: order d falls to the (d+1)-th moment.
    assert _results[("first", 0)] == 1.0
    assert _results[("first", 1)] < 0.5 <= _results[("second", 1)]
    assert _results[("second", 2)] < 0.5
"""Table III — Keystone defaults vs the PQ-enabled modifications.

Paper:

    Bootrom size              50.7 KB     60.2 KB
    Signature algorithms      Ed25519     Ed25519 & ML-DSA-44
    Attestation report size   1320 Byte   7472 Byte
    SM stack size per core    8 KB        128 KB

All four rows are *measurements* of real artifacts in this
reproduction: serialized bootrom images, serialized attestation report
bytes, and the stack high-water mark of the actual ML-DSA signing call.
"""

import pytest

from repro.crypto.mldsa import ML_DSA_44, MLDSA
from repro.obs import counting
from repro.tee import build_tee, verify_report

from conftest import write_table

_measured = {}


def test_default_boot_and_attestation(benchmark):
    def run():
        platform = build_tee()
        enclave = platform.sm.create_enclave(b"demo-enclave")
        report = platform.sm.attest_enclave(enclave, b"nonce")
        return platform, report

    platform, report = benchmark.pedantic(run, rounds=1, iterations=1)
    encoded = report.encode()
    assert verify_report(report, platform.device.public_identity())
    _measured["default"] = {
        "bootrom": platform.bootrom.image_size,
        "report": len(encoded),
        "stack": platform.sm.config.stack_bytes,
        "algos": "Ed25519",
        "high_water": platform.sm.stack.high_water,
    }
    assert platform.bootrom.image_size == 51917      # 50.7 KB
    assert len(encoded) == 1320


def test_pq_boot_and_attestation(benchmark):
    def run():
        platform = build_tee(post_quantum=True)
        enclave = platform.sm.create_enclave(b"demo-enclave")
        report = platform.sm.attest_enclave(enclave, b"nonce")
        return platform, report

    with counting() as window:
        platform, report = benchmark.pedantic(run, rounds=1,
                                              iterations=1)
    counters = window.delta()
    # The architectural events behind the Table III deltas: the PQ
    # boot/attest path must actually invoke ML-DSA and the SM signer,
    # and the kernel-level counters under them must attribute the
    # lattice and curve work (memo hits replay the same deltas).
    assert counters["crypto.mldsa.sign"] >= 1
    assert counters["crypto.mldsa.ntt_calls"] > 0
    assert counters["crypto.ed25519.point_adds"] > 0
    assert counters["tee.sm.signs"] >= 1
    assert counters["tee.bootrom.measurements"] >= 1
    encoded = report.encode()
    assert verify_report(report, platform.device.public_identity())
    _measured["pq"] = {
        "bootrom": platform.bootrom.image_size,
        "report": len(encoded),
        "stack": platform.sm.config.stack_bytes,
        "algos": "Ed25519 & ML-DSA-44",
        "high_water": platform.sm.stack.high_water,
    }
    assert platform.bootrom.image_size == 61645      # 60.2 KB
    assert len(encoded) == 7472


def test_stack_sizing_experiment(benchmark):
    """The 8 KB default corrupts under ML-DSA; 128 KB fixes it."""
    def run():
        buggy = build_tee(post_quantum=True, stack_bytes=8 * 1024)
        enclave = buggy.sm.create_enclave(b"demo")
        report = buggy.sm.attest_enclave(enclave)
        return buggy, report

    buggy, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert buggy.sm.stack.corrupted
    assert not verify_report(report, buggy.device.public_identity())
    _measured["stack_bug"] = {
        "high_water": buggy.sm.stack.high_water,
    }
    # The measured signing demand sits between the two configurations.
    assert 8 * 1024 < buggy.sm.stack.high_water < 128 * 1024


def test_mldsa_signing_stack_model(benchmark):
    """The per-call stack estimate that drives the experiment."""
    scheme = MLDSA(ML_DSA_44)
    public, secret = scheme.key_gen(bytes(32))
    trace = {}
    benchmark(lambda: scheme.sign(secret, b"report", _trace=trace))
    assert trace["peak_stack_bytes"] > 8 * 1024


def test_report_table3(benchmark, report_dir):
    def build():
        default, pq = _measured["default"], _measured["pq"]
        rows = [
            ["Bootrom size",
             f"{default['bootrom']} B ({default['bootrom']/1024:.1f} KB)",
             f"{pq['bootrom']} B ({pq['bootrom']/1024:.1f} KB)",
             "50.7 KB / 60.2 KB"],
            ["Signature algorithms", default["algos"], pq["algos"],
             "same"],
            ["Attestation report", f"{default['report']} B",
             f"{pq['report']} B", "1320 B / 7472 B"],
            ["SM stack per core", f"{default['stack'] // 1024} KB",
             f"{pq['stack'] // 1024} KB", "8 KB / 128 KB"],
            ["(measured signing high-water)",
             f"{default['high_water']} B",
             f"{pq['high_water']} B", "-"],
        ]
        write_table(report_dir, "table3",
                    "Table III: Keystone default vs PQ-enabled",
                    ["component", "default", "PQ-enabled", "paper"],
                    rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 5

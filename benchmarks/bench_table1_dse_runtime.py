"""Table I — runtime of exhaustive DSE per algorithm.

Paper (TSMC-flow workstation):

    Keccak        14          0.5 s
    AdderModQ     42          0.7 s
    SparsePolyMul 372         1.2 s
    ChaCha20      1080        3.2 s
    AES           1440        5.4 s
    PolyMul       1302        7.9 s
    Kyber-CPA     40362       196.5 s
    Kyber-CCA     1148364     36 h

Our explorer evaluates analytic cost models instead of invoking a
synthesis-backed predictor, so the absolute times are orders of
magnitude smaller; the *shape* — configuration counts exact, runtime
growing with space size, Kyber-CCA dominating everything — is the
reproduction target.
"""

import pytest

from repro.hades import DesignContext, ExhaustiveExplorer, \
    OptimizationGoal
from repro.hades.library import TABLE_I_ROWS

from conftest import write_table

PAPER_SECONDS = {
    "Keccak": 0.5, "AdderModQ": 0.7,
    "Sparse Polynomial Multiplication": 1.2, "ChaCha20": 3.2,
    "AES": 5.4, "Polynomial Multiplication": 7.9,
    "Kyber-CPA": 196.5, "Kyber-CCA": 36 * 3600.0,
}

_measured = {}

SMALL_ROWS = [row for row in TABLE_I_ROWS if row[2] <= 50_000]
LARGE_ROWS = [row for row in TABLE_I_ROWS if row[2] > 50_000]


@pytest.mark.parametrize("name,factory,expected",
                         SMALL_ROWS, ids=[r[0] for r in SMALL_ROWS])
def test_exhaustive_dse_runtime(benchmark, name, factory, expected):
    template = factory()
    assert template.count_configurations() == expected

    def run():
        return ExhaustiveExplorer(template, DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA)

    result = benchmark(run)
    assert result.explored == expected
    _measured[name] = (expected, result.elapsed_seconds)


@pytest.mark.parametrize("name,factory,expected",
                         LARGE_ROWS, ids=[r[0] for r in LARGE_ROWS])
def test_exhaustive_dse_runtime_large(benchmark, name, factory,
                                      expected):
    """The 1.1M-point Kyber-CCA space: single-shot timing."""
    template = factory()
    assert template.count_configurations() == expected

    def run():
        return ExhaustiveExplorer(template, DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.explored == expected
    _measured[name] = (expected, result.elapsed_seconds)


def test_report_table1(benchmark, report_dir):
    """Aggregate the measurements into the reproduced Table I."""
    assert len(_measured) == len(TABLE_I_ROWS)

    def build():
        rows = []
        ordered = sorted(_measured.items(), key=lambda kv: kv[1][0])
        for name, (count, seconds) in ordered:
            rows.append([name, count, f"{seconds:.4f} s",
                         f"{PAPER_SECONDS[name]:.1f} s"])
        write_table(report_dir, "table1",
                    "Table I: exhaustive DSE runtime "
                    "(measured vs paper)",
                    ["algorithm", "#configurations", "measured",
                     "paper"], rows)
        return ordered

    ordered = benchmark.pedantic(build, rounds=1, iterations=1)
    # Shape check: runtime must grow with configuration count across
    # the extremes, and Kyber-CCA must dominate.
    times = [seconds for _, (_, seconds) in ordered]
    counts = [count for _, (count, _) in ordered]
    assert counts == sorted(counts)
    assert times[-1] == max(times)
    assert times[-1] > 10 * times[0]

"""Table I — runtime of exhaustive DSE per algorithm.

Paper (TSMC-flow workstation):

    Keccak        14          0.5 s
    AdderModQ     42          0.7 s
    SparsePolyMul 372         1.2 s
    ChaCha20      1080        3.2 s
    AES           1440        5.4 s
    PolyMul       1302        7.9 s
    Kyber-CPA     40362       196.5 s
    Kyber-CCA     1148364     36 h

Our explorer evaluates analytic cost models instead of invoking a
synthesis-backed predictor, so the absolute times are orders of
magnitude smaller; the *shape* — configuration counts exact, runtime
growing with space size, Kyber-CCA dominating everything — is the
reproduction target.
"""

import pytest

from repro.hades import DesignContext, ExhaustiveExplorer, \
    OptimizationGoal
from repro.hades.library import TABLE_I_ROWS
from repro.runtime import available_cpus

from conftest import write_table

PAPER_SECONDS = {
    "Keccak": 0.5, "AdderModQ": 0.7,
    "Sparse Polynomial Multiplication": 1.2, "ChaCha20": 3.2,
    "AES": 5.4, "Polynomial Multiplication": 7.9,
    "Kyber-CPA": 196.5, "Kyber-CCA": 36 * 3600.0,
}

#: Fixed worker count for the parallel timing (not CPU-derived, so the
#: architectural counters recorded into bench history are identical on
#: every machine); the speedup floor only applies where the hardware
#: can actually deliver it.
PARALLEL_JOBS = 4
SPEEDUP_FLOOR = 1.5

_measured = {}
_serial_results = {}

SMALL_ROWS = [row for row in TABLE_I_ROWS if row[2] <= 50_000]
LARGE_ROWS = [row for row in TABLE_I_ROWS if row[2] > 50_000]


@pytest.mark.parametrize("name,factory,expected",
                         SMALL_ROWS, ids=[r[0] for r in SMALL_ROWS])
def test_exhaustive_dse_runtime(benchmark, name, factory, expected):
    template = factory()
    assert template.count_configurations() == expected

    def run():
        return ExhaustiveExplorer(template, DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA)

    result = benchmark(run)
    assert result.explored == expected
    _measured[name] = (expected, result.elapsed_seconds)


@pytest.mark.parametrize("name,factory,expected",
                         LARGE_ROWS, ids=[r[0] for r in LARGE_ROWS])
def test_exhaustive_dse_runtime_large(benchmark, name, factory,
                                      expected):
    """The 1.1M-point Kyber-CCA space: single-shot timing."""
    template = factory()
    assert template.count_configurations() == expected

    def run():
        return ExhaustiveExplorer(template, DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.explored == expected
    _measured[name] = (expected, result.elapsed_seconds)
    _serial_results[name] = result


def test_exhaustive_dse_parallel_speedup(benchmark, report_dir):
    """The sharded Kyber-CCA traversal: identical optimum, wall-time
    speedup recorded into the bench artifacts / history.

    This is the paper's pain point made fast: the 1 148 364-point
    space the paper burns 36 h on exhaustively is exactly the loop
    ``jobs=N`` shards.  The speedup floor is only asserted where the
    hardware can deliver it (>= PARALLEL_JOBS CPUs, i.e. CI); the
    byte-level result identity is asserted everywhere.
    """
    name, factory, expected = LARGE_ROWS[0]
    serial = _serial_results[name]
    template = factory()

    def run():
        return ExhaustiveExplorer(template, DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA,
                                  jobs=PARALLEL_JOBS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.explored == expected
    assert result.jobs == PARALLEL_JOBS
    assert result.best.configuration == serial.best.configuration
    assert result.best.metrics == serial.best.metrics
    assert result.feasible == serial.feasible

    speedup = serial.elapsed_seconds / result.elapsed_seconds
    write_table(
        report_dir, "table1_parallel",
        f"Table I parallel: {name} ({expected} configurations) "
        f"sharded across {PARALLEL_JOBS} workers "
        f"({available_cpus()} CPUs available)",
        ["mode", "jobs", "wall", "evals/s", "speedup"],
        [["serial", 1, f"{serial.elapsed_seconds:.3f} s",
          f"{serial.feasible / serial.elapsed_seconds:,.0f}", "1.00x"],
         ["sharded", PARALLEL_JOBS,
          f"{result.elapsed_seconds:.3f} s",
          f"{result.feasible / result.elapsed_seconds:,.0f}",
          f"{speedup:.2f}x"]])
    if available_cpus() >= PARALLEL_JOBS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name} sharded {PARALLEL_JOBS} ways on "
            f"{available_cpus()} CPUs sped up only {speedup:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x)")


def test_report_table1(benchmark, report_dir):
    """Aggregate the measurements into the reproduced Table I."""
    assert len(_measured) == len(TABLE_I_ROWS)

    def build():
        rows = []
        ordered = sorted(_measured.items(), key=lambda kv: kv[1][0])
        for name, (count, seconds) in ordered:
            rows.append([name, count, f"{seconds:.4f} s",
                         f"{PAPER_SECONDS[name]:.1f} s"])
        write_table(report_dir, "table1",
                    "Table I: exhaustive DSE runtime "
                    "(measured vs paper)",
                    ["algorithm", "#configurations", "measured",
                     "paper"], rows)
        return ordered

    ordered = benchmark.pedantic(build, rounds=1, iterations=1)
    # Shape check: runtime must grow with configuration count across
    # the extremes, and Kyber-CCA must dominate.
    times = [seconds for _, (_, seconds) in ordered]
    counts = [count for _, (count, _) in ordered]
    assert counts == sorted(counts)
    assert times[-1] == max(times)
    assert times[-1] > 10 * times[0]

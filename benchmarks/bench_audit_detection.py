"""Audit ledger + anomaly detection at campaign scale (ISSUE 8).

Runs the PR 7 adversary campaign as the evaluation harness for the
security-observability plane and asserts its acceptance bar:

* **zero false positives** — every golden scenario executes with the
  ledger and the standard detector suite live, and not one detector
  fires;
* **100% detection coverage of hardening-gate violations** — a
  deliberately mis-hardened family (the flat-RTOS baseline declared
  hardened) produces violations, and the ``hardening-gate`` tripwire
  flags every single one;
* the standard campaign control stays clean: no violations, no
  ``hardening-gate`` detections;
* the full audit chain verifies (header -> events -> signed
  checkpoints) after ~10^4 audited injections;
* auditing + detection cost < 10% wall overhead on the same campaign
  (best-of-N, interleaved);
* the ledger bytes and the detection sequence are identical serial vs
  ``REPRO_JOBS``-sharded execution.

Scale knobs: ``REPRO_AUDIT_GENERATIONS`` x ``REPRO_AUDIT_POPULATION``
(default 10 x 1000 = the 10^4 audited budget; CI runs the same).

Artifacts: ``results/audit.jsonl`` (the tamper-evident ledger — feed
it to ``scripts/audit_report.py --verify``), ``results/
audit_detections.json`` (the typed detection sequence) and the human
summary table.
"""

import json
import os
import time

import pytest

from conftest import write_table
from repro.faults import FAULTS
from repro.faults.adversary import standard_adversary_campaign
from repro.faults.adversary.campaign import AdversaryCampaign
from repro.faults.adversary.families import TaskProgramAdversary
from repro.faults.scenarios import standard_scenarios
from repro.obs import atomic_write_text
from repro.obs.audit import (AUDIT, canonical_encode,
                             load_ledger_records, summarize_records,
                             verify_records)
from repro.obs.detect import AnomalyEngine

SEED = 2026
GENERATIONS = int(os.environ.get("REPRO_AUDIT_GENERATIONS", "10"))
POPULATION = int(os.environ.get("REPRO_AUDIT_POPULATION", "1000"))

#: Observer-cost gate: auditing + detection on the identical campaign,
#: best-of-``OVERHEAD_REPEATS`` interleaved, must stay under 10%.
OVERHEAD_BUDGET = 0.10
OVERHEAD_GENERATIONS = 3
OVERHEAD_POPULATION = 150
OVERHEAD_REPEATS = 3

#: Byte-parity is structural (worker bodies re-chained through the
#: parent in shard order), so a reduced budget pins it.
PARITY_GENERATIONS = 3
PARITY_POPULATION = 200
PARALLEL_JOBS = 2

#: Forced-violation run: the flat-RTOS family declared hardened, so
#: every silent corruption becomes a hardening-gate violation.
VIOLATION_GENERATIONS = 2
VIOLATION_POPULATION = 100


def _audited(callback):
    """Run ``callback`` with the global ledger + standard detectors
    live; returns (callback result, exported records, detection
    sequence, by-detector tallies) and restores the global state."""
    AUDIT.reset()
    AUDIT.enable()
    engine = AnomalyEngine(ledger=AUDIT)
    try:
        value = callback()
        records = AUDIT.export_records()
        sequence = engine.sequence()
        by_detector = engine.by_detector()
    finally:
        engine.uninstall()
        AUDIT.disable()
        AUDIT.reset()
    return value, records, sequence, by_detector


@pytest.fixture(scope="module")
def audited_campaign():
    """Golden phase + the full audited adversary campaign, one ledger."""
    FAULTS.disarm()
    timing = {}

    def run():
        golden = [scenario.execute()
                  for scenario in standard_scenarios()]
        golden_events = AUDIT.event_count()
        start = time.perf_counter()
        result = standard_adversary_campaign(
            seed=SEED, generations=GENERATIONS, population=POPULATION)
        timing["campaign_wall"] = time.perf_counter() - start
        return golden, golden_events, result

    (golden, golden_events, result), records, sequence, by_detector = \
        _audited(run)
    return {"golden": golden, "golden_events": golden_events,
            "result": result, "records": records,
            "sequence": sequence, "by_detector": by_detector,
            "wall": timing["campaign_wall"]}


def test_golden_runs_are_silent(audited_campaign):
    """False-positive gate: all-ok scenarios, zero detections, and
    not one event above ``info`` severity."""
    for outcome in audited_campaign["golden"]:
        assert outcome["status"] == "ok", outcome
    events = [r for r in audited_campaign["records"]
              if r["type"] == "event"]
    golden_slice = events[:audited_campaign["golden_events"]]
    assert golden_slice, "golden phase emitted no audit events"
    assert {r["severity"] for r in golden_slice} == {"info"}
    assert not any(r["subsystem"] == "obs.detect"
                   for r in golden_slice)


def test_chain_verifies_at_campaign_scale(audited_campaign):
    stats = verify_records(audited_campaign["records"])
    assert stats["events"] > audited_campaign["golden_events"]
    assert stats["checkpoints"] >= 1
    assert audited_campaign["result"].injections == \
        GENERATIONS * POPULATION


def test_standard_campaign_control_is_clean(audited_campaign):
    """The control arm: the properly hardened standard campaign has no
    violations — and therefore must produce zero ``hardening-gate``
    detections (the detector only ever mirrors real violations)."""
    result = audited_campaign["result"]
    assert result.hardened_violations() == []
    assert audited_campaign["by_detector"].get("hardening-gate",
                                               0) == 0


def test_every_hardening_violation_detected():
    """Detection-coverage gate: declare the flat-RTOS baseline
    hardened so its silent-corruption class becomes hardening-gate
    violations, and require the tripwire to flag 100% of them."""
    FAULTS.disarm()
    family = TaskProgramAdversary(protected=False)
    family.hardened = True

    def run():
        campaign = AdversaryCampaign(families=(family,), seed=SEED,
                                     shrink_budget=0)
        return campaign.run(generations=VIOLATION_GENERATIONS,
                            population=VIOLATION_POPULATION)

    result, records, _, by_detector = _audited(run)
    violations = len(result.violations)
    assert violations > 0, \
        "mis-hardened flat family produced no violations to detect"
    assert by_detector.get("hardening-gate", 0) == violations
    gate_events = [r for r in records
                   if r["type"] == "event"
                   and r["subsystem"] == "obs.detect"
                   and r["detail"].get("detector") == "hardening-gate"]
    assert len(gate_events) == violations
    verify_records(records)


def test_observer_overhead_within_budget():
    """Auditing + detection on the identical campaign: < 10% wall
    overhead, best-of-N with the arms interleaved so drift hits both."""
    FAULTS.disarm()

    def bare():
        start = time.perf_counter()
        standard_adversary_campaign(seed=SEED + 1,
                                    generations=OVERHEAD_GENERATIONS,
                                    population=OVERHEAD_POPULATION)
        return time.perf_counter() - start

    def audited():
        def run():
            start = time.perf_counter()
            standard_adversary_campaign(
                seed=SEED + 1, generations=OVERHEAD_GENERATIONS,
                population=OVERHEAD_POPULATION)
            return time.perf_counter() - start
        wall, _, _, _ = _audited(run)
        return wall

    walls_off, walls_on = [], []
    for _ in range(OVERHEAD_REPEATS):
        walls_off.append(bare())
        walls_on.append(audited())
    overhead = (min(walls_on) - min(walls_off)) / min(walls_off)
    assert overhead < OVERHEAD_BUDGET, (
        f"audit+detection overhead {overhead:.1%} "
        f"(off {min(walls_off):.3f}s, on {min(walls_on):.3f}s)")


def test_ledger_identical_serial_vs_sharded(report_dir):
    """The ledger bytes and detection sequence are pure functions of
    the campaign, not of the sharding."""
    FAULTS.disarm()

    def campaign(jobs):
        def run():
            start = time.perf_counter()
            standard_adversary_campaign(
                seed=SEED, generations=PARITY_GENERATIONS,
                population=PARITY_POPULATION, jobs=jobs)
            return time.perf_counter() - start
        return _audited(run)

    serial_wall, serial_records, serial_sequence, _ = campaign(1)
    parallel_wall, parallel_records, parallel_sequence, _ = \
        campaign(PARALLEL_JOBS)
    assert [canonical_encode(r) for r in parallel_records] == \
        [canonical_encode(r) for r in serial_records]
    assert parallel_sequence == serial_sequence

    injections = PARITY_GENERATIONS * PARITY_POPULATION
    write_table(
        report_dir, "audit_detection_parity",
        f"Audit-ledger parity: {injections} audited injections, "
        f"serial vs {PARALLEL_JOBS} workers — "
        f"{len(serial_records)} ledger records and "
        f"{len(serial_sequence)} detections byte-identical",
        ["mode", "jobs", "wall", "ledger records", "detections"],
        [["serial", 1, f"{serial_wall:.3f} s", len(serial_records),
          len(serial_sequence)],
         ["sharded", PARALLEL_JOBS, f"{parallel_wall:.3f} s",
          len(parallel_records), len(parallel_sequence)]])


def test_write_artifacts(audited_campaign, report_dir):
    records = audited_campaign["records"]
    ledger_path = report_dir / "audit.jsonl"
    atomic_write_text(
        ledger_path,
        "".join(canonical_encode(r).decode("ascii") + "\n"
                for r in records))
    # The written artifact must satisfy the verifier end to end —
    # this is the file CI feeds to ``scripts/audit_report.py
    # --verify`` and uploads.
    stats = verify_records(load_ledger_records(ledger_path))
    summary = summarize_records(records)
    atomic_write_text(
        report_dir / "audit_detections.json",
        json.dumps({"schema_version": 1, "name": "audit-detections",
                    "seed": SEED,
                    "by_detector": audited_campaign["by_detector"],
                    "sequence": audited_campaign["sequence"]},
                   indent=2, sort_keys=True) + "\n")

    rows = [[subsystem, severities.get("info", 0),
             severities.get("warning", 0),
             severities.get("critical", 0)]
            for subsystem, severities
            in sorted(summary["by_subsystem"].items())]
    write_table(
        report_dir, "audit_detection_summary",
        f"Audit ledger: seed={SEED}, "
        f"{audited_campaign['result'].injections} injections in "
        f"{audited_campaign['wall']:.1f}s -> {stats['events']} events, "
        f"{stats['checkpoints']} signed checkpoints, "
        f"{sum(audited_campaign['by_detector'].values())} detections "
        f"({', '.join(f'{k}={v}' for k, v in sorted(audited_campaign['by_detector'].items())) or 'none'})",
        ["subsystem", "info", "warning", "critical"],
        rows)

"""X12 — the Keccak hardware case study (Section III-A).

"In CONVOLVE, we also realize Keccak in hardware as it is an important
subroutine of BIKE, CRYSTALS-Dilithium and can be used by the TEE for
signing as well.  The corresponding case study can be found in the
original HADES paper."  This bench regenerates that case study on our
template: the full 14-point space explored at masking orders 0-2, the
Pareto front extracted per order, and the TEE-relevant observation
(the fully serial design is ~20x smaller than the unrolled one, which
is why the SoC can afford a Keccak accelerator at all).
"""

import pytest

from repro.hades import (DesignContext, ExhaustiveExplorer,
                         OptimizationGoal, enumerate_designs,
                         pareto_front)
from repro.hades.library import keccak

from conftest import write_table

_results = {}


@pytest.mark.parametrize("order", [0, 1, 2])
def test_keccak_space_per_order(benchmark, order):
    context = DesignContext(masking_order=order)

    def run():
        designs = list(enumerate_designs(keccak(), context))
        return designs, pareto_front(designs)

    designs, front = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(designs) == 14
    _results[order] = (designs, front)


def test_report_keccak(benchmark, report_dir):
    def build():
        rows = []
        for order, (designs, front) in sorted(_results.items()):
            explorer_goals = {}
            for goal in (OptimizationGoal.AREA,
                         OptimizationGoal.LATENCY):
                result = ExhaustiveExplorer(
                    keccak(),
                    DesignContext(masking_order=order)).run(goal)
                metrics = result.best.metrics
                explorer_goals[goal.value] = metrics
            area = explorer_goals["A"]
            latency = explorer_goals["L"]
            rows.append([
                order, len(front),
                f"{area.area_kge:.1f} kGE @ {area.latency_cc:.0f} cc",
                f"{latency.area_kge:.1f} kGE @ "
                f"{latency.latency_cc:.0f} cc",
                f"{area.randomness_bits:.0f}/"
                f"{latency.randomness_bits:.0f}"])
        write_table(report_dir, "keccak_case_study",
                    "Keccak-f[1600] case study: optima per masking "
                    "order",
                    ["d", "pareto size", "area-opt", "latency-opt",
                     "rand bits (A/L)"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 3
    # TEE-relevant shape: the serial design is far smaller than the
    # unrolled one, and masked randomness scales with chi's AND count.
    designs0, _ = _results[0]
    areas = sorted(d.metrics.area_kge for d in designs0)
    assert areas[-1] > 15 * areas[0]
    designs1, _ = _results[1]
    rand_values = {d.metrics.randomness_bits for d in designs1}
    assert 1600 in rand_values       # full-width, unroll 1
    assert 25 in rand_values         # slice-serial, width 1: 1600/64
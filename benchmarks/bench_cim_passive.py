"""X8 — chosen-input vs known-input attacks, and full-layer theft.

Two extensions of the Section III-C reproduction:

* the paper's attacker manipulates inputs ("selective inclusion or
  exclusion of 4-bit weights ... by providing binary input values as
  masks"); the passive LRA attacker only observes normal traffic.
  Comparing the two quantifies what input control buys.
* scaling from one macro row to a full NN layer (the actual IP-theft
  threat): extract a 8x16 weight matrix and check the stolen model is
  functionally equivalent.
* trace-synthesis throughput: the passive benches are bounded by how
  fast the toggle model can synthesize traces, so the vectorized
  ``query_fresh_many``/``measure_many`` path is parity-checked and
  speedup-gated against the pointwise loop at 10^5 traces.
"""

import time

import numpy as np
import pytest

from repro.cim import (CimLayer, CpaAttack, DigitalCimMacro,
                       LayerExtractionAttack, MaskedCimMacro,
                       PowerModel, WeightExtractionAttack)
from repro.obs.perf import counting
from repro.runtime import available_cpus

from conftest import write_table

_results = {}

#: Vectorized-over-pointwise synthesis floor at 10^5 traces, asserted
#: on CI-class machines (>= ``_GATE_MIN_CPUS`` CPUs).
CIM_SYNTHESIS_SPEEDUP_FLOOR = 10.0
_SYNTHESIS_TRACES = 100_000
_GATE_MIN_CPUS = 4


def _weights(seed=31):
    rng = np.random.default_rng(seed)
    weights = [int(w) for w in rng.integers(0, 16, 16)]
    weights[0], weights[1] = 0, 15
    return weights


def test_chosen_input_attack(benchmark):
    weights = _weights()
    attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                    PowerModel(0.0), repetitions=1)
    result = benchmark.pedantic(lambda: attack.run(), rounds=1,
                                iterations=1)
    _results["chosen"] = ("exact values",
                          result.accuracy(weights),
                          result.queries_used)
    assert result.accuracy(weights) == 1.0


def test_passive_lra_attack(benchmark):
    weights = _weights()
    attack = CpaAttack(DigitalCimMacro(weights), PowerModel(0.0),
                       seed=1)
    result = benchmark.pedantic(lambda: attack.run(traces=4000),
                                rounds=1, iterations=1)
    _results["passive"] = ("HW classes only",
                           result.hw_accuracy(weights),
                           result.traces_used)
    assert 0.6 <= result.hw_accuracy(weights) < 1.0


def test_layer_extraction(benchmark):
    rng = np.random.default_rng(33)
    matrix = [[int(w) for w in rng.integers(0, 16, 16)]
              for _ in range(8)]
    for row in matrix:
        row[0], row[1] = 0, 15
    layer = CimLayer(matrix)
    attack = LayerExtractionAttack(layer, PowerModel(0.0))
    result = benchmark.pedantic(lambda: attack.run(), rounds=1,
                                iterations=1)
    _results["layer"] = ("8x16 weight matrix",
                         result.accuracy(matrix),
                         result.total_queries)
    assert result.accuracy(matrix) == 1.0
    assert result.functionally_equivalent(layer)


def test_vectorized_trace_synthesis(benchmark, report_dir):
    """Vectorized trace synthesis vs the pointwise loop at 10^5 traces:
    bit-identical samples (toggle counts and noise stream), the
    ``cim.traces_vectorized`` counter attributing the lanes, and the
    documented amortized speedup floor on CI-class machines."""
    rng = np.random.default_rng(7)
    length = 16
    weights = [int(w) for w in rng.integers(0, 16, length)]
    masks = rng.integers(0, 2, size=(_SYNTHESIS_TRACES, length))

    def pointwise(make_macro, rows):
        macro = make_macro()
        power = PowerModel(noise_sigma=0.8, seed=3)
        return np.array([power.measure(
            macro.query_fresh([int(b) for b in row])) for row in rows])

    def vectorized(make_macro, rows):
        macro = make_macro()
        power = PowerModel(noise_sigma=0.8, seed=3)
        return power.measure_many(macro.query_fresh_many(rows))

    plain = lambda: DigitalCimMacro(list(weights))
    masked = lambda: MaskedCimMacro(list(weights), seed=5)

    # Pointwise pass doubles as the parity reference; the timed
    # vectorized pass is best-of-3 fresh macros (identical streams).
    start = time.perf_counter()
    scalar_samples = pointwise(plain, masks)
    scalar_time = time.perf_counter() - start
    batch_time = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batch_samples = vectorized(plain, masks)
        batch_time = min(batch_time, time.perf_counter() - start)
    assert np.array_equal(scalar_samples, batch_samples)

    # Masked macro (order-1): same contract on the share-pass path, at
    # a fifth of the traces to bound the pointwise reference cost.
    masked_rows = masks[:_SYNTHESIS_TRACES // 5]
    start = time.perf_counter()
    masked_scalar = pointwise(masked, masked_rows)
    masked_scalar_time = time.perf_counter() - start
    start = time.perf_counter()
    with counting() as window:
        masked_batch = vectorized(masked, masked_rows)
    masked_batch_time = time.perf_counter() - start
    assert np.array_equal(masked_scalar, masked_batch)
    assert window.delta()["cim.traces_vectorized"] == \
        len(masked_rows) - 1

    def row(name, traces, scalar, batch):
        return [name, traces, f"{scalar / traces * 1e6:.2f} us",
                f"{batch / traces * 1e6:.3f} us",
                f"{scalar / batch:.1f}x",
                f">= {CIM_SYNTHESIS_SPEEDUP_FLOOR:.0f}x"]

    rows = [
        row("plain macro", _SYNTHESIS_TRACES, scalar_time, batch_time),
        row("masked macro (order 1)", len(masked_rows),
            masked_scalar_time, masked_batch_time),
    ]
    write_table(report_dir, "cim_trace_synthesis",
                "Vectorized vs pointwise trace synthesis (bit-identical "
                "samples; floor asserted on CI-class machines)",
                ["macro", "traces", "pointwise/trace",
                 "vectorized/trace", "speedup", "floor"], rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if available_cpus() >= _GATE_MIN_CPUS:
        assert scalar_time / batch_time >= \
            CIM_SYNTHESIS_SPEEDUP_FLOOR, rows[0]
        assert masked_scalar_time / masked_batch_time >= \
            CIM_SYNTHESIS_SPEEDUP_FLOOR, rows[1]


def test_report_passive(benchmark, report_dir):
    def build():
        rows = []
        for key, label in (("chosen", "chosen-input (paper's attack)"),
                           ("passive", "known-input LRA (passive)"),
                           ("layer", "full-layer chosen-input")):
            what, accuracy, cost = _results[key]
            rows.append([label, what, f"{accuracy:.0%}", cost])
        write_table(report_dir, "cim_passive",
                    "Attacker capability ablation: what input control "
                    "buys",
                    ["attack", "recovers", "accuracy",
                     "queries/traces"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 3
    # The ablation claim: chosen input strictly dominates passive.
    assert _results["chosen"][1] > _results["passive"][1] or (
        _results["chosen"][1] == 1.0)

"""X8 — chosen-input vs known-input attacks, and full-layer theft.

Two extensions of the Section III-C reproduction:

* the paper's attacker manipulates inputs ("selective inclusion or
  exclusion of 4-bit weights ... by providing binary input values as
  masks"); the passive LRA attacker only observes normal traffic.
  Comparing the two quantifies what input control buys.
* scaling from one macro row to a full NN layer (the actual IP-theft
  threat): extract a 8x16 weight matrix and check the stolen model is
  functionally equivalent.
"""

import numpy as np
import pytest

from repro.cim import (CimLayer, CpaAttack, DigitalCimMacro,
                       LayerExtractionAttack, PowerModel,
                       WeightExtractionAttack)

from conftest import write_table

_results = {}


def _weights(seed=31):
    rng = np.random.default_rng(seed)
    weights = [int(w) for w in rng.integers(0, 16, 16)]
    weights[0], weights[1] = 0, 15
    return weights


def test_chosen_input_attack(benchmark):
    weights = _weights()
    attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                    PowerModel(0.0), repetitions=1)
    result = benchmark.pedantic(lambda: attack.run(), rounds=1,
                                iterations=1)
    _results["chosen"] = ("exact values",
                          result.accuracy(weights),
                          result.queries_used)
    assert result.accuracy(weights) == 1.0


def test_passive_lra_attack(benchmark):
    weights = _weights()
    attack = CpaAttack(DigitalCimMacro(weights), PowerModel(0.0),
                       seed=1)
    result = benchmark.pedantic(lambda: attack.run(traces=4000),
                                rounds=1, iterations=1)
    _results["passive"] = ("HW classes only",
                           result.hw_accuracy(weights),
                           result.traces_used)
    assert 0.6 <= result.hw_accuracy(weights) < 1.0


def test_layer_extraction(benchmark):
    rng = np.random.default_rng(33)
    matrix = [[int(w) for w in rng.integers(0, 16, 16)]
              for _ in range(8)]
    for row in matrix:
        row[0], row[1] = 0, 15
    layer = CimLayer(matrix)
    attack = LayerExtractionAttack(layer, PowerModel(0.0))
    result = benchmark.pedantic(lambda: attack.run(), rounds=1,
                                iterations=1)
    _results["layer"] = ("8x16 weight matrix",
                         result.accuracy(matrix),
                         result.total_queries)
    assert result.accuracy(matrix) == 1.0
    assert result.functionally_equivalent(layer)


def test_report_passive(benchmark, report_dir):
    def build():
        rows = []
        for key, label in (("chosen", "chosen-input (paper's attack)"),
                           ("passive", "known-input LRA (passive)"),
                           ("layer", "full-layer chosen-input")):
            what, accuracy, cost = _results[key]
            rows.append([label, what, f"{accuracy:.0%}", cost])
        write_table(report_dir, "cim_passive",
                    "Attacker capability ablation: what input control "
                    "buys",
                    ["attack", "recovers", "accuracy",
                     "queries/traces"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 3
    # The ablation claim: chosen input strictly dominates passive.
    assert _results["chosen"][1] > _results["passive"][1] or (
        _results["chosen"][1] == 1.0)

"""Fig. 1 — phase 1 of the CIM attack: k-means clustering of per-weight
power traces into Hamming-weight classes.

The paper's figure shows "a clear correlation between the HW of a
weight and its power consumption pattern during adder tree operations"
with the k-means algorithm grouping the traces into distinct clusters.
The bench regenerates that data: per-weight mean power, cluster
assignment, and clustering accuracy (noise-free and noisy).
"""

import numpy as np
import pytest

from repro.cim import (DigitalCimMacro, PowerModel,
                       WeightExtractionAttack, hamming_weight)

from conftest import write_table

_results = {}


def _weights(seed=11, count=16):
    rng = np.random.default_rng(seed)
    weights = [int(w) for w in rng.integers(0, 16, count)]
    weights[0], weights[1] = 0, 15
    return weights


def test_phase1_noise_free(benchmark):
    weights = _weights()
    attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                    PowerModel(0.0), repetitions=1)
    result = benchmark.pedantic(lambda: attack.phase1_cluster(),
                                rounds=1, iterations=1)
    assert result.accuracy(weights) == 1.0
    _results["noise_free"] = (weights, result)


@pytest.mark.parametrize("sigma", [0.25, 0.5, 1.0])
def test_phase1_noise_sweep(benchmark, sigma):
    weights = _weights()
    attack = WeightExtractionAttack(
        DigitalCimMacro(weights), PowerModel(sigma, seed=3),
        repetitions=50)
    result = benchmark.pedantic(lambda: attack.phase1_cluster(),
                                rounds=1, iterations=1)
    _results[f"sigma_{sigma}"] = result.accuracy(weights)
    assert result.accuracy(weights) >= 0.8


def test_report_fig1(benchmark, report_dir):
    def build():
        weights, result = _results["noise_free"]
        rows = []
        for index, weight in enumerate(weights):
            rows.append([index, weight, hamming_weight(weight),
                         f"{result.mean_powers[index]:.1f}",
                         result.cluster_labels[index],
                         result.hw_estimates[index]])
        write_table(report_dir, "fig1",
                    "Fig. 1: phase-1 clustering (per-weight power -> "
                    "HW cluster)",
                    ["idx", "weight", "true HW", "mean power",
                     "cluster", "estimated HW"], rows)
        noise_rows = [[key, f"{value:.2f}"]
                      for key, value in sorted(_results.items())
                      if key.startswith("sigma_")]
        write_table(report_dir, "fig1_noise",
                    "Fig. 1 extension: clustering accuracy vs noise",
                    ["noise sigma", "accuracy"], noise_rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    # The figure's claim: clusters == HW classes, power strictly
    # ordered by HW.
    weights, result = _results["noise_free"]
    by_hw = {}
    for index, weight in enumerate(weights):
        by_hw.setdefault(hamming_weight(weight), set()).add(
            result.cluster_labels[index])
    for hw, clusters in by_hw.items():
        assert len(clusters) == 1, "one cluster per HW class"
    mean_by_hw = sorted(
        (hw, np.mean([result.mean_powers[i]
                      for i, w in enumerate(weights)
                      if hamming_weight(w) == hw]))
        for hw in by_hw)
    powers = [p for _, p in mean_by_hw]
    assert powers == sorted(powers)

"""X10 — batch-throughput crypto kernels (serving-scale amortization).

Attestation verifiers and campaign oracles process signatures in
batches, so the per-operation cost that matters at scale is the
*amortized* one: ML-DSA ``sign_many``/``verify_many`` stack message
lanes through the int64 NTT kernels, Ed25519 batch verification folds
the whole batch into one random-linear-combination equation, and the
multi-input Keccak sponge absorbs a ragged batch in lockstep buckets
keyed by padded block count.

Every benchmarked batch call is parity-checked against the per-call
scalar loop in the same test (byte- or boolean-identical), the batch
PERF counters must attribute the lanes, and the amortized speedup
floors from the design docs are asserted on CI-class machines
(>= ``_GATE_MIN_CPUS`` CPUs).  Timings are fixed-rounds so the
bench-history counter gate stays deterministic.
"""

import time

import pytest

from repro.crypto import MLDSA, ML_DSA_44
from repro.crypto import ed25519 as ed
from repro.crypto import keccak as kc
from repro.obs.perf import counting
from repro.runtime import available_cpus

from conftest import write_table

#: Batch size for all amortization measurements (the attestation
#: verifier's working set in the campaign benches).
BATCH = 64

#: Amortized batch-over-scalar floors asserted on CI-class machines.
MLDSA_SIGN_BATCH_FLOOR = 1.8
MLDSA_VERIFY_BATCH_FLOOR = 2.0
ED25519_BATCH_FLOOR = 2.0
KECCAK_BATCH_FLOOR = 2.0
_GATE_MIN_CPUS = 4


def _timed(benchmark, fn, rounds, iterations=1):
    """Fixed-round timing (see bench_crypto_primitives: the
    bench-history gate compares PERF counter totals strictly)."""
    return benchmark.pedantic(fn, rounds=rounds, iterations=iterations,
                              warmup_rounds=1)


@pytest.fixture(scope="session")
def batch_messages():
    return [b"attestation-%04d" % i for i in range(BATCH)]


@pytest.fixture(scope="session")
def mldsa44():
    scheme = MLDSA(ML_DSA_44)
    public, secret = scheme.key_gen(bytes(32))
    return scheme, public, secret


@pytest.fixture(scope="session")
def mldsa44_sigs(mldsa44, batch_messages):
    scheme, _, secret = mldsa44
    return scheme.signer(secret).sign_many(batch_messages)


@pytest.fixture(scope="session")
def ed_batch_items(batch_messages):
    items = []
    for i, message in enumerate(batch_messages):
        seed = bytes([i]) * 32
        items.append((ed.public_key(seed), message,
                      ed.sign(seed, message)))
    return items


def test_mldsa_sign_many_batch64(benchmark, mldsa44, batch_messages):
    scheme, _, secret = mldsa44
    signer = scheme.signer(secret)
    signatures = _timed(benchmark,
                        lambda: signer.sign_many(batch_messages),
                        rounds=3)
    assert signatures[0] == signer.sign(batch_messages[0])


def test_mldsa_verify_many_batch64(benchmark, mldsa44, batch_messages,
                                   mldsa44_sigs):
    scheme, public, _ = mldsa44
    verifier = scheme.verifier(public)
    assert _timed(
        benchmark,
        lambda: verifier.verify_many(batch_messages, mldsa44_sigs),
        rounds=5) == [True] * BATCH


def test_ed25519_verify_batch64(benchmark, ed_batch_items):
    assert _timed(benchmark,
                  lambda: ed.verify_batch(ed_batch_items),
                  rounds=5) == [True] * BATCH


def test_keccak_multi_input_batch64(benchmark, batch_messages):
    digests = _timed(benchmark,
                     lambda: kc.pure_sha3_256_many(batch_messages),
                     rounds=5)
    assert digests == [kc.pure_sha3_256(m) for m in batch_messages]


def test_batch_counters_move(benchmark, mldsa44, batch_messages,
                             mldsa44_sigs, ed_batch_items):
    """The batch-lane counters must attribute exactly one batch pass —
    they are what lets the bench history tell batch from scalar work."""
    scheme, public, secret = mldsa44
    signer = scheme.signer(secret)
    verifier = scheme.verifier(public)

    def one_pass():
        signer.sign_many(batch_messages[:4])
        assert verifier.verify_many(batch_messages, mldsa44_sigs) == \
            [True] * BATCH
        assert ed.verify_batch(ed_batch_items) == [True] * BATCH

    with counting() as window:
        benchmark.pedantic(one_pass, rounds=1, iterations=1)
    delta = window.delta()
    assert delta["crypto.mldsa.batch_sign_lanes"] == 4
    assert delta["crypto.mldsa.batch_verify_lanes"] == BATCH
    assert delta["crypto.ed25519.batch_verifies"] == BATCH


def test_batch_amortization_floors(benchmark, mldsa44, batch_messages,
                                   mldsa44_sigs, ed_batch_items,
                                   report_dir):
    """Amortized per-op batch cost vs the *cached-context* scalar loop
    on identical inputs (same keys, same rejection schedules), with the
    documented floors asserted on CI-class machines."""
    scheme, public, secret = mldsa44
    signer = scheme.signer(secret)
    verifier = scheme.verifier(public)

    def clock(fn, rounds):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    # Parity first: the timed batch calls must be byte/boolean-identical
    # to the scalar loops they amortize.
    assert signer.sign_many(batch_messages) == mldsa44_sigs
    assert mldsa44_sigs == [signer.sign(m) for m in batch_messages]
    assert verifier.verify_many(batch_messages, mldsa44_sigs) == \
        [verifier.verify(m, s)
         for m, s in zip(batch_messages, mldsa44_sigs)]
    assert ed.verify_batch(ed_batch_items) == \
        [ed.verify(*item) for item in ed_batch_items]

    batch_sign = clock(lambda: signer.sign_many(batch_messages), 3)
    scalar_sign = clock(
        lambda: [signer.sign(m) for m in batch_messages], 2)
    batch_verify = clock(
        lambda: verifier.verify_many(batch_messages, mldsa44_sigs), 5)
    scalar_verify = clock(
        lambda: [verifier.verify(m, s)
                 for m, s in zip(batch_messages, mldsa44_sigs)], 3)
    batch_ed = clock(lambda: ed.verify_batch(ed_batch_items), 5)
    scalar_ed = clock(
        lambda: [ed.verify(*item) for item in ed_batch_items], 3)
    batch_keccak = clock(
        lambda: kc.pure_sha3_256_many(batch_messages), 5)
    scalar_keccak = clock(
        lambda: [kc.pure_sha3_256(m) for m in batch_messages], 3)

    def row(name, scalar, batch, floor):
        return [name, f"{scalar / BATCH * 1e6:.1f} us",
                f"{batch / BATCH * 1e6:.1f} us",
                f"{scalar / batch:.2f}x", f">= {floor:.1f}x"]

    rows = [
        row("ML-DSA-44 sign_many", scalar_sign, batch_sign,
            MLDSA_SIGN_BATCH_FLOOR),
        row("ML-DSA-44 verify_many", scalar_verify, batch_verify,
            MLDSA_VERIFY_BATCH_FLOOR),
        row("Ed25519 RLC verify_batch", scalar_ed, batch_ed,
            ED25519_BATCH_FLOOR),
        row("SHA3-256 multi-input", scalar_keccak, batch_keccak,
            KECCAK_BATCH_FLOOR),
    ]
    write_table(report_dir, "crypto_batch_amortization",
                f"Batch-{BATCH} amortized per-op cost vs cached-context "
                "scalar loop (best of N; floors asserted on CI-class "
                "machines)",
                ["operation", "scalar per-op", "batch per-op",
                 "speedup", "floor"], rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if available_cpus() >= _GATE_MIN_CPUS:
        assert scalar_sign / batch_sign >= MLDSA_SIGN_BATCH_FLOOR, \
            rows[0]
        assert scalar_verify / batch_verify >= \
            MLDSA_VERIFY_BATCH_FLOOR, rows[1]
        assert scalar_ed / batch_ed >= ED25519_BATCH_FLOOR, rows[2]
        assert scalar_keccak / batch_keccak >= KECCAK_BATCH_FLOOR, \
            rows[3]

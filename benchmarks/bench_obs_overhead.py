"""Telemetry overhead self-measurement and budget gate (ISSUE 6).

The observability layer's founding promise (ISSUE 1) is *disabled
instrumentation costs one attribute check*; the streaming layer adds a
second promise: with the tracer, perf counters and a bounded-memory
span sink all running, a crypto hot loop slows down by less than the
10 % budget the paper's lightweight-monitoring claims assume.  This
bench measures both promises instead of trusting them: it times the
same Keccak-f[1600] hot loop three ways —

* ``pristine``  — the bare workload, no instrumentation in the loop,
* ``off``       — fully instrumented loop (span + counter + perf
  events per iteration) against *disabled* facades,
* ``on``        — the same instrumented loop with telemetry and perf
  enabled and a :class:`~repro.obs.stream.SpanStream` draining spans
  into a rotating JSONL sink,

and gates the relative overheads (< {OFF}% off, < {ON}% on).  The
variants run against private ``Telemetry``/``PerfCounters`` instances,
never the global facades, so the bench cannot perturb the session
trace that ``scripts/check.sh`` exports — while exercising byte-for-
byte the same code paths the globals run.

Results land in ``results/obs_overhead.txt``/``.json`` and, through
the session summary, in ``bench_history.jsonl`` where the run-over-run
regression gate watches the recorded wall time.
"""

import time

import pytest

from conftest import write_table
from repro.crypto.keccak import keccak_f1600
from repro.obs import PerfCounters, Telemetry
from repro.obs.stream import SpanStream

#: Keccak-f[1600] permutations folded into one instrumented iteration.
#: Each permutation is a few hundred microseconds of pure-Python work,
#: so a ~5 us span costs ~1 % — real headroom under the 10 % gate
#: rather than a tautology, and enough work per timed run (~35 ms)
#: that scheduler noise stays small relative to the budgets.
PERMS_PER_ITER = 4
ITERS = 40
REPEATS = 7

#: Relative-overhead budgets, percent.  The "off" budget is the
#: one-attribute-check promise (measured ~0 %, gated loosely enough to
#: absorb timer noise on loaded CI); the "on" budget is the paper-level
#: lightweight-monitoring bar.
OVERHEAD_BUDGET_OFF_PCT = 5.0
OVERHEAD_BUDGET_ON_PCT = 10.0


def _pristine_loop() -> list:
    """The bare workload: no instrumentation in the loop body."""
    state = list(range(25))
    for _ in range(ITERS):
        for _ in range(PERMS_PER_ITER):
            state = keccak_f1600(state)
    return state


def _instrumented_loop(tel: Telemetry, perf: PerfCounters) -> list:
    """The same workload wrapped the way hot subsystems instrument
    themselves: one span, one metric counter and one perf event per
    iteration."""
    state = list(range(25))
    counter = tel.counter("obs_overhead.iters")
    for index in range(ITERS):
        with tel.span("obs_overhead.iter", index=index):
            for _ in range(PERMS_PER_ITER):
                state = keccak_f1600(state)
            counter.inc()
            if perf.enabled:
                perf.inc("obs_overhead.permutations", PERMS_PER_ITER)
    return state


def _best_of_interleaved(variants: dict) -> dict:
    """Minimum wall time per variant across interleaved repeats.

    Each repeat times every variant back to back, so machine-load or
    frequency drift during the bench degrades all variants together
    instead of biasing whichever one ran during the slow window — the
    relative overheads stay honest even on loaded CI.
    """
    for fn in variants.values():             # warm caches, JIT-free
        fn()
    best = {}
    for _ in range(REPEATS):
        for key, fn in variants.items():
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            best[key] = min(best.get(key, elapsed), elapsed)
    return best


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    stream_dir = tmp_path_factory.mktemp("obs_overhead_stream")

    tel_off = Telemetry(enabled=False)
    perf_off = PerfCounters(enabled=False)

    tel_on = Telemetry(enabled=True)
    perf_on = PerfCounters(enabled=True)
    stream = SpanStream(stream_dir, telemetry=tel_on)
    stream.install()
    try:
        best = _best_of_interleaved({
            "pristine_s": _pristine_loop,
            "off_s": lambda: _instrumented_loop(tel_off, perf_off),
            "on_s": lambda: _instrumented_loop(tel_on, perf_on),
        })
    finally:
        stream.close()
    pristine_s = best["pristine_s"]
    off_s = best["off_s"]
    on_s = best["on_s"]
    return {
        "pristine_s": pristine_s,
        "off_s": off_s,
        "on_s": on_s,
        "off_pct": (off_s - pristine_s) / pristine_s * 100.0,
        "on_pct": (on_s - pristine_s) / pristine_s * 100.0,
        "stream": stream,
        "telemetry_on": tel_on,
        "perf_on": perf_on,
    }


def test_disabled_overhead_within_budget(measurements):
    """Disabled facades must be indistinguishable from pristine code —
    the one-attribute-check contract, now measured."""
    assert measurements["off_pct"] < OVERHEAD_BUDGET_OFF_PCT, (
        f"instrumented loop against disabled facades is "
        f"{measurements['off_pct']:.2f}% slower than pristine "
        f"(budget {OVERHEAD_BUDGET_OFF_PCT}%)")


def test_enabled_overhead_within_budget(measurements):
    """Full telemetry + perf + streaming sink must stay under the
    10 % lightweight-monitoring budget."""
    assert measurements["on_pct"] < OVERHEAD_BUDGET_ON_PCT, (
        f"fully-enabled telemetry costs {measurements['on_pct']:.2f}% "
        f"over pristine (budget {OVERHEAD_BUDGET_ON_PCT}%)")


def test_enabled_run_actually_observed(measurements):
    """Guard against a vacuous gate: the enabled variant must have
    produced spans, streamed them, and counted events."""
    stream = measurements["stream"]
    # warmup + REPEATS timed runs, one span per iteration each
    assert stream.spans_seen == (REPEATS + 1) * ITERS
    assert stream.spans_sampled > 0
    assert (stream.directory / "spans.jsonl").exists()
    tel = measurements["telemetry_on"]
    assert tel.metrics.counter("obs_overhead.iters").value == \
        (REPEATS + 1) * ITERS
    perf = measurements["perf_on"]
    assert perf.snapshot()["obs_overhead.permutations"] == \
        (REPEATS + 1) * ITERS * PERMS_PER_ITER
    # the drained tracer is the bounded-memory promise
    assert tel.tracer.finished_count() == 0


def test_write_artifacts(measurements, report_dir):
    perms = ITERS * PERMS_PER_ITER
    rows = []
    for mode, key, pct in (
            ("pristine", "pristine_s", None),
            ("instrumented, facades off", "off_s", "off_pct"),
            ("instrumented, telemetry+perf+stream on", "on_s",
             "on_pct")):
        wall = measurements[key]
        rows.append([
            mode,
            f"{wall * 1e3:.2f} ms",
            f"{perms / wall:,.0f}",
            f"{measurements[pct]:+.2f}%" if pct else "-",
            (f"< {OVERHEAD_BUDGET_OFF_PCT:.0f}%" if pct == "off_pct"
             else f"< {OVERHEAD_BUDGET_ON_PCT:.0f}%" if pct == "on_pct"
             else "-"),
        ])
    write_table(
        report_dir, "obs_overhead",
        f"Telemetry overhead budget: Keccak-f[1600] hot loop "
        f"({ITERS} iters x {PERMS_PER_ITER} permutations, best of "
        f"{REPEATS}), instrumented vs pristine",
        ["variant", "wall", "perms/s", "overhead", "budget"], rows)

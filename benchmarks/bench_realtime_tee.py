"""X11 — the real-time + TEE integration matrix (Section II-C).

The paper's argument for a customized solution, as a measured table:
each nesting strategy is executed and scored on both properties.
"""

import pytest

from repro.tee import evaluate_realtime_tee

from conftest import write_table

_outcomes = []


def test_integration_matrix(benchmark):
    outcomes = benchmark.pedantic(evaluate_realtime_tee, rounds=1,
                                  iterations=1)
    _outcomes.extend(outcomes)
    viable = [o for o in outcomes if o.viable]
    assert len(viable) == 1
    assert viable[0].name == "CONVOLVE integration"


def test_report_realtime_tee(benchmark, report_dir):
    def build():
        rows = []
        for outcome in _outcomes:
            rows.append([
                outcome.name,
                "kept" if outcome.security_preserved else "BROKEN",
                "met" if outcome.deadlines_met else "MISSED",
                "yes" if outcome.viable else "no"])
        write_table(report_dir, "realtime_tee",
                    "Real-time + TEE: naive nestings vs the customized "
                    "integration",
                    ["configuration", "security", "deadlines",
                     "viable"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 3

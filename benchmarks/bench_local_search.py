"""X1 — the local-search heuristic claims (Section III-A).

Paper: "For a Chosen Ciphertext Attack (CCA)-secure implementation of
Kyber more than 1.1 million designs can be explored exhaustively in
36 h.  The heuristic strategy finds an optimized Kyber in less than
200 s. ... we obtain perfect results for Kyber-CCA for as few as 50
random performance base-lines."

Both claims are reproduced against our explorer: 50-start local search
matches the exhaustive optimum while evaluating a tiny fraction of the
space, and the 1- and 10-start variants show the accuracy/effort
trade-off.
"""

import pytest

from repro.hades import (DesignContext, ExhaustiveExplorer,
                         LocalSearchExplorer, OptimizationGoal)
from repro.hades.library import kyber_cca

from conftest import write_table

GOAL = OptimizationGoal.AREA
CONTEXT = DesignContext(masking_order=1)

_results = {}


def test_exhaustive_reference(benchmark):
    result = benchmark.pedantic(
        lambda: ExhaustiveExplorer(kyber_cca(), CONTEXT).run(GOAL),
        rounds=1, iterations=1)
    _results["exhaustive"] = result


@pytest.mark.parametrize("starts", [1, 10, 50])
def test_local_search_starts(benchmark, starts):
    explorer = LocalSearchExplorer(kyber_cca(), CONTEXT, seed=42)
    result = benchmark.pedantic(lambda: explorer.run(GOAL, starts=starts),
                                rounds=1, iterations=1)
    _results[f"local_{starts}"] = result


def test_report_local_search(benchmark, report_dir):
    def build():
        exhaustive = _results["exhaustive"]
        rows = [["exhaustive", exhaustive.explored,
                 f"{exhaustive.best_score:.3f}",
                 f"{exhaustive.elapsed_seconds:.2f} s", "optimal"]]
        for starts in (1, 10, 50):
            local = _results[f"local_{starts}"]
            gap = (local.best_score - exhaustive.best_score) \
                / exhaustive.best_score
            rows.append([f"local search ({starts} starts)",
                         local.evaluations,
                         f"{local.best_score:.3f}",
                         f"{local.elapsed_seconds:.2f} s",
                         f"gap {gap:.1%}"])
        write_table(report_dir, "local_search",
                    "Kyber-CCA: exhaustive vs local-search DSE "
                    "(area goal, d=1)",
                    ["strategy", "evaluations", "best area kGE",
                     "time", "quality"], rows)
        return rows

    benchmark.pedantic(build, rounds=1, iterations=1)
    exhaustive = _results["exhaustive"]
    fifty = _results["local_50"]
    # Paper claims: perfect result from 50 starts, far cheaper than
    # exhaustive.
    assert fifty.best_score == pytest.approx(exhaustive.best_score)
    assert fifty.evaluations < exhaustive.explored / 10
    assert fifty.elapsed_seconds < exhaustive.elapsed_seconds

"""Fig. 2 — phase 2 of the CIM attack: distinguishing the HW=3 weights.

The paper's figure: "the power consumption of the adder tree for
unknown weights with HW 3 (values 7, 11, 13, and 14) is distinct when
activated with and without a known weight of value 1.  This clearly
demonstrates the vulnerability of these power patterns to attacks,
even in noise-free environments."
"""

import pytest

from repro.cim import (hamming_weight, phase2_power_patterns,
                       values_with_hamming_weight)

from conftest import write_table

HW3_VALUES = (7, 11, 13, 14)

_patterns = {}


def test_hw3_with_known_weight_one(benchmark):
    patterns = benchmark(lambda: phase2_power_patterns(
        list(HW3_VALUES), companion_value=1))
    _patterns["hw3"] = patterns
    alone = [p[0] for p in patterns.values()]
    combined = [p[1] for p in patterns.values()]
    assert len(set(alone)) == 1          # identical alone
    assert len(set(combined)) == 4       # distinct with the companion


@pytest.mark.parametrize("hw,companion", [(1, 15), (2, 15), (3, 1)])
def test_other_classes(benchmark, hw, companion):
    values = values_with_hamming_weight(hw)
    patterns = benchmark(lambda: phase2_power_patterns(
        values, companion_value=companion))
    _patterns[f"hw{hw}_c{companion}"] = patterns
    combined = [p[1] for p in patterns.values()]
    # A single companion fully separates HW1 and HW3; HW2 needs
    # several queries (which the full attack performs) — here at least
    # a partial split must exist.
    if hw in (1, 3):
        assert len(set(combined)) == len(values)
    else:
        assert len(set(combined)) >= 3


def test_report_fig2(benchmark, report_dir):
    def build():
        patterns = _patterns["hw3"]
        rows = []
        for value in HW3_VALUES:
            alone, combined = patterns[value]
            rows.append([value, bin(value)[2:].zfill(4),
                         hamming_weight(value + 1),
                         f"{alone:.1f}", f"{combined:.1f}"])
        write_table(report_dir, "fig2",
                    "Fig. 2: phase-2 power patterns for HW=3 weights "
                    "(alone vs with known weight 1)",
                    ["value", "bits", "HW(v+1)", "power alone",
                     "power with companion"], rows)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(rows) == 4

"""Tests for key derivation and hybrid Ed25519+ML-DSA signatures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ed25519, hybrid, kdf
from repro.crypto.mldsa import ML_DSA_44


class TestKdf:
    def test_deterministic(self):
        assert kdf.derive_key(b"s", "label") == kdf.derive_key(b"s", "label")

    def test_label_separation(self):
        assert kdf.derive_key(b"s", "a") != kdf.derive_key(b"s", "b")

    def test_context_separation(self):
        assert kdf.derive_key(b"s", "a", b"x") != \
            kdf.derive_key(b"s", "a", b"y")

    def test_secret_separation(self):
        assert kdf.derive_key(b"s1", "a") != kdf.derive_key(b"s2", "a")

    def test_length(self):
        assert len(kdf.derive_key(b"s", "a", length=48)) == 48

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            kdf.derive_key(b"s", "")

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=40), st.binary(max_size=40))
    def test_no_boundary_confusion(self, a, b):
        """Length-prefixing: moving bytes between fields changes output."""
        if a + b == b"" or not a:
            return
        moved = kdf.derive_key(a[:-1], "l", a[-1:] + b)
        original = kdf.derive_key(a, "l", b)
        assert moved != original

    def test_seed_pair_independent(self):
        classical, post_quantum = kdf.derive_seed_pair(b"root", "device")
        assert len(classical) == 32
        assert len(post_quantum) == 32
        assert classical != post_quantum


class TestHybrid:
    @pytest.fixture(scope="class")
    def pair(self):
        return hybrid.HybridKeyPair(bytes(32), bytes(range(32)))

    def test_sign_verify(self, pair):
        sig = pair.sign(b"report")
        assert len(sig) == pair.signature_length()
        assert hybrid.verify(pair.public, b"report", sig)

    def test_signature_length(self, pair):
        assert pair.signature_length() == 64 + ML_DSA_44.signature_bytes

    def test_wrong_message_rejected(self, pair):
        sig = pair.sign(b"report")
        assert not hybrid.verify(pair.public, b"tampered", sig)

    def test_classical_half_tamper_rejected(self, pair):
        sig = bytearray(pair.sign(b"report"))
        sig[0] ^= 1
        assert not hybrid.verify(pair.public, b"report", bytes(sig))

    def test_pq_half_tamper_rejected(self, pair):
        sig = bytearray(pair.sign(b"report"))
        sig[70] ^= 1
        assert not hybrid.verify(pair.public, b"report", bytes(sig))

    def test_wrong_length_rejected(self, pair):
        assert not hybrid.verify(pair.public, b"report", bytes(10))

    def test_both_schemes_must_pass(self, pair):
        """A valid Ed25519 half glued to a zeroed PQ half must fail."""
        sig = pair.sign(b"m")
        frankensig = sig[:64] + bytes(ML_DSA_44.signature_bytes)
        assert not hybrid.verify(pair.public, b"m", frankensig)

    def test_public_key_encoding_roundtrip(self, pair):
        encoded = pair.public.encode()
        decoded = hybrid.HybridPublicKey.decode(encoded)
        assert decoded == pair.public
        assert len(encoded) == 32 + ML_DSA_44.public_key_bytes

    def test_public_key_decode_length_check(self):
        with pytest.raises(ValueError):
            hybrid.HybridPublicKey.decode(bytes(10))

    def test_deterministic_in_seeds(self):
        a = hybrid.HybridKeyPair(bytes(32), bytes(32))
        b = hybrid.HybridKeyPair(bytes(32), bytes(32))
        assert a.public == b.public

    def test_ed25519_component_is_standard(self, pair):
        """The classical half must verify as a plain Ed25519 signature."""
        sig = pair.sign(b"m")
        assert ed25519.verify(pair.public.ed25519, b"m", sig[:64])

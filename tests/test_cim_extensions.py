"""Tests for the CIM extensions: known-input LRA and full-layer
extraction."""

import numpy as np
import pytest

from repro.cim import (CimLayer, CpaAttack, DigitalCimMacro,
                       LayerExtractionAttack, MaskedCimMacro,
                       PowerModel, hamming_weight)


def _weights(count, seed, anchors=True):
    rng = np.random.default_rng(seed)
    weights = [int(w) for w in rng.integers(0, 16, count)]
    if anchors:
        weights[0], weights[1] = 0, 15
    return weights


class TestCpa:
    def test_passive_hw_recovery(self):
        weights = _weights(16, seed=5, anchors=False)
        attack = CpaAttack(DigitalCimMacro(weights), PowerModel(0.0),
                           seed=1)
        result = attack.run(traces=2000)
        assert result.hw_accuracy(weights) >= 0.75

    def test_profiled_levels_monotone(self):
        weights = _weights(16, seed=5, anchors=False)
        attack = CpaAttack(DigitalCimMacro(weights), PowerModel(0.0),
                           seed=1)
        result = attack.run(traces=800)
        levels = [result.class_levels[hw] for hw in sorted(
            result.class_levels)]
        assert levels == sorted(levels)
        assert len(levels) == 5

    def test_weaker_than_chosen_input(self):
        """The quantitative point: passive LRA < chosen-input attack."""
        from repro.cim import WeightExtractionAttack
        weights = _weights(16, seed=9)
        chosen = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        chosen_result = chosen.run()
        passive = CpaAttack(DigitalCimMacro(weights), PowerModel(0.0),
                            seed=2)
        passive_result = passive.run(traces=2000)
        assert chosen_result.phase1.accuracy(weights) == 1.0
        assert passive_result.hw_accuracy(weights) <= 1.0
        # Passive yields only HW classes, never exact values.
        assert chosen_result.accuracy(weights) == 1.0

    def test_masking_defeats_passive_attack_too(self):
        weights = _weights(16, seed=11, anchors=False)
        attack = CpaAttack(MaskedCimMacro(weights, seed=1),
                           PowerModel(0.0), seed=3)
        result = attack.run(traces=1500)
        # 5 classes -> chance is ~the largest class prior; anything
        # close to chance means the HW signal is gone.
        assert result.hw_accuracy(weights) < 0.55

    def test_noise_tolerance(self):
        weights = _weights(16, seed=13, anchors=False)
        attack = CpaAttack(DigitalCimMacro(weights),
                           PowerModel(1.0, seed=4), seed=5)
        result = attack.run(traces=4000)
        assert result.hw_accuracy(weights) >= 0.6


class TestCimLayer:
    def test_shape_and_inference(self):
        layer = CimLayer([[1, 2], [3, 4], [5, 6]])
        assert layer.shape == (3, 2)
        assert layer.infer([1, 1]) == [3, 7, 11]
        assert layer.infer([1, 0]) == [1, 3, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            CimLayer([])
        with pytest.raises(ValueError):
            CimLayer([[1, 2], [3]])
        with pytest.raises(ValueError):
            CimLayer([[16]])


class TestLayerExtraction:
    @pytest.fixture(scope="class")
    def matrix(self):
        rng = np.random.default_rng(17)
        matrix = [[int(w) for w in rng.integers(0, 16, 16)]
                  for _ in range(4)]
        for row in matrix:
            row[0], row[1] = 0, 15
        return matrix

    def test_full_matrix_recovery(self, matrix):
        layer = CimLayer(matrix)
        attack = LayerExtractionAttack(layer, PowerModel(0.0))
        result = attack.run()
        assert result.accuracy(matrix) == 1.0
        assert result.unresolved_rows == []

    def test_functional_equivalence(self, matrix):
        layer = CimLayer(matrix)
        result = LayerExtractionAttack(layer, PowerModel(0.0)).run()
        assert result.functionally_equivalent(layer)

    def test_query_accounting(self, matrix):
        layer = CimLayer(matrix)
        result = LayerExtractionAttack(layer, PowerModel(0.0)).run()
        assert len(result.per_row_queries) == 4
        assert result.total_queries == sum(result.per_row_queries)
        # Roughly linear in matrix size.
        assert result.total_queries < 4 * 16 * 6

    def test_unresolved_rows_reported(self):
        # A row with no anchor weights cannot be fully resolved.
        matrix = [[1, 2, 6, 9, 11, 13, 3, 5] * 2,
                  [0, 15] + [7] * 14]
        layer = CimLayer(matrix)
        result = LayerExtractionAttack(layer, PowerModel(0.0)).run()
        assert 0 in result.unresolved_rows
        assert 1 not in result.unresolved_rows
        assert not result.functionally_equivalent(layer)

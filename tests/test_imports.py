"""Smoke tests: every ``repro.*`` (sub)module imports cleanly and the
package-level docstring examples actually run (ISSUE 1 satellite)."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_module_names():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        names.append(info.name)
    return sorted(names)


ALL_MODULES = _all_module_names()
TOP_PACKAGES = sorted({name.split(".")[1] for name in ALL_MODULES
                       if name.count(".") >= 1})


def test_every_expected_subpackage_present():
    assert TOP_PACKAGES == ["cim", "compsoc", "core", "crypto",
                            "faults", "hades", "obs", "rtos",
                            "runtime", "soc", "tee"]


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_imports(name):
    importlib.import_module(name)


def test_hades_quick_use_doctest():
    """The quick-use example in ``repro.hades`` must stay runnable."""
    module = importlib.import_module("repro.hades")
    results = doctest.testmod(module, verbose=False)
    assert results.attempted >= 5
    assert results.failed == 0


def test_obs_quick_use_doctest_style():
    """Run the README-style obs example end to end."""
    from repro.obs import Telemetry

    telemetry = Telemetry(enabled=True)
    with telemetry.span("my.phase", size=42):
        telemetry.counter("my.items").inc()
    (record,) = telemetry.tracer.snapshot()
    assert record["name"] == "my.phase"
    assert telemetry.metrics_snapshot()["my.items"]["value"] == 1

"""Campaign planning, classification and deterministic export.

ISSUE 2 satellites: same seed -> byte-identical canonical JSON, the
hardened scenarios admit no silent corruption, and the flat RTOS
baseline demonstrates exactly the silent-corruption class the PMP port
removes.
"""

import json

import pytest

from repro.faults import FAULTS, FaultSpec, Outcome
from repro.faults.campaign import (CampaignResult, FaultPoint,
                                   RunRecord, Scenario, classify,
                                   plan_injections, run_campaign,
                                   standard_campaign)
from repro.faults.models import BIT_FLIP
from repro.faults.scenarios import (BootAttestScenario,
                                    RtosScenario,
                                    SocFabricScenario,
                                    standard_scenarios)

SEED = 99
SMALL = 30


@pytest.fixture(autouse=True)
def _disarmed():
    FAULTS.disarm()
    yield
    FAULTS.disarm()


class TestClassify:
    GOLDEN = {"status": "ok", "digest": "aa"}
    EVENT = ("fired",)

    def test_crash_wins(self):
        outcome, reason, _ = classify(self.GOLDEN, {}, (),
                                      crash=KeyError("x"))
        assert outcome is Outcome.CRASH
        assert reason == "KeyError"

    def test_detected(self):
        outcome, reason, _ = classify(
            self.GOLDEN, {"status": "detected", "reason": "ecc"},
            self.EVENT)
        assert outcome is Outcome.DETECTED
        assert reason == "ecc"

    def test_masked_fired(self):
        outcome, reason, _ = classify(
            self.GOLDEN, {"status": "ok", "digest": "aa"}, self.EVENT)
        assert outcome is Outcome.MASKED
        assert reason == ""

    def test_masked_not_triggered(self):
        outcome, reason, _ = classify(
            self.GOLDEN, {"status": "ok", "digest": "aa"}, ())
        assert outcome is Outcome.MASKED
        assert reason == "not-triggered"

    def test_recovered_needs_flag_and_event(self):
        observed = {"status": "ok", "digest": "aa", "recovered": True}
        assert classify(self.GOLDEN, observed,
                        self.EVENT)[0] is Outcome.RECOVERED
        assert classify(self.GOLDEN, observed, ())[0] is Outcome.MASKED

    def test_silent_corruption(self):
        outcome, reason, _ = classify(
            self.GOLDEN, {"status": "ok", "digest": "bb"}, self.EVENT)
        assert outcome is Outcome.SILENT_CORRUPTION
        assert reason == "digest-mismatch"


class TestPlanning:
    def test_plan_is_deterministic(self):
        scenarios = (SocFabricScenario(),)
        first = plan_injections(scenarios, seed=5, injections=20)
        second = plan_injections(scenarios, seed=5, injections=20)
        assert [spec for _, spec in first] == [s for _, s in second]
        third = plan_injections(scenarios, seed=6, injections=20)
        assert [s for _, s in first] != [s for _, s in third]

    def test_points_cycle_evenly(self):
        scenarios = (SocFabricScenario(),)
        n_points = len(scenarios[0].fault_points())
        plans = plan_injections(scenarios, seed=1,
                                injections=2 * n_points)
        sites = [spec.site + spec.model for _, spec in plans]
        assert sites[:n_points] == sites[n_points:]

    def test_no_points_is_an_error(self):
        class Empty(Scenario):
            name = "empty"

            def fault_points(self):
                return ()

            def execute(self):
                return {"status": "ok", "digest": ""}

        with pytest.raises(ValueError):
            plan_injections((Empty(),), seed=1, injections=1)


class _FlakyScenario(Scenario):
    """Golden run fails -> run_campaign must refuse to start."""

    name = "flaky"

    def fault_points(self):
        return (FaultPoint("x", BIT_FLIP),)

    def execute(self):
        return {"status": "detected", "reason": "always"}


class TestRunCampaign:
    def test_rejects_failing_golden_run(self):
        with pytest.raises(RuntimeError, match="golden run"):
            run_campaign((_FlakyScenario(),), seed=1, injections=1)

    def test_injector_left_disarmed(self):
        run_campaign((SocFabricScenario(),), seed=1, injections=4)
        assert not FAULTS.enabled
        assert FAULTS.armed == ()

    def test_crash_classified_not_raised(self):
        class Crashy(SocFabricScenario):
            name = "crashy"

            def execute(self):
                if FAULTS.enabled:
                    raise ZeroDivisionError("unowned")
                return super().execute()

        result = run_campaign((Crashy(),), seed=1, injections=3)
        assert result.outcome_totals() == {"crash": 3}
        assert result.runs[0].reason == "ZeroDivisionError"


class TestStandardCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return standard_campaign(seed=SEED, injections=SMALL)

    def test_runs_everything(self, result):
        assert result.injections == SMALL
        assert set(result.scenarios) == {
            "boot-attest", "attested-delivery", "rtos-protected",
            "rtos-flat", "soc-fabric"}
        assert "rtos-flat" not in result.hardened

    def test_hardened_paths_never_corrupt_silently(self, result):
        assert result.hardened_violations() == []

    def test_boot_attest_fired_faults_all_detected(self, result):
        for run in result.runs:
            if run.scenario == "boot-attest" and run.fired:
                assert run.outcome == "detected", run

    def test_flat_baseline_shows_silent_corruption(self):
        """The defect class the PMP port exists to remove must be
        visible on the unhardened baseline."""
        flat = RtosScenario(protected=False)
        result = run_campaign((flat,), seed=SEED, injections=12)
        assert result.outcome_totals().get("silent_corruption", 0) > 0
        assert result.hardened_violations() == []   # not hardened

    def test_protected_rtos_contains_everything(self):
        result = run_campaign((RtosScenario(protected=True),),
                              seed=SEED, injections=8)
        outcomes = set(result.outcome_totals())
        assert outcomes <= {"detected", "masked"}


class TestDeterministicExport:
    def test_same_seed_byte_identical_json(self, tmp_path):
        scenarios = [(BootAttestScenario(), SocFabricScenario())
                     for _ in range(2)]
        first = run_campaign(scenarios[0], seed=SEED, injections=10)
        second = run_campaign(scenarios[1], seed=SEED, injections=10)
        assert first.canonical_json() == second.canonical_json()
        path_a = first.write(tmp_path / "a.json")
        path_b = second.write(tmp_path / "b.json")
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_different_seed_differs(self):
        first = run_campaign((SocFabricScenario(),), seed=1,
                             injections=10)
        second = run_campaign((SocFabricScenario(),), seed=2,
                              injections=10)
        assert first.canonical_json() != second.canonical_json()

    def test_json_is_loadable_and_complete(self, tmp_path):
        result = run_campaign((SocFabricScenario(),), seed=3,
                              injections=6)
        loaded = json.loads(result.canonical_json())
        assert loaded["campaign"]["seed"] == 3
        assert loaded["campaign"]["injections"] == 6
        assert sum(loaded["totals"].values()) == 6
        assert len(loaded["runs"]) == 6
        assert loaded["hardened_violations"] == 0

    def test_runs_jsonl_export(self, tmp_path):
        result = run_campaign((SocFabricScenario(),), seed=3,
                              injections=4)
        path = result.write_runs_jsonl(tmp_path / "runs.jsonl")
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 4
        record = json.loads(lines[0])
        assert record["outcome"] in {o.value for o in Outcome}

    def test_run_record_roundtrip(self):
        record = RunRecord(index=0, scenario="s", site="x",
                           model=BIT_FLIP, trigger=0, count=1, bit=2,
                           magnitude=1, fired=1, outcome="masked")
        assert RunRecord(**record.to_record()) == record

    def test_campaign_result_accumulators(self):
        result = CampaignResult(seed=0, scenarios=["s"], hardened=["s"])
        result.runs.append(RunRecord(
            index=0, scenario="s", site="x", model=BIT_FLIP, trigger=0,
            count=1, bit=0, magnitude=1, fired=1,
            outcome="silent_corruption"))
        assert result.by_site() == {"x": {"silent_corruption": 1}}
        assert len(result.hardened_violations()) == 1

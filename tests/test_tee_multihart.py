"""Multi-hart TEE tests: the paper's SoC has four Rocket cores, and PMP
is a per-core structure the SM must keep coherent."""

import pytest

from repro.soc import AccessFault, PrivilegeMode
from repro.tee import build_tee


@pytest.fixture(scope="module")
def quad():
    return build_tee(b"\x44" * 32, post_quantum=False, hart_count=4)


class TestMultiHart:
    def test_four_harts_provisioned(self, quad):
        assert len(quad.harts) == 4
        assert [h.hart_id for h in quad.harts] == [0, 1, 2, 3]

    def test_per_core_sm_stacks(self, quad):
        assert set(quad.sm.stacks) == {0, 1, 2, 3}
        for stack in quad.sm.stacks.values():
            assert stack.size_bytes == 8 * 1024   # Table III default

    def test_enclave_runs_on_any_hart(self, quad):
        enclave = quad.sm.create_enclave(b"worker")
        for hart_id in range(4):
            result = quad.sm.run_enclave(
                enclave, lambda hart: hart.hart_id, hart_id=hart_id)
            assert result == hart_id
        quad.sm.destroy_enclave(enclave)

    def test_os_on_other_hart_cannot_read_running_enclave(self, quad):
        """The coherence property: while hart 0 executes the enclave,
        the OS on hart 1 must still be locked out of its memory."""
        enclave = quad.sm.create_enclave(b"secret-holder")
        other = quad.harts[1]

        def workload(hart):
            # Mid-enclave-execution, simulate the OS on hart 1 probing.
            other.drop_to(PrivilegeMode.SUPERVISOR)
            try:
                with pytest.raises(AccessFault):
                    other.load(enclave.region.base, 4)
            finally:
                other.trap("probe-done")

        quad.sm.run_enclave(enclave, workload, hart_id=0)
        quad.sm.destroy_enclave(enclave)

    def test_enclave_view_confined_to_executing_hart(self, quad):
        """After the enclave exits, the executing hart's PMP is back to
        the OS view (enclave memory blacked out again)."""
        enclave = quad.sm.create_enclave(b"secret-holder")
        quad.sm.run_enclave(enclave, lambda hart: None, hart_id=2)
        hart = quad.harts[2]
        hart.drop_to(PrivilegeMode.SUPERVISOR)
        try:
            with pytest.raises(AccessFault):
                hart.load(enclave.region.base, 4)
        finally:
            hart.trap("probe-done")
        quad.sm.destroy_enclave(enclave)

    def test_sm_protected_on_every_hart(self, quad):
        dram_base = quad.memory.memory_map["dram"].base
        for hart in quad.harts:
            hart.drop_to(PrivilegeMode.SUPERVISOR)
            try:
                with pytest.raises(AccessFault):
                    hart.load(dram_base, 4)
            finally:
                hart.trap("probe-done")

    def test_destroy_clears_all_harts(self, quad):
        enclave = quad.sm.create_enclave(b"transient")
        slot = quad.sm._enclave_pmp_slot(enclave)
        quad.sm.destroy_enclave(enclave)
        from repro.soc import AddressMode
        for hart in quad.harts:
            assert hart.pmp.entries[slot].mode is AddressMode.OFF

    def test_single_hart_default_unchanged(self):
        platform = build_tee()
        assert len(platform.harts) == 1
        assert platform.sm.stack is platform.sm.stacks[0]

    def test_invalid_hart_count(self):
        with pytest.raises(ValueError):
            build_tee(hart_count=0)

"""Tests for the two-phase weight-extraction attack, countermeasures
and leakage assessment (paper Section III-C, Figs. 1-2)."""

import numpy as np
import pytest

from repro.cim import (DigitalCimMacro, MaskedCimMacro, PowerModel,
                       ShuffledCimMacro, WeightExtractionAttack,
                       assess_macro, hamming_weight,
                       phase2_power_patterns, values_with_hamming_weight,
                       welch_t)


def _random_weights(count, seed, include_anchors=True):
    rng = np.random.default_rng(seed)
    weights = [int(w) for w in rng.integers(0, 16, count)]
    if include_anchors:
        weights[0] = 0
        weights[1] = 15
    return weights


class TestHwClasses:
    def test_class_sizes(self):
        sizes = [len(values_with_hamming_weight(h)) for h in range(5)]
        assert sizes == [1, 4, 6, 4, 1]

    def test_hw3_values(self):
        """The exact values of paper Fig. 2."""
        assert values_with_hamming_weight(3) == [7, 11, 13, 14]


class TestPhase1:
    """Fig. 1: k-means separates the five HW clusters."""

    def test_noise_free_clustering_perfect(self):
        weights = list(range(16))   # every value once
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        result = attack.phase1_cluster()
        assert result.accuracy(weights) == 1.0

    def test_powers_ordered_by_hamming_weight(self):
        weights = [0, 1, 3, 7, 15]
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        result = attack.phase1_cluster()
        assert result.mean_powers == sorted(result.mean_powers)

    def test_noisy_clustering_with_averaging(self):
        weights = _random_weights(16, seed=3)
        attack = WeightExtractionAttack(
            DigitalCimMacro(weights), PowerModel(0.5, seed=4),
            repetitions=30)
        result = attack.phase1_cluster()
        assert result.accuracy(weights) >= 0.9

    def test_missing_classes_handled(self):
        weights = [0, 15, 15, 0, 15, 0, 0, 15]   # only HW 0 and 4
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        result = attack.phase1_cluster()
        assert result.accuracy(weights) == 1.0

    def test_trace_budget_reported(self):
        weights = _random_weights(8, seed=1)
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=5)
        result = attack.phase1_cluster()
        assert result.traces_used == 8 * 5


class TestPhase2:
    """Fig. 2: combination with known weights separates HW classes."""

    def test_hw3_separable_with_companion_one(self):
        """Paper Fig. 2 exactly: 7/11/13/14 with known weight 1 give
        distinct power, while alone they are identical."""
        patterns = phase2_power_patterns([7, 11, 13, 14],
                                         companion_value=1)
        alone = [p[0] for p in patterns.values()]
        combined = [p[1] for p in patterns.values()]
        assert len(set(alone)) == 1           # indistinguishable alone
        assert len(set(combined)) == 4        # distinct with companion

    def test_hw1_separable_with_companion_fifteen(self):
        patterns = phase2_power_patterns([1, 2, 4, 8],
                                         companion_value=15)
        combined = [p[1] for p in patterns.values()]
        assert len(set(combined)) == 4

    def test_combined_power_follows_sum_hamming_weight(self):
        patterns = phase2_power_patterns([7, 11, 13, 14],
                                         companion_value=1)
        # Power with companion must be monotone in HW(v + 1).
        hw_sums = {v: hamming_weight(v + 1) for v in (7, 11, 13, 14)}
        ordered = sorted(patterns, key=lambda v: patterns[v][1])
        assert ordered == sorted(hw_sums, key=lambda v: hw_sums[v])


class TestFullAttack:
    def test_noise_free_full_recovery_16(self):
        weights = _random_weights(16, seed=5)
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        result = attack.run()
        assert result.accuracy(weights) == 1.0
        assert result.unresolved == []

    def test_noise_free_full_recovery_64(self):
        weights = _random_weights(64, seed=6)
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        result = attack.run()
        assert result.accuracy(weights) == 1.0

    def test_query_complexity_linear_ish(self):
        weights = _random_weights(64, seed=6)
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        result = attack.run()
        # Phase 1: 64 queries; phase 2: a few per unknown weight.
        assert result.queries_used < 64 * 6

    def test_recovery_under_noise(self):
        weights = _random_weights(16, seed=7)
        attack = WeightExtractionAttack(
            DigitalCimMacro(weights), PowerModel(0.3, seed=8),
            repetitions=40)
        result = attack.run(tolerance=0.3)
        assert result.accuracy(weights) >= 0.85

    def test_attack_without_anchor_weights_partial(self):
        """Without any HW-0/HW-4 weight nothing pins a value, so the
        attack can only report HW classes (values stay unresolved)."""
        weights = [1, 2, 6, 9, 11, 13, 3, 5]   # HW 1..3 only
        attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                        PowerModel(0.0), repetitions=1)
        result = attack.run()
        assert result.phase1.accuracy(weights) == 1.0
        assert len(result.unresolved) == len(weights)


class TestCountermeasures:
    WEIGHTS = _random_weights.__func__(16, seed=9) \
        if hasattr(_random_weights, "__func__") else None

    @pytest.fixture(scope="class")
    def weights(self):
        return _random_weights(16, seed=9)

    def test_masked_macro_still_computes_correctly(self, weights):
        macro = MaskedCimMacro(weights, seed=0)
        value, _ = macro.operate([1] * 16)
        assert value == sum(weights)

    def test_shuffled_macro_preserves_full_sums(self, weights):
        macro = ShuffledCimMacro(weights, seed=0)
        value, _ = macro.operate([1] * 16)
        assert value == sum(weights)

    def test_masking_defeats_extraction(self, weights):
        attack = WeightExtractionAttack(MaskedCimMacro(weights, seed=1),
                                        PowerModel(0.0), repetitions=3)
        result = attack.run()
        assert result.accuracy(weights) < 0.5

    def test_shuffling_defeats_extraction(self, weights):
        attack = WeightExtractionAttack(
            ShuffledCimMacro(weights, seed=2), PowerModel(0.0),
            repetitions=3)
        result = attack.run()
        assert result.accuracy(weights) < 0.5

    def test_masked_power_independent_of_single_weight(self, weights):
        """Mean activity of a one-hot query must not follow the HW."""
        macro = MaskedCimMacro([0] * 4 + [15] * 4, seed=3)
        from repro.cim import one_hot
        means = []
        for index in (0, 4):
            samples = [macro.query_fresh(one_hot(8, index))
                       for _ in range(300)]
            means.append(np.mean(samples))
        assert abs(means[0] - means[1]) < 1.5


class TestTvla:
    def test_welch_t_zero_for_identical(self):
        assert welch_t([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_welch_t_large_for_separated(self):
        a = np.random.default_rng(0).normal(0, 1, 100)
        b = np.random.default_rng(1).normal(10, 1, 100)
        assert abs(welch_t(a, b)) > 20

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            welch_t([1.0], [1.0, 2.0])

    def test_plain_macro_leaks(self):
        weights = [15] * 8 + [0] * 8
        result = assess_macro(lambda w: DigitalCimMacro(w), weights)
        assert result.leaks

    def test_masked_macro_passes(self):
        weights = [15] * 8 + [0] * 8
        result = assess_macro(lambda w: MaskedCimMacro(w, seed=5),
                              weights)
        assert not result.leaks

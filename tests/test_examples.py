"""Smoke tests: every example script must run to completion.

Examples double as integration tests of the public API; running them
in subprocesses keeps them honest (no stale imports, no reliance on
test fixtures).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 3
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stderr[-2000:]}"
    assert result.stdout.strip(), f"{script} produced no output"

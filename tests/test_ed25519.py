"""Tests for Ed25519 against RFC 8032 known-answer vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ed25519


# (secret, public, message, signature) from RFC 8032 section 7.1.
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
]


class TestKnownAnswer:
    @pytest.mark.parametrize("secret,public,message,signature",
                             RFC8032_VECTORS)
    def test_public_key_derivation(self, secret, public, message,
                                   signature):
        assert ed25519.public_key(bytes.fromhex(secret)).hex() == public

    @pytest.mark.parametrize("secret,public,message,signature",
                             RFC8032_VECTORS)
    def test_signature(self, secret, public, message, signature):
        sig = ed25519.sign(bytes.fromhex(secret), bytes.fromhex(message))
        assert sig.hex() == signature

    @pytest.mark.parametrize("secret,public,message,signature",
                             RFC8032_VECTORS)
    def test_verify(self, secret, public, message, signature):
        assert ed25519.verify(bytes.fromhex(public),
                              bytes.fromhex(message),
                              bytes.fromhex(signature))


class TestProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=64))
    def test_sign_verify_roundtrip(self, seed, message):
        public = ed25519.public_key(seed)
        sig = ed25519.sign(seed, message)
        assert len(sig) == 64
        assert ed25519.verify(public, message, sig)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=32, max_size=32))
    def test_wrong_message_rejected(self, seed):
        public = ed25519.public_key(seed)
        sig = ed25519.sign(seed, b"genuine")
        assert not ed25519.verify(public, b"forged", sig)

    def test_signing_is_deterministic(self):
        seed = bytes(range(32))
        assert ed25519.sign(seed, b"m") == ed25519.sign(seed, b"m")

    def test_tampered_signature_rejected(self):
        seed = bytes(range(32))
        public = ed25519.public_key(seed)
        sig = bytearray(ed25519.sign(seed, b"m"))
        sig[10] ^= 1
        assert not ed25519.verify(public, b"m", bytes(sig))

    def test_malformed_inputs_rejected_without_exception(self):
        assert not ed25519.verify(b"short", b"m", bytes(64))
        assert not ed25519.verify(bytes(32), b"m", b"short")
        assert not ed25519.verify(bytes(32), b"m", bytes(64))

    def test_high_scalar_rejected(self):
        # s >= L must be rejected (malleability check).
        seed = bytes(range(32))
        public = ed25519.public_key(seed)
        sig = bytearray(ed25519.sign(seed, b"m"))
        s = int.from_bytes(sig[32:], "little") + ed25519.L
        sig[32:] = s.to_bytes(32, "little")
        assert not ed25519.verify(public, b"m", bytes(sig))

    def test_secret_length_enforced(self):
        with pytest.raises(ValueError):
            ed25519.public_key(bytes(31))
        with pytest.raises(ValueError):
            ed25519.sign(bytes(33), b"m")


class TestKeyPair:
    def test_keypair_wrapper(self):
        pair = ed25519.Ed25519KeyPair(bytes(range(32)))
        sig = pair.sign(b"msg")
        assert pair.verify(b"msg", sig)
        assert not pair.verify(b"other", sig)
        assert pair.public == ed25519.public_key(bytes(range(32)))

"""Cross-subsystem integration tests.

Each test exercises a flow the paper motivates across module
boundaries: attested ML-KEM model delivery into a CIM macro, the
framework catalog's consistency with the substrates that implement it,
and the TEE/RTOS sharing one PMP model.
"""

import numpy as np
import pytest

from repro.cim import (DigitalCimMacro, MaskedCimMacro, PowerModel,
                       WeightExtractionAttack)
from repro.core import SecurityFramework, default_catalog
from repro.rtos import Kernel, TaskState
from repro.soc import AccessFault, PrivilegeMode
from repro.tee import (AttestedPublisher, EnclaveKemIdentity, build_tee,
                       seal, unseal)


@pytest.fixture(scope="module")
def platform():
    return build_tee(b"\x42" * 32, post_quantum=True)


class TestAttestedDelivery:
    """The full vendor -> device -> enclave -> CIM flow."""

    @pytest.fixture(scope="class")
    def flow(self, platform):
        enclave = platform.sm.create_enclave(b"inference-runtime")
        identity = EnclaveKemIdentity(seed_d=bytes(32), seed_z=bytes(32))
        report = platform.sm.attest_enclave(enclave,
                                            identity.report_binding())
        publisher = AttestedPublisher(
            platform.device.public_identity(),
            platform.boot_report.sm_measurement,
            enclave.measurement)
        return enclave, identity, report, publisher

    def test_genuine_flow_delivers(self, flow):
        enclave, identity, report, publisher = flow
        weights = bytes([1, 15, 7, 3] * 4)
        package = publisher.deliver(report.encode(), identity.ek,
                                    weights, entropy=bytes(32))
        assert package is not None
        assert identity.unwrap(package) == weights

    def test_delivered_weights_run_on_cim(self, flow):
        enclave, identity, report, publisher = flow
        weights = bytes([1, 15, 7, 3] * 4)
        package = publisher.deliver(report.encode(), identity.ek,
                                    weights, entropy=bytes(32))
        macro = DigitalCimMacro(list(identity.unwrap(package)))
        value, _ = macro.operate([1] * 16)
        assert value == sum(weights)

    def test_swapped_kem_key_refused(self, flow):
        _, _, report, publisher = flow
        mitm = EnclaveKemIdentity(seed_d=b"\x01" * 32,
                                  seed_z=b"\x02" * 32)
        assert publisher.deliver(report.encode(), mitm.ek,
                                 b"weights") is None

    def test_tampered_report_refused(self, flow):
        _, identity, report, publisher = flow
        encoded = bytearray(report.encode())
        encoded[70] ^= 1
        assert publisher.deliver(bytes(encoded), identity.ek,
                                 b"weights") is None

    def test_garbage_report_refused(self, flow):
        _, identity, _, publisher = flow
        assert publisher.deliver(b"junk", identity.ek, b"w") is None

    def test_modified_sm_refused(self, flow):
        _, identity, _, publisher = flow
        evil = build_tee(b"\x42" * 32, post_quantum=True,
                         sm_version=99)
        enclave = evil.sm.create_enclave(b"inference-runtime")
        report = evil.sm.attest_enclave(enclave,
                                        identity.report_binding())
        assert publisher.deliver(report.encode(), identity.ek,
                                 b"weights") is None

    def test_tampered_package_fails_unwrap(self, flow):
        _, identity, report, publisher = flow
        package = publisher.deliver(report.encode(), identity.ek,
                                    b"weights", entropy=bytes(32))
        tampered = bytearray(package.sealed_payload)
        tampered[0] ^= 1
        package.sealed_payload = bytes(tampered)
        with pytest.raises(ValueError):
            identity.unwrap(package)

    def test_kem_ciphertext_tamper_fails_unwrap(self, flow):
        """Implicit rejection inside ML-KEM surfaces as an AEAD
        failure, not a silent wrong-weights load."""
        _, identity, report, publisher = flow
        package = publisher.deliver(report.encode(), identity.ek,
                                    b"weights", entropy=bytes(32))
        tampered = bytearray(package.kem_ciphertext)
        tampered[100] ^= 1
        package.kem_ciphertext = bytes(tampered)
        with pytest.raises(ValueError):
            identity.unwrap(package)


class TestSealedModelAcrossReboots:
    def test_sealed_model_survives_reboot_same_sm(self):
        first = build_tee(b"\x77" * 32, post_quantum=True)
        enclave_1 = first.sm.create_enclave(b"runtime")
        blob = seal(first.sm.sealing_key(enclave_1), bytes(12),
                    b"weights", b"v1")
        # Reboot: fresh memory, same device + same SM image.
        second = build_tee(b"\x77" * 32, post_quantum=True)
        enclave_2 = second.sm.create_enclave(b"runtime")
        assert unseal(second.sm.sealing_key(enclave_2), bytes(12),
                      blob, b"v1") == b"weights"

    def test_sm_upgrade_invalidates_seals(self):
        """Data sealed under SM v1 is unreadable after an SM change —
        the documented price of measurement-bound sealing."""
        old = build_tee(b"\x77" * 32, post_quantum=True, sm_version=1)
        enclave = old.sm.create_enclave(b"runtime")
        blob = seal(old.sm.sealing_key(enclave), bytes(12), b"w", b"v1")
        upgraded = build_tee(b"\x77" * 32, post_quantum=True,
                             sm_version=2)
        enclave_2 = upgraded.sm.create_enclave(b"runtime")
        with pytest.raises(ValueError):
            unseal(upgraded.sm.sealing_key(enclave_2), bytes(12), blob,
                   b"v1")


class TestCatalogSubstrateConsistency:
    """The framework catalog must point at real code."""

    def test_implemented_by_references_exist(self):
        import importlib
        for feature in default_catalog().values():
            # The first dotted token before any space/parenthesis must
            # be an importable module of this package.
            target = feature.implemented_by.split()[0].split("(")[0]
            module = target.split("/")[0]
            parts = module.split(".")
            for end in range(len(parts), 1, -1):
                try:
                    importlib.import_module(".".join(parts[:end]))
                    break
                except ImportError:
                    continue
            else:
                pytest.fail(f"{feature.name}: implemented_by points at "
                            f"nothing importable: {module}")

    def test_masked_crypto_overhead_matches_hades(self):
        """The catalog's masking overhead must stay consistent with
        what the HADES Table II reproduction actually measures."""
        from repro.hades import DesignContext, ExhaustiveExplorer, \
            OptimizationGoal
        from repro.hades.library import aes256
        masked = ExhaustiveExplorer(
            aes256(), DesignContext(masking_order=1)).run(
            OptimizationGoal.AREA).best.metrics
        unmasked = ExhaustiveExplorer(
            aes256(), DesignContext(masking_order=0)).run(
            OptimizationGoal.AREA).best.metrics
        catalog = default_catalog()
        claimed = catalog["masked_crypto_hw"].overhead.area_kge
        measured = masked.area_kge - unmasked.area_kge
        assert claimed == pytest.approx(measured, rel=0.25)

    def test_bootrom_code_overhead_matches_tee(self):
        from repro.tee import BootRom, Device
        catalog = default_catalog()
        rom = BootRom(Device(bytes(32)))
        assert catalog["measured_boot"].overhead.code_bytes == \
            rom.image_size
        pq_rom = BootRom(Device(bytes(32), post_quantum=True))
        assert catalog["pq_signatures"].overhead.code_bytes == \
            pq_rom.image_size - rom.image_size

    def test_cim_masking_feature_actually_works(self):
        """The catalog claims cim_masking mitigates power SCA on model
        weights; the substrate must back that up."""
        weights = [0, 15] + [7, 11, 13, 14, 3, 8, 5, 10, 12, 6, 9, 1,
                             2, 4]
        attack = WeightExtractionAttack(MaskedCimMacro(weights, seed=3),
                                        PowerModel(0.0), repetitions=3)
        assert attack.run().accuracy(weights) < 0.5


class TestTeeRtosSharedPmp:
    """TEE and RTOS build on the same PMP model: a U-mode workload
    inside an SM enclave behaves like a PMP-confined RTOS task."""

    def test_enclave_runs_at_user_privilege(self, platform):
        enclave = platform.sm.create_enclave(b"probe")
        observed = {}

        def workload(hart):
            observed["mode"] = hart.mode

        platform.sm.run_enclave(enclave, workload)
        assert observed["mode"] is PrivilegeMode.USER
        platform.sm.destroy_enclave(enclave)

    def test_rtos_task_and_enclave_fault_identically(self, platform):
        # Enclave touching SM memory:
        enclave = platform.sm.create_enclave(b"probe")
        with pytest.raises(AccessFault):
            platform.sm.run_enclave(
                enclave,
                lambda hart: hart.load(
                    platform.memory.memory_map["dram"].base, 4))
        platform.sm.destroy_enclave(enclave)
        # RTOS task touching kernel memory:
        kernel = Kernel(protected=True)

        def rogue(ctx):
            ctx.load(kernel.kernel_region.base, 4)
            yield

        task = kernel.create_task("rogue", 1, rogue)
        kernel.run(10)
        assert task.state is TaskState.FAULTED

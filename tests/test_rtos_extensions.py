"""Tests for the RTOS extensions: notifications, stack-overflow
detection and the deadline watchdog."""

import pytest

from repro.rtos import (Delay, Kernel, Notify, TaskState,
                        WaitNotification)


class TestNotifications:
    def test_notify_wakes_waiter(self):
        kernel = Kernel()
        received = []

        def waiter(ctx):
            value = yield WaitNotification()
            received.append(value)

        def notifier(ctx):
            yield Delay(5)
            yield Notify(waiter_task, "event-42")

        waiter_task = kernel.create_task("waiter", 5, waiter)
        kernel.create_task("notifier", 1, notifier)
        kernel.run(30)
        assert received == ["event-42"]
        assert waiter_task.state is TaskState.DONE

    def test_notification_latched_before_wait(self):
        kernel = Kernel()
        received = []

        def notifier(ctx):
            yield Notify(waiter_task, 99)

        def waiter(ctx):
            yield Delay(5)              # notification arrives first
            value = yield WaitNotification()
            received.append(value)

        waiter_task = kernel.create_task("waiter", 1, waiter)
        kernel.create_task("notifier", 5, notifier)
        kernel.run(30)
        assert received == [99]

    def test_waiter_blocks_until_notified(self):
        kernel = Kernel()

        def waiter(ctx):
            yield WaitNotification()

        waiter_task = kernel.create_task("waiter", 1, waiter)
        kernel.run(10)
        assert waiter_task.state is TaskState.BLOCKED


class TestStackOverflowDetection:
    def test_overflow_faults_task(self):
        kernel = Kernel()

        def hungry(ctx):
            ctx.push_stack(5000)        # beyond the 4096-byte stack
            yield

        task = kernel.create_task("hungry", 1, hungry)
        kernel.run(10)
        assert task.state is TaskState.FAULTED
        assert any(e.kind == "stack-overflow" for e in kernel.events)

    def test_overflow_contained(self):
        kernel = Kernel()

        def hungry(ctx):
            ctx.push_stack(5000)
            yield

        def worker(ctx):
            for _ in range(5):
                yield

        kernel.create_task("hungry", 9, hungry)
        worker_task = kernel.create_task("worker", 1, worker)
        kernel.run(30)
        assert worker_task.state is TaskState.DONE

    def test_high_water_tracking(self):
        kernel = Kernel()

        def nested(ctx):
            ctx.push_stack(1000)
            yield
            ctx.push_stack(2000)
            yield
            ctx.pop_stack(2000)
            ctx.pop_stack(1000)
            yield

        task = kernel.create_task("nested", 1, nested)
        kernel.run(20)
        assert task.stack_high_water == 3000
        assert task.stack_used == 0

    def test_bigger_stack_accommodates(self):
        kernel = Kernel()

        def hungry(ctx):
            ctx.push_stack(5000)
            yield
            ctx.pop_stack(5000)

        task = kernel.create_task("hungry", 1, hungry,
                                  stack_bytes=8192)
        kernel.run(10)
        assert task.state is TaskState.DONE


class TestDeadlineWatchdog:
    def test_deadline_met(self):
        kernel = Kernel()

        def quick(ctx):
            yield
            yield

        task = kernel.create_task("quick", 1, quick, deadline_ticks=20)
        kernel.run(50)
        assert not task.deadline_missed

    def test_deadline_missed_flagged(self):
        kernel = Kernel()

        def slow(ctx):
            yield Delay(50)
            yield

        task = kernel.create_task("slow", 1, slow, deadline_ticks=10)
        kernel.run(100)
        assert task.deadline_missed
        assert any(e.kind == "deadline-missed" for e in kernel.events)

    def test_deadline_miss_caused_by_interference(self):
        """A deadline miss caused by a higher-priority hog is exactly
        what execution budgets prevent."""
        def victim(ctx):
            for _ in range(5):
                yield

        def hog(ctx):
            for _ in range(200):
                yield

        # Without budgets: the hog starves the victim past its deadline.
        kernel = Kernel()
        victim_task = kernel.create_task("victim", 1, victim,
                                         deadline_ticks=30)
        kernel.create_task("hog", 9, hog)
        kernel.run(100)
        assert victim_task.deadline_missed

        # With a budget on the hog: the victim makes its deadline.
        kernel = Kernel(budget_window=40)
        victim_task = kernel.create_task("victim", 1, victim,
                                         deadline_ticks=30)
        kernel.create_task("hog", 9, hog, budget_ticks=10)
        kernel.run(100)
        assert not victim_task.deadline_missed

    def test_deadline_only_logged_once(self):
        kernel = Kernel()

        def slow(ctx):
            yield Delay(80)

        kernel.create_task("slow", 1, slow, deadline_ticks=5)
        kernel.run(60)
        misses = [e for e in kernel.events if e.kind == "deadline-missed"]
        assert len(misses) == 1

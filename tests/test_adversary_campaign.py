"""The coverage-guided adversary campaign loop (ISSUE 7 tentpole).

Small-budget campaigns pinning the loop's contracts: byte-identical
results for any worker count and across repeated runs, memo dedup
accounting, coverage novelty steering, the hardening gate with
delta-debug minimized replayable violations, and corpus replay.
"""

import json

import pytest

from repro.faults.adversary import (AdversaryCampaign, AdversaryCase,
                                    load_corpus, replay, run_case,
                                    standard_adversary_campaign,
                                    standard_families)
from repro.faults.adversary.families import TaskProgramAdversary
from repro.obs import CoverageMap
from repro.runtime import run_sharded
from repro.runtime.memo import Memo

SEED = 99


@pytest.fixture(scope="module")
def small():
    """One small standard campaign shared across read-only tests."""
    return standard_adversary_campaign(seed=SEED, generations=3,
                                       population=30, jobs=1)


class TestDeterminism:
    def test_repeat_run_byte_identical(self, small):
        again = standard_adversary_campaign(seed=SEED, generations=3,
                                            population=30, jobs=1)
        assert again.canonical_json() == small.canonical_json()
        assert again.corpus_json() == small.corpus_json()

    def test_serial_vs_parallel_byte_identical(self, small):
        cover = CoverageMap("adversary")
        parallel = standard_adversary_campaign(
            seed=SEED, generations=3, population=30, jobs=2,
            coverage=cover)
        assert parallel.canonical_json() == small.canonical_json()
        assert parallel.corpus_json() == small.corpus_json()

    def test_different_seed_different_campaign(self, small):
        other = standard_adversary_campaign(seed=SEED + 1,
                                            generations=3,
                                            population=30, jobs=1)
        assert other.canonical_json() != small.canonical_json()


class TestAccounting:
    def test_injection_accounting(self, small):
        assert small.injections == 3 * 30
        assert small.executed + small.memo_hits == small.injections
        assert sum(small.totals.values()) == small.injections

    def test_by_family_sums_to_totals(self, small):
        merged = {}
        for outcomes in small.by_family.values():
            for outcome, count in outcomes.items():
                merged[outcome] = merged.get(outcome, 0) + count
        assert merged == small.totals

    def test_coverage_stats_recorded(self, small):
        assert small.coverage_observations == small.injections
        assert 0 < small.coverage_distinct <= small.injections
        assert len(small.corpus) == small.coverage_distinct

    def test_shared_memo_absorbs_repeat_campaign(self):
        memo = Memo(maxsize=4096)
        campaign = AdversaryCampaign(seed=SEED, memo=memo)
        first = campaign.run(generations=2, population=20, jobs=1)
        rerun = AdversaryCampaign(
            seed=SEED, memo=memo,
            coverage=CoverageMap("adversary")).run(
            generations=2, population=20, jobs=1)
        assert rerun.executed < first.executed
        assert rerun.memo_hits > first.memo_hits

    def test_rejects_degenerate_budgets(self):
        with pytest.raises(ValueError):
            AdversaryCampaign(seed=SEED).run(generations=0,
                                             population=10)
        with pytest.raises(ValueError):
            AdversaryCampaign(seed=SEED).run(generations=1,
                                             population=0)


class TestCoverageSteering:
    def test_novel_is_a_pure_peek(self):
        cover = CoverageMap("peek")
        vector = {"a.b": 5}
        assert cover.novel("g", vector)
        assert cover.novel("g", vector)          # still unobserved
        assert cover.observations == 0
        assert cover.observe("g", vector)
        assert not cover.novel("g", vector)
        assert not cover.observe("g", vector)

    def test_later_generations_mutate_corpus_parents(self, small):
        generations = {entry.case.generation
                       for entry in small.corpus}
        assert 0 in generations
        assert any(g > 0 for g in generations), (
            "no corpus entry came from a mutation — the feedback "
            "loop never steered")


class TestHardeningGate:
    def test_standard_campaign_zero_violations(self, small):
        assert small.hardened_violations() == []

    def test_violations_minimized_and_replayable(self):
        """Declaring the flat baseline hardened makes its real
        silent-corruption class trip the gate: violations must carry a
        delta-debug minimized op sequence that replays the outcome."""
        family = TaskProgramAdversary(protected=False)
        family.hardened = True
        campaign = AdversaryCampaign(families=[family], seed=SEED)
        result = campaign.run(generations=3, population=30, jobs=1)
        assert result.violations, (
            "flat task family produced no silent corruption at this "
            "budget — grow the population")
        violation = result.violations[0]
        assert violation["outcome"] in ("silent_corruption", "crash")
        assert "minimized_ops" in violation
        assert len(violation["minimized_ops"]) <= \
            len(violation["ops"])
        minimized = AdversaryCase.from_record(
            {**violation, "ops": violation["minimized_ops"]})
        record = run_case(family, minimized)
        assert record.outcome == violation["outcome"]
        assert record.reason == violation["reason"]


class TestCorpusReplay:
    def test_corpus_entries_replay_bit_identical(self, small):
        entries = small.corpus_dict()["entries"]
        for entry in entries[:10]:
            record = replay(entry)
            assert record.outcome == entry["outcome"]
            assert record.reason == entry["reason"]
            assert record.digest == entry["digest"]

    def test_corpus_artifact_round_trip(self, small, tmp_path):
        path = small.write_corpus(tmp_path / "corpus.json")
        entries = load_corpus(path)
        assert len(entries) == len(small.corpus)
        assert entries == small.corpus_dict()["entries"]

    def test_load_corpus_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999,
                                    "entries": []}))
        with pytest.raises(ValueError):
            load_corpus(path)

    def test_replay_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            replay({"family": "no-such-family", "seed": 1,
                    "generation": 0, "ops": []})


class TestFamilySuite:
    def test_standard_families_unique_and_weighted(self):
        families = standard_families()
        names = [f.name for f in families]
        assert len(set(names)) == len(names)
        assert all(f.weight >= 1 for f in families)
        assert any(f.hardened for f in families)
        assert any(not f.hardened for f in families)

    def test_case_record_round_trip(self):
        family = standard_families()[0]
        case = family.generate(1234)
        assert AdversaryCase.from_record(case.to_record()) == case


class TestShardedFold:
    def test_fold_streams_in_shard_order(self):
        seen = []
        returned = run_sharded(lambda state, shard: shard * 2,
                               None, [1, 2, 3], jobs=1,
                               fold=seen.append)
        assert returned is None
        assert seen == [2, 4, 6]

    def test_fold_parallel_matches_serial(self):
        serial, parallel = [], []
        run_sharded(lambda state, shard: shard * shard, None,
                    list(range(6)), jobs=1, fold=serial.append)
        run_sharded(lambda state, shard: shard * shard, None,
                    list(range(6)), jobs=2, fold=parallel.append)
        assert parallel == serial

"""Tests for the from-scratch ML-DSA (FIPS 204) implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import mldsa
from repro.crypto.mldsa import (ML_DSA_44, ML_DSA_65, ML_DSA_87, MLDSA, N,
                                Q)

SEED = bytes(range(32))


@pytest.fixture(scope="module")
def keypair44():
    return MLDSA(ML_DSA_44).key_gen(SEED)


class TestNTT:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, Q - 1), min_size=N, max_size=N))
    def test_ntt_roundtrip(self, coeffs):
        assert mldsa.intt(mldsa.ntt(coeffs)) == coeffs

    def test_ntt_multiplication_matches_schoolbook(self):
        import random
        rng = random.Random(7)
        a = [rng.randrange(Q) for _ in range(N)]
        b = [rng.randrange(Q) for _ in range(N)]
        fast = mldsa.intt(mldsa.ntt_mul(mldsa.ntt(a), mldsa.ntt(b)))
        slow = [0] * N
        for i in range(N):
            if not a[i]:
                continue
            for j in range(N):
                index = i + j
                term = a[i] * b[j]
                if index >= N:  # x^256 = -1
                    slow[index - N] = (slow[index - N] - term) % Q
                else:
                    slow[index] = (slow[index] + term) % Q
        assert fast == slow

    def test_ntt_of_constant_one(self):
        one = [1] + [0] * (N - 1)
        assert mldsa.ntt(one) == [1] * N

    def test_zetas_are_roots_of_unity(self):
        assert all(pow(z, 512, Q) == 1 for z in mldsa.ZETAS[1:])


class TestRounding:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, Q - 1))
    def test_power2round_reconstructs(self, value):
        r1, r0 = mldsa.power2round(value)
        assert (r1 * (1 << mldsa.D) + r0) % Q == value
        assert -(1 << (mldsa.D - 1)) < r0 <= (1 << (mldsa.D - 1))

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, Q - 1))
    def test_decompose_reconstructs(self, value):
        gamma2 = ML_DSA_44.gamma2
        r1, r0 = mldsa.decompose(value, gamma2)
        assert (r1 * 2 * gamma2 + r0) % Q == value
        assert 0 <= r1 < (Q - 1) // (2 * gamma2)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, Q - 1),
           st.integers(-ML_DSA_44.gamma2 + 1, ML_DSA_44.gamma2 - 1))
    def test_hint_recovers_high_bits(self, r, z):
        """The defining property: UseHint(MakeHint(z, r), r) = HighBits(r+z)."""
        gamma2 = ML_DSA_44.gamma2
        hint = mldsa.make_hint(z % Q, r, gamma2)
        assert mldsa.use_hint(hint, r, gamma2) == \
            mldsa.high_bits((r + z) % Q, gamma2)

    def test_centered_range(self):
        assert mldsa.centered(0) == 0
        assert mldsa.centered(Q - 1) == -1
        assert mldsa.centered(Q // 2) == Q // 2


class TestPacking:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 1023), min_size=N, max_size=N))
    def test_simple_bit_pack_roundtrip(self, coeffs):
        packed = mldsa.simple_bit_pack(coeffs, 1023)
        assert mldsa.simple_bit_unpack(packed, 1023) == coeffs

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-2, 2), min_size=N, max_size=N))
    def test_bit_pack_roundtrip_eta(self, coeffs):
        as_mod_q = [c % Q for c in coeffs]
        packed = mldsa.bit_pack(as_mod_q, 2, 2)
        assert mldsa.bit_unpack(packed, 2, 2) == as_mod_q

    def test_hint_pack_roundtrip(self):
        hints = [[0] * N for _ in range(ML_DSA_44.k)]
        hints[0][3] = hints[0][200] = hints[2][77] = 1
        packed = mldsa.hint_bit_pack(hints, ML_DSA_44)
        assert len(packed) == ML_DSA_44.omega + ML_DSA_44.k
        assert mldsa.hint_bit_unpack(packed, ML_DSA_44) == hints

    def test_hint_unpack_rejects_unsorted_indices(self):
        hints = [[0] * N for _ in range(ML_DSA_44.k)]
        hints[0][3] = hints[0][200] = 1
        packed = bytearray(mldsa.hint_bit_pack(hints, ML_DSA_44))
        packed[0], packed[1] = packed[1], packed[0]
        assert mldsa.hint_bit_unpack(bytes(packed), ML_DSA_44) is None

    def test_hint_unpack_rejects_nonzero_padding(self):
        packed = bytearray(ML_DSA_44.omega + ML_DSA_44.k)
        packed[5] = 9  # index data beyond the cumulative counts
        assert mldsa.hint_bit_unpack(bytes(packed), ML_DSA_44) is None


class TestSampling:
    def test_sample_in_ball_weight(self):
        c = mldsa.sample_in_ball(b"\x01" * 32, ML_DSA_44)
        nonzero = [x for x in c if x != 0]
        assert len(nonzero) == ML_DSA_44.tau
        assert all(x in (1, Q - 1) for x in nonzero)

    def test_rej_ntt_poly_uniform_range(self):
        poly = mldsa._rej_ntt_poly(b"seed" + bytes(30))
        assert len(poly) == N
        assert all(0 <= c < Q for c in poly)

    @pytest.mark.parametrize("eta", [2, 4])
    def test_rej_bounded_poly_range(self, eta):
        poly = mldsa._rej_bounded_poly(b"sd" + bytes(64), eta)
        assert len(poly) == N
        assert all(mldsa.centered(c) in range(-eta, eta + 1) for c in poly)

    def test_expand_mask_range(self):
        p = ML_DSA_44
        y = mldsa.expand_mask(bytes(64), 0, p)
        assert len(y) == p.l
        for poly in y:
            assert all(-p.gamma1 < mldsa.centered(c) <= p.gamma1
                       for c in poly)


class TestParameterSets:
    @pytest.mark.parametrize("params,pk,sk,sig", [
        (ML_DSA_44, 1312, 2560, 2420),
        (ML_DSA_65, 1952, 4032, 3309),
        (ML_DSA_87, 2592, 4896, 4627),
    ])
    def test_standard_sizes(self, params, pk, sk, sig):
        assert params.public_key_bytes == pk
        assert params.secret_key_bytes == sk
        assert params.signature_bytes == sig

    def test_beta(self):
        assert ML_DSA_44.beta == 78


class TestScheme:
    def test_sizes_of_generated_material(self, keypair44):
        public, secret = keypair44
        assert len(public) == 1312
        assert len(secret) == 2560

    def test_sign_verify(self, keypair44):
        public, secret = keypair44
        scheme = MLDSA(ML_DSA_44)
        sig = scheme.sign(secret, b"attestation report")
        assert len(sig) == 2420
        assert scheme.verify(public, b"attestation report", sig)

    def test_keygen_deterministic_in_seed(self):
        scheme = MLDSA(ML_DSA_44)
        assert scheme.key_gen(SEED) == scheme.key_gen(SEED)
        assert scheme.key_gen(SEED) != scheme.key_gen(bytes(32))

    def test_signing_deterministic(self, keypair44):
        _, secret = keypair44
        scheme = MLDSA(ML_DSA_44)
        assert scheme.sign(secret, b"m") == scheme.sign(secret, b"m")

    def test_randomized_signing_differs(self, keypair44):
        public, secret = keypair44
        scheme = MLDSA(ML_DSA_44)
        s1 = scheme.sign(secret, b"m", randomize=True)
        s2 = scheme.sign(secret, b"m", randomize=True)
        assert s1 != s2
        assert scheme.verify(public, b"m", s1)
        assert scheme.verify(public, b"m", s2)

    def test_wrong_message_rejected(self, keypair44):
        public, secret = keypair44
        scheme = MLDSA(ML_DSA_44)
        sig = scheme.sign(secret, b"genuine")
        assert not scheme.verify(public, b"forged", sig)

    def test_tampered_signature_rejected(self, keypair44):
        public, secret = keypair44
        scheme = MLDSA(ML_DSA_44)
        sig = bytearray(scheme.sign(secret, b"m"))
        for index in (0, 100, 2400):
            bad = bytearray(sig)
            bad[index] ^= 1
            assert not scheme.verify(public, b"m", bytes(bad))

    def test_wrong_length_signature_rejected(self, keypair44):
        public, _ = keypair44
        assert not MLDSA(ML_DSA_44).verify(public, b"m", bytes(100))

    def test_wrong_public_key_rejected(self, keypair44):
        public, secret = keypair44
        scheme = MLDSA(ML_DSA_44)
        sig = scheme.sign(secret, b"m")
        other_public, _ = scheme.key_gen(b"\x01" * 32)
        assert not scheme.verify(other_public, b"m", sig)

    def test_context_separation(self, keypair44):
        public, secret = keypair44
        scheme = MLDSA(ML_DSA_44)
        sig = scheme.sign(secret, b"m", context=b"boot")
        assert scheme.verify(public, b"m", sig, context=b"boot")
        assert not scheme.verify(public, b"m", sig, context=b"attest")

    def test_context_length_limit(self, keypair44):
        _, secret = keypair44
        with pytest.raises(ValueError):
            MLDSA(ML_DSA_44).sign(secret, b"m", context=bytes(256))

    def test_bad_seed_length(self):
        with pytest.raises(ValueError):
            MLDSA(ML_DSA_44).key_gen(bytes(31))

    def test_trace_reports_stack_estimate(self, keypair44):
        _, secret = keypair44
        trace = {}
        MLDSA(ML_DSA_44).sign(secret, b"m", _trace=trace)
        assert trace["attempts"] >= 1
        # The paper: 8 KB default stack corrupts, 128 KB suffices.
        assert trace["peak_stack_bytes"] > 8 * 1024
        assert trace["peak_stack_bytes"] < 128 * 1024

    def test_sk_pk_decode_length_checks(self):
        with pytest.raises(ValueError):
            mldsa.pk_decode(bytes(10), ML_DSA_44)
        with pytest.raises(ValueError):
            mldsa.sk_decode(bytes(10), ML_DSA_44)

    @pytest.mark.parametrize("params", [ML_DSA_65, ML_DSA_87],
                             ids=lambda p: p.name)
    def test_other_parameter_sets_roundtrip(self, params):
        scheme = MLDSA(params)
        public, secret = scheme.key_gen(SEED)
        sig = scheme.sign(secret, b"msg")
        assert len(sig) == params.signature_bytes
        assert scheme.verify(public, b"msg", sig)

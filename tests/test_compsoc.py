"""Tests for the composable-execution substrate (Section III-E)."""

import pytest

from repro.compsoc import (Application, ComposablePlatform,
                           ExternalChannel, InterVepChannel,
                           PlatformRootOfTrust, VepViolation,
                           measure_overhead, periodic_workload,
                           verify_composability)


def _app(name="app", compute=3, requests=8, base=0x1000_0000):
    return periodic_workload(name, compute_ticks=compute,
                             requests=requests, base_address=base)


def _hog(name="hog", base=0x1010_0000):
    return periodic_workload(name, compute_ticks=0, requests=150,
                             base_address=base)


class TestApplications:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Application("bad", [("jump", 3)])
        with pytest.raises(ValueError):
            Application("bad", [("compute", -1)])

    def test_periodic_workload_shape(self):
        app = periodic_workload("a", 2, 3, 0x1000)
        kinds = [phase[0] for phase in app.phases]
        assert kinds == ["compute", "mem"] * 3

    def test_zero_compute_workload(self):
        app = periodic_workload("a", 0, 2, 0x1000)
        assert all(kind == "mem" for kind, _ in app.phases)


class TestPlatformExecution:
    def test_single_app_completes(self):
        platform = ComposablePlatform("tdm")
        vep = platform.create_vep("v0")
        vep.attach(_app(requests=5))
        timelines = platform.run()
        timeline = timelines["app"]
        assert timeline.finished
        assert len(timeline.completion_cycles) == 5

    def test_completions_monotone(self):
        platform = ComposablePlatform("tdm")
        vep = platform.create_vep("v0")
        vep.attach(_app())
        timeline = platform.run()["app"]
        assert timeline.completion_cycles == \
            sorted(timeline.completion_cycles)

    def test_all_policies_complete_same_work(self):
        for policy in ("tdm", "round_robin", "fcfs"):
            platform = ComposablePlatform(policy)
            platform.create_vep("v0").attach(_app())
            platform.create_vep("v1").attach(_hog())
            timelines = platform.run()
            assert len(timelines["app"].completion_cycles) == 8
            assert len(timelines["hog"].completion_cycles) == 150

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ComposablePlatform("priority")

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            ComposablePlatform("tdm", memory_latency=0)

    def test_vep_memory_isolation(self):
        platform = ComposablePlatform("tdm")
        v0 = platform.create_vep("v0")
        v1 = platform.create_vep("v1")
        # App in v0 tries to touch v1's memory.
        rogue = periodic_workload("rogue", 0, 3, v1.memory.base)
        v0.attach(rogue)
        timelines = platform.run()
        assert len(timelines["rogue"].violations) == 3
        assert timelines["rogue"].completion_cycles == []

    def test_check_access_raises(self):
        platform = ComposablePlatform("tdm")
        vep = platform.create_vep("v0")
        with pytest.raises(VepViolation):
            vep.check_access(0)


class TestComposability:
    CORUNNERS = [[_hog], [_hog, lambda: _hog("hog2", 0x1020_0000)]]

    def test_tdm_is_composable(self):
        report = verify_composability("tdm", _app, self.CORUNNERS)
        assert report.composable

    @pytest.mark.parametrize("policy", ["round_robin", "fcfs"])
    def test_work_conserving_policies_interfere(self, policy):
        report = verify_composability(policy, _app, self.CORUNNERS)
        assert not report.composable
        assert report.divergent_runs

    def test_composability_with_heavier_load(self):
        heavy = [[_hog, lambda: _hog("h2", 0x1020_0000),
                  lambda: _hog("h3", 0x1030_0000)]]
        report = verify_composability("tdm", _app, heavy)
        assert report.composable

    def test_baseline_recorded(self):
        report = verify_composability("tdm", _app, self.CORUNNERS)
        assert len(report.baseline_completions) == 8


class TestOverhead:
    def test_tdm_pays_for_composability(self):
        report = measure_overhead([_app, _hog])
        assert report.makespans["tdm"] > report.makespans["round_robin"]
        assert report.tdm_overhead_vs_best > 0

    def test_report_printable(self):
        report = measure_overhead([_app, _hog])
        assert "tdm" in str(report)


class TestSecureChannels:
    ROOT = PlatformRootOfTrust(bytes(range(32)))

    def test_root_secret_length(self):
        with pytest.raises(ValueError):
            PlatformRootOfTrust(b"short")

    def test_vep_keys_distinct(self):
        assert self.ROOT.vep_key("v0") != self.ROOT.vep_key("v1")

    def test_channel_key_symmetric(self):
        assert self.ROOT.channel_key("a", "b") == \
            self.ROOT.channel_key("b", "a")

    def test_inter_vep_roundtrip(self):
        channel = InterVepChannel(self.ROOT, "v0", "v1")
        message = channel.send("v0", b"model update")
        assert message.recipient == "v1"
        assert channel.receive(message) == b"model update"

    def test_inter_vep_rejects_foreign_sender(self):
        channel = InterVepChannel(self.ROOT, "v0", "v1")
        with pytest.raises(ValueError):
            channel.send("v2", b"spoof")

    def test_inter_vep_tamper_detected(self):
        channel = InterVepChannel(self.ROOT, "v0", "v1")
        message = channel.send("v0", b"payload")
        tampered = bytearray(message.ciphertext)
        tampered[0] ^= 1
        message.ciphertext = bytes(tampered)
        with pytest.raises(ValueError):
            channel.receive(message)

    def test_nonces_unique(self):
        channel = InterVepChannel(self.ROOT, "v0", "v1")
        first = channel.send("v0", b"a")
        second = channel.send("v0", b"b")
        assert first.nonce != second.nonce

    def test_external_channel_verifies_remotely(self):
        shared = b"\x42" * 32
        channel = ExternalChannel(self.ROOT, "v0", shared)
        message = channel.send(b"telemetry")
        payload = ExternalChannel.verify_and_open(
            message, self.ROOT.public_identity, shared)
        assert payload == b"telemetry"

    def test_external_channel_rejects_forged_signature(self):
        shared = b"\x42" * 32
        channel = ExternalChannel(self.ROOT, "v0", shared)
        message = channel.send(b"telemetry")
        forged = bytearray(message.signature)
        forged[0] ^= 1
        message.signature = bytes(forged)
        with pytest.raises(ValueError):
            ExternalChannel.verify_and_open(
                message, self.ROOT.public_identity, shared)

    def test_external_channel_rejects_other_platform(self):
        shared = b"\x42" * 32
        other = PlatformRootOfTrust(b"\x99" * 32)
        channel = ExternalChannel(other, "v0", shared)
        message = channel.send(b"telemetry")
        with pytest.raises(ValueError):
            ExternalChannel.verify_and_open(
                message, self.ROOT.public_identity, shared)

"""Fuzz/differential robustness tests across the library.

Property-based checks that malformed or adversarial inputs are handled
with clean failures (never crashes, never silent acceptance), plus a
differential test of the PMP checker against an independent reference
implementation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import hybrid
from repro.crypto.mldsa import ML_DSA_44, MLDSA
from repro.faults.models import flip_bit
from repro.hades import (DesignContext, enumerate_designs, pareto_front)
from repro.hades.library import adder_mod_q
from repro.soc import (AddressMode, Pmp, PmpEntry, PrivilegeMode,
                       napot_address)
from repro.tee import AttestationReport, BootReport, BootRom
from repro.tee.delivery import (AttestedPublisher, DeliveryError,
                                EnclaveKemIdentity, SealedPackage)
from repro.tee.device import Device
from repro.tee.platform import build_tee, synthetic_sm_binary


class TestAttestationDecodeFuzz:
    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=100))
    def test_short_garbage_rejected_cleanly(self, data):
        with pytest.raises(ValueError):
            AttestationReport.decode(data)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1320, max_size=1320))
    def test_full_size_garbage_decodes_or_rejects(self, data):
        """Right-sized random bytes either decode (and then fail
        verification) or raise ValueError — never crash."""
        try:
            report = AttestationReport.decode(data)
        except ValueError:
            return
        from repro.tee import verify_report
        assert not verify_report(report, {"ed25519": bytes(32)})

    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=1024))
    def test_data_field_roundtrip(self, payload):
        report = AttestationReport(
            enclave_hash=bytes(64), enclave_data=payload,
            enclave_signature=bytes(64), sm_hash=bytes(64),
            sm_ed25519_public=bytes(32), sm_signature=bytes(64))
        decoded = AttestationReport.decode(report.encode())
        assert decoded.enclave_data == payload


class TestSignatureFuzz:
    SCHEME = MLDSA(ML_DSA_44)
    PK, SK = SCHEME.key_gen(bytes(32))

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=2420, max_size=2420))
    def test_random_mldsa_signatures_rejected(self, signature):
        assert not self.SCHEME.verify(self.PK, b"msg", signature)

    @settings(max_examples=15, deadline=None)
    @given(st.binary(max_size=64))
    def test_wrong_length_material_rejected(self, junk):
        assert not self.SCHEME.verify(self.PK, b"msg", junk)
        pair = hybrid.HybridKeyPair(bytes(32), bytes(32))
        assert not hybrid.verify(pair.public, b"msg", junk)


class TestBootReportFuzz:
    """ISSUE 2 satellite: the boot hand-off encoding round-trips, and
    every single-bit corruption of a real encoded report is rejected —
    cleanly (``ValueError``) or by device-side recomputation — and
    never crashes or slips through."""

    SM_BINARY = synthetic_sm_binary()
    BOOTROM = BootRom(Device(bytes(32)))
    GOLDEN = BOOTROM.boot(SM_BINARY)
    WIRE = GOLDEN.encode()

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=96), st.binary(max_size=96),
           st.binary(max_size=96), st.integers(0, 2 ** 32 - 1))
    def test_encode_decode_roundtrip(self, measurement, signature,
                                     seed, regenerated):
        report = BootReport(
            sm_measurement=measurement, classical_boot_signature=signature,
            pq_boot_signature=b"", sm_ed25519_seed=seed,
            sm_mldsa_seed=b"", regenerated_pq_key_bytes=regenerated)
        assert BootReport.decode(report.encode()) == report

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200))
    def test_garbage_rejected_cleanly(self, data):
        try:
            BootReport.decode(data)
        except ValueError:
            pass

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_single_bit_flip_never_accepted(self, data):
        bit = data.draw(st.integers(0, len(self.WIRE) * 8 - 1))
        tampered = flip_bit(self.WIRE, bit)
        try:
            report = BootReport.decode(tampered)
        except ValueError:
            return                        # structurally rejected
        assert not self.BOOTROM.verify_handoff(self.SM_BINARY, report)


class TestSealedPackageFuzz:
    """Same property for the delivery wire format: round-trip, clean
    rejection of garbage, and no single-bit flip of a real package is
    ever unwrapped to a payload."""

    PLATFORM = build_tee()
    KEM = EnclaveKemIdentity(seed_d=bytes(32), seed_z=bytes(32))
    _enclave = PLATFORM.sm.create_enclave(b"\x5a" * 64)
    _report = PLATFORM.sm.attest_enclave(_enclave, KEM.report_binding())
    PUBLISHER = AttestedPublisher(
        PLATFORM.device.public_identity(),
        expected_sm_hash=PLATFORM.boot_report.sm_measurement,
        expected_enclave_hash=_enclave.measurement)
    PACKAGE = PUBLISHER.deliver(_report.encode(), KEM.ek,
                                b"secret-model-weights",
                                entropy=bytes(32))
    WIRE = PACKAGE.encode()

    @settings(max_examples=20, deadline=None)
    @given(st.binary(max_size=64), st.binary(max_size=64),
           st.binary(max_size=64), st.binary(max_size=64))
    def test_encode_decode_roundtrip(self, label, ciphertext, nonce,
                                     sealed):
        package = SealedPackage(label=label, kem_ciphertext=ciphertext,
                                nonce=nonce, sealed_payload=sealed)
        assert SealedPackage.decode(package.encode()) == package

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=200))
    def test_garbage_rejected_cleanly(self, data):
        try:
            SealedPackage.decode(data)
        except DeliveryError as exc:
            assert exc.reason == "package-decode"

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_single_bit_flip_never_unwraps(self, data):
        bit = data.draw(st.integers(0, len(self.WIRE) * 8 - 1))
        tampered = flip_bit(self.WIRE, bit)
        with pytest.raises(DeliveryError):
            self.KEM.unwrap(SealedPackage.decode(tampered))


def _reference_pmp_check(entries, address, size, access, mode):
    """Independent reference implementation of the PMP algorithm
    (byte-granular, brute force over the access range)."""
    for byte in range(address, address + size):
        matched = None
        previous = 0
        for entry in entries:
            lo, hi = entry.range_for(previous)
            previous = entry.address
            if entry.mode is not AddressMode.OFF and lo <= byte < hi:
                matched = entry
                break
        if matched is None:
            if mode is not PrivilegeMode.MACHINE:
                return False
            continue
        if mode is PrivilegeMode.MACHINE and not matched.locked:
            continue
        allowed = {"read": matched.readable, "write": matched.writable,
                   "exec": matched.executable}[access]
        if not allowed:
            return False
    return True


class TestPmpDifferential:
    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([AddressMode.OFF, AddressMode.NAPOT,
                                 AddressMode.NA4]),
                st.booleans(), st.booleans(), st.booleans(),
                st.booleans(),
                st.integers(0, 255)),
            max_size=6),
        st.integers(0, 0x4000), st.sampled_from([1, 2, 4, 8]),
        st.sampled_from(["read", "write", "exec"]),
        st.sampled_from([PrivilegeMode.USER, PrivilegeMode.SUPERVISOR,
                         PrivilegeMode.MACHINE]))
    def test_checker_matches_reference(self, raw_entries, address,
                                       size, access, mode):
        """The production checker agrees with a byte-granular reference
        on random configurations — except where the production checker
        is *stricter* on boundary-straddling accesses (documented
        conservative denial)."""
        pmp = Pmp()
        for index, (addr_mode, r, w, x, locked,
                    block) in enumerate(raw_entries):
            if addr_mode is AddressMode.NAPOT:
                entry_address = napot_address(block * 64, 64)
            else:
                entry_address = (block * 64) >> 2
            pmp.entries[index] = PmpEntry(
                mode=addr_mode, readable=r, writable=w, executable=x,
                locked=locked, address=entry_address)
        ours = pmp.check(address, size, access, mode)
        reference = _reference_pmp_check(pmp.entries, address, size,
                                         access, mode)
        if ours:
            assert reference, "production checker more permissive!"
        # ours == False while reference True is allowed only when the
        # access straddles a region boundary (conservative denial).


class TestParetoFront:
    @pytest.fixture(scope="class")
    def designs(self):
        return list(enumerate_designs(adder_mod_q(),
                                      DesignContext(masking_order=1)))

    def test_front_is_non_dominated(self, designs):
        front = pareto_front(designs)
        assert front

        def key(design):
            metrics = design.metrics
            return (metrics.area_kge, metrics.latency_cc,
                    metrics.randomness_bits)

        for a in front:
            for b in front:
                if a is b:
                    continue
                ka, kb = key(a), key(b)
                dominated = all(x <= y for x, y in zip(kb, ka)) and \
                    any(x < y for x, y in zip(kb, ka))
                assert not dominated

    def test_front_contains_per_goal_optima(self, designs):
        front = pareto_front(designs)
        best_area = min(d.metrics.area_kge for d in designs)
        best_latency = min(d.metrics.latency_cc for d in designs)
        assert any(d.metrics.area_kge == best_area for d in front)
        assert any(d.metrics.latency_cc == best_latency for d in front)

    def test_every_design_dominated_or_on_front(self, designs):
        front = pareto_front(designs)
        front_keys = [(d.metrics.area_kge, d.metrics.latency_cc,
                       d.metrics.randomness_bits) for d in front]
        for design in designs:
            key = (design.metrics.area_kge, design.metrics.latency_cc,
                   design.metrics.randomness_bits)
            on_front = key in front_keys
            dominated = any(
                all(x <= y for x, y in zip(fk, key)) and
                any(x < y for x, y in zip(fk, key))
                for fk in front_keys)
            assert on_front or dominated

    def test_two_objective_front(self, designs):
        front_2d = pareto_front(designs, include_randomness=False)
        front_3d = pareto_front(designs)
        assert len(front_2d) <= len(front_3d)

"""Tests for the security-by-design framework (paper Section II)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ALL_USE_CASES, AdversaryModel, Asset, Capability,
                        Overhead, SecurityFeature, SecurityFramework,
                        Threat, UseCaseProfile, WORST_CASE,
                        default_catalog, remote_software_adversary,
                        satellite_imagery, speech_enhancement,
                        traffic_supervision)


class TestAdversaryModel:
    def test_worst_case_excludes_fault_injection(self):
        assert Capability.FAULT_INJECTION not in WORST_CASE
        assert Capability.QUANTUM_COMPUTER in WORST_CASE
        assert Capability.POWER_SIDE_CHANNEL in WORST_CASE

    def test_fault_injection_rejected_in_any_model(self):
        with pytest.raises(ValueError):
            AdversaryModel("bad",
                           frozenset({Capability.FAULT_INJECTION}))

    def test_without_derives_weaker_model(self):
        weaker = WORST_CASE.without(Capability.POWER_SIDE_CHANNEL)
        assert weaker.is_weaker_than(WORST_CASE)
        assert not WORST_CASE.is_weaker_than(weaker)
        assert Capability.POWER_SIDE_CHANNEL not in weaker

    def test_remote_adversary_has_no_physical_side_channels(self):
        remote = remote_software_adversary()
        for capability in (Capability.POWER_SIDE_CHANNEL,
                           Capability.EM_SIDE_CHANNEL,
                           Capability.TIMING_SIDE_CHANNEL):
            assert capability not in remote
        assert Capability.QUANTUM_COMPUTER in remote

    def test_non_capability_rejected(self):
        with pytest.raises(ValueError):
            AdversaryModel("bad", frozenset({"power"}))


class TestCatalog:
    def test_catalog_is_nonempty_and_wired(self):
        catalog = default_catalog()
        assert len(catalog) >= 10
        for feature in catalog.values():
            assert feature.mitigates
            assert feature.implemented_by

    def test_dependencies_resolve(self):
        catalog = default_catalog()
        for feature in catalog.values():
            for dependency in feature.depends_on:
                assert dependency in catalog

    def test_framework_rejects_unknown_dependency(self):
        catalog = {"a": SecurityFeature(
            "a", "x", frozenset({Threat(Capability.QUANTUM_COMPUTER,
                                        Asset.CRYPTO_KEYS)}),
            Overhead(), depends_on=("ghost",))}
        with pytest.raises(ValueError):
            SecurityFramework(catalog)

    def test_framework_rejects_dependency_cycle(self):
        threat = frozenset({Threat(Capability.QUANTUM_COMPUTER,
                                   Asset.CRYPTO_KEYS)})
        catalog = {
            "a": SecurityFeature("a", "", threat, Overhead(),
                                 depends_on=("b",)),
            "b": SecurityFeature("b", "", threat, Overhead(),
                                 depends_on=("a",)),
        }
        with pytest.raises(ValueError):
            SecurityFramework(catalog)

    def test_overhead_combination(self):
        a = Overhead(area_kge=1.0, energy_factor=1.5, code_bytes=10)
        b = Overhead(area_kge=2.0, energy_factor=2.0, code_bytes=20)
        c = a.combine(b)
        assert c.area_kge == 3.0
        assert c.energy_factor == 3.0
        assert c.code_bytes == 30


class TestDerivation:
    @pytest.fixture(scope="class")
    def framework(self):
        return SecurityFramework()

    def test_all_use_cases_derive_and_verify(self, framework):
        for factory in ALL_USE_CASES:
            architecture = framework.derive(factory())
            assert architecture.verify(framework.catalog)

    def test_satellite_sheds_side_channel_features(self, framework):
        """The paper's canonical example: space has no physical
        attacker, so masking overhead is shed."""
        architecture = framework.derive(satellite_imagery())
        assert "masked_crypto_hw" not in architecture.feature_names
        assert "cim_masking" not in architecture.feature_names
        assert "pq_signatures" in architecture.feature_names

    def test_consumer_device_needs_masking(self, framework):
        architecture = framework.derive(speech_enhancement())
        names = architecture.feature_names
        assert "masked_crypto_hw" in names or "cim_masking" in names

    def test_real_time_use_case_gets_isolation(self, framework):
        architecture = framework.derive(traffic_supervision())
        names = set(architecture.feature_names)
        assert names & {"pmp_task_isolation", "composable_execution",
                        "execution_budgets"}

    def test_dependencies_closed(self, framework):
        for factory in ALL_USE_CASES:
            architecture = framework.derive(factory())
            names = set(architecture.feature_names)
            for feature in architecture.features:
                assert set(feature.depends_on) <= names

    def test_weaker_adversary_never_needs_more(self, framework):
        full = framework.derive(speech_enhancement())
        weaker_profile = UseCaseProfile(
            name="weaker",
            assets=speech_enhancement().assets,
            adversary=remote_software_adversary(),
            real_time=True)
        weaker = framework.derive(weaker_profile)
        assert len(weaker.features) <= len(full.features)

    def test_no_assets_means_no_features(self, framework):
        profile = UseCaseProfile("empty", frozenset(), WORST_CASE)
        architecture = framework.derive(profile)
        assert architecture.features == ()
        assert architecture.residual == set()

    def test_residual_threats_surfaced(self):
        """A threat no feature mitigates must land in residual."""
        catalog = default_catalog()
        # Remove every feature touching REAL_TIME_GUARANTEES.
        trimmed = {name: feature for name, feature in catalog.items()
                   if not any(t.asset is Asset.REAL_TIME_GUARANTEES
                              for t in feature.mitigates)}
        framework = SecurityFramework(trimmed)
        architecture = framework.derive(traffic_supervision())
        assert architecture.residual == set()  # nothing known to cover
        # With one feature knowing the threat but a profile whose
        # adversary includes it, coverage happens; here the trimmed
        # catalog simply does not know those threats at all.

    def test_overhead_aggregates(self, framework):
        architecture = framework.derive(speech_enhancement())
        overhead = architecture.total_overhead()
        assert overhead.area_kge > 0
        assert overhead.energy_factor > 1.0
        assert overhead.code_bytes > 50_000   # bootrom + PQ additions

    def test_explain_mentions_every_feature(self, framework):
        architecture = framework.derive(satellite_imagery())
        text = framework.explain(architecture)
        for name in architecture.feature_names:
            assert name in text

    def test_minimality_no_removable_feature(self, framework):
        """Dropping any non-dependency feature must break coverage."""
        architecture = framework.derive(satellite_imagery())
        catalog = framework.catalog
        threats = architecture.profile.applicable_threats(catalog)
        needed = threats & architecture.covered
        names = set(architecture.feature_names)
        for name in list(names):
            remaining = names - {name}
            # Skip features that exist only as dependencies.
            mitigated = set()
            dependency_ok = True
            for other in remaining:
                feature = catalog[other]
                mitigated |= feature.mitigates
                if name in feature.depends_on:
                    dependency_ok = False
            if dependency_ok:
                assert not needed <= mitigated, \
                    f"{name} is removable - architecture not minimal"

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.sampled_from(sorted(Asset,
                                          key=lambda a: a.name))),
           st.sets(st.sampled_from(sorted(
               WORST_CASE.capabilities, key=lambda c: c.name))))
    def test_derivation_total_and_verified(self, assets, capabilities):
        """Any profile derives a verifiable architecture."""
        framework = SecurityFramework()
        profile = UseCaseProfile(
            "fuzz", frozenset(assets),
            AdversaryModel("fuzz", frozenset(capabilities)))
        architecture = framework.derive(profile)
        assert architecture.verify(framework.catalog)

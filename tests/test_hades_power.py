"""Tests for the HADES power/energy extension (the paper's future-work
item implemented)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hades import (DesignContext, HardwarePowerModel, Metrics,
                         OptimizationGoal, ExhaustiveExplorer,
                         aes_activity_factor, enumerate_designs,
                         rank_by_energy)
from repro.hades.library import aes256


class TestPowerModel:
    def test_dynamic_scales_with_activity(self):
        model = HardwarePowerModel(clock_mhz=100)
        metrics = Metrics(10.0, 100.0)
        low = model.estimate(metrics, 0.1)
        high = model.estimate(metrics, 0.5)
        assert high.dynamic_mw == pytest.approx(5 * low.dynamic_mw)
        assert high.leakage_mw == low.leakage_mw

    def test_leakage_scales_with_area(self):
        model = HardwarePowerModel()
        small = model.estimate(Metrics(1.0, 10.0), 0.2)
        large = model.estimate(Metrics(10.0, 10.0), 0.2)
        assert large.leakage_mw == pytest.approx(10 * small.leakage_mw)

    def test_energy_scales_with_latency(self):
        model = HardwarePowerModel()
        fast = model.estimate(Metrics(10.0, 10.0), 0.2)
        slow = model.estimate(Metrics(10.0, 100.0), 0.2)
        assert slow.energy_per_op_nj == \
            pytest.approx(10 * fast.energy_per_op_nj)

    def test_total(self):
        estimate = HardwarePowerModel().estimate(Metrics(5.0, 10.0),
                                                 0.3)
        assert estimate.total_mw == pytest.approx(
            estimate.dynamic_mw + estimate.leakage_mw)

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwarePowerModel(clock_mhz=0)
        with pytest.raises(ValueError):
            HardwarePowerModel().estimate(Metrics(1, 1), 1.5)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.1, 1000), st.floats(1, 10000),
           st.floats(0.01, 1.0))
    def test_estimates_positive(self, area, latency, activity):
        estimate = HardwarePowerModel().estimate(
            Metrics(area, latency), activity)
        assert estimate.dynamic_mw > 0
        assert estimate.leakage_mw > 0
        assert estimate.energy_per_op_nj > 0


class TestAesEnergyRanking:
    @pytest.fixture(scope="class")
    def designs(self):
        return list(enumerate_designs(aes256(),
                                      DesignContext(masking_order=0)))

    def test_activity_factors_by_architecture(self, designs):
        factors = {aes_activity_factor(d.configuration)
                   for d in designs}
        assert len(factors) == 4      # serial / 32 / round / unrolled

    def test_ranking_sorted(self, designs):
        ranked = rank_by_energy(designs, aes_activity_factor)
        energies = [estimate.energy_per_op_nj
                    for _, estimate in ranked]
        assert energies == sorted(energies)
        assert len(ranked) == len(designs)

    def test_energy_optimum_differs_from_area_optimum(self, designs):
        """The point of the extension: the energy winner is NOT just
        the area winner (leakage x long latency punishes the serial
        design) nor necessarily the ALP winner."""
        ranked = rank_by_energy(designs, aes_activity_factor)
        energy_best = ranked[0][0]
        area_best = min(designs, key=lambda d: d.metrics.area_kge)
        assert energy_best.configuration != area_best.configuration

    def test_energy_optimum_is_reasonable(self, designs):
        """The winner should be a wide datapath (short latency) —
        energy/op favours finishing fast at moderate area."""
        ranked = rank_by_energy(designs, aes_activity_factor)
        assert ranked[0][0].configuration.param("datapath") == 128


class TestMaskedEnergy:
    def test_masking_multiplies_energy(self):
        """Supports the catalog's energy_factor estimate for masking."""
        unmasked = ExhaustiveExplorer(
            aes256(), DesignContext()).run(
            OptimizationGoal.AREA_LATENCY).best
        masked = ExhaustiveExplorer(
            aes256(), DesignContext(masking_order=1)).run(
            OptimizationGoal.AREA_LATENCY).best
        model = HardwarePowerModel()
        energy_unmasked = model.estimate(
            unmasked.metrics,
            aes_activity_factor(unmasked.configuration))
        energy_masked = model.estimate(
            masked.metrics, aes_activity_factor(masked.configuration))
        assert energy_masked.energy_per_op_nj > \
            1.5 * energy_unmasked.energy_per_op_nj

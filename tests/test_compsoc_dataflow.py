"""Tests for the SDF dataflow model and its worst-case analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compsoc import (ComposablePlatform, SdfGraph,
                           iteration_period_bound,
                           measure_iteration_periods, periodic_workload,
                           static_order_schedule, to_application)


def _pipeline(wcets=(2, 5, 1), accesses=(1, 2, 1)):
    graph = SdfGraph("pipeline")
    names = []
    for index, (wcet, access) in enumerate(zip(wcets, accesses)):
        names.append(f"a{index}")
        graph.add_actor(f"a{index}", wcet=wcet, memory_accesses=access)
    for a, b in zip(names, names[1:]):
        graph.connect(a, b)
    return graph


class TestGraphStructure:
    def test_duplicate_actor_rejected(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        with pytest.raises(ValueError):
            graph.add_actor("a", 2)

    def test_unknown_endpoint_rejected(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        with pytest.raises(ValueError):
            graph.connect("a", "ghost")

    def test_invalid_rates_rejected(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        with pytest.raises(ValueError):
            graph.connect("a", "b", production=0)

    def test_negative_wcet_rejected(self):
        with pytest.raises(ValueError):
            SdfGraph().add_actor("a", -1)


class TestRepetitionVector:
    def test_homogeneous_pipeline(self):
        assert _pipeline().repetition_vector() == \
            {"a0": 1, "a1": 1, "a2": 1}

    def test_multirate(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b", production=2, consumption=3)
        assert graph.repetition_vector() == {"a": 3, "b": 2}

    def test_inconsistent_rates_detected(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b", production=2, consumption=1)
        graph.connect("a", "b", production=1, consumption=1)
        assert not graph.is_consistent()

    def test_cycle_with_tokens_consistent(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b")
        graph.connect("b", "a", initial_tokens=1)
        assert graph.repetition_vector() == {"a": 1, "b": 1}

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6))
    def test_two_actor_balance_property(self, production, consumption):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b", production=production,
                      consumption=consumption)
        q = graph.repetition_vector()
        assert q["a"] * production == q["b"] * consumption
        # Smallest solution: gcd of the vector is 1.
        from math import gcd
        assert gcd(q["a"], q["b"]) == 1


class TestScheduling:
    def test_pipeline_schedule_order(self):
        assert static_order_schedule(_pipeline()) == ["a0", "a1", "a2"]

    def test_multirate_schedule_counts(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b", production=2, consumption=3)
        schedule = static_order_schedule(graph)
        assert schedule.count("a") == 3
        assert schedule.count("b") == 2

    def test_schedule_respects_dependencies(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b", production=1, consumption=2)
        schedule = static_order_schedule(graph)
        # b needs two tokens: both a-firings come first.
        assert schedule == ["a", "a", "b"]

    def test_deadlock_detected(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b")
        graph.connect("b", "a")      # no initial tokens: deadlock
        with pytest.raises(ValueError):
            static_order_schedule(graph)

    def test_cycle_with_tokens_schedules(self):
        graph = SdfGraph()
        graph.add_actor("a", 1)
        graph.add_actor("b", 1)
        graph.connect("a", "b")
        graph.connect("b", "a", initial_tokens=1)
        assert static_order_schedule(graph) == ["a", "b"]


class TestWorstCaseAnalysis:
    def test_bound_formula(self):
        platform = ComposablePlatform("tdm")
        platform.create_vep("v0")
        graph = _pipeline(wcets=(2, 5, 1), accesses=(1, 2, 1))
        # service bound = 2 slots + 2 latency = 4; total wcet 8 + 4*4.
        assert iteration_period_bound(graph, platform) == 8 + 4 * 4

    def test_observed_periods_within_bound_solo(self):
        platform = ComposablePlatform("tdm")
        vep = platform.create_vep("v0")
        graph = _pipeline()
        bound = iteration_period_bound(graph, platform)
        periods = measure_iteration_periods(graph, platform, vep,
                                            iterations=5)
        assert len(periods) == 5
        assert all(p <= bound for p in periods)

    def test_observed_periods_within_bound_under_load(self):
        """The composability payoff: the VEP-local bound survives any
        co-runner load."""
        platform = ComposablePlatform("tdm")
        vep = platform.create_vep("v0")
        hog_vep = platform.create_vep("v1")
        hog_vep.attach(periodic_workload("hog", 0, 400,
                                         hog_vep.memory.base))
        graph = _pipeline()
        bound = iteration_period_bound(graph, platform)
        periods = measure_iteration_periods(graph, platform, vep,
                                            iterations=5)
        assert all(p <= bound for p in periods)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(1, 3)),
                    min_size=1, max_size=4))
    def test_bound_property_random_pipelines(self, stages):
        """Any pipeline's observed period respects its analysis bound
        regardless of a saturating co-runner."""
        platform = ComposablePlatform("tdm")
        vep = platform.create_vep("v0")
        hog_vep = platform.create_vep("v1")
        hog_vep.attach(periodic_workload("hog", 0, 200,
                                         hog_vep.memory.base))
        graph = _pipeline(wcets=[s[0] for s in stages],
                          accesses=[s[1] for s in stages])
        bound = iteration_period_bound(graph, platform)
        periods = measure_iteration_periods(graph, platform, vep,
                                            iterations=3)
        assert all(p <= bound for p in periods)

    def test_no_memory_graph_rejected_for_measurement(self):
        platform = ComposablePlatform("tdm")
        vep = platform.create_vep("v0")
        graph = SdfGraph()
        graph.add_actor("pure", wcet=3)
        with pytest.raises(ValueError):
            measure_iteration_periods(graph, platform, vep)

    def test_to_application_shape(self):
        graph = _pipeline()
        application = to_application(graph, 0x1000_0000, iterations=2)
        mems = [p for p in application.phases if p[0] == "mem"]
        assert len(mems) == 2 * 4      # 4 accesses per iteration
        addresses = [p[1] for p in mems]
        assert len(set(addresses)) == len(addresses)

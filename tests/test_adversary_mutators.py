"""Property tests for the seeded adversary mutators (ISSUE 7).

Pins the three contracts the coverage-guided loop leans on:

* purity — the same seed derives the same op sequence / mutation /
  boot image every time, on every machine;
* spread — distinct seeds produce distinct inputs at a bounded
  collision rate (the generator actually explores);
* shrink — ``ddmin`` returns a 1-minimal subsequence that still
  replays, and real silent-corruption cases minimize to strictly
  shorter repros.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.adversary.mutators import (BOOT_OPS, BUS_OPS,
                                             DELIVERY_OPS, MAX_OPS,
                                             TASK_OPS, apply_boot_ops,
                                             boot_base_image,
                                             child_seed, derive_seed,
                                             ops_from_json,
                                             ops_to_json)
from repro.faults.adversary.shrink import ddmin, shrink_case

SPACES = {"boot": BOOT_OPS, "task": TASK_OPS,
          "delivery": DELIVERY_OPS, "bus": BUS_OPS}

seeds = st.integers(min_value=0, max_value=2 ** 64 - 1)
space_names = st.sampled_from(sorted(SPACES))


class TestSeedTree:
    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_derive_seed_stable_and_64_bit(self, seed):
        value = derive_seed("x", seed)
        assert value == derive_seed("x", seed)
        assert 0 <= value < 2 ** 64

    def test_length_prefixing_prevents_concat_collisions(self):
        assert derive_seed("a", "bc") != derive_seed("ab", "c")

    @settings(max_examples=30, deadline=None)
    @given(seeds, st.integers(min_value=0, max_value=1000))
    def test_child_seed_differs_from_parent(self, seed, index):
        assert child_seed(seed, index) != seed

    def test_children_distinct(self):
        children = {child_seed(42, index) for index in range(256)}
        assert len(children) == 256


class TestSeededPurity:
    @settings(max_examples=40, deadline=None)
    @given(space_names, seeds)
    def test_same_seed_same_ops(self, name, seed):
        space = SPACES[name]
        assert space.ops(random.Random(seed)) == \
            space.ops(random.Random(seed))

    @settings(max_examples=40, deadline=None)
    @given(space_names, seeds, seeds)
    def test_same_seed_same_mutation(self, name, gen_seed, mut_seed):
        space = SPACES[name]
        ops = space.ops(random.Random(gen_seed))
        assert space.mutate(ops, random.Random(mut_seed)) == \
            space.mutate(ops, random.Random(mut_seed))

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_boot_image_application_pure(self, seed):
        base = boot_base_image()
        ops = BOOT_OPS.ops(random.Random(seed))
        assert apply_boot_ops(base, ops) == apply_boot_ops(base, ops)
        assert apply_boot_ops(base, ()) == base

    @settings(max_examples=40, deadline=None)
    @given(space_names, seeds)
    def test_ops_round_trip_json(self, name, seed):
        ops = SPACES[name].ops(random.Random(seed))
        assert ops_from_json(ops_to_json(ops)) == ops

    @settings(max_examples=40, deadline=None)
    @given(space_names, seeds, seeds)
    def test_mutation_respects_max_ops(self, name, gen_seed, mut_seed):
        space = SPACES[name]
        ops = space.ops(random.Random(gen_seed), lo=MAX_OPS,
                        hi=MAX_OPS)
        mutated = space.mutate(ops, random.Random(mut_seed))
        assert len(mutated) <= MAX_OPS


class TestSeedSpread:
    @pytest.mark.parametrize("name", sorted(SPACES))
    def test_bounded_collision_rate_across_seeds(self, name):
        """100 sibling seeds must spread over the op space: a
        degenerate generator would funnel them into a handful of
        sequences and the campaign would explore nothing."""
        space = SPACES[name]
        sequences = {
            space.ops(random.Random(derive_seed(name, "spread", i)))
            for i in range(100)}
        assert len(sequences) >= 85, (
            f"{name}: only {len(sequences)} distinct sequences "
            f"from 100 seeds")

    def test_malformed_ops_rejected(self):
        with pytest.raises(ValueError):
            ops_from_json([[1, 2]])
        with pytest.raises(ValueError):
            ops_from_json([["flip", "not-an-int"]])
        with pytest.raises(ValueError):
            ops_from_json([[]])


class TestDdmin:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9),
                    min_size=1, max_size=24),
           st.sets(st.integers(min_value=0, max_value=9),
                   min_size=1, max_size=3))
    def test_one_minimal_and_replaying(self, items, targets):
        """The minimized list still satisfies the predicate and is
        1-minimal: dropping any single element breaks it."""
        targets = {t for t in targets if t in items} or {items[0]}

        def replays(candidate):
            return targets <= set(candidate)

        minimal = ddmin(items, replays)
        assert replays(minimal)
        assert len(minimal) <= len(items)
        for index in range(len(minimal)):
            assert not replays(minimal[:index] + minimal[index + 1:])

    def test_strictly_shorter_when_noise_present(self):
        """Padding around a single culprit is always removed."""
        items = [0] * 10 + [7] + [0] * 10
        minimal = ddmin(items, lambda c: 7 in c)
        assert minimal == [7]

    def test_respects_eval_budget(self):
        calls = [0]

        def replays(candidate):
            calls[0] += 1
            return 7 in candidate

        ddmin([0] * 30 + [7], replays, max_evals=5)
        assert calls[0] <= 6


class TestShrinkRealCase:
    def test_silent_corruption_minimizes_strictly_shorter(self):
        """A real flat-RTOS silent-corruption case (hostile op buried
        in honest noise) shrinks to a strictly shorter sequence that
        replays the same outcome and reason."""
        from repro.faults.adversary.families import (
            TaskProgramAdversary, run_case)
        family = TaskProgramAdversary(protected=False)
        case = family.generate(derive_seed("shrink-test", 1))
        noise = (("store", 0, 64, 8), ("delay", 1, 2),
                 ("load", 0, 16, 4), ("store", 1, 256, 8))
        case = case.with_ops(noise[:2] + (("kstore", 0, 5),)
                             + noise[2:])
        original = run_case(family, case)
        assert original.outcome == "silent_corruption"

        minimized, evals = shrink_case(family, case)
        assert len(minimized.ops) < len(case.ops)
        assert evals > 0
        record = run_case(family, minimized)
        assert record.outcome == original.outcome
        assert record.reason == original.reason

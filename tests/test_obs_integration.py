"""Integration: the six instrumented subsystems emit the expected
spans/metrics when the global telemetry facade is enabled, and remain
silent when it is disabled (the default)."""

import numpy as np
import pytest

from repro.obs import TELEMETRY


@pytest.fixture
def enabled_telemetry():
    """Enable and reset the global facade; restore afterwards."""
    was_enabled = TELEMETRY.enabled
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield TELEMETRY
    TELEMETRY.reset()
    TELEMETRY.enabled = was_enabled


def _span_names():
    return {record["name"] for record in TELEMETRY.tracer.snapshot()}


def test_hades_exhaustive_emits_per_goal_spans(enabled_telemetry):
    from repro.hades import (DesignContext, ExhaustiveExplorer,
                             OptimizationGoal)
    from repro.hades.library import keccak

    explorer = ExhaustiveExplorer(keccak(),
                                  DesignContext(masking_order=1))
    result = explorer.run(OptimizationGoal.AREA)
    explorer.run(OptimizationGoal.LATENCY)
    runs = [r for r in TELEMETRY.tracer.snapshot()
            if r["name"] == "hades.exhaustive.run"]
    assert [r["attrs"]["goal"] for r in runs] == ["AREA", "LATENCY"]
    assert runs[0]["attrs"]["feasible"] == result.feasible
    snapshot = TELEMETRY.metrics_snapshot()
    assert snapshot["hades.evaluations"]["value"] == \
        result.feasible * 2
    assert snapshot["hades.evals_per_sec"]["value"] > 0


def test_hades_local_search_emits_descent_spans(enabled_telemetry):
    from repro.hades import (DesignContext, LocalSearchExplorer,
                             OptimizationGoal)
    from repro.hades.library import keccak

    result = LocalSearchExplorer(
        keccak(), DesignContext(masking_order=1)).run(
        OptimizationGoal.AREA, starts=3)
    names = _span_names()
    assert "hades.local_search.run" in names
    assert "hades.local_search.descent" in names
    assert TELEMETRY.metrics_snapshot()["hades.evaluations"][
        "value"] == result.evaluations


def test_cim_attack_emits_phase_spans_and_query_counter(
        enabled_telemetry):
    from repro.cim import (DigitalCimMacro, PowerModel,
                           WeightExtractionAttack)

    rng = np.random.default_rng(5)
    weights = [int(w) for w in rng.integers(0, 16, 16)]
    attack = WeightExtractionAttack(DigitalCimMacro(weights),
                                    PowerModel(0.0), repetitions=1)
    attack.run()
    names = _span_names()
    assert {"cim.attack.run", "cim.phase1",
            "cim.phase1.trace_generation", "cim.phase1.clustering",
            "cim.phase2.combination"} <= names
    snapshot = TELEMETRY.metrics_snapshot()
    assert snapshot["cim.queries"]["value"] == attack.queries_used
    assert snapshot["cim.power.traces"]["value"] == attack.queries_used


def test_rtos_kernel_counters_match_stats(enabled_telemetry):
    from repro.rtos.kernel import Kernel

    kernel = Kernel()

    def spin(context):
        for _ in range(3):
            yield

    kernel.create_task("a", 2, spin)
    kernel.create_task("b", 1, spin)
    stats = kernel.run(max_ticks=50)
    snapshot = TELEMETRY.metrics_snapshot()
    assert snapshot["rtos.context_switches"]["value"] == \
        stats.context_switches
    assert snapshot["rtos.scheduler_decisions"]["value"] >= stats.ticks
    run_span = [r for r in TELEMETRY.tracer.snapshot()
                if r["name"] == "rtos.kernel.run"][0]
    assert run_span["attrs"]["ticks"] == stats.ticks


def test_rtos_pmp_fault_counter(enabled_telemetry):
    from repro.rtos.kernel import Kernel

    kernel = Kernel(protected=True)

    def spin(context):
        for _ in range(20):
            yield

    victim = kernel.create_task("victim", 1, spin, data_bytes=4096)

    def attacker(context):
        yield
        context.load(victim.data_regions[0].base, 4)   # foreign memory

    kernel.create_task("attacker", 2, attacker)
    stats = kernel.run(max_ticks=50)
    assert stats.faults >= 1
    assert TELEMETRY.metrics_snapshot()["rtos.pmp_faults"][
        "value"] == stats.faults


def test_tee_boot_and_attest_spans(enabled_telemetry):
    from repro.tee import build_tee

    platform = build_tee(post_quantum=True)
    enclave = platform.sm.create_enclave(b"model-runner")
    platform.sm.attest_enclave(enclave, b"nonce")
    names = _span_names()
    assert {"tee.boot", "tee.boot.measure", "tee.boot.sign",
            "tee.boot.derive_sm_keys", "tee.boot.certify",
            "tee.boot.regenerate_pq_key", "tee.attest",
            "tee.attest.sign"} <= names
    schemes = {r["attrs"]["scheme"]
               for r in TELEMETRY.tracer.snapshot()
               if r["name"] == "tee.attest.sign"}
    assert schemes == {"ed25519", "mldsa"}
    snapshot = TELEMETRY.metrics_snapshot()
    assert snapshot["tee.attest.sign_seconds"]["count"] == 2


def test_crypto_sign_verify_timing_histograms(enabled_telemetry):
    from repro.crypto import ed25519
    from repro.crypto.mldsa import ML_DSA_44, MLDSA

    signature = ed25519.sign(bytes(32), b"msg")
    assert ed25519.verify(ed25519.public_key(bytes(32)), b"msg",
                          signature)
    scheme = MLDSA(ML_DSA_44)
    public, secret = scheme.key_gen(bytes(32))
    assert scheme.verify(public, b"msg", scheme.sign(secret, b"msg"))
    snapshot = TELEMETRY.metrics_snapshot()
    for name in ("crypto.ed25519.sign_seconds",
                 "crypto.ed25519.verify_seconds",
                 "crypto.mldsa.sign_seconds",
                 "crypto.mldsa.verify_seconds"):
        assert snapshot[name]["count"] >= 1
        assert snapshot[name]["p50"] > 0


def test_compsoc_slot_utilization_gauges(enabled_telemetry):
    from repro.compsoc import ComposablePlatform
    from repro.compsoc.vep import Application

    platform = ComposablePlatform(policy="tdm")
    vep = platform.create_vep("v1", memory_bytes=1 << 16)
    vep.attach(Application("app1",
                           [("compute", 2), ("mem", vep.memory.base),
                            ("compute", 1),
                            ("mem", vep.memory.base + 8)]))
    platform.run(max_cycles=500)
    snapshot = TELEMETRY.metrics_snapshot()
    overall = snapshot["compsoc.slot_utilization"]["value"]
    assert 0 < overall <= 1
    assert snapshot["compsoc.transactions.v1"]["value"] == 2
    run_span = [r for r in TELEMETRY.tracer.snapshot()
                if r["name"] == "compsoc.run"][0]
    assert run_span["attrs"]["utilization"] == pytest.approx(overall)


def test_subsystems_silent_when_disabled():
    from repro.hades import (DesignContext, ExhaustiveExplorer,
                             OptimizationGoal)
    from repro.hades.library import keccak

    assert not TELEMETRY.enabled       # the repo-wide default
    TELEMETRY.reset()
    ExhaustiveExplorer(keccak(), DesignContext(masking_order=1)).run(
        OptimizationGoal.AREA)
    assert TELEMETRY.tracer.snapshot() == []
    assert TELEMETRY.metrics_snapshot() == {}

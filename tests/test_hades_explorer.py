"""Tests for the exhaustive and local-search explorers."""

import pytest

from repro.hades import (DesignContext, ExhaustiveExplorer,
                         InfeasibleConfiguration, LocalSearchExplorer,
                         Metrics, OptimizationGoal, Template, neighbours)

G = OptimizationGoal


def _quadratic_template():
    """area = (a-3)^2 + (b-5)^2 + 1; unique optimum at a=3, b=5."""
    def cost(params, subs, context):
        return Metrics((params["a"] - 3) ** 2 + (params["b"] - 5) ** 2
                       + 1.0, 1.0)

    return Template("quad", cost, parameters={"a": tuple(range(8)),
                                              "b": tuple(range(8))})


def _nested_template():
    leaf_a = Template("leaf_a",
                      lambda p, s, c: Metrics(p["x"] + 1.0, 2.0),
                      parameters={"x": (0, 1, 2)})
    leaf_b = Template("leaf_b", lambda p, s, c: Metrics(10.0, 1.0))
    return Template(
        "parent",
        lambda p, s, c: s["s"].combine(Metrics(p["y"], 0.0)),
        parameters={"y": (0, 5)}, slots={"s": (leaf_a, leaf_b)})


class TestExhaustive:
    def test_finds_unique_optimum(self):
        result = ExhaustiveExplorer(_quadratic_template()).run(G.AREA)
        assert result.best.configuration.param("a") == 3
        assert result.best.configuration.param("b") == 5
        assert result.best_score == 1.0

    def test_explored_equals_space_size(self):
        result = ExhaustiveExplorer(_quadratic_template()).run(G.AREA)
        assert result.explored == 64
        assert result.feasible == 64

    def test_nested_optimum(self):
        result = ExhaustiveExplorer(_nested_template()).run(G.AREA)
        assert result.best.metrics.area_kge == 1.0   # y=0, leaf_a x=0
        assert result.best.configuration.slot("s").template == "leaf_a"

    def test_latency_goal_prefers_leaf_b(self):
        result = ExhaustiveExplorer(_nested_template()).run(G.LATENCY)
        assert result.best.configuration.slot("s").template == "leaf_b"

    def test_top_k_sorted(self):
        result = ExhaustiveExplorer(_quadratic_template()).run(G.AREA,
                                                               top_k=5)
        scores = [G.AREA.score(d.metrics) for d in result.top]
        assert scores == sorted(scores)
        assert len(result.top) == 5
        assert scores[0] == 1.0

    def test_all_infeasible_raises(self):
        def cost(params, subs, context):
            raise InfeasibleConfiguration("nope")

        t = Template("t", cost, parameters={"a": (1, 2)})
        with pytest.raises(InfeasibleConfiguration):
            ExhaustiveExplorer(t).run(G.AREA)

    def test_run_all_goals_skips_masked_goals_at_order_0(self):
        results = ExhaustiveExplorer(_quadratic_template(),
                                     DesignContext()).run_all_goals()
        assert G.RANDOMNESS not in results
        assert G.AREA in results

    def test_run_all_goals_includes_masked_goals_when_masked(self):
        t = Template("t", lambda p, s, c: Metrics(1, 1, p["a"] + 1.0),
                     parameters={"a": (0, 1)})
        results = ExhaustiveExplorer(
            t, DesignContext(masking_order=1)).run_all_goals()
        assert G.RANDOMNESS in results
        assert results[G.RANDOMNESS].best_score == 1.0

    def test_tie_break_prefers_smaller_alp(self):
        # Both latency-1 designs tie; the smaller-area one must win.
        t = Template("t", lambda p, s, c: Metrics(p["a"], 1.0),
                     parameters={"a": (5, 2, 9)})
        result = ExhaustiveExplorer(t).run(G.LATENCY)
        assert result.best.metrics.area_kge == 2


class TestNeighbours:
    def test_parameter_neighbours(self):
        t = _quadratic_template()
        config = t.default_configuration()
        moves = list(neighbours(t, config))
        # 7 alternatives for a + 7 for b.
        assert len(moves) == 14

    def test_slot_neighbours_include_candidate_switch(self):
        t = _nested_template()
        config = t.default_configuration()   # slot = leaf_a, x=0
        moves = list(neighbours(t, config))
        slot_templates = {m.slot("s").template for m in moves}
        assert "leaf_b" in slot_templates
        # y: 1 alternative; slot switch: 1; leaf_a.x: 2 → 4 moves.
        assert len(moves) == 4

    def test_neighbours_differ_in_exactly_one_site(self):
        t = _quadratic_template()
        config = t.default_configuration()
        for move in neighbours(t, config):
            differing = sum(1 for (ka, va), (kb, vb)
                            in zip(config.params, move.params)
                            if va != vb)
            assert differing == 1


class TestLocalSearch:
    def test_finds_optimum_on_smooth_landscape(self):
        result = LocalSearchExplorer(_quadratic_template(),
                                     seed=7).run(G.AREA, starts=3)
        assert result.best_score == 1.0

    def test_single_start_can_miss_on_rugged_landscape(self):
        # A landscape with a deceptive local optimum.
        def cost(params, subs, context):
            a = params["a"]
            value = {0: 5.0, 1: 6.0, 2: 7.0, 3: 2.0, 4: 6.5}[a]
            return Metrics(value, 1.0)

        t = Template("rugged", cost, parameters={"a": (0, 1, 2, 3, 4)})
        # From a=0 the only downhill move is directly to 3 (coordinate
        # moves test all values of a), so this landscape is actually
        # solvable in one move — verify multi-start still finds 2.0.
        result = LocalSearchExplorer(t, seed=1).run(G.AREA, starts=2)
        assert result.best_score == 2.0

    def test_matches_exhaustive_on_nested_space(self):
        exhaustive = ExhaustiveExplorer(_nested_template()).run(G.AREA)
        local = LocalSearchExplorer(_nested_template(),
                                    seed=3).run(G.AREA, starts=10)
        assert local.best_score == exhaustive.best_score

    def test_far_fewer_evaluations_than_exhaustive(self):
        t = _quadratic_template()
        local = LocalSearchExplorer(t, seed=0).run(G.AREA, starts=2)
        assert local.evaluations < t.count_configurations() * 2

    def test_deterministic_for_seed(self):
        a = LocalSearchExplorer(_quadratic_template(), seed=5).run(
            G.AREA, starts=3)
        b = LocalSearchExplorer(_quadratic_template(), seed=5).run(
            G.AREA, starts=3)
        assert a.best.configuration == b.best.configuration

    def test_recovers_from_infeasible_start(self):
        def cost(params, subs, context):
            if params["a"] >= 3:
                raise InfeasibleConfiguration("masked LUT etc.")
            return Metrics(float(params["a"] + 1), 1.0)

        t = Template("t", cost, parameters={"a": (0, 1, 2, 3, 4, 5)})
        result = LocalSearchExplorer(t, seed=11).run(G.AREA, starts=8)
        assert result.best_score == 1.0

"""Unit tests for the deterministic parallel execution layer."""

import pytest

from repro.obs import TELEMETRY
from repro.obs.perf import PERF
from repro.runtime import (Memo, available_cpus, chunk_bounds,
                           fork_available, parallel_map, resolve_jobs,
                           run_sharded, stride_shards)
from repro.runtime import executor


@pytest.fixture
def enabled_obs():
    """Both observability facades on, clean, restored afterwards."""
    was_perf, was_tel = PERF.enabled, TELEMETRY.enabled
    PERF.enable()
    PERF.reset()
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield
    PERF.reset()
    TELEMETRY.reset()
    PERF.enabled, TELEMETRY.enabled = was_perf, was_tel


class TestChunkBounds:
    def test_covers_range_exactly(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_even_split(self):
        assert chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_more_parts_than_items(self):
        bounds = chunk_bounds(2, 5)
        assert bounds == [(0, 1), (1, 2)]   # never an empty chunk

    def test_single_part(self):
        assert chunk_bounds(7, 1) == [(0, 7)]

    def test_empty(self):
        assert chunk_bounds(0, 4) == []

    @pytest.mark.parametrize("total,parts", [(1, 1), (13, 4), (100, 7),
                                             (5, 5), (6, 13)])
    def test_partition_property(self, total, parts):
        bounds = chunk_bounds(total, parts)
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(total))
        sizes = [hi - lo for lo, hi in bounds]
        assert all(size > 0 for size in sizes)
        assert max(sizes) - min(sizes) <= 1

    def test_negative_total(self):
        assert chunk_bounds(-3, 2) == []


class TestStrideShards:
    def test_shapes(self):
        assert stride_shards(3) == [(0, 3), (1, 3), (2, 3)]
        assert stride_shards(1) == [(0, 1)]

    def test_partition_property(self):
        shards = stride_shards(4)
        covered = sorted(i for offset, step in shards
                         for i in range(offset, 23, step))
        assert covered == list(range(23))

    def test_degenerate(self):
        assert stride_shards(0) == [(0, 1)]


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(jobs=3) == 3

    def test_explicit_wins_over_small_work(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(jobs=4, work=2, min_work_per_job=100) == 4

    def test_env_number(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs() == 4

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() == available_cpus()

    def test_env_invalid_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert resolve_jobs() == 1

    def test_env_scaled_down_by_work(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert resolve_jobs(work=30, min_work_per_job=10) == 3
        assert resolve_jobs(work=5, min_work_per_job=10) == 1
        assert resolve_jobs(work=1000, min_work_per_job=10) == 8

    def test_inside_worker_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        monkeypatch.setattr(executor, "_IN_WORKER", True)
        assert resolve_jobs() == 1
        assert resolve_jobs(jobs=4) == 1

    def test_no_fork_is_serial(self, monkeypatch):
        monkeypatch.setattr(executor, "fork_available", lambda: False)
        assert resolve_jobs(jobs=4) == 1


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(17))
        assert parallel_map(_square, items) == [x * x for x in items]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_parallel_matches_serial(self):
        items = list(range(23))
        serial = parallel_map(_square, items, jobs=1)
        assert parallel_map(_square, items, jobs=2) == serial
        assert parallel_map(_square, items, jobs=4) == serial

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_closures_cross_by_fork(self):
        offset = 1000   # captured, never pickled
        result = parallel_map(lambda x: x + offset, range(6), jobs=2)
        assert result == [1000, 1001, 1002, 1003, 1004, 1005]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_worker_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise ValueError("item 3")
            return x

        with pytest.raises(ValueError, match="item 3"):
            parallel_map(boom, range(6), jobs=2)

    def test_empty_and_single(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]


def _counting_worker(state, bounds):
    lo, hi = bounds
    for index in range(lo, hi):
        PERF.inc("test.work")
        TELEMETRY.counter("test.items").inc()
        with TELEMETRY.span("test.item", index=index):
            pass
    return hi - lo


class TestRunSharded:
    def test_serial_path_runs_inline(self):
        calls = []
        out = run_sharded(lambda state, shard: calls.append(shard)
                          or shard, "state", [(0, 2), (2, 4)], jobs=1)
        assert out == [(0, 2), (2, 4)]
        assert calls == [(0, 2), (2, 4)]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_results_in_shard_order(self):
        shards = chunk_bounds(40, 4)
        out = run_sharded(lambda state, b: b[1] - b[0], None, shards,
                          jobs=4)
        assert out == [10, 10, 10, 10]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_observability_totals_match_serial(self, enabled_obs):
        shards = chunk_bounds(20, 4)
        serial = run_sharded(_counting_worker, None, shards, jobs=1)
        serial_perf = PERF.snapshot()["test.work"]
        serial_metric = TELEMETRY.metrics_snapshot()[
            "test.items"]["value"]
        serial_spans = sum(1 for r in TELEMETRY.tracer.snapshot()
                           if r["name"] == "test.item")
        PERF.reset()
        TELEMETRY.reset()

        parallel = run_sharded(_counting_worker, None, shards, jobs=4)
        assert parallel == serial
        assert PERF.snapshot()["test.work"] == serial_perf
        assert PERF.snapshot()["runtime.pools"] == 1
        assert PERF.snapshot()["runtime.shards"] == len(shards)
        assert TELEMETRY.metrics_snapshot()[
            "test.items"]["value"] == serial_metric
        spans = [r for r in TELEMETRY.tracer.snapshot()
                 if r["name"] == "test.item"]
        assert len(spans) == serial_spans
        # Worker spans re-id'd on merge: ids must stay unique.
        ids = [r["span_id"] for r in TELEMETRY.tracer.snapshot()]
        assert len(ids) == len(set(ids))

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_worker_spans_nest_under_fanout_span(self, enabled_obs):
        with TELEMETRY.span("test.fanout"):
            run_sharded(_counting_worker, None, chunk_bounds(8, 2),
                        jobs=2)
        records = TELEMETRY.tracer.snapshot()
        fanout = next(r for r in records if r["name"] == "test.fanout")
        items = [r for r in records if r["name"] == "test.item"]
        assert len(items) == 8
        assert all(r["parent_id"] == fanout["span_id"] for r in items)
        assert all(r["depth"] == fanout["depth"] + 1 for r in items)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_fork_state_cleared_after_run(self):
        run_sharded(lambda s, b: 0, object(), [(0, 1), (1, 2)], jobs=2)
        assert executor._FORK_STATE is None


class TestMemo:
    def test_miss_then_hit(self):
        memo = Memo()
        found, value = memo.lookup("k")
        assert (found, value) == (False, None)
        memo.store("k", 42)
        assert memo.lookup("k") == (True, 42)
        assert memo.hits == 1 and memo.misses == 1

    def test_none_is_a_legal_value(self):
        memo = Memo()
        memo.store("infeasible", None)
        found, value = memo.lookup("infeasible")
        assert found is True and value is None

    def test_lru_eviction_order(self):
        memo = Memo(maxsize=2)
        memo.store("a", 1)
        memo.store("b", 2)
        memo.lookup("a")            # refresh a: b is now LRU
        memo.store("c", 3)
        assert "b" not in memo
        assert "a" in memo and "c" in memo
        assert memo.evictions == 1

    def test_stats(self):
        memo = Memo(maxsize=8)
        memo.store("a", 1)
        memo.lookup("a")
        memo.lookup("zzz")
        assert memo.stats() == {"size": 1, "maxsize": 8, "hits": 1,
                                "misses": 1, "evictions": 0}

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ValueError):
            Memo(maxsize=0)

"""Property tests for the tamper-evident audit ledger (ISSUE 8).

Pins the three contracts the security-observability plane leans on:

* canonical encoding is a bijection — encode/decode/re-encode is
  byte-identical for every JSON-native value (hypothesis), so the
  hash chain has exactly one valid serialization;
* the chain detects *any* tamper — a flipped bit anywhere in the
  serialized artifact, a dropped record, a reordered pair, and even a
  consistently re-hashed rewrite (which only the Ed25519 checkpoint
  signature can catch);
* worker event bodies merged through the parent chain reproduce the
  serial chain byte for byte (the ``REPRO_JOBS`` parity recipe).
"""

import pathlib
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.audit import (GENESIS, AuditLedger,
                             AuditVerificationError, canonical_decode,
                             canonical_encode, chain_hash,
                             load_ledger_records, summarize_records,
                             verify_records)

# -- strategies -----------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5)),
    max_leaves=20)


def _sample_ledger(checkpoint_every: int = 3) -> AuditLedger:
    ledger = AuditLedger(enabled=True,
                         checkpoint_every=checkpoint_every)
    ledger.emit("tee.boot", "boot-verified", post_quantum=True)
    ledger.emit("tee.boot", "boot-rejected", severity="critical",
                reason="boot-verification-failed")
    ledger.emit("soc.pmp", "pmp-denial", severity="warning",
                access="write", address=4096, size=4)
    ledger.emit("tee.delivery", "delivery-attempt-failed",
                severity="warning", reason="replay", attempt=1)
    ledger.emit("soc.bus", "bus-watchdog", severity="critical",
                cycle=10_000, pending=3)
    ledger.emit("faults.campaign", "hardening-violation",
                severity="critical", scenario="rtos-protected",
                outcome="silent_corruption")
    return ledger


# -- canonical encoding ---------------------------------------------------

class TestCanonicalEncoding:
    @settings(max_examples=80, deadline=None)
    @given(json_values)
    def test_round_trip_byte_identity(self, value):
        encoded = canonical_encode(value)
        assert canonical_encode(canonical_decode(encoded)) == encoded

    def test_sorted_keys_and_compact(self):
        assert canonical_encode({"b": 1, "a": [1, 2]}) == \
            b'{"a":[1,2],"b":1}'

    def test_ascii_only(self):
        encoded = canonical_encode({"msg": "café"})
        assert max(encoded) < 128

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_encode(float("nan"))
        with pytest.raises(ValueError):
            canonical_encode({"x": float("inf")})

    def test_non_json_native_rejected(self):
        with pytest.raises(TypeError):
            canonical_encode({"x": b"bytes"})


# -- chain construction ---------------------------------------------------

class TestChain:
    def test_verify_fresh_ledger(self):
        ledger = _sample_ledger()
        stats = verify_records(ledger.export_records())
        assert stats["events"] == 6
        assert stats["checkpoints"] >= 2
        assert stats["by_subsystem"]["tee.boot"]["critical"] == 1
        assert stats["by_severity"]["critical"] == 3

    def test_empty_ledger_still_exports_and_verifies(self):
        records = AuditLedger(enabled=True).export_records()
        assert records[0]["type"] == "header"
        assert records[-1]["type"] == "checkpoint"
        assert verify_records(records)["events"] == 0

    def test_disabled_emit_is_noop(self):
        ledger = AuditLedger(enabled=False)
        assert ledger.emit("tee.boot", "boot-verified") is None
        assert ledger.event_count() == 0

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            AuditLedger(enabled=True).emit("x", "y", severity="fatal")

    def test_head_chains_from_genesis(self):
        ledger = AuditLedger(enabled=True, checkpoint_every=0)
        record = ledger.emit("tee.boot", "boot-verified")
        header = ledger.records()[0]
        head0 = chain_hash(GENESIS, header)
        assert record["prev"] == head0
        assert record["hash"] == chain_hash(
            head0, {"type": "event", "seq": 0,
                    "subsystem": "tee.boot", "kind": "boot-verified",
                    "severity": "info", "detail": {}})

    def test_export_requires_trailing_checkpoint(self):
        ledger = _sample_ledger(checkpoint_every=0)
        records = ledger.records()
        assert records[-1]["type"] == "event"
        with pytest.raises(AuditVerificationError,
                           match="does not end"):
            verify_records(records)
        assert ledger.export_records()[-1]["type"] == "checkpoint"

    def test_write_and_load_round_trip(self, tmp_path):
        ledger = _sample_ledger()
        path = ledger.write(tmp_path / "audit.jsonl")
        records = load_ledger_records(path)
        assert verify_records(records)["events"] == 6
        summary = summarize_records(records)
        assert summary["events"] == 6
        assert summary["by_kind"]["pmp-denial"] == 1


# -- tamper detection -----------------------------------------------------

class TestTamperDetection:
    def _serialized(self) -> bytes:
        lines = [canonical_encode(record)
                 for record in _sample_ledger().export_records()]
        return b"\n".join(lines) + b"\n"

    def _verify_bytes(self, data: bytes):
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "tampered.jsonl"
            path.write_bytes(data)
            verify_records(load_ledger_records(path))

    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_any_single_bit_flip_detected(self, data):
        serialized = self._serialized()
        position = data.draw(st.integers(0, len(serialized) - 1))
        bit = data.draw(st.integers(0, 7))
        tampered = bytearray(serialized)
        tampered[position] ^= 1 << bit
        with pytest.raises(AuditVerificationError):
            self._verify_bytes(bytes(tampered))

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_any_dropped_record_detected(self, data):
        records = _sample_ledger().export_records()
        index = data.draw(st.integers(0, len(records) - 1))
        with pytest.raises(AuditVerificationError):
            verify_records(records[:index] + records[index + 1:])

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_any_reordered_pair_detected(self, data):
        records = _sample_ledger().export_records()
        index = data.draw(st.integers(0, len(records) - 2))
        swapped = list(records)
        swapped[index], swapped[index + 1] = \
            swapped[index + 1], swapped[index]
        with pytest.raises(AuditVerificationError):
            verify_records(swapped)

    def test_rehashed_rewrite_caught_by_signature(self):
        """An attacker who edits an event and consistently recomputes
        every downstream link still cannot forge the checkpoint
        signature — the reason checkpoints exist at all."""
        records = _sample_ledger(checkpoint_every=0).export_records()
        records[1]["detail"] = dict(records[1]["detail"],
                                    post_quantum=False)
        head = chain_hash(GENESIS, {
            "type": "header",
            "schema_version": records[0]["schema_version"],
            "name": records[0]["name"],
            "public_key": records[0]["public_key"]})
        for record in records[1:]:
            if record["type"] == "checkpoint":
                record["head"] = head
            body = {key: record[key] for key in record
                    if key not in ("prev", "hash")}
            record["prev"] = head
            record["hash"] = chain_hash(head, body)
            head = record["hash"]
        with pytest.raises(AuditVerificationError,
                           match="signature invalid"):
            verify_records(records)

    def test_truncated_tail_detected(self):
        records = _sample_ledger(checkpoint_every=0).export_records()
        with pytest.raises(AuditVerificationError):
            verify_records(records[:-1])

    def test_malformed_line_is_one_line_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "header"\nnot json\n')
        with pytest.raises(AuditVerificationError, match="line 1"):
            load_ledger_records(path)

    def test_invalid_utf8_is_one_line_error(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_bytes(b'{"type": "hea\xffder"}\n')
        with pytest.raises(AuditVerificationError, match="UTF-8"):
            load_ledger_records(path)


# -- worker merge parity --------------------------------------------------

class TestWorkerMerge:
    def test_merged_bodies_reproduce_serial_chain(self):
        serial = AuditLedger(enabled=True, checkpoint_every=3)
        for index in range(7):
            serial.emit("soc.pmp", "pmp-denial", severity="warning",
                        index=index)

        parent = AuditLedger(enabled=True, checkpoint_every=3)
        worker = AuditLedger(enabled=True)
        worker.reset_worker()
        worker.enabled = True
        assert worker.checkpoint_every == 0
        mark = worker.mark()
        for index in range(7):
            worker.emit("soc.pmp", "pmp-denial", severity="warning",
                        index=index)
        parent.merge_bodies(worker.bodies_since(mark))

        serial_bytes = [canonical_encode(r)
                        for r in serial.export_records()]
        parent_bytes = [canonical_encode(r)
                        for r in parent.export_records()]
        assert parent_bytes == serial_bytes

    def test_reset_worker_drops_listeners_and_records(self):
        ledger = _sample_ledger()
        seen = []
        ledger.add_listener(seen.append)
        ledger.reset_worker()
        assert ledger.event_count() == 0
        ledger.emit("tee.boot", "boot-verified")
        assert not seen
        assert ledger.enabled    # the switch survives, like PERF's

"""Sanity tests for the cost models of the non-AES library templates.

Table I pins their configuration counts; these tests pin the *physics*
of the predictions: serial architectures trade latency for area,
masking costs randomness proportional to non-linear gate counts, nested
adders propagate their metrics upward.
"""

import pytest

from repro.hades import (DesignContext, ExhaustiveExplorer,
                         OptimizationGoal, enumerate_designs)
from repro.hades.library import (adder_mod_q, chacha20, keccak,
                                 kyber_cca, kyber_cpa, polymul,
                                 sparse_polymul)

G = OptimizationGoal


def _best(template, goal, order=0):
    return ExhaustiveExplorer(
        template, DesignContext(masking_order=order)).run(goal).best


class TestKeccakModel:
    def test_serial_is_smaller_and_slower(self):
        area_best = _best(keccak(), G.AREA)
        latency_best = _best(keccak(), G.LATENCY)
        assert area_best.configuration.slot("core").template == \
            "keccak_slice_serial"
        assert latency_best.configuration.slot("core").template == \
            "keccak_full_width"
        assert area_best.metrics.area_kge < latency_best.metrics.area_kge
        assert area_best.metrics.latency_cc > \
            latency_best.metrics.latency_cc

    def test_masked_randomness_tracks_chi_gates(self):
        """Chi is 1600 ANDs/round: a full-width unroll-1 design needs
        exactly 1600 fresh bits per cycle at d=1."""
        designs = list(enumerate_designs(keccak(),
                                         DesignContext(masking_order=1)))
        unroll_1 = next(
            d for d in designs
            if d.configuration.slot("core").template ==
            "keccak_full_width"
            and d.configuration.slot("core").param("unroll") == 1)
        assert unroll_1.metrics.randomness_bits == 1600

    def test_unrolling_trades_area_for_throughput_not_latency(self):
        designs = list(enumerate_designs(keccak(), DesignContext()))
        full = {d.configuration.slot("core").param("unroll"): d.metrics
                for d in designs
                if d.configuration.slot("core").template ==
                "keccak_full_width"}
        assert full[24].area_kge > 10 * full[1].area_kge


class TestChaChaModel:
    def test_adder_choice_propagates(self):
        """Two designs differing only in the nested adder must differ
        in cost exactly through the adder's contribution."""
        designs = list(enumerate_designs(chacha20(), DesignContext()))
        by_adder = {}
        for design in designs:
            params = dict(design.configuration.params)
            if (params["qr_parallelism"], params["double_round_unroll"],
                    params["pipeline"]) == (1, 1, 0):
                by_adder[design.configuration.slot(
                    "adder32").template] = design.metrics
        assert by_adder["ripple_carry"].area_kge < \
            by_adder["parallel_prefix"].area_kge
        assert by_adder["ripple_carry"].latency_cc > \
            by_adder["parallel_prefix"].latency_cc

    def test_parallelism_increases_area(self):
        area_best = _best(chacha20(), G.AREA)
        latency_best = _best(chacha20(), G.LATENCY)
        assert area_best.configuration.param("qr_parallelism") == 1
        assert latency_best.metrics.area_kge > \
            area_best.metrics.area_kge


class TestPolymulModels:
    def test_sparse_parallelism_tradeoff(self):
        area_best = _best(sparse_polymul(), G.AREA)
        latency_best = _best(sparse_polymul(), G.LATENCY)
        assert area_best.configuration.param("coeff_parallelism") == 1
        assert latency_best.configuration.param("coeff_parallelism") == 8

    def test_dense_nests_two_adders(self):
        design = _best(polymul(), G.AREA)
        assert design.configuration.slot("mod_adder").template == \
            "adder_mod_q"
        accumulator = design.configuration.slot("accumulator")
        assert accumulator.template in (
            "ripple_carry", "carry_lookahead", "carry_skip",
            "carry_select", "carry_increment", "parallel_prefix",
            "carry_save_hybrid", "digit_serial")

    def test_masked_polymul_needs_randomness(self):
        masked = _best(polymul(), G.AREA, order=1)
        assert masked.metrics.randomness_bits > 0


class TestKyberModels:
    def test_cpa_cost_dominated_by_multiplier(self):
        design = _best(kyber_cpa(), G.AREA)
        multiplier = design.configuration.slot("polymul")
        assert multiplier.template == "polymul"
        assert design.metrics.latency_cc > 9 * 16  # k^2 products

    def test_cca_more_expensive_than_cpa(self):
        """FO decapsulation re-encrypts: CCA latency > CPA latency for
        comparable optimisation goals."""
        cpa = _best(kyber_cpa(), G.LATENCY)
        cca = _best(kyber_cca(), G.LATENCY)
        assert cca.metrics.latency_cc > cpa.metrics.latency_cc

    def test_cca_local_choices_matter(self):
        by_compare = {}
        for design in enumerate_designs(kyber_cca(), DesignContext()):
            params = dict(design.configuration.params)
            if params["sampler"] == "lut" and \
                    params["control"] == "fsm" and \
                    params["compare"] not in by_compare:
                by_compare[params["compare"]] = design.metrics
            if {"serial", "tree"} <= set(by_compare):
                break
        assert by_compare["serial"].area_kge < \
            by_compare["tree"].area_kge
        assert by_compare["serial"].latency_cc > \
            by_compare["tree"].latency_cc


class TestAdderModQModel:
    def test_reduction_strategies_ordered(self):
        designs = {
            (c.configuration.param("core"),
             c.configuration.param("reduction")): c.metrics
            for c in enumerate_designs(adder_mod_q(), DesignContext())}
        # Lazy reduction is the cheapest add-on; LUT the largest area.
        ks_lazy = designs[("kogge_stone", "lazy")]
        ks_lut = designs[("kogge_stone", "lut")]
        ks_barrett = designs[("kogge_stone", "barrett")]
        assert ks_lazy.area_kge < ks_lut.area_kge
        assert ks_lazy.latency_cc < ks_barrett.latency_cc

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_arbitrary_order_masking_works(self, order):
        """The HADES headline: any template masks at any order."""
        result = ExhaustiveExplorer(
            adder_mod_q(),
            DesignContext(masking_order=order)).run(G.RANDOMNESS)
        assert result.best.metrics.randomness_bits > 0
        assert result.feasible == 42

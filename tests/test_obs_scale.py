"""Campaign-scale streaming acceptance tests (ISSUE 6 tentpole).

The claims these tests pin, at 10^4 injections on a purpose-built
cheap scenario:

* the streaming sink keeps the tracer's finished-span buffer bounded
  (high-water <= one merge batch) while seeing every span — no
  dump-at-exit accumulation;
* the campaign coverage map's canonical JSON is **byte-identical**
  between a serial run and a ``jobs=2`` chunked run, as is the
  campaign JSON itself;
* the *sampled span-name sequence* written by the head+stride sampler
  is identical for any worker count (shard-order merge makes the
  merged stream order equal the serial order — see DESIGN.md);
* both HADES explorers produce byte-identical coverage maps across
  worker counts too.
"""

import json

import pytest

from repro.faults.campaign import FaultPoint, Scenario, run_campaign
from repro.faults.models import BIT_FLIP
from repro.faults.injector import FAULTS
from repro.hades import (DesignContext, ExhaustiveExplorer,
                         LocalSearchExplorer, OptimizationGoal)
from repro.hades.library import TABLE_I_ROWS
from repro.obs import (CoverageMap, HeadStrideSampler, PERF,
                       SpanStream, TELEMETRY)

SEED = 99
INJECTIONS = 10_000


class TinyScenario(Scenario):
    """A microscopic workload built for volume: one corruptible word,
    four rounds, a popcount-dependent perf event so different injected
    bits land in different coverage buckets."""

    name = "tiny"
    hardened = False               # silent corruption is expected here

    def fault_points(self) -> tuple:
        return (FaultPoint(site="tiny.word", model=BIT_FLIP,
                           triggers=4, bits=32),)

    def execute(self) -> dict:
        state = b"\x5a\xa5\x0f\xf0"
        weight = 0
        for _ in range(4):
            state = FAULTS.corrupt("tiny.word", state)
            weight += sum(bin(byte).count("1") for byte in state)
        if PERF.enabled:
            PERF.inc("tiny.popcount", weight)
            PERF.inc("tiny.rounds", 4)
        return {"status": "ok", "reason": "",
                "digest": f"{state.hex()}-{weight:03d}"}


@pytest.fixture
def global_telemetry():
    """Enable the global facade for the duration of one test; restore
    and clear afterwards so other tests see pristine state."""
    was_enabled = TELEMETRY.enabled
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield TELEMETRY
    TELEMETRY.reset()
    TELEMETRY.enabled = was_enabled


def _streamed_campaign(directory, jobs):
    coverage = CoverageMap("tiny_campaign")
    stream = SpanStream(directory,
                        sampler=HeadStrideSampler(head=16, stride=64),
                        batch=512)
    stream.install()
    try:
        result = run_campaign([TinyScenario()], seed=SEED,
                              injections=INJECTIONS, jobs=jobs,
                              coverage=coverage)
    finally:
        stream.close()
    return result, coverage, stream


def _sampled_names(directory) -> list:
    """Span names in the streamed order, across rotated files."""
    names = []
    rotated = sorted(directory.glob("spans.jsonl.*"),
                     key=lambda p: -int(p.suffix[1:]))
    for path in rotated + [directory / "spans.jsonl"]:
        for line in path.read_text().splitlines():
            names.append(json.loads(line)["name"])
    return names


def test_scale_campaign_streams_in_bounded_memory(tmp_path,
                                                  global_telemetry):
    result, coverage, stream = _streamed_campaign(tmp_path, jobs=1)
    assert result.injections == INJECTIONS
    # every span reached the stream, none linger in the tracer
    assert stream.spans_seen > INJECTIONS
    assert TELEMETRY.tracer.finished_count() == 0
    # bounded: the drain batches never exceeded the pump threshold
    assert stream.high_water <= 512
    # sampling thinned the stream by more than an order of magnitude
    assert 0 < stream.spans_sampled < stream.spans_seen // 10
    # coverage found real behavioural diversity (32 bits x 4 triggers
    # collapse into log buckets, plus the untriggered baseline)
    assert coverage.observations == INJECTIONS
    assert 1 < coverage.distinct("tiny") < INJECTIONS // 10
    # live snapshots were flushed alongside the stream
    assert (tmp_path / "metrics.json").exists()
    assert (tmp_path / "perf_counters.json").exists()


def test_scale_campaign_parallel_byte_parity(tmp_path,
                                             global_telemetry):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial, serial_cover, _ = _streamed_campaign(serial_dir, jobs=1)
    TELEMETRY.reset()
    parallel, parallel_cover, parallel_stream = \
        _streamed_campaign(parallel_dir, jobs=2)

    # campaign JSON and coverage JSON: byte-identical across workers
    assert parallel.canonical_json() == serial.canonical_json()
    assert parallel_cover.to_json() == serial_cover.to_json()

    # the deterministic sampler admitted the same span-name sequence:
    # chunks merge in shard order, so the merged stream order (and
    # with it every head+stride decision) equals the serial order
    assert _sampled_names(parallel_dir) == _sampled_names(serial_dir)

    # the parallel run stayed bounded too: chunking capped each
    # capture payload at MAX_RUNS_PER_CHUNK runs' worth of spans
    assert parallel_stream.high_water <= 1200


def test_exhaustive_explorer_coverage_parity():
    _, factory, expected = TABLE_I_ROWS[1]          # AdderModQ, 42

    def run(jobs):
        coverage = CoverageMap("dse")
        ExhaustiveExplorer(factory(), DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA, jobs=jobs,
                                  coverage=coverage)
        return coverage

    serial, parallel = run(1), run(2)
    assert serial.to_json() == parallel.to_json()
    assert serial.observations > 0
    assert 0 < serial.distinct() <= expected


def test_local_search_explorer_coverage_parity():
    _, factory, _ = TABLE_I_ROWS[1]

    def run(jobs):
        coverage = CoverageMap("dse_local")
        LocalSearchExplorer(factory(), DesignContext(
            masking_order=1)).run(OptimizationGoal.AREA, starts=8,
                                  jobs=jobs, coverage=coverage)
        return coverage

    serial, parallel = run(1), run(2)
    assert serial.to_json() == parallel.to_json()
    assert serial.distinct() > 0

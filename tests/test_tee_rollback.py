"""Tests for rollback-protected (versioned) sealing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tee import (MonotonicCounter, RollbackError, VersionedSealer,
                       build_tee)


@pytest.fixture
def sealer():
    return VersionedSealer(b"\x11" * 32, MonotonicCounter())


class TestMonotonicCounter:
    def test_advance(self):
        counter = MonotonicCounter()
        counter.advance_to(5)
        assert counter.value == 5

    def test_cannot_go_backwards(self):
        counter = MonotonicCounter(10)
        with pytest.raises(ValueError):
            counter.advance_to(9)

    def test_same_value_allowed(self):
        counter = MonotonicCounter(3)
        counter.advance_to(3)
        assert counter.value == 3

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            MonotonicCounter(-1)


class TestVersionedSealing:
    def test_roundtrip(self, sealer):
        blob = sealer.seal(1, b"model-v1", b"weights")
        assert sealer.unseal(blob, b"weights") == b"model-v1"

    def test_rollback_rejected_after_commit(self, sealer):
        old_blob = sealer.seal(1, b"model-v1")
        new_blob = sealer.seal(2, b"model-v2")
        sealer.commit(2)
        assert sealer.unseal(new_blob) == b"model-v2"
        with pytest.raises(RollbackError):
            sealer.unseal(old_blob)

    def test_future_versions_acceptable(self, sealer):
        sealer.commit(3)
        blob = sealer.seal(7, b"model-v7")
        assert sealer.unseal(blob) == b"model-v7"

    def test_version_prefix_forgery_detected(self, sealer):
        """Bumping the plaintext version prefix cannot defeat the
        counter: the version is bound inside the AEAD."""
        blob = sealer.seal(1, b"model-v1")
        sealer.commit(2)
        forged = (5).to_bytes(8, "big") + blob[8:]
        with pytest.raises(ValueError):
            sealer.unseal(forged)

    def test_tampered_payload_detected(self, sealer):
        blob = bytearray(sealer.seal(1, b"model-v1"))
        blob[-1] ^= 1
        with pytest.raises(ValueError):
            sealer.unseal(bytes(blob))

    def test_wrong_label_detected(self, sealer):
        blob = sealer.seal(1, b"payload", b"label-a")
        with pytest.raises(ValueError):
            sealer.unseal(blob, b"label-b")

    def test_short_blob_rejected(self, sealer):
        with pytest.raises(ValueError):
            sealer.unseal(b"tiny")

    def test_negative_version_rejected(self, sealer):
        with pytest.raises(ValueError):
            sealer.seal(-1, b"x")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2 ** 32), st.binary(max_size=64))
    def test_roundtrip_property(self, version, payload):
        sealer = VersionedSealer(b"\x22" * 32, MonotonicCounter())
        blob = sealer.seal(version, payload)
        assert sealer.unseal(blob) == payload

    def test_with_real_enclave_sealing_key(self):
        platform = build_tee(post_quantum=True)
        enclave = platform.sm.create_enclave(b"updatable-model")
        sealer = VersionedSealer(platform.sm.sealing_key(enclave),
                                 MonotonicCounter())
        v1 = sealer.seal(1, b"weights-v1")
        v2 = sealer.seal(2, b"weights-v2")
        sealer.commit(2)
        assert sealer.unseal(v2) == b"weights-v2"
        with pytest.raises(RollbackError):
            sealer.unseal(v1)

"""Tests for the second-order (variance) attack and higher-order
masking — the masking-theory story on the CIM substrate."""

import numpy as np
import pytest

from repro.cim import (MaskedCimMacro, PowerModel, SecondOrderAttack,
                       WeightExtractionAttack, assess_macro, one_hot)


class TestHigherOrderMasking:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            MaskedCimMacro([1, 2], order=0)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_functional_correctness_any_order(self, order):
        weights = [3, 14, 7, 9]
        macro = MaskedCimMacro(weights, seed=1, order=order)
        value, _ = macro.operate([1, 1, 1, 1])
        assert value == sum(weights)

    @pytest.mark.parametrize("order", [1, 2])
    def test_first_order_attack_fails_any_order(self, order):
        weights = [0, 15, 7, 11, 13, 14, 3, 8]
        attack = WeightExtractionAttack(
            MaskedCimMacro(weights, seed=2, order=order),
            PowerModel(0.0), repetitions=3)
        assert attack.run().accuracy(weights) < 0.5

    def test_mean_is_flat_variance_is_not_at_order_1(self):
        """The defining second-order property."""
        means = {}
        variances = {}
        for value in (0, 7, 15):
            macro = MaskedCimMacro([value] + [0] * 7, seed=3, order=1)
            samples = [macro.query_fresh(one_hot(8, 0))
                       for _ in range(2500)]
            means[value] = np.mean(samples)
            variances[value] = np.var(samples)
        spread = max(means.values()) - min(means.values())
        assert spread < 1.0                       # flat means
        assert variances[15] == 0.0               # w=15: deterministic
        assert variances[0] > variances[7] > 5.0  # strong value signal

    def test_variance_flattens_at_order_2(self):
        variances = {}
        for value in (0, 7, 15):
            macro = MaskedCimMacro([value] + [0] * 7, seed=4, order=2)
            samples = [macro.query_fresh(one_hot(8, 0))
                       for _ in range(2500)]
            variances[value] = np.var(samples)
        spread = max(variances.values()) - min(variances.values())
        assert spread < 0.15 * max(variances.values())

    @pytest.mark.parametrize("order", [1, 2])
    def test_tvla_first_order_passes(self, order):
        weights = [15] * 4 + [0] * 4
        result = assess_macro(
            lambda w: MaskedCimMacro(w, seed=5, order=order), weights)
        assert not result.leaks


class TestSecondOrderAttack:
    def test_recovers_separable_values(self):
        """0/3/7/15 have well-separated variance signatures; a handful
        of template near-collisions (e.g. 0 vs 13, gap ~2.5 variance
        units) keep single-run recovery just below perfect."""
        weights = [0, 3, 7, 15, 15, 0, 7, 3]
        attack = SecondOrderAttack(
            MaskedCimMacro(weights, seed=6, order=1), PowerModel(0.0))
        result = attack.run(traces=2500, profile_traces=3500)
        assert result.accuracy(weights) >= 0.75
        # The unambiguous signatures are always exact.
        for index, weight in enumerate(weights):
            if weight in (7, 15):
                assert result.recovered[index] == weight

    def test_far_above_chance_on_random_weights(self):
        rng = np.random.default_rng(7)
        weights = [int(w) for w in rng.integers(0, 16, 8)]
        attack = SecondOrderAttack(
            MaskedCimMacro(weights, seed=8, order=1), PowerModel(0.0))
        result = attack.run(traces=2500, profile_traces=3500)
        # Chance for exact 4-bit values is 1/16 = 6.25%.
        assert result.accuracy(weights) >= 0.25

    def test_defeated_by_second_order_masking(self):
        weights = [0, 3, 7, 15, 15, 0, 7, 3]
        attack = SecondOrderAttack(
            MaskedCimMacro(weights, seed=9, order=2), PowerModel(0.0))
        result = attack.run(traces=2500, profile_traces=3500)
        assert result.accuracy(weights) < 0.5

    def test_zero_variance_pins_fifteen(self):
        weights = [15] * 4
        attack = SecondOrderAttack(
            MaskedCimMacro(weights, seed=10, order=1), PowerModel(0.0))
        result = attack.run(traces=1500, profile_traces=2500)
        assert result.recovered == [15, 15, 15, 15]
        assert all(v == 0.0 for v in result.variances)

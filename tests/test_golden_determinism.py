"""Golden-run determinism across the standard scenarios (ISSUE 7).

The adversary campaign's whole oracle strategy — classify by
comparing a run's digest against the family's golden expectation —
only works if a scenario's un-faulted ``execute()`` is a pure
function: byte-identical across repeated runs in one process, across
worker processes, and regardless of observability switches.  These
tests pin exactly that, for every standard scenario.
"""

import pytest

from repro.faults import FAULTS
from repro.faults.scenarios import standard_scenarios
from repro.obs import PERF, TELEMETRY
from repro.runtime import parallel_map


@pytest.fixture(autouse=True)
def _disarmed():
    FAULTS.disarm()
    yield
    FAULTS.disarm()


@pytest.fixture(scope="module")
def scenarios():
    return {scenario.name: scenario
            for scenario in standard_scenarios()}


def _names():
    return [scenario.name for scenario in standard_scenarios()]


@pytest.mark.parametrize("name", _names())
def test_repeated_execute_byte_identical(scenarios, name):
    scenario = scenarios[name]
    first = scenario.execute()
    assert first["status"] == "ok", first
    for _ in range(3):
        assert scenario.execute() == first


@pytest.mark.parametrize("name", _names())
def test_execute_identical_in_forked_worker(scenarios, name):
    """A scenario shipped to a forked pool worker produces the very
    bytes the parent process produces — the property the campaign's
    serial-vs-parallel JSON parity rests on."""
    scenario = scenarios[name]
    local = scenario.execute()
    remote = parallel_map(lambda s: s.execute(),
                          [scenario, scenario], jobs=2)
    assert remote == [local, local]


@pytest.mark.parametrize("name", _names())
def test_execute_unaffected_by_observability(scenarios, name):
    """Telemetry and PERF counters observe; they must never perturb
    the golden digest."""
    scenario = scenarios[name]
    telemetry_was, perf_was = TELEMETRY.enabled, PERF.enabled
    TELEMETRY.disable()
    PERF.disable()
    try:
        dark = scenario.execute()
        TELEMETRY.enable()
        PERF.enable()
        lit = scenario.execute()
    finally:
        TELEMETRY.enabled = telemetry_was
        PERF.enabled = perf_was
    assert lit == dark


def test_fresh_scenario_instances_agree(scenarios):
    """Scenario state (sessions, caches) never leaks into the golden
    digest: a brand-new instance reproduces the module fixture's."""
    for scenario in standard_scenarios():
        assert scenario.execute() == \
            scenarios[scenario.name].execute()

"""Parity suites for the batch-throughput kernels.

Every batch API added for serving-scale throughput — ML-DSA
``sign_many``/``verify_many``, Ed25519 random-linear-combination batch
verification, multi-input Keccak absorption, vectorized CIM trace
synthesis and the TEE consumers threading them — is pinned here against
a per-call scalar loop: byte-identical outputs (signatures, digests,
toggle counts, reports) or boolean-identical verdicts, across all three
ML-DSA parameter sets, ragged batch sizes and injected-invalid lanes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cim.countermeasures import MaskedCimMacro, ShuffledCimMacro
from repro.cim.macro import DigitalCimMacro
from repro.cim.power import PowerModel
from repro.cim.tvla import assess_macro, welch_t
from repro.crypto import ed25519 as ed
from repro.crypto import hybrid
from repro.crypto import keccak as kc
from repro.crypto.mldsa import ML_DSA_44, ML_DSA_65, ML_DSA_87, MLDSA
from repro.obs.exposition import parse_exposition, render
from repro.obs.perf import counting
from repro.tee import build_tee, verify_report, verify_reports

ALL_PARAMS = (ML_DSA_44, ML_DSA_65, ML_DSA_87)
RAGGED_SIZES = (1, 2, 63, 64, 65)
MAX_BATCH = max(RAGGED_SIZES)


def _messages(count: int) -> list:
    return [b"batch-message-%04d" % i for i in range(count)]


@pytest.fixture(scope="module", params=[p.name for p in ALL_PARAMS])
def mldsa_setup(request):
    params = next(p for p in ALL_PARAMS if p.name == request.param)
    scheme = MLDSA(params)
    public, secret = scheme.key_gen(b"\x42" * 32)
    messages = _messages(MAX_BATCH)
    signer = scheme.signer(secret)
    signatures = [signer.sign(m) for m in messages]
    return scheme, public, secret, messages, signatures


class TestMLDSABatch:

    def test_sign_many_matches_scalar_across_sizes(self, mldsa_setup):
        scheme, _, secret, messages, signatures = mldsa_setup
        signer = scheme.signer(secret)
        for size in RAGGED_SIZES:
            assert signer.sign_many(messages[:size]) == \
                signatures[:size], size
        assert signer.sign_many([]) == []

    def test_sign_many_with_context(self, mldsa_setup):
        scheme, _, secret, messages, _ = mldsa_setup
        signer = scheme.signer(secret)
        context = b"batch-ctx"
        assert signer.sign_many(messages[:3], context=context) == \
            [signer.sign(m, context=context) for m in messages[:3]]

    def test_verify_many_matches_scalar_across_sizes(self, mldsa_setup):
        scheme, public, _, messages, signatures = mldsa_setup
        verifier = scheme.verifier(public)
        scalar = [verifier.verify(m, s)
                  for m, s in zip(messages, signatures)]
        assert scalar == [True] * MAX_BATCH
        for size in RAGGED_SIZES:
            assert verifier.verify_many(messages[:size],
                                        signatures[:size]) == \
                scalar[:size], size
        assert verifier.verify_many([], []) == []

    def test_verify_many_rejects_injected_invalid_lanes(self,
                                                        mldsa_setup):
        scheme, public, _, messages, signatures = mldsa_setup
        verifier = scheme.verifier(public)
        bad = list(signatures[:8])
        bad[1] = bytes(len(bad[1]))                   # zeroed signature
        bad[3] = bad[3][:-1]                          # truncated
        bad[5] = b"\xff" + bad[5][1:]                 # c_tilde corrupted
        bad[6] = bad[6][:-1] + bytes([bad[6][-1] ^ 1])  # hint corrupted
        msgs = list(messages[:8])
        msgs[7] = b"wrong message"
        scalar = [verifier.verify(m, s) for m, s in zip(msgs, bad)]
        assert scalar == [True, False, True, False, True, False,
                          False, False]
        assert verifier.verify_many(msgs, bad) == scalar

    def test_batch_counters_distinguish_batch_from_scalar(self):
        scheme = MLDSA(ML_DSA_44)
        public, secret = scheme.key_gen(b"\x42" * 32)
        messages = _messages(4)
        with counting() as window:
            signatures = scheme.sign_many(secret, messages)
        delta = window.delta()
        assert delta["crypto.mldsa.sign"] == 4
        assert delta["crypto.mldsa.batch_sign_lanes"] == 4
        with counting() as window:
            assert scheme.verify_many(public, messages, signatures) == \
                [True] * 4
        delta = window.delta()
        assert delta["crypto.mldsa.verify"] == 4
        assert delta["crypto.mldsa.batch_verify_lanes"] == 4
        with counting() as window:
            assert scheme.verify(public, messages[0], signatures[0])
        delta = window.delta()
        assert "crypto.mldsa.batch_verify_lanes" not in delta

    def test_ntt_counter_totals_match_scalar_loop(self):
        """Staged sub-batching must keep ``ntt_calls`` totals exactly
        equal to the per-call loop (the transparency contract)."""
        scheme = MLDSA(ML_DSA_44)
        public, secret = scheme.key_gen(b"\x42" * 32)
        messages = _messages(6)
        signer = scheme.signer(secret)
        with counting() as window:
            signatures = signer.sign_many(messages)
        batch = {k: v for k, v in window.delta().items()
                 if not k.startswith("crypto.mldsa.batch_")}
        with counting() as window:
            assert [signer.sign(m) for m in messages] == signatures
        assert window.delta() == batch

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.binary(max_size=40), min_size=0, max_size=6),
           st.randoms(use_true_random=False))
    def test_hypothesis_verify_many_parity(self, messages, rand):
        scheme = MLDSA(ML_DSA_44)
        public, secret = scheme.key_gen(b"\x42" * 32)
        signer = scheme.signer(secret)
        verifier = scheme.verifier(public)
        signatures = []
        for message in messages:
            sig = signer.sign(message)
            roll = rand.random()
            if roll < 0.3:
                position = rand.randrange(len(sig))
                sig = (sig[:position]
                       + bytes([sig[position] ^ (1 << rand.randrange(8))])
                       + sig[position + 1:])
            elif roll < 0.4:
                sig = sig[:rand.randrange(len(sig))]
            signatures.append(sig)
        scalar = [verifier.verify(m, s)
                  for m, s in zip(messages, signatures)]
        assert verifier.verify_many(messages, signatures) == scalar


@pytest.fixture(scope="module")
def ed_batch():
    lanes = []
    for i in range(MAX_BATCH):
        seed = bytes([i]) * 32
        public = ed.public_key(seed)
        message = b"attest-%04d" % i
        lanes.append((public, message, ed.sign(seed, message)))
    return lanes


class TestEd25519Batch:

    def test_verify_batch_matches_scalar_across_sizes(self, ed_batch):
        for size in RAGGED_SIZES:
            assert ed.verify_batch(ed_batch[:size]) == [True] * size
        assert ed.verify_batch([]) == []

    def test_verify_batch_localizes_offenders(self, ed_batch):
        items = [list(lane) for lane in ed_batch[:10]]
        items[2][2] = bytes(64)                      # invalid signature
        items[4][1] = b"substituted message"
        items[7][2] = items[7][2][:32] + (2**253).to_bytes(32, "little")
        items = [tuple(lane) for lane in items]
        scalar = [ed.verify(*lane) for lane in items]
        expected = [True] * 10
        expected[2] = expected[4] = expected[7] = False
        assert scalar == expected
        assert ed.verify_batch(items) == expected

    def test_verify_batch_structural_rejects(self, ed_batch):
        public, message, signature = ed_batch[0]
        items = [
            (public, message, signature),
            (public[:-1], message, signature),        # bad pk length
            (public, message, signature[:-1]),        # bad sig length
            (b"\xff" * 32, message, signature),       # invalid pk
            # R encoding no compression produces (y >= P)
            (public, message, b"\xff" * 32 + signature[32:]),
        ]
        scalar = [ed.verify(*lane) for lane in items]
        assert scalar == [True, False, False, False, False]
        assert ed.verify_batch(items) == scalar

    def test_batch_counter(self, ed_batch):
        with counting() as window:
            assert ed.verify_batch(ed_batch[:5]) == [True] * 5
        assert window.delta()["crypto.ed25519.batch_verifies"] == 5

    def test_empty_batch_allocates_no_span(self):
        from repro.obs import TELEMETRY
        was_enabled = TELEMETRY.enabled
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            assert ed.verify_batch([]) == []
            spans = TELEMETRY.tracer.snapshot()
        finally:
            TELEMETRY.reset()
            TELEMETRY.enabled = was_enabled
        assert spans == []

    def test_batch_of_one_short_circuits_to_scalar(self, ed_batch):
        with counting() as window:
            assert ed.verify_batch(ed_batch[:1]) == [True]
        delta = window.delta()
        assert "crypto.ed25519.batch_verifies" not in delta
        assert delta["crypto.ed25519.verify"] == 1

    def test_duplicate_keys_share_one_wnaf_table(self, monkeypatch):
        from repro.runtime.memo import Memo
        seed = b"\x21" * 32
        public = ed.public_key(seed)
        lanes = [(public, b"dup-%d" % i, ed.sign(seed, b"dup-%d" % i))
                 for i in range(6)]
        # Fresh memo: the batch-local sharing, not global cache warmth,
        # must deduplicate the table build.
        monkeypatch.setattr(ed, "_VERIFY_MEMO", Memo(maxsize=256))
        calls = []
        real_table = ed._batch_verify_table

        def counting_table(public):
            calls.append(bytes(public))
            return real_table(public)

        monkeypatch.setattr(ed, "_batch_verify_table", counting_table)
        with counting() as cold:
            assert ed.verify_batch(lanes) == [True] * len(lanes)
        cold_delta = cold.delta()   # snapshot before the warm rerun
        assert calls == [public]
        # Online point_adds are cache-warmth independent: the warm rerun
        # (memoized tables, no builds) ticks the exact same delta.
        with counting() as warm:
            assert ed.verify_batch(lanes) == [True] * len(lanes)
        assert warm.delta()["crypto.ed25519.point_adds"] == \
            cold_delta["crypto.ed25519.point_adds"]


class TestEd25519Msm:
    """The Pippenger bucket-MSM path above the lane crossover."""

    def test_msm_matches_straus_and_scalar(self, ed_batch, monkeypatch):
        items = [list(lane) for lane in ed_batch[:16]]
        items[3][2] = bytes(64)                       # invalid lane
        items[8][1] = b"tampered message"
        items = [tuple(lane) for lane in items]
        scalar = [ed.verify(*lane) for lane in items]
        assert scalar.count(False) == 2
        monkeypatch.setattr(ed, "_MSM_LANES", 10 ** 9)
        straus = ed.verify_batch(items)
        monkeypatch.setattr(ed, "_MSM_LANES", 2)
        msm = ed.verify_batch(items)
        assert msm == straus == scalar

    def test_msm_counters(self, ed_batch, monkeypatch):
        monkeypatch.setattr(ed, "_MSM_LANES", 2)
        with counting() as window:
            assert ed.verify_batch(ed_batch[:8]) == [True] * 8
        delta = window.delta()
        # One combined chain: the base point plus -R_i and -A_i per lane.
        assert delta["crypto.ed25519.msm_points"] == 17
        assert delta["crypto.ed25519.msm_point_adds"] > 0
        assert delta["crypto.ed25519.msm_doublings"] > 0
        # Below the crossover the Straus chain carries no msm_* events.
        monkeypatch.setattr(ed, "_MSM_LANES", 10 ** 9)
        with counting() as window:
            assert ed.verify_batch(ed_batch[:8]) == [True] * 8
        assert "crypto.ed25519.msm_points" not in window.delta()


class TestKeccakBatch:

    @pytest.mark.parametrize("length", [0, 1, 135, 136, 137, 300])
    def test_multi_input_parity(self, length):
        rng = np.random.default_rng(length)
        msgs = [rng.integers(0, 256, size=length,
                             dtype=np.uint8).tobytes() for _ in range(5)]
        assert kc.pure_sha3_256_many(msgs) == \
            [kc.pure_sha3_256(m) for m in msgs]
        assert kc.pure_sha3_512_many(msgs) == \
            [kc.pure_sha3_512(m) for m in msgs]
        for out_len in (1, 137, 300):
            assert kc.pure_shake128_many(msgs, out_len) == \
                [kc.pure_shake128(m, out_len) for m in msgs]
            assert kc.pure_shake256_many(msgs, out_len) == \
                [kc.pure_shake256(m, out_len) for m in msgs]
        assert kc.sha3_256_many(msgs) == [kc.sha3_256(m) for m in msgs]
        assert kc.sha3_512_many(msgs) == [kc.sha3_512(m) for m in msgs]
        assert kc.shake128_many(msgs, 64) == \
            [kc.shake128(m, 64) for m in msgs]
        assert kc.shake256_many(msgs, 64) == \
            [kc.shake256(m, 64) for m in msgs]

    def test_vectorized_permutation_matches_reference(self):
        rng = np.random.default_rng(7)
        states = rng.integers(0, 2**64, size=(6, 25), dtype=np.uint64)
        out = kc.keccak_f1600_many(states)
        for row in range(6):
            assert out[row].tolist() == kc.keccak_f1600_reference(
                [int(lane) for lane in states[row]])

    def test_ragged_batch_parity(self):
        # Mixed lengths bucket by padded block count; results and the
        # permutation counter match the scalar loop exactly.
        msgs = [b"a", b"bb" * 100, b"", b"x" * 136, b"y" * 135,
                b"z" * 137, b"w" * 500]
        assert kc.sha3_256_many(msgs) == [kc.sha3_256(m) for m in msgs]
        assert kc.pure_shake256_many(msgs, 32) == \
            [kc.pure_shake256(m, 32) for m in msgs]
        with counting() as window:
            kc.pure_sha3_512_many(msgs)
        rate = 72  # sha3-512 rate bytes
        expected = sum(len(m) // rate + 1 for m in msgs)
        assert window.delta()["crypto.keccak.permutations"] == expected

    def test_empty_batch(self):
        assert kc.pure_sha3_256_many([]) == []
        assert kc.sha3_256_many([]) == []

    def test_permutation_counter_parity(self):
        msgs = [bytes([i]) * 200 for i in range(4)]
        with counting() as window:
            kc.pure_shake256_many(msgs, 300)
        batch = window.delta()["crypto.keccak.permutations"]
        with counting() as window:
            for m in msgs:
                kc.pure_shake256(m, 300)
        assert batch == window.delta()["crypto.keccak.permutations"]


def _cim_macros(weights):
    return (
        ("plain", lambda: DigitalCimMacro(list(weights))),
        ("masked1", lambda: MaskedCimMacro(list(weights), seed=5)),
        ("masked2", lambda: MaskedCimMacro(list(weights), seed=5,
                                           order=2)),
        ("shuffled", lambda: ShuffledCimMacro(list(weights), seed=9)),
    )


class TestCimVectorized:

    @pytest.mark.parametrize("length", [1, 3, 16])
    def test_query_fresh_many_bit_equal(self, length):
        rng = np.random.default_rng(length)
        weights = [int(w) for w in rng.integers(0, 16, length)]
        masks = rng.integers(0, 2, size=(40, length))
        for name, make in _cim_macros(weights):
            scalar_macro = make()
            scalar = [scalar_macro.query_fresh([int(b) for b in row])
                      for row in masks]
            batch_macro = make()
            assert batch_macro.query_fresh_many(masks).tolist() == \
                scalar, name
            # Final macro state (registers, tree nodes, RNG stream)
            # must match the scalar loop exactly.
            assert batch_macro.mac_register == scalar_macro.mac_register
            assert batch_macro.tree._levels == scalar_macro.tree._levels
            if hasattr(batch_macro, "_rng"):
                assert batch_macro._rng.bit_generator.state == \
                    scalar_macro._rng.bit_generator.state, name

    def test_query_fresh_many_validates(self):
        macro = DigitalCimMacro([1, 2, 3])
        with pytest.raises(ValueError):
            macro.query_fresh_many(np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            macro.query_fresh_many(np.full((2, 3), 2, dtype=np.int64))

    def test_measure_many_parity(self):
        toggles = list(range(30))
        for sigma in (0.0, 1.7):
            scalar_power = PowerModel(noise_sigma=sigma, seed=3)
            batch_power = PowerModel(noise_sigma=sigma, seed=3)
            assert [scalar_power.measure(t) for t in toggles] == \
                batch_power.measure_many(toggles).tolist()

    def test_trace_parity_with_interleaved_scalar_loop(self):
        weights = [3, 7, 15, 0, 9, 12, 1, 4]
        inputs = [1, 0, 1, 1, 0, 1, 0, 1]
        scalar_macro = MaskedCimMacro(list(weights), seed=2)
        scalar_power = PowerModel(noise_sigma=1.0, seed=4)
        scalar = [scalar_power.measure(scalar_macro.query_fresh(inputs))
                  for _ in range(25)]
        batch_macro = MaskedCimMacro(list(weights), seed=2)
        batch_power = PowerModel(noise_sigma=1.0, seed=4)
        assert batch_power.trace(batch_macro, inputs,
                                 repetitions=25).tolist() == scalar

    def test_tvla_matches_scalar_reference_loop(self):
        """``assess_macro`` pinned to an inline copy of the pre-batch
        scalar loop, including the interleaved noise-stream order."""
        weights = [0, 3, 7, 15, 15, 0, 7, 3]
        traces, sigma, seed = 60, 1.0, 11

        def scalar_reference(factory):
            rng = np.random.default_rng(seed)
            power = PowerModel(noise_sigma=sigma, seed=seed + 1)
            mask = [1] * len(weights)
            fixed_samples, random_samples = [], []
            fixed_macro = factory(list(weights))
            for _ in range(traces):
                fixed_samples.append(
                    power.measure(fixed_macro.query_fresh(mask)))
                random_weights = [int(w)
                                  for w in rng.integers(0, 16,
                                                        len(weights))]
                random_samples.append(power.measure(
                    factory(random_weights).query_fresh(mask)))
            return welch_t(fixed_samples, random_samples)

        for factory in (DigitalCimMacro,
                        lambda w: MaskedCimMacro(w, seed=6)):
            got = assess_macro(factory, weights, traces=traces,
                               noise_sigma=sigma, seed=seed)
            assert got.t_statistic == scalar_reference(factory)

    def test_traces_vectorized_counter(self):
        macro = DigitalCimMacro([1, 2, 3, 4])
        masks = np.zeros((12, 4), dtype=np.int64)
        with counting() as window:
            macro.query_fresh_many(masks)
        assert window.delta()["cim.traces_vectorized"] == 11


class TestConsumers:

    @pytest.fixture(scope="class")
    def pq_platform(self):
        return build_tee(post_quantum=True)

    def test_attest_enclaves_byte_identical(self, pq_platform):
        sm = pq_platform.sm
        enclaves = [sm.create_enclave(b"batch-enclave-%d" % i * 64)
                    for i in range(3)]
        data = [b"d%d" % i for i in range(3)]
        try:
            scalar = [sm.attest_enclave(e, d).encode()
                      for e, d in zip(enclaves, data)]
            batch = [r.encode()
                     for r in sm.attest_enclaves(enclaves, data)]
            assert scalar == batch
        finally:
            for enclave in enclaves:
                sm.destroy_enclave(enclave)

    def test_verify_reports_boolean_identical(self, pq_platform):
        sm = pq_platform.sm
        identity = pq_platform.device.public_identity()
        enclaves = [sm.create_enclave(b"verify-enclave-%d" % i * 64)
                    for i in range(3)]
        try:
            reports = sm.attest_enclaves(enclaves)
            reports[1].enclave_pq_signature = bytes(
                len(reports[1].enclave_pq_signature))
            scalar = [verify_report(r, identity) for r in reports]
            assert scalar == [True, False, True]
            assert verify_reports(reports, identity) == scalar
            expected = enclaves[0].measurement
            assert verify_reports(
                reports, identity,
                expected_enclave_hash=expected) == \
                [verify_report(r, identity,
                               expected_enclave_hash=expected)
                 for r in reports]
        finally:
            for enclave in enclaves:
                sm.destroy_enclave(enclave)

    def test_hybrid_batch_parity(self):
        pair = hybrid.HybridKeyPair(b"\x01" * 32, b"\x02" * 32)
        messages = _messages(4)
        signatures = pair.sign_many(messages)
        assert signatures == [pair.sign(m) for m in messages]
        bad = list(signatures)
        bad[1] = bytes(64) + bad[1][64:]              # classical invalid
        bad[2] = bad[2][:64] + bytes(len(bad[2]) - 64)  # pq invalid
        bad[3] = b"short"
        scalar = [hybrid.verify(pair.public, m, s)
                  for m, s in zip(messages, bad)]
        assert scalar == [True, False, False, False]
        assert hybrid.verify_many(pair.public, messages, bad) == scalar

    def test_device_sign_post_quantum_many(self, pq_platform):
        device = pq_platform.device
        messages = _messages(3)
        assert device.sign_post_quantum_many(messages) == \
            [device.sign_post_quantum(m) for m in messages]


def test_batch_counters_render_and_parse_roundtrip(monkeypatch):
    """The new PERF counters must survive the exposition round trip
    (rendered by ``scripts/obs_export.py``, re-parsed strictly)."""
    scheme = MLDSA(ML_DSA_44)
    public, secret = scheme.key_gen(b"\x42" * 32)
    monkeypatch.setattr(ed, "_MSM_LANES", 2)   # force the MSM path
    with counting() as window:
        signatures = scheme.sign_many(secret, _messages(2))
        scheme.verify_many(public, _messages(2), signatures)
        # Two lanes: a batch of one short-circuits to the scalar
        # verifier and would not tick the batch counters.
        lanes = []
        for i in (9, 10):
            seed = bytes([i]) * 32
            message = b"expose-%d" % i
            lanes.append((ed.public_key(seed), message,
                          ed.sign(seed, message)))
        ed.verify_batch(lanes)
        DigitalCimMacro([1, 2]).query_fresh_many(
            np.zeros((3, 2), dtype=np.int64))
    delta = window.delta()
    for counter in ("crypto.mldsa.batch_sign_lanes",
                    "crypto.mldsa.batch_verify_lanes",
                    "crypto.ed25519.batch_verifies",
                    "crypto.ed25519.msm_points",
                    "crypto.ed25519.msm_point_adds",
                    "crypto.ed25519.msm_doublings",
                    "cim.traces_vectorized"):
        assert delta[counter] > 0, counter
    families = parse_exposition(render(perf=dict(delta)))
    events = {labels["event"]: value for labels, value in
              families["repro_perf_events_total"]}
    assert events["crypto.mldsa.batch_sign_lanes"] == 2.0
    assert events["crypto.mldsa.batch_verify_lanes"] == 2.0
    assert events["crypto.ed25519.batch_verifies"] == 2.0
    assert events["crypto.ed25519.msm_points"] == 5.0
    assert events["cim.traces_vectorized"] == 2.0

"""Tests for the hart model and the shared bus arbitration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc import (AccessFault, FcfsArbiter, Hart, PhysicalMemory,
                       PrivilegeMode, RoundRobinArbiter, SharedBus,
                       StackModel, StackOverflowFault, TdmArbiter,
                       Transaction, DRAM_BASE)

M = PrivilegeMode.MACHINE
S = PrivilegeMode.SUPERVISOR
U = PrivilegeMode.USER


class TestStackModel:
    def test_high_water_tracking(self):
        stack = StackModel(1024)
        stack.push_frame(100)
        stack.push_frame(200)
        stack.pop_frame()
        stack.push_frame(50)
        assert stack.depth == 150
        assert stack.high_water == 300

    def test_guarded_overflow_raises(self):
        stack = StackModel(100)
        with pytest.raises(StackOverflowFault):
            stack.push_frame(101)

    def test_unguarded_overflow_corrupts_silently(self):
        """The paper's 8 KB SM stack bug: no guard page, silent damage."""
        stack = StackModel(100, guard=False)
        stack.push_frame(101)
        assert stack.corrupted

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            StackModel(100).pop_frame()

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError):
            StackModel(100).push_frame(-1)

    def test_reset(self):
        stack = StackModel(100, guard=False)
        stack.push_frame(200)
        stack.reset()
        assert stack.depth == 0 and not stack.corrupted

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 50), max_size=20))
    def test_balanced_push_pop_returns_to_zero(self, frames):
        stack = StackModel(10_000)
        for frame in frames:
            stack.push_frame(frame)
        for _ in frames:
            stack.pop_frame()
        assert stack.depth == 0
        assert stack.high_water == (max(
            [sum(frames[:i + 1]) for i in range(len(frames))], default=0))


class TestHart:
    @pytest.fixture
    def hart(self):
        return Hart(0, PhysicalMemory())

    def test_machine_mode_by_default(self, hart):
        assert hart.mode is M

    def test_privilege_drop_and_trap(self, hart):
        hart.drop_to(U)
        assert hart.mode is U
        hart.trap("ecall")
        assert hart.mode is M
        assert hart.trap_log == [("ecall", U)]

    def test_cannot_raise_privilege_without_trap(self, hart):
        hart.drop_to(U)
        with pytest.raises(PermissionError):
            hart.drop_to(S)

    def test_pmp_enforced_on_load(self, hart):
        hart.memory.write(DRAM_BASE, b"secret")
        hart.drop_to(U)
        with pytest.raises(AccessFault):
            hart.load(DRAM_BASE, 6)

    def test_pmp_window_allows_load(self, hart):
        hart.memory.write(DRAM_BASE, b"secret")
        hart.pmp.set_napot(0, DRAM_BASE, 0x1000, readable=True)
        hart.drop_to(U)
        assert hart.load(DRAM_BASE, 6) == b"secret"

    def test_store_and_fetch_checked(self, hart):
        hart.pmp.set_napot(0, DRAM_BASE, 0x1000, readable=True,
                           writable=True)
        hart.drop_to(U)
        hart.store(DRAM_BASE, b"data")
        with pytest.raises(AccessFault):
            hart.fetch(DRAM_BASE)

    def test_run_with_stack_charges_and_releases(self, hart):
        result = hart.run_with_stack(lambda: 42, 1000)
        assert result == 42
        assert hart.stack.depth == 0
        assert hart.stack.high_water == 1000

    def test_run_with_stack_overflow(self, hart):
        with pytest.raises(StackOverflowFault):
            hart.run_with_stack(lambda: None, 9 * 1024)


class TestArbiters:
    def _drain(self, arbiter, submissions):
        bus = SharedBus(arbiter)
        for requestor, issue in submissions:
            bus.submit(Transaction(requestor, issue))
        return bus.run_until_drained()

    def test_fcfs_order(self):
        done = self._drain(FcfsArbiter(),
                           [("b", 0), ("a", 0), ("a", 1)])
        assert [t.requestor for t in done] == ["a", "b", "a"] or \
            [t.requestor for t in done][0] in ("a", "b")
        assert len(done) == 3

    def test_round_robin_alternates(self):
        bus = SharedBus(RoundRobinArbiter(["a", "b"]))
        for _ in range(3):
            bus.submit(Transaction("a", 0))
            bus.submit(Transaction("b", 0))
        done = bus.run_until_drained()
        order = [t.requestor for t in done]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_tdm_respects_slot_ownership(self):
        bus = SharedBus(TdmArbiter(["a", "b"]))
        bus.submit(Transaction("b", 0))
        done = bus.run_until_drained()
        # b's transaction can only start in b's slot (odd cycles).
        assert done[0].completed_cycle % 2 == 0  # granted at 1, done at 2

    def test_tdm_rejects_empty_table(self):
        with pytest.raises(ValueError):
            TdmArbiter([])

    def test_tdm_multi_cycle_must_fit_slot_run(self):
        bus = SharedBus(TdmArbiter(["a", "a", "b"]))
        bus.submit(Transaction("a", 0, latency=2))
        bus.submit(Transaction("b", 0, latency=1))
        done = bus.run_until_drained()
        by_name = {t.requestor: t for t in done}
        # a starts at cycle 0 (slots 0,1 both a's), b at its slot 2.
        assert by_name["a"].completed_cycle == 2
        assert by_name["b"].completed_cycle == 3

    def test_stats_accumulate(self):
        bus = SharedBus(FcfsArbiter())
        bus.submit(Transaction("x", 0))
        bus.submit(Transaction("x", 0))
        bus.run_until_drained()
        assert bus.stats["x"].served == 2

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1,
                    max_size=30))
    def test_all_arbiters_serve_everything(self, names):
        for arbiter in (FcfsArbiter(), RoundRobinArbiter(["a", "b", "c"]),
                        TdmArbiter(["a", "b", "c"])):
            bus = SharedBus(arbiter)
            for name in names:
                bus.submit(Transaction(name, 0))
            done = bus.run_until_drained()
            assert len(done) == len(names)

    def test_tdm_composability_core_property(self):
        """a's completion times are identical with and without b's load."""
        def run(with_b):
            bus = SharedBus(TdmArbiter(["a", "b"]))
            for i in range(5):
                bus.submit(Transaction("a", 0))
            if with_b:
                for i in range(50):
                    bus.submit(Transaction("b", 0))
            bus.run_until_drained()
            return bus.stats["a"].completion_times

        assert run(with_b=False) == run(with_b=True)

    def test_fcfs_not_composable(self):
        """Under FCFS the same experiment shows interference."""
        def run(with_b):
            bus = SharedBus(FcfsArbiter())
            if with_b:
                for i in range(50):
                    bus.submit(Transaction("b", 0))
            for i in range(5):
                bus.submit(Transaction("a", 1))
            bus.run_until_drained()
            return bus.stats["a"].completion_times

        assert run(with_b=False) != run(with_b=True)

"""Tests for the security monitor: isolation, attestation, sealing.

These are the integration tests of the TEE stack — each one exercises a
security property the paper claims (Section III-B).
"""

import pytest

from repro.soc import AccessFault, DRAM_BASE
from repro.tee import (DEFAULT_REPORT_LEN, AttestationReport, EnclaveState,
                       build_tee, pq_report_len, seal, unseal,
                       verify_report)


@pytest.fixture(scope="module")
def classical():
    return build_tee()


@pytest.fixture(scope="module")
def pq():
    return build_tee(post_quantum=True)


class TestEnclaveLifecycle:
    def test_create_loads_binary(self, classical):
        enclave = classical.sm.create_enclave(b"workload-binary")
        loaded = classical.memory.read(enclave.region.base, 15)
        assert loaded == b"workload-binary"
        classical.sm.destroy_enclave(enclave)

    def test_measurement_depends_on_binary_and_data(self, classical):
        a = classical.sm.create_enclave(b"bin-a", b"cfg")
        b = classical.sm.create_enclave(b"bin-b", b"cfg")
        c = classical.sm.create_enclave(b"bin-a", b"other")
        try:
            assert a.measurement != b.measurement
            assert a.measurement != c.measurement
        finally:
            for enclave in (a, b, c):
                classical.sm.destroy_enclave(enclave)

    def test_destroy_wipes_memory(self, classical):
        enclave = classical.sm.create_enclave(b"secret-weights")
        base = enclave.region.base
        classical.sm.destroy_enclave(enclave)
        assert classical.memory.read(base, 14) == bytes(14)

    def test_destroyed_enclave_unusable(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        classical.sm.destroy_enclave(enclave)
        with pytest.raises(RuntimeError):
            classical.sm.attest_enclave(enclave)

    def test_state_machine(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        assert enclave.state is EnclaveState.CREATED
        classical.sm.run_enclave(enclave, lambda hart: None)
        assert enclave.state is EnclaveState.STOPPED
        classical.sm.destroy_enclave(enclave)
        assert enclave.state is EnclaveState.DESTROYED

    def test_oversized_binary_rejected(self, classical):
        with pytest.raises(ValueError):
            classical.sm.create_enclave(bytes(2 * 1024 * 1024))


class TestIsolation:
    def test_enclave_reads_own_memory(self, classical):
        enclave = classical.sm.create_enclave(b"my-binary")

        def workload(hart):
            return hart.load(enclave.region.base, 9)

        assert classical.sm.run_enclave(enclave, workload) == b"my-binary"
        classical.sm.destroy_enclave(enclave)

    def test_enclave_cannot_read_sm(self, classical):
        enclave = classical.sm.create_enclave(b"bin")

        def workload(hart):
            return hart.load(DRAM_BASE, 4)  # the SM lives here

        with pytest.raises(AccessFault):
            classical.sm.run_enclave(enclave, workload)
        classical.sm.destroy_enclave(enclave)

    def test_enclave_cannot_read_other_enclave(self, classical):
        victim = classical.sm.create_enclave(b"victim-secret")
        attacker = classical.sm.create_enclave(b"attacker")

        def workload(hart):
            return hart.load(victim.region.base, 13)

        with pytest.raises(AccessFault):
            classical.sm.run_enclave(attacker, workload)
        for enclave in (victim, attacker):
            classical.sm.destroy_enclave(enclave)

    def test_enclave_cannot_read_os_memory(self, classical):
        # "OS memory": DRAM outside the SM and enclave carve-outs.
        enclave = classical.sm.create_enclave(b"bin")
        os_address = classical.memory.memory_map["dram"].end - 0x1000

        def workload(hart):
            return hart.load(os_address, 4)

        with pytest.raises(AccessFault):
            classical.sm.run_enclave(enclave, workload)
        classical.sm.destroy_enclave(enclave)

    def test_os_cannot_read_enclave(self, classical):
        enclave = classical.sm.create_enclave(b"enclave-secret")
        hart = classical.hart
        hart.drop_to(hart.mode.SUPERVISOR)
        try:
            with pytest.raises(AccessFault):
                hart.load(enclave.region.base, 4)
        finally:
            hart.trap("test-exit")
        classical.sm.destroy_enclave(enclave)

    def test_os_can_use_its_own_dram(self, classical):
        hart = classical.hart
        os_address = classical.memory.memory_map["dram"].end - 0x1000
        hart.drop_to(hart.mode.SUPERVISOR)
        try:
            hart.store(os_address, b"os-data")
            assert hart.load(os_address, 7) == b"os-data"
        finally:
            hart.trap("test-exit")

    def test_os_cannot_read_sm(self, classical):
        hart = classical.hart
        hart.drop_to(hart.mode.SUPERVISOR)
        try:
            with pytest.raises(AccessFault):
                hart.load(DRAM_BASE, 4)
        finally:
            hart.trap("test-exit")


class TestAttestation:
    def test_default_report_size(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        report = classical.sm.attest_enclave(enclave, b"nonce")
        assert len(report.encode()) == DEFAULT_REPORT_LEN == 1320
        classical.sm.destroy_enclave(enclave)

    def test_pq_report_size(self, pq):
        enclave = pq.sm.create_enclave(b"bin")
        report = pq.sm.attest_enclave(enclave, b"nonce")
        assert len(report.encode()) == pq_report_len() == 7472
        pq.sm.destroy_enclave(enclave)

    def test_report_roundtrip_and_verify(self, pq):
        enclave = pq.sm.create_enclave(b"bin")
        report = pq.sm.attest_enclave(enclave, b"challenge-data")
        decoded = AttestationReport.decode(report.encode())
        assert decoded.enclave_data == b"challenge-data"
        assert verify_report(decoded, pq.device.public_identity(),
                             enclave.measurement)
        pq.sm.destroy_enclave(enclave)

    def test_verify_rejects_wrong_enclave_hash(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        report = classical.sm.attest_enclave(enclave)
        assert not verify_report(report, classical.device.public_identity(),
                                 b"\x00" * 64)
        classical.sm.destroy_enclave(enclave)

    def test_verify_rejects_tampered_data(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        report = classical.sm.attest_enclave(enclave, b"good")
        report.enclave_data = b"evil"
        assert not verify_report(report, classical.device.public_identity())
        classical.sm.destroy_enclave(enclave)

    def test_verify_rejects_other_device(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        report = classical.sm.attest_enclave(enclave)
        other = build_tee(b"\x01" * 32)
        assert not verify_report(report, other.device.public_identity())
        classical.sm.destroy_enclave(enclave)

    def test_pq_report_needs_pq_device_identity(self, pq):
        enclave = pq.sm.create_enclave(b"bin")
        report = pq.sm.attest_enclave(enclave)
        assert not verify_report(report, {"ed25519":
                                          pq.device.ed25519_public})
        pq.sm.destroy_enclave(enclave)

    def test_tampered_sm_detected_via_expected_hash(self):
        """Measured boot certifies *any* SM it measured — the verifier
        must pin the known-good SM measurement or a device running a
        modified SM still verifies (the bug this test pins down)."""
        genuine = build_tee(post_quantum=True, sm_version=1)
        modified = build_tee(post_quantum=True, sm_version=2)
        enclave = modified.sm.create_enclave(b"bin")
        report = modified.sm.attest_enclave(enclave)
        identity = modified.device.public_identity()
        # Chain-only verification passes (same device key hierarchy)...
        assert verify_report(report, identity)
        # ...but pinning the genuine SM measurement catches it.
        assert not verify_report(
            report, identity,
            expected_sm_hash=genuine.boot_report.sm_measurement)
        assert verify_report(
            report, identity,
            expected_sm_hash=modified.boot_report.sm_measurement)

    def test_decode_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            AttestationReport.decode(bytes(100))

    def test_decode_rejects_nonzero_padding(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        encoded = bytearray(classical.sm.attest_enclave(enclave).encode())
        encoded[64 + 8 + 500] = 0xFF  # inside the zero padding
        with pytest.raises(ValueError):
            AttestationReport.decode(bytes(encoded))
        classical.sm.destroy_enclave(enclave)

    def test_report_data_limit(self, classical):
        enclave = classical.sm.create_enclave(b"bin")
        report = classical.sm.attest_enclave(enclave, bytes(1024))
        assert len(report.encode()) == DEFAULT_REPORT_LEN
        report.enclave_data = bytes(1025)
        with pytest.raises(ValueError):
            report.encode()
        classical.sm.destroy_enclave(enclave)


class TestStackSizing:
    """The paper's ML-DSA stack finding, as a measurement."""

    def test_default_stack_suffices_for_classical(self):
        platform = build_tee(stack_bytes=8 * 1024)
        enclave = platform.sm.create_enclave(b"bin")
        report = platform.sm.attest_enclave(enclave)
        assert not platform.sm.stack.corrupted
        assert verify_report(report, platform.device.public_identity())

    def test_default_stack_corrupts_under_pq(self):
        platform = build_tee(post_quantum=True, stack_bytes=8 * 1024)
        enclave = platform.sm.create_enclave(b"bin")
        report = platform.sm.attest_enclave(enclave)
        assert platform.sm.stack.corrupted
        assert not verify_report(report, platform.device.public_identity())

    def test_128k_stack_fixes_pq(self):
        platform = build_tee(post_quantum=True, stack_bytes=128 * 1024)
        enclave = platform.sm.create_enclave(b"bin")
        report = platform.sm.attest_enclave(enclave)
        assert not platform.sm.stack.corrupted
        assert verify_report(report, platform.device.public_identity())
        assert platform.sm.stack.high_water > 8 * 1024


class TestSealing:
    def test_seal_unseal_roundtrip(self, pq):
        enclave = pq.sm.create_enclave(b"bin")
        key = pq.sm.sealing_key(enclave)
        blob = seal(key, bytes(12), b"model weights")
        assert unseal(key, bytes(12), blob) == b"model weights"
        pq.sm.destroy_enclave(enclave)

    def test_different_enclave_different_key(self, pq):
        a = pq.sm.create_enclave(b"bin-a")
        b = pq.sm.create_enclave(b"bin-b")
        key_a, key_b = pq.sm.sealing_key(a), pq.sm.sealing_key(b)
        assert key_a != key_b
        blob = seal(key_a, bytes(12), b"for A only")
        with pytest.raises(ValueError):
            unseal(key_b, bytes(12), blob)
        for enclave in (a, b):
            pq.sm.destroy_enclave(enclave)

    def test_same_enclave_same_key_across_boots(self):
        first = build_tee(post_quantum=True)
        second = build_tee(post_quantum=True)
        enclave_1 = first.sm.create_enclave(b"bin")
        enclave_2 = second.sm.create_enclave(b"bin")
        assert first.sm.sealing_key(enclave_1) == \
            second.sm.sealing_key(enclave_2)

    def test_modified_sm_cannot_unseal(self):
        genuine = build_tee(post_quantum=True, sm_version=1)
        modified = build_tee(post_quantum=True, sm_version=2)
        enclave_1 = genuine.sm.create_enclave(b"bin")
        enclave_2 = modified.sm.create_enclave(b"bin")
        key = genuine.sm.sealing_key(enclave_1)
        blob = seal(key, bytes(12), b"weights")
        with pytest.raises(ValueError):
            unseal(modified.sm.sealing_key(enclave_2), bytes(12), blob)

    def test_different_device_cannot_unseal(self):
        device_a = build_tee(b"\xaa" * 32, post_quantum=True)
        device_b = build_tee(b"\xbb" * 32, post_quantum=True)
        enclave_a = device_a.sm.create_enclave(b"bin")
        enclave_b = device_b.sm.create_enclave(b"bin")
        blob = seal(device_a.sm.sealing_key(enclave_a), bytes(12), b"w")
        with pytest.raises(ValueError):
            unseal(device_b.sm.sealing_key(enclave_b), bytes(12), blob)

"""Tests for the from-scratch AES and the sealing AEAD."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aes


class TestGaloisField:
    def test_xtime_examples(self):
        assert aes._xtime(0x57) == 0xAE
        assert aes._xtime(0xAE) == 0x47  # wraps through the polynomial

    def test_gf_mul_known(self):
        # FIPS 197 example: 57 * 83 = c1
        assert aes.gf_mul(0x57, 0x83) == 0xC1

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 255))
    def test_inverse_is_inverse(self, a):
        assert aes.gf_mul(a, aes._gf_inverse(a)) == 1

    def test_inverse_of_zero(self):
        assert aes._gf_inverse(0) == 0


class TestSbox:
    def test_known_entries(self):
        assert aes.SBOX[0x00] == 0x63
        assert aes.SBOX[0x01] == 0x7C
        assert aes.SBOX[0x53] == 0xED
        assert aes.SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(aes.SBOX) == list(range(256))

    def test_inverse_sbox(self):
        assert all(aes.INV_SBOX[aes.SBOX[i]] == i for i in range(256))


class TestKnownAnswer:
    """FIPS 197 Appendix C known-answer vectors."""

    PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

    @pytest.mark.parametrize("key_len,expected", [
        (16, "69c4e0d86a7b0430d8cdb78070b4c55a"),
        (24, "dda97ca4864cdfe06eaf70a0ec0d7191"),
        (32, "8ea2b7ca516745bfeafc49904b496089"),
    ])
    def test_encrypt(self, key_len, expected):
        cipher = aes.AES(bytes(range(key_len)))
        assert cipher.encrypt_block(self.PLAINTEXT).hex() == expected

    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts(self, key_len):
        cipher = aes.AES(bytes(range(key_len)))
        block = cipher.encrypt_block(self.PLAINTEXT)
        assert cipher.decrypt_block(block) == self.PLAINTEXT

    def test_round_counts(self):
        assert aes.AES(bytes(16)).rounds == 10
        assert aes.AES(bytes(24)).rounds == 12
        assert aes.AES(bytes(32)).rounds == 14


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            aes.AES(bytes(15))

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            aes.AES(bytes(16)).encrypt_block(bytes(15))
        with pytest.raises(ValueError):
            aes.AES(bytes(16)).decrypt_block(bytes(17))

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            aes.aes_ctr(bytes(32), bytes(11), b"data")


class TestModes:
    KEY = bytes(range(32))
    NONCE = bytes(range(12))

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=200))
    def test_ctr_roundtrip(self, data):
        enc = aes.aes_ctr(self.KEY, self.NONCE, data)
        assert aes.aes_ctr(self.KEY, self.NONCE, enc) == data

    def test_ctr_partial_block(self):
        enc = aes.aes_ctr(self.KEY, self.NONCE, b"abc")
        assert len(enc) == 3

    def test_aead_roundtrip(self):
        sealed = aes.seal_aead(self.KEY, self.NONCE, b"weights", b"meta")
        assert aes.open_aead(self.KEY, self.NONCE, sealed, b"meta") == \
            b"weights"

    def test_aead_rejects_ciphertext_tamper(self):
        sealed = bytearray(aes.seal_aead(self.KEY, self.NONCE, b"secret"))
        sealed[0] ^= 1
        with pytest.raises(ValueError):
            aes.open_aead(self.KEY, self.NONCE, bytes(sealed))

    def test_aead_rejects_tag_tamper(self):
        sealed = bytearray(aes.seal_aead(self.KEY, self.NONCE, b"secret"))
        sealed[-1] ^= 1
        with pytest.raises(ValueError):
            aes.open_aead(self.KEY, self.NONCE, bytes(sealed))

    def test_aead_rejects_wrong_ad(self):
        sealed = aes.seal_aead(self.KEY, self.NONCE, b"secret", b"ad1")
        with pytest.raises(ValueError):
            aes.open_aead(self.KEY, self.NONCE, sealed, b"ad2")

    def test_aead_rejects_wrong_key(self):
        sealed = aes.seal_aead(self.KEY, self.NONCE, b"secret")
        with pytest.raises(ValueError):
            aes.open_aead(bytes(32), self.NONCE, sealed)

    def test_aead_rejects_truncation(self):
        with pytest.raises(ValueError):
            aes.open_aead(self.KEY, self.NONCE, b"short")

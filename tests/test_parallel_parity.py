"""Serial/parallel equivalence suite (ISSUE 4 determinism contract).

``jobs=1`` and ``jobs=N`` must be the same function: identical DSE
optima and top-k rankings for every library algorithm, byte-identical
campaign JSON, and identical merged observability totals.  These tests
force the parallel path with explicit ``jobs=`` so they exercise real
worker pools even on small spaces and single-CPU machines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.campaign import standard_campaign
from repro.hades.explorer import (ExhaustiveExplorer,
                                  LocalSearchExplorer, pareto_front)
from repro.hades.library import TABLE_I_ROWS, aes256, adder_mod_q, keccak
from repro.hades.metrics import Metrics, OptimizationGoal
from repro.hades.template import DesignContext
from repro.obs import TELEMETRY
from repro.obs.perf import PERF
from repro.runtime import fork_available

pytestmark = pytest.mark.skipif(not fork_available(),
                                reason="parallel path needs fork")

ALGORITHMS = {name: factory for name, factory, _ in TABLE_I_ROWS}


@pytest.fixture
def enabled_obs():
    was_perf, was_tel = PERF.enabled, TELEMETRY.enabled
    PERF.enable()
    PERF.reset()
    TELEMETRY.enable()
    TELEMETRY.reset()
    yield
    PERF.reset()
    TELEMETRY.reset()
    PERF.enabled, TELEMETRY.enabled = was_perf, was_tel


def _configs(designs):
    return [design.configuration for design in designs]


class TestExhaustiveParity:
    """Sharded traversal == serial traversal, for every Table I space."""

    _cache = {}

    @classmethod
    def _run(cls, name, jobs):
        key = (name, jobs)
        if key not in cls._cache:
            explorer = ExhaustiveExplorer(ALGORITHMS[name]())
            cls._cache[key] = explorer.run(
                OptimizationGoal.AREA_LATENCY, top_k=5, jobs=jobs)
        return cls._cache[key]

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_identical_to_serial(self, name, jobs):
        serial = self._run(name, 1)
        parallel = self._run(name, jobs)
        assert parallel.best.configuration == serial.best.configuration
        assert parallel.best.metrics == serial.best.metrics
        assert _configs(parallel.top) == _configs(serial.top)
        assert parallel.feasible == serial.feasible
        assert parallel.explored == serial.explored
        assert parallel.jobs == jobs

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_top_zero_is_best(self, name):
        result = self._run(name, 1)
        assert result.top[0].configuration == result.best.configuration
        assert result.top[0].metrics == result.best.metrics

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_top_k_sorted_by_full_rank(self, name):
        """The ranking key is (goal, ALP, area), not just the goal
        score — ties inside the top-k are deterministically ordered."""
        result = self._run(name, 1)
        goal = OptimizationGoal.AREA_LATENCY
        keys = [(goal.score(d.metrics), d.metrics.area_latency_product,
                 d.metrics.area_kge) for d in result.top]
        assert keys == sorted(keys)


class TestRunAllGoalsParity:
    def test_parallel_matches_serial(self):
        explorer = ExhaustiveExplorer(adder_mod_q(),
                                      DesignContext(masking_order=1))
        serial = explorer.run_all_goals(top_k=3, jobs=1)
        parallel = explorer.run_all_goals(top_k=3, jobs=4)
        assert set(serial) == set(parallel) == set(OptimizationGoal)
        for goal in serial:
            assert serial[goal].best.configuration == \
                parallel[goal].best.configuration
            assert _configs(serial[goal].top) == \
                _configs(parallel[goal].top)

    def test_single_traversal_cost(self, enabled_obs):
        """All goals score in ONE pass: the evaluation counter equals
        the feasible count, not goals x feasible."""
        explorer = ExhaustiveExplorer(adder_mod_q(),
                                      DesignContext(masking_order=1))
        results = explorer.run_all_goals()
        feasible = next(iter(results.values())).feasible
        assert len(results) == len(OptimizationGoal) > 1
        assert TELEMETRY.metrics_snapshot()[
            "hades.evaluations"]["value"] == feasible

    def test_goal_results_match_individual_runs(self):
        explorer = ExhaustiveExplorer(keccak())
        combined = explorer.run_all_goals(top_k=3)
        for goal, result in combined.items():
            alone = explorer.run(goal, top_k=3)
            assert result.best.configuration == alone.best.configuration
            assert _configs(result.top) == _configs(alone.top)


class TestLocalSearchParity:
    @pytest.mark.parametrize("factory,context,seed", [
        (keccak, DesignContext(masking_order=1), 7),
        (aes256, DesignContext(), 3),
    ])
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_identical_to_serial(self, factory, context, seed, jobs):
        def run(n):
            return LocalSearchExplorer(factory(), context, seed=seed) \
                .run(OptimizationGoal.AREA_LATENCY, starts=8, jobs=n)

        serial, parallel = run(1), run(jobs)
        assert parallel.best.configuration == serial.best.configuration
        assert parallel.best.metrics == serial.best.metrics
        assert parallel.evaluations == serial.evaluations
        assert parallel.feasible == serial.feasible


class TestCampaignParity:
    def test_canonical_json_byte_identical(self):
        serial = standard_campaign(seed=11, injections=60, jobs=1)
        for jobs in (2, 4):
            parallel = standard_campaign(seed=11, injections=60,
                                         jobs=jobs)
            assert parallel.canonical_json() == serial.canonical_json()

    def test_observability_totals_identical(self, enabled_obs):
        def run(jobs):
            PERF.reset()
            TELEMETRY.reset()
            result = standard_campaign(seed=11, injections=48,
                                       jobs=jobs)
            perf = dict(PERF.snapshot())
            perf.pop("runtime.pools", None)
            perf.pop("runtime.shards", None)
            counters = {
                name: snap["value"]
                for name, snap in TELEMETRY.metrics_snapshot().items()
                if snap.get("type") == "counter"}
            hist = TELEMETRY.metrics_snapshot()["faults.fired_per_run"]
            run_spans = sum(1 for r in TELEMETRY.tracer.snapshot()
                            if r["name"] == "faults.campaign.run")
            return (result.canonical_json(), perf, counters,
                    hist["count"], hist["sum"], run_spans)

        assert run(1) == run(4)


def _reference_pareto(designs, include_randomness=True):
    """The historical O(n^2) implementation, kept verbatim as the
    semantic reference the staircase sweep must match bit for bit."""
    def key(design):
        metrics = design.metrics
        objectives = [metrics.area_kge, metrics.latency_cc]
        if include_randomness:
            objectives.append(metrics.randomness_bits)
        return tuple(objectives)

    candidates = sorted(designs, key=key)
    front = []
    for design in candidates:
        dominated = False
        design_key = key(design)
        for kept in front:
            kept_key = key(kept)
            if all(a <= b for a, b in zip(kept_key, design_key)) and \
                    any(a < b for a, b in zip(kept_key, design_key)):
                dominated = True
                break
        if not dominated:
            front = [kept for kept in front
                     if not (all(a <= b for a, b in
                                 zip(design_key, key(kept)))
                             and any(a < b for a, b in
                                     zip(design_key, key(kept))))]
            front.append(design)
    return front


class _Point:
    """Minimal design stand-in for property testing pareto_front."""

    __slots__ = ("metrics",)

    def __init__(self, metrics):
        self.metrics = metrics


# Small integer grids force heavy ties — the regime where a sweep
# rewrite is most likely to diverge from the quadratic reference.
_metric = st.builds(
    Metrics,
    area_kge=st.integers(0, 5).map(float),
    latency_cc=st.integers(0, 5).map(float),
    randomness_bits=st.integers(0, 3).map(float))


class TestParetoSweepMatchesReference:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_metric, max_size=40), st.booleans())
    def test_equivalent_to_quadratic_reference(self, metrics, flag):
        points = [_Point(m) for m in metrics]
        new = pareto_front(points, include_randomness=flag)
        old = _reference_pareto(points, include_randomness=flag)
        assert [p.metrics for p in new] == [p.metrics for p in old]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_metric, max_size=30))
    def test_duplicates_all_kept(self, metrics):
        points = [_Point(m) for m in metrics for _ in range(2)]
        new = pareto_front(points)
        old = _reference_pareto(points)
        assert [p.metrics for p in new] == [p.metrics for p in old]

"""Tests for device identity, the bootrom image and measured boot."""

import pytest

from repro.tee import (BootRom, DEFAULT_SECTIONS, Device,
                       PQ_EXTRA_SECTIONS, build_tee, synthetic_sm_binary)

ROOT = bytes(range(32))


class TestDevice:
    def test_requires_32_byte_secret(self):
        with pytest.raises(ValueError):
            Device(bytes(31))

    def test_classical_identity_always_present(self):
        device = Device(ROOT)
        assert len(device.ed25519_public) == 32
        assert device.mldsa_public is None

    def test_pq_identity(self):
        device = Device(ROOT, post_quantum=True)
        assert len(device.mldsa_public) == 1312
        assert len(device.mldsa_seed) == 32

    def test_deterministic_in_root_secret(self):
        assert Device(ROOT).ed25519_public == Device(ROOT).ed25519_public
        assert Device(ROOT).ed25519_public != \
            Device(bytes(32)).ed25519_public

    def test_classical_device_cannot_sign_pq(self):
        with pytest.raises(RuntimeError):
            Device(ROOT).sign_post_quantum(b"m")

    def test_sm_secret_binds_measurement(self):
        device = Device(ROOT)
        assert device.derive_sm_secret(b"a" * 64) != \
            device.derive_sm_secret(b"b" * 64)

    def test_public_identity_contents(self):
        assert set(Device(ROOT).public_identity()) == {"ed25519"}
        assert set(Device(ROOT, post_quantum=True).public_identity()) == \
            {"ed25519", "mldsa"}


class TestBootromImage:
    def test_default_size_is_50_7_kb(self):
        rom = BootRom(Device(ROOT))
        assert rom.image_size == 51917
        assert round(rom.image_size / 1024, 1) == 50.7

    def test_pq_size_is_60_2_kb(self):
        rom = BootRom(Device(ROOT, post_quantum=True))
        assert rom.image_size == 61645
        assert round(rom.image_size / 1024, 1) == 60.2

    def test_image_bytes_match_declared_size(self):
        rom = BootRom(Device(ROOT, post_quantum=True))
        assert len(rom.image()) == rom.image_size

    def test_pq_stores_seed_not_expanded_key(self):
        """The mitigation: 32 bytes in ROM instead of a 2560-byte key."""
        seed_section = next(s for s in PQ_EXTRA_SECTIONS
                            if s.name == "device_mldsa_seed")
        assert seed_section.size == 32

    def test_section_content_deterministic(self):
        section = DEFAULT_SECTIONS[1]
        assert section.content() == section.content()
        assert len(section.content()) == section.size


class TestMeasuredBoot:
    @pytest.fixture(scope="class")
    def pq_boot(self):
        device = Device(ROOT, post_quantum=True)
        rom = BootRom(device)
        sm_binary = synthetic_sm_binary()
        return device, rom, sm_binary, rom.boot(sm_binary)

    def test_measurement_is_sha3_512(self, pq_boot):
        _, rom, sm_binary, report = pq_boot
        assert len(report.sm_measurement) == 64
        assert report.sm_measurement == rom.measure(sm_binary)

    def test_boot_signatures_verify(self, pq_boot):
        _, rom, sm_binary, report = pq_boot
        assert rom.verify_boot(sm_binary, report)

    def test_tampered_sm_detected(self, pq_boot):
        _, rom, sm_binary, report = pq_boot
        tampered = b"evil" + sm_binary[4:]
        assert not rom.verify_boot(tampered, report)

    def test_pq_key_regenerated_from_seed(self, pq_boot):
        _, _, _, report = pq_boot
        assert report.regenerated_pq_key_bytes == 2560

    def test_classical_boot_has_no_pq_material(self):
        device = Device(ROOT)
        report = BootRom(device).boot(synthetic_sm_binary())
        assert report.pq_boot_signature == b""
        assert report.sm_mldsa_seed == b""
        assert report.regenerated_pq_key_bytes == 0

    def test_sm_keys_depend_on_measurement(self):
        device = Device(ROOT, post_quantum=True)
        rom = BootRom(device)
        report_a = rom.boot(synthetic_sm_binary(1))
        report_b = rom.boot(synthetic_sm_binary(2))
        assert report_a.sm_ed25519_seed != report_b.sm_ed25519_seed
        assert report_a.sm_mldsa_seed != report_b.sm_mldsa_seed

    def test_sm_certificates_present(self, pq_boot):
        _, _, _, report = pq_boot
        assert len(report.sm_cert_classical) == 64
        assert len(report.sm_cert_pq) == 2420
        assert len(report.sm_ed25519_public) == 32
        assert len(report.sm_mldsa_public) == 1312


class TestBuildTee:
    def test_default_stack_sizes(self):
        assert build_tee().sm.config.stack_bytes == 8 * 1024
        assert build_tee(post_quantum=True).sm.config.stack_bytes == \
            128 * 1024

    def test_sm_binary_in_dram_measured(self):
        platform = build_tee()
        dram = platform.memory.memory_map["dram"]
        loaded = platform.memory.read(dram.base, len(platform.sm_binary))
        assert loaded == platform.sm_binary
        assert platform.boot_report.sm_measurement == \
            platform.bootrom.measure(platform.sm_binary)

"""Attestation-service suites: deterministic micro-batching, the
enclave-session cache, and serial-vs-parallel byte parity.

The session-cache tests mirror ``TestBootMemo`` in
``test_crypto_fastpaths.py``: hits must replay identical bytes and
identical PERF deltas, armed fault injection and live telemetry
subscribers must bypass the cache entirely, and a changed verification
policy (measurement pin) must miss.  The parity tests pin the
acceptance contract of the service: results, audit ledger and PERF
counters byte-identical between a serial drain and a sharded one.
"""

import pytest

from repro.crypto import ed25519 as ed
from repro.faults.injector import FAULTS, FaultSpec
from repro.faults.models import BIT_FLIP
from repro.obs import TELEMETRY
from repro.obs.audit import AUDIT, canonical_encode, verify_records
from repro.obs.exposition import parse_exposition, render
from repro.obs.perf import PERF, counting
from repro.tee import AttestationService, build_tee, verify_report
from repro.tee.attestation import AttestationReport


@pytest.fixture(scope="module")
def fleet():
    """Two devices (one hybrid-PQ, one classical), their enclaves and
    a pool of encoded attestation requests."""
    pq = build_tee(b"service-pq-device-root-secret-00", post_quantum=True)
    cl = build_tee(b"service-cl-device-root-secret-00",
                   post_quantum=False)
    pq_enclave = pq.sm.create_enclave(b"pq-enclave-image")
    cl_enclave = cl.sm.create_enclave(b"cl-enclave-image")
    pq_reports = pq.sm.attestation_requests(
        [pq_enclave] * 3, [b"pq-%d" % i for i in range(3)])
    cl_reports = cl.sm.attestation_requests(
        [cl_enclave] * 3, [b"cl-%d" % i for i in range(3)])
    return {
        "pq": pq, "cl": cl,
        "pq_enclave": pq_enclave, "cl_enclave": cl_enclave,
        "pq_reports": pq_reports, "cl_reports": cl_reports,
        "devices": {"pq0": pq.device.public_identity(),
                    "cl0": cl.device.public_identity()},
    }


def _service(fleet, **kwargs):
    return AttestationService(dict(fleet["devices"]), **kwargs)


def _verdict_bytes(results):
    """Canonical bytes of the verification outcome, without the
    admission sequence numbers (those increase monotonically across
    drains by design)."""
    return canonical_encode([{k: v for k, v in r.items() if k != "seq"}
                             for r in results])


class TestMicroBatchQueue:

    def test_size_flush(self, fleet):
        svc = _service(fleet, max_batch=2)
        svc.submit("cl0", fleet["cl_reports"][0])
        assert svc.sealed_count() == 0 and svc.pending_count() == 1
        svc.submit("cl0", fleet["cl_reports"][1])
        assert svc.sealed_count() == 1 and svc.pending_count() == 0

    def test_deadline_flush(self, fleet):
        svc = _service(fleet, max_batch=100, deadline_ticks=3)
        svc.tick(10)                       # empty ticks never seal
        assert svc.sealed_count() == 0
        svc.submit("cl0", fleet["cl_reports"][0])
        svc.tick(2)
        assert svc.sealed_count() == 0     # younger than the deadline
        svc.tick(1)
        assert svc.sealed_count() == 1 and svc.pending_count() == 0

    def test_results_in_admission_order(self, fleet):
        svc = _service(fleet, max_batch=3)
        tampered = bytearray(fleet["cl_reports"][0])
        tampered[-1] ^= 0xFF               # break the device signature
        submissions = [
            ("pq0", fleet["pq_reports"][0]),
            ("cl0", fleet["cl_reports"][0]),
            ("ghost", fleet["cl_reports"][0]),    # unregistered
            ("cl0", bytes(tampered)),
            ("cl0", b"\x00" * 17),                # malformed
            ("pq0", fleet["pq_reports"][1]),
        ]
        results = svc.process(submissions, jobs=1)
        assert [r["seq"] for r in results] == list(range(6))
        assert [r["ok"] for r in results] == \
            [True, True, False, False, False, True]
        assert all(bool(r["session"]) == r["ok"] for r in results)

    def test_empty_drain(self, fleet):
        assert _service(fleet).drain() == []

    def test_cross_device_batch_matches_scalar_verifier(self, fleet):
        """One flushed batch mixing PQ and classical devices agrees
        lane-for-lane with the scalar ``verify_report`` chain."""
        svc = _service(fleet, max_batch=6)
        submissions = [("pq0", r) for r in fleet["pq_reports"]] + \
                      [("cl0", r) for r in fleet["cl_reports"]]
        results = svc.process(submissions, jobs=1)
        for (device, blob), got in zip(submissions, results):
            report = AttestationReport.decode(blob)
            assert got["ok"] == verify_report(
                report, fleet["devices"][device])
            assert got["ok"] is True


class TestSessionCache:

    def test_hit_is_byte_identical(self, fleet):
        svc = _service(fleet)
        first = svc.process([("pq0", fleet["pq_reports"][0])], jobs=1)
        second = svc.process([("pq0", fleet["pq_reports"][0])], jobs=1)
        assert _verdict_bytes(second) == _verdict_bytes(first)
        assert svc.cache_stats()["hits"] == 1
        assert svc.cache_stats()["misses"] == 1

    def test_hit_replays_perf_delta(self, fleet):
        svc = _service(fleet)
        request = [("pq0", fleet["pq_reports"][1])]
        with counting() as cold:
            svc.process(request, jobs=1)
        cold_delta = cold.delta()
        with counting() as warm:
            svc.process(request, jobs=1)
        warm_delta = warm.delta()
        assert cold_delta["tee.service.verified"] == 1
        assert cold_delta["crypto.mldsa.verify"] > 0
        assert warm_delta == cold_delta

    def test_active_telemetry_bypasses_cache(self, fleet):
        svc = _service(fleet)
        request = [("cl0", fleet["cl_reports"][0])]
        clean = svc.process(request, jobs=1)    # warm the cache
        hits_before = svc.cache_stats()["hits"]
        was_enabled = TELEMETRY.enabled
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            traced = svc.process(request, jobs=1)
            names = {record["name"]
                     for record in TELEMETRY.tracer.snapshot()}
        finally:
            TELEMETRY.reset()
            TELEMETRY.enabled = was_enabled
        # Subscribed runs verify for real — timed spans cannot be
        # replayed from the cache — yet mint identical bytes.
        assert "tee.service.batch" in names
        assert "crypto.ed25519.verify_batch" in names
        assert _verdict_bytes(traced) == _verdict_bytes(clean)
        assert svc.cache_stats()["hits"] == hits_before

    def test_armed_faults_bypass_cache(self, fleet):
        svc = _service(fleet)
        request = [("cl0", fleet["cl_reports"][1])]
        clean = svc.process(request, jobs=1)    # warm the cache
        stats_before = svc.cache_stats()
        FAULTS.arm(FaultSpec("tee.bootrom.measure", BIT_FLIP, bit=0))
        try:
            armed = svc.process(request, jobs=1)
        finally:
            FAULTS.disarm()
        # The armed drain must neither consult nor repopulate the
        # cache; no corruption site fires in verification, so the
        # verdict bytes still match.
        assert _verdict_bytes(armed) == _verdict_bytes(clean)
        stats_after = svc.cache_stats()
        assert stats_after["hits"] == stats_before["hits"]
        assert stats_after["misses"] == stats_before["misses"]

    def test_measurement_mismatch_misses(self, fleet):
        svc = _service(fleet)
        report = fleet["cl_reports"][2]
        good_hash = AttestationReport.decode(report).enclave_hash
        trusted = svc.process([("cl0", report, good_hash)], jobs=1)
        assert trusted[0]["ok"] is True
        # Same report under a different pin: the content address
        # changes, so the cached session must NOT be served.
        wrong_hash = bytes(64)
        pinned = svc.process([("cl0", report, wrong_hash)], jobs=1)
        assert pinned[0]["ok"] is False
        assert pinned[0]["session"] == ""
        # ...and matches the uncached scalar verifier's refusal.
        assert verify_report(AttestationReport.decode(report),
                             fleet["devices"]["cl0"],
                             expected_enclave_hash=wrong_hash) is False

    def test_sm_hash_pin_mismatch_rejects(self, fleet):
        svc = AttestationService()
        svc.register_device("cl0", fleet["devices"]["cl0"],
                            expected_sm_hash=bytes(64))
        rejected = svc.process([("cl0", fleet["cl_reports"][0])],
                               jobs=1)
        assert rejected[0]["ok"] is False

    def test_uncached_service_is_byte_identical(self, fleet):
        submissions = [("pq0", fleet["pq_reports"][0]),
                       ("cl0", fleet["cl_reports"][0]),
                       ("pq0", fleet["pq_reports"][0])]
        cached = _service(fleet).process(list(submissions), jobs=1)
        uncached = _service(fleet, session_cache=False).process(
            list(submissions), jobs=1)
        assert canonical_encode(uncached) == canonical_encode(cached)


class TestServiceParity:

    def _run(self, fleet, jobs):
        """One full service run under a fresh audit ledger; returns
        (results bytes, audit bytes, perf delta sans runtime.*)."""
        tampered = bytearray(fleet["pq_reports"][2])
        tampered[100] ^= 0x01
        submissions = ([("pq0", r) for r in fleet["pq_reports"]]
                       + [("cl0", r) for r in fleet["cl_reports"]]
                       + [("pq0", bytes(tampered)),
                          ("ghost", fleet["cl_reports"][0]),
                          ("cl0", fleet["cl_reports"][0]),
                          ("pq0", fleet["pq_reports"][0])])
        svc = _service(fleet, max_batch=3)
        was_audit = AUDIT.enabled
        AUDIT.reset()
        AUDIT.enable()
        try:
            with counting() as window:
                results = svc.process(submissions, jobs=jobs)
            audit_blob = canonical_encode(AUDIT.export_records())
        finally:
            AUDIT.reset()
            AUDIT.enabled = was_audit
        # runtime.pools/runtime.shards only tick when a pool actually
        # spins up — the one sanctioned serial/parallel difference.
        delta = {k: v for k, v in sorted(window.delta().items())
                 if not k.startswith("runtime.")}
        return canonical_encode(results), audit_blob, delta

    def test_serial_vs_sharded_byte_identical(self, fleet):
        serial_results, serial_audit, serial_delta = self._run(fleet, 1)
        sharded_results, sharded_audit, sharded_delta = \
            self._run(fleet, 2)
        assert sharded_results == serial_results
        assert sharded_audit == serial_audit
        assert sharded_delta == serial_delta

    def test_audit_stream_contents(self, fleet):
        svc = _service(fleet, max_batch=2)
        was_audit = AUDIT.enabled
        AUDIT.reset()
        AUDIT.enable()
        try:
            svc.process([("cl0", fleet["cl_reports"][0]),
                         ("ghost", fleet["cl_reports"][0])], jobs=1)
            records = AUDIT.export_records()
        finally:
            AUDIT.reset()
            AUDIT.enabled = was_audit
        kinds = [r["kind"] for r in records if "kind" in r]
        assert "batch-verified" in kinds
        assert "request-rejected" in kinds
        rejected = next(r for r in records
                        if r.get("kind") == "request-rejected")
        assert rejected["detail"]["reason"] == "unknown-device"
        assert rejected["severity"] == "warning"
        # The exported ledger chain-verifies end to end.
        verify_records(records)


def test_service_counters_render_and_parse_roundtrip(fleet):
    """``tee.service.*`` counters survive the exposition round trip."""
    svc = _service(fleet, max_batch=2)
    with counting() as window:
        svc.process([("pq0", fleet["pq_reports"][0]),
                     ("cl0", fleet["cl_reports"][0]),
                     ("ghost", fleet["cl_reports"][0])], jobs=1)
    delta = window.delta()
    families = parse_exposition(render(perf=dict(delta)))
    events = {labels["event"]: value for labels, value in
              families["repro_perf_events_total"]}
    assert events["tee.service.requests"] == 3.0
    assert events["tee.service.batches"] == 2.0
    assert events["tee.service.flush_size"] == 1.0
    assert events["tee.service.flush_drain"] == 1.0
    assert events["tee.service.verified"] == 2.0
    assert events["tee.service.rejected"] == 1.0

"""Streaming telemetry, coverage maps and exposition (ISSUE 6).

Unit coverage for the campaign-scale observability layer: rotating
bounded sinks, deterministic head+stride span sampling, log-bucketized
coverage maps with shard-order merge, Prometheus text rendering with a
strict re-parser, and the operator-grade CLI error contracts of
``scripts/obs_export.py`` / ``trace_report.py`` / ``fault_report.py``
(one-line error, nonzero exit, never a traceback).
"""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.obs import (CoverageMap, HeadStrideSampler, PerfSnapshot,
                       RotatingJsonlSink, SpanStream, Telemetry,
                       log_bucket, signature)
from repro.obs.exposition import (parse_exposition, render,
                                  sanitize_name)

REPO_ROOT = pathlib.Path(__file__).parent.parent
SCRIPTS = REPO_ROOT / "scripts"


# -- log-bucketization and signatures ------------------------------------


def test_log_bucket_integers_exact():
    assert log_bucket(0) == 0
    assert log_bucket(1) == 1
    assert log_bucket(2) == 2
    assert log_bucket(3) == 2
    assert log_bucket(4) == 3
    assert log_bucket(1023) == 10
    assert log_bucket(1024) == 11
    assert log_bucket(-5) == -3


def test_log_bucket_floats_and_sign():
    assert log_bucket(0.0) == 0
    assert log_bucket(0.5) == 0
    assert log_bucket(0.25) == -1
    assert log_bucket(8.0) == 4
    assert log_bucket(-8.0) == -4


def test_signature_drops_zero_entries_and_sorts():
    vector = {"b.events": 5, "a.events": 0, "c.events": 1}
    assert signature(vector) == (("b.events", 3), ("c.events", 1))
    # same buckets => same signature, regardless of insertion order
    assert signature({"c.events": 1, "b.events": 7}) == \
        signature({"b.events": 4, "c.events": 1})


def test_signature_accepts_perf_snapshot():
    snap = PerfSnapshot({"x": 3}) - PerfSnapshot({"x": 1})
    assert signature(snap) == (("x", 2),)


# -- coverage maps -------------------------------------------------------


def test_coverage_observe_reports_novelty():
    cover = CoverageMap("m")
    assert cover.observe("g", {"e": 1}) is True
    assert cover.observe("g", {"e": 1}) is False       # same bucket
    assert cover.observe("g", {"e": 4}) is True        # new bucket
    assert cover.observe("other", {"e": 1}) is True    # new group
    assert cover.distinct() == 3
    assert cover.distinct("g") == 2
    assert cover.observations == 4


def test_coverage_merge_is_set_union_with_added_observations():
    left = CoverageMap("m")
    left.observe("g", {"e": 1})
    left.observe("g", {"e": 2})
    right = CoverageMap("m")
    right.observe("g", {"e": 2})
    right.observe("h", {"e": 1})
    left.merge(right)
    assert left.distinct("g") == 2
    assert left.distinct("h") == 1
    assert left.observations == 4
    # merging an exported dict works identically
    left.merge(right.to_dict())
    assert left.distinct() == 3
    assert left.observations == 6


def test_coverage_json_roundtrip_and_canonical_bytes(tmp_path):
    cover = CoverageMap("roundtrip")
    cover.observe("beta", {"z": 9, "a": 2})
    cover.observe("alpha", {"z": 1})
    path = tmp_path / "coverage_x.json"
    cover.write(path)
    loaded = CoverageMap.load(path)
    assert loaded.to_json() == cover.to_json()
    # canonical: groups and signatures sorted, byte-stable re-export
    assert json.loads(path.read_text())["groups"] == \
        cover.to_dict()["groups"]
    assert list(cover.to_dict()["groups"]) == ["alpha", "beta"]


def test_coverage_merge_order_independent():
    parts = []
    for offset in range(3):
        part = CoverageMap("m")
        for value in range(offset, 12, 3):
            part.observe("g", {"e": value})
        parts.append(part.to_dict())
    forward, backward = CoverageMap("m"), CoverageMap("m")
    for part in parts:
        forward.merge(part)
    for part in reversed(parts):
        backward.merge(part)
    assert forward.to_json() == backward.to_json()


# -- rotating sink -------------------------------------------------------


def test_sink_rotates_at_byte_budget(tmp_path):
    sink = RotatingJsonlSink(tmp_path / "s.jsonl", max_bytes=200,
                             max_files=4)
    for index in range(40):
        sink.write({"index": index, "pad": "x" * 20})
    sink.close()
    assert sink.rotations > 0
    assert sink.records_written == 40
    files = sink.files()
    assert files[-1] == tmp_path / "s.jsonl"
    # every surviving file is valid JSONL and respects the byte budget
    for path in files:
        assert path.stat().st_size <= 200 + 60
        for line in path.read_text().splitlines():
            json.loads(line)


def test_sink_bounds_file_count(tmp_path):
    sink = RotatingJsonlSink(tmp_path / "s.jsonl", max_bytes=100,
                             max_files=2)
    for index in range(200):
        sink.write({"index": index})
    sink.close()
    assert len(sink.files()) <= 3          # live + max_files rotated
    assert len(list(tmp_path.iterdir())) <= 3
    # the newest records survive, the oldest were dropped
    survivors = [json.loads(line)["index"]
                 for path in sink.files()
                 for line in path.read_text().splitlines()]
    assert survivors == sorted(survivors)
    assert survivors[-1] == 199
    assert survivors[0] > 0


def test_sink_rejects_bad_config(tmp_path):
    with pytest.raises(ValueError):
        RotatingJsonlSink(tmp_path / "s.jsonl", max_bytes=0)
    with pytest.raises(ValueError):
        RotatingJsonlSink(tmp_path / "s.jsonl", max_files=-1)


# -- head+stride sampler -------------------------------------------------


def test_sampler_head_then_stride():
    sampler = HeadStrideSampler(head=2, stride=3)
    decisions = [sampler.admit("a") for _ in range(11)]
    #             0     1     2      3      4     5      6      7     8
    assert decisions == [True, True, False, False, True, False, False,
                         True, False, False, True]


def test_sampler_is_per_name():
    sampler = HeadStrideSampler(head=1, stride=2)
    assert sampler.admit("a") is True
    assert sampler.admit("b") is True     # b has its own head
    assert sampler.admit("a") is False
    assert sampler.seen("a") == 2
    assert sampler.seen("b") == 1


def test_sampler_decision_is_pure_function_of_order():
    sequence = ["x", "y", "x", "x", "y", "x"] * 20
    first = HeadStrideSampler(head=3, stride=4)
    second = HeadStrideSampler(head=3, stride=4)
    assert [first.admit(name) for name in sequence] == \
        [second.admit(name) for name in sequence]


# -- span stream ---------------------------------------------------------


def test_span_stream_bounded_buffer_and_snapshots(tmp_path):
    telemetry = Telemetry(enabled=True)
    stream = SpanStream(tmp_path, telemetry=telemetry,
                        sampler=HeadStrideSampler(head=4, stride=8),
                        batch=16, snapshot_every=1)
    stream.install()
    telemetry.counter("work.items").inc(5)
    for index in range(200):
        with telemetry.span("work.unit", index=index):
            pass
        # the finished buffer never grows past one batch
        assert telemetry.tracer.finished_count() < 16
    stream.close()
    assert stream.spans_seen == 200
    assert stream.high_water <= 16
    # head(4) + every 8th of the remaining 196 spans
    assert stream.spans_sampled == 4 + (200 - 4) // 8
    lines = (tmp_path / "spans.jsonl").read_text().splitlines()
    assert len(lines) == stream.spans_sampled
    assert all(json.loads(line)["name"] == "work.unit"
               for line in lines)
    # live snapshots flushed next to the stream
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert metrics["work.items"]["value"] == 5
    assert (tmp_path / "perf_counters.json").exists()
    # drained: nothing left buffered after close
    assert telemetry.tracer.finished_count() == 0
    assert telemetry.stream is None


def test_span_stream_uninstall_detaches_listener(tmp_path):
    telemetry = Telemetry(enabled=True)
    stream = SpanStream(tmp_path, telemetry=telemetry, batch=1)
    stream.install()
    with telemetry.span("before"):
        pass
    stream.close()
    with telemetry.span("after"):
        pass
    # the post-close span stays in the tracer, not the stream
    assert telemetry.tracer.finished_count() == 1
    assert stream.spans_seen == 1


# -- exposition ----------------------------------------------------------


def test_render_and_parse_roundtrip():
    metrics = {
        "faults.runs": {"type": "counter", "value": 7},
        "queue.depth": {"type": "gauge", "value": 2.5},
        "lat.ms": {"type": "histogram", "count": 3, "sum": 6.0,
                   "min": 1.0, "max": 3.0, "mean": 2.0,
                   "p50": 2.0, "p95": 3.0, "p99": 3.0},
    }
    perf = {"soc.bus.grants": 42}
    cover = CoverageMap("cmap")
    cover.observe("g1", {"e": 3})
    text = render(metrics=metrics, perf=perf,
                  coverage=[cover.to_dict()])
    families = parse_exposition(text)
    assert families["repro_faults_runs"][0] == ({}, 7.0)
    assert families["repro_queue_depth"][0] == ({}, 2.5)
    quantiles = {labels["quantile"]: value
                 for labels, value in families["repro_lat_ms"]}
    assert quantiles == {"0.5": 2.0, "0.95": 3.0, "0.99": 3.0}
    assert families["repro_lat_ms_count"][0] == ({}, 3.0)
    assert families["repro_perf_events_total"][0] == \
        ({"event": "soc.bus.grants"}, 42.0)
    assert ({"map": "cmap", "group": "g1"}, 1.0) in \
        families["repro_coverage_distinct"]


def test_render_escapes_label_values():
    text = render(perf={'evil"event\\with\nnewline': 1})
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    parse_exposition(text)                  # must stay parseable


def test_sanitize_name():
    assert sanitize_name("faults.outcome.silent-corruption") == \
        "repro_faults_outcome_silent_corruption"
    assert sanitize_name("already_ok") == "repro_already_ok"


def test_parse_exposition_rejects_garbage():
    with pytest.raises(ValueError):
        parse_exposition("this is not exposition text\n")
    with pytest.raises(ValueError):
        parse_exposition("repro_x{unclosed 1\n")
    with pytest.raises(ValueError):
        parse_exposition("repro_x not_a_number\n")


# -- CLI contracts (one-line errors, never tracebacks) -------------------


def _run_script(name, *args, cwd=None):
    return subprocess.run(
        [sys.executable, str(SCRIPTS / name), *args],
        capture_output=True, text=True, cwd=cwd or REPO_ROOT)


def _assert_one_line_error(proc):
    assert proc.returncode == 1
    assert proc.stderr.startswith("error: ")
    assert len(proc.stderr.strip().splitlines()) == 1
    assert "Traceback" not in proc.stderr
    assert "Traceback" not in proc.stdout


def test_obs_export_happy_path_and_check(tmp_path):
    (tmp_path / "metrics.json").write_text(json.dumps(
        {"faults.runs": {"type": "counter", "value": 3}}))
    (tmp_path / "perf_counters.json").write_text(
        json.dumps({"soc.pmp.checks": 11}))
    cover = CoverageMap("campaign")
    cover.observe("g", {"e": 1})
    cover.write(tmp_path / "coverage_campaign.json")
    out = tmp_path / "exposition.txt"
    proc = _run_script(
        "obs_export.py",
        "--metrics", str(tmp_path / "metrics.json"),
        "--perf", str(tmp_path / "perf_counters.json"),
        "--coverage", str(tmp_path / "coverage_*.json"),
        "--out", str(out), "--check")
    assert proc.returncode == 0, proc.stderr
    families = parse_exposition(out.read_text())
    assert "repro_faults_runs" in families
    assert "repro_perf_events_total" in families
    assert "repro_coverage_distinct" in families


def test_obs_export_missing_everything_is_one_line_error(tmp_path):
    proc = _run_script(
        "obs_export.py",
        "--metrics", str(tmp_path / "nope.json"),
        "--perf", str(tmp_path / "nope2.json"),
        "--coverage", str(tmp_path / "coverage_*.json"),
        "--corpus", str(tmp_path / "adversary_corpus*.json"),
        "--audit", str(tmp_path / "*audit*.jsonl"))
    _assert_one_line_error(proc)


def test_obs_export_renders_adversary_corpus(tmp_path):
    corpus = tmp_path / "adversary_corpus.json"
    corpus.write_text(json.dumps({
        "schema_version": 1, "name": "adversary-corpus", "seed": 1,
        "entries": [
            {"family": "adv-bus", "outcome": "detected"},
            {"family": "adv-bus", "outcome": "detected"},
            {"family": "adv-task-flat",
             "outcome": "silent_corruption"},
        ]}))
    proc = _run_script(
        "obs_export.py",
        "--metrics", str(tmp_path / "nope.json"),
        "--perf", str(tmp_path / "nope2.json"),
        "--coverage", str(tmp_path / "coverage_*.json"),
        "--corpus", str(corpus), "--check")
    assert proc.returncode == 0, proc.stderr
    assert ('repro_adversary_corpus_entries{corpus="adversary-corpus"'
            ',family="adv-bus",outcome="detected"} 2') in proc.stdout
    assert 'outcome="silent_corruption"} 1' in proc.stdout


def test_obs_export_malformed_input_is_one_line_error(tmp_path):
    (tmp_path / "metrics.json").write_text("{not json")
    proc = _run_script("obs_export.py",
                       "--metrics", str(tmp_path / "metrics.json"),
                       "--perf", str(tmp_path / "nope.json"))
    _assert_one_line_error(proc)


def test_trace_report_missing_trace_is_one_line_error(tmp_path):
    proc = _run_script("trace_report.py",
                       str(tmp_path / "missing.jsonl"))
    _assert_one_line_error(proc)


def test_trace_report_malformed_trace_is_one_line_error(tmp_path):
    trace = tmp_path / "trace.jsonl"
    trace.write_text('{"name": "ok", "duration_s": 1.0, "depth": 0}\n'
                     "{broken json\n")
    proc = _run_script("trace_report.py", str(trace))
    _assert_one_line_error(proc)


def test_trace_report_malformed_metrics_is_one_line_error(tmp_path):
    trace = tmp_path / "trace.jsonl"
    trace.write_text(json.dumps(
        {"name": "a", "span_id": 1, "parent_id": 0, "duration_s": 1.0,
         "depth": 0, "status": "ok", "start_s": 0.0, "end_s": 1.0})
        + "\n")
    bad = tmp_path / "metrics.json"
    bad.write_text("[1, 2")
    proc = _run_script("trace_report.py", str(trace),
                       "--metrics", str(bad))
    _assert_one_line_error(proc)


def test_fault_report_missing_artifact_is_one_line_error(tmp_path):
    proc = _run_script("fault_report.py",
                       str(tmp_path / "missing.json"))
    _assert_one_line_error(proc)


def test_fault_report_malformed_json_is_one_line_error(tmp_path):
    artifact = tmp_path / "campaign.json"
    artifact.write_text("{definitely not json")
    proc = _run_script("fault_report.py", str(artifact))
    _assert_one_line_error(proc)


def test_fault_report_wrong_shape_is_one_line_error(tmp_path):
    artifact = tmp_path / "campaign.json"
    artifact.write_text(json.dumps({"some": "other", "json": True}))
    proc = _run_script("fault_report.py", str(artifact))
    _assert_one_line_error(proc)

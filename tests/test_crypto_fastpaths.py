"""Parity suites pinning the crypto fast paths to retained references.

Every optimized kernel in :mod:`repro.crypto` keeps its pre-optimization
implementation in-tree (``*_reference``); these tests assert the fast
path is byte-identical (signatures, hashes, blocks) or point-equal
(curve arithmetic) to that reference, on fixed KATs and on
hypothesis-generated inputs.  The measured-boot memo in
:mod:`repro.tee.bootrom` is covered too: hits must replay identical
bytes and identical PERF deltas, and armed fault injection must bypass
the cache entirely.
"""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import aes as aes_mod
from repro.crypto import ed25519 as ed
from repro.crypto import keccak as kc
from repro.crypto import mldsa as m
from repro.crypto.mldsa import ML_DSA_44, ML_DSA_65, ML_DSA_87, MLDSA
from repro.faults.injector import FAULTS, FaultSpec
from repro.faults.models import BIT_FLIP
from repro.obs.perf import counting
from repro.tee.bootrom import BootRom
from repro.tee.device import Device

import pytest

_LANES = st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                  min_size=25, max_size=25)
_POLY = st.lists(st.integers(min_value=0, max_value=m.Q - 1),
                 min_size=m.N, max_size=m.N)
_SCALAR = st.integers(min_value=0, max_value=2**256 - 1)


class TestKeccakParity:

    @settings(max_examples=50, deadline=None)
    @given(_LANES)
    def test_unrolled_permutation_matches_loop_reference(self, lanes):
        assert kc.keccak_f1600(lanes) == kc.keccak_f1600_reference(lanes)

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=600))
    def test_sha3_matches_hashlib(self, data):
        assert kc.sha3_256(data) == hashlib.sha3_256(data).digest()
        assert kc.sha3_512(data) == hashlib.sha3_512(data).digest()

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=400),
           st.integers(min_value=0, max_value=500))
    def test_shake_matches_hashlib(self, data, outlen):
        assert kc.shake128(data, outlen) == \
            hashlib.shake_128(data).digest(outlen)
        assert kc.shake256(data, outlen) == \
            hashlib.shake_256(data).digest(outlen)


class TestEd25519Parity:

    @settings(max_examples=15, deadline=None)
    @given(_SCALAR)
    def test_comb_base_mul_matches_double_and_add(self, scalar):
        fast = ed._point_mul_base(scalar)
        reference = ed._point_mul(scalar, ed.BASE_POINT)
        assert ed._point_equal(fast, reference)

    @settings(max_examples=10, deadline=None)
    @given(_SCALAR, _SCALAR, st.binary(min_size=32, max_size=32))
    def test_straus_chain_matches_two_reference_muls(self, s, k, seed):
        point = ed._decompress(ed.public_key(seed))
        fast = ed._double_scalar_mul(s % ed.L, k % ed.L, point)
        reference = ed._point_add(
            ed._point_mul(s % ed.L, ed.BASE_POINT),
            ed._point_mul(k % ed.L, point))
        assert ed._point_equal(fast, reference)

    @settings(max_examples=20, deadline=None)
    @given(_SCALAR)
    def test_point_double_matches_add(self, scalar):
        p = ed._point_mul(scalar | 1, ed.BASE_POINT)
        assert ed._point_equal(ed._point_double(p), ed._point_add(p, p))

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=64))
    def test_sign_verify_match_reference(self, seed, message):
        public = ed.public_key(seed)
        signature = ed.SigningKey(seed).sign(message)
        assert signature == ed._sign(seed, message)
        assert ed.verify(public, message, signature)
        assert ed.verify_reference(public, message, signature)

    @settings(max_examples=15, deadline=None)
    @given(st.binary(min_size=32, max_size=32), st.binary(max_size=64),
           st.integers(min_value=0, max_value=511))
    def test_windowed_verify_rejects_like_reference(self, seed, message,
                                                    flip):
        signature = bytearray(ed.sign(seed, message))
        signature[flip // 8] ^= 1 << (flip % 8)
        public = ed.public_key(seed)
        assert ed.verify(public, message, bytes(signature)) == \
            ed.verify_reference(public, message, bytes(signature))


class TestMLDSAParity:

    @settings(max_examples=30, deadline=None)
    @given(_POLY)
    def test_lazy_ntt_matches_reference(self, poly):
        assert m.ntt(poly) == m.ntt_reference(poly)

    @settings(max_examples=30, deadline=None)
    @given(_POLY)
    def test_lazy_intt_matches_reference(self, poly):
        assert m.intt(poly) == m.intt_reference(poly)

    @settings(max_examples=30, deadline=None)
    @given(_POLY)
    def test_ntt_roundtrip(self, poly):
        assert m._intt_raw(m._ntt_raw(poly)) == poly

    @settings(max_examples=20, deadline=None)
    @given(_POLY)
    def test_bulk_decompose_matches_scalar(self, poly):
        for gamma2 in ((m.Q - 1) // 88, (m.Q - 1) // 32):
            assert m._high_bits_poly(poly, gamma2) == \
                [m.high_bits(c, gamma2) for c in poly]
            assert m._low_bits_max([poly], gamma2) == \
                max(abs(m.low_bits(c, gamma2)) for c in poly)

    @pytest.mark.parametrize("params", [ML_DSA_44, ML_DSA_65, ML_DSA_87],
                             ids=lambda p: p.name)
    def test_context_sign_byte_identical_to_reference(self, params):
        scheme = MLDSA(params)
        public, secret = scheme.key_gen(bytes(32))
        message, context = b"attest me", b"ctx"
        fast = scheme.sign(secret, message, context=context)
        reference = scheme.sign_reference(secret, message,
                                          context=context)
        assert fast == reference
        assert fast == scheme.signer(secret).sign(message,
                                                  context=context)
        assert scheme.verify(public, message, fast, context=context)
        assert scheme.verify_reference(public, message, fast,
                                       context=context)

    @settings(max_examples=3, deadline=None)
    @given(st.binary(max_size=48))
    def test_mldsa44_sign_matches_reference_on_any_message(self, msg):
        scheme = MLDSA(ML_DSA_44)
        _, secret = scheme.key_gen(bytes(32))
        assert scheme.sign(secret, msg) == \
            scheme.sign_reference(secret, msg)

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=2420 * 8 - 1))
    def test_verify_rejects_like_reference(self, flip):
        scheme = MLDSA(ML_DSA_44)
        public, secret = scheme.key_gen(bytes(32))
        signature = bytearray(scheme.sign(secret, b"attest me"))
        signature[flip // 8] ^= 1 << (flip % 8)
        assert scheme.verify(public, b"attest me", bytes(signature)) == \
            scheme.verify_reference(public, b"attest me",
                                    bytes(signature))


class TestAESParity:

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from([16, 24, 32]), st.binary(min_size=48,
                                                    max_size=48))
    def test_t_table_block_matches_reference(self, key_len, material):
        cipher = aes_mod.AES(material[:key_len])
        block = material[32:48]
        fast = cipher.encrypt_block(block)
        assert fast == cipher.encrypt_block_reference(block)
        assert cipher.decrypt_block(fast) == block


class TestBootMemo:

    SM_BINARY = b"fastpath-sm-image" * 64

    def test_memo_hit_is_byte_identical(self):
        rom = BootRom(Device(bytes(range(32))))
        first = rom.boot(self.SM_BINARY)
        second = rom.boot(self.SM_BINARY)
        assert second.encode() == first.encode()

    def test_memo_hit_replays_perf_delta(self):
        rom = BootRom(Device(hashlib.sha3_256(b"memo-perf").digest()))
        binary = b"memo-perf-sm" * 64
        with counting() as cold:
            rom.boot(binary)
        cold_delta = cold.delta()
        with counting() as warm:
            rom.boot(binary)
        warm_delta = warm.delta()
        assert cold_delta["tee.bootrom.boots"] == 1
        assert warm_delta == cold_delta

    def test_active_telemetry_bypasses_memo(self):
        from repro.obs import TELEMETRY
        rom = BootRom(Device(hashlib.sha3_256(b"memo-spans").digest()))
        binary = b"memo-spans-sm" * 64
        clean = rom.boot(binary)          # warm the cache
        was_enabled = TELEMETRY.enabled
        TELEMETRY.enable()
        TELEMETRY.reset()
        try:
            traced = rom.boot(binary)
            names = {record["name"]
                     for record in TELEMETRY.tracer.snapshot()}
        finally:
            TELEMETRY.reset()
            TELEMETRY.enabled = was_enabled
        # Traced boots must run for real — timed spans can't be
        # replayed from the cache the way PERF deltas can.
        assert "tee.boot.measure" in names
        assert traced.encode() == clean.encode()

    def test_armed_faults_bypass_memo(self):
        rom = BootRom(Device(hashlib.sha3_256(b"memo-fault").digest()))
        binary = b"memo-fault-sm" * 64
        clean = rom.boot(binary)          # warm the cache
        FAULTS.arm(FaultSpec("tee.bootrom.measure", BIT_FLIP, bit=0))
        try:
            faulted = rom.boot(binary)
        finally:
            events = FAULTS.disarm()
        assert events, "the fault should fire: memo must not serve " \
                       "an armed-injection boot"
        assert faulted.sm_measurement != clean.sm_measurement
        # ...and the cache was neither consulted nor poisoned:
        assert rom.boot(binary).encode() == clean.encode()

"""Tests for physical memory and the memory map."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc import (AccessFault, MemoryMap, PhysicalMemory, Region,
                       DRAM_BASE, DRAM_SIZE, default_memory_map)


class TestRegion:
    def test_contains(self):
        region = Region("r", 0x1000, 0x100)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)
        assert region.contains(0x10F0, 0x10)
        assert not region.contains(0x10F0, 0x11)

    def test_overlap(self):
        a = Region("a", 0, 100)
        assert a.overlaps(Region("b", 50, 100))
        assert not a.overlaps(Region("c", 100, 10))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Region("r", 0, 0)
        with pytest.raises(ValueError):
            Region("r", -1, 10)


class TestMemoryMap:
    def test_default_layout(self):
        memory_map = default_memory_map()
        assert len(memory_map) == 3
        assert memory_map["dram"].base == DRAM_BASE
        assert memory_map["dram"].size == DRAM_SIZE

    def test_rejects_overlap(self):
        memory_map = MemoryMap()
        memory_map.add("a", 0, 100)
        with pytest.raises(ValueError):
            memory_map.add("b", 50, 100)

    def test_rejects_duplicate_name(self):
        memory_map = MemoryMap()
        memory_map.add("a", 0, 100)
        with pytest.raises(ValueError):
            memory_map.add("a", 200, 100)

    def test_region_at(self):
        memory_map = default_memory_map()
        assert memory_map.region_at(DRAM_BASE).name == "dram"
        assert memory_map.region_at(0) is None

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            default_memory_map()["nothere"]


class TestPhysicalMemory:
    @pytest.fixture
    def memory(self):
        return PhysicalMemory()

    def test_read_uninitialised_is_zero(self, memory):
        assert memory.read(DRAM_BASE, 16) == bytes(16)

    def test_write_read_roundtrip(self, memory):
        memory.write(DRAM_BASE + 100, b"enclave")
        assert memory.read(DRAM_BASE + 100, 7) == b"enclave"

    def test_cross_page_write(self, memory):
        address = DRAM_BASE + PhysicalMemory.PAGE_SIZE - 3
        memory.write(address, b"ABCDEF")
        assert memory.read(address, 6) == b"ABCDEF"

    def test_unmapped_access_faults(self, memory):
        with pytest.raises(AccessFault):
            memory.read(0x5000_0000, 4)
        with pytest.raises(AccessFault):
            memory.write(0x5000_0000, b"x")

    def test_access_straddling_region_end_faults(self, memory):
        with pytest.raises(AccessFault):
            memory.read(DRAM_BASE + DRAM_SIZE - 2, 4)

    def test_sparse_allocation(self, memory):
        memory.write(DRAM_BASE, b"x")
        memory.write(DRAM_BASE + 10 * PhysicalMemory.PAGE_SIZE, b"y")
        assert memory.allocated_bytes() == 2 * PhysicalMemory.PAGE_SIZE

    def test_negative_read_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.read(DRAM_BASE, -1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, DRAM_SIZE - 4096), st.binary(min_size=1,
                                                       max_size=4096))
    def test_roundtrip_random(self, offset, data):
        memory = PhysicalMemory()
        memory.write(DRAM_BASE + offset, data)
        assert memory.read(DRAM_BASE + offset, len(data)) == data

"""Tests for the CIM macro, adder tree, power model and k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cim import (AdderTree, DigitalCimMacro, KMeans, PowerModel,
                       hamming_distance, hamming_weight, one_hot,
                       subset_mask)


class TestHamming:
    @pytest.mark.parametrize("value,expected", [(0, 0), (1, 1), (7, 3),
                                                (15, 4), (255, 8)])
    def test_weight(self, value, expected):
        assert hamming_weight(value) == expected

    def test_distance(self):
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(7, 7) == 0

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2 ** 16), st.integers(0, 2 ** 16))
    def test_distance_is_weight_of_xor(self, a, b):
        assert hamming_distance(a, b) == hamming_weight(a ^ b)


class TestAdderTree:
    def test_sums_correctly(self):
        tree = AdderTree(8)
        total, _ = tree.evaluate([1, 2, 3, 4, 5, 6, 7, 8])
        assert total == 36

    def test_odd_leaf_count(self):
        tree = AdderTree(5)
        total, _ = tree.evaluate([1, 1, 1, 1, 1])
        assert total == 5

    def test_single_leaf(self):
        tree = AdderTree(1)
        total, activity = tree.evaluate([9])
        assert total == 9
        assert activity == hamming_weight(9)

    def test_first_activity_is_sum_of_node_weights(self):
        tree = AdderTree(4)
        _, activity = tree.evaluate([1, 0, 0, 0])
        # Nodes: leaf=1, level1=1, root=1 -> 3 single-bit flips.
        assert activity == 3

    def test_no_change_no_activity(self):
        tree = AdderTree(4)
        tree.evaluate([3, 1, 4, 1])
        _, activity = tree.evaluate([3, 1, 4, 1])
        assert activity == 0

    def test_reset_restores_zero_state(self):
        tree = AdderTree(4)
        tree.evaluate([15, 15, 15, 15])
        tree.reset()
        _, activity = tree.evaluate([0, 0, 0, 0])
        assert activity == 0

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            AdderTree(4).evaluate([1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AdderTree(0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=33))
    def test_sum_property(self, products):
        tree = AdderTree(len(products))
        total, activity = tree.evaluate(products)
        assert total == sum(products)
        assert activity >= hamming_weight(total)


class TestMacro:
    def test_mac_computes_dot_product(self):
        macro = DigitalCimMacro([3, 5, 7, 9])
        value, _ = macro.operate([1, 0, 1, 0])
        assert value == 10

    def test_accumulate_mode(self):
        macro = DigitalCimMacro([3, 5], accumulate=True)
        macro.operate([1, 0])
        value, _ = macro.operate([0, 1])
        assert value == 8

    def test_non_accumulate_replaces(self):
        macro = DigitalCimMacro([3, 5])
        macro.operate([1, 0])
        value, _ = macro.operate([0, 1])
        assert value == 5

    def test_rejects_out_of_range_weight(self):
        with pytest.raises(ValueError):
            DigitalCimMacro([16])

    def test_rejects_non_binary_input(self):
        with pytest.raises(ValueError):
            DigitalCimMacro([1, 2]).operate([1, 2])

    def test_rejects_wrong_input_length(self):
        with pytest.raises(ValueError):
            DigitalCimMacro([1, 2]).operate([1])

    def test_single_weight_activity_proportional_to_hw(self):
        """The core leakage the attack exploits (paper Fig. 1)."""
        weights = list(range(16))
        macro = DigitalCimMacro(weights)
        toggles = [macro.query_fresh(one_hot(16, i)) for i in range(16)]
        depth_plus = macro.tree.depth + 2   # tree path + MAC register
        for weight, observed in zip(weights, toggles):
            assert observed == hamming_weight(weight) * depth_plus

    def test_query_fresh_is_stateless(self):
        macro = DigitalCimMacro([7, 8, 9, 10])
        first = macro.query_fresh([1, 1, 0, 0])
        second = macro.query_fresh([1, 1, 0, 0])
        assert first == second

    def test_mask_helpers(self):
        assert one_hot(4, 2) == [0, 0, 1, 0]
        assert subset_mask(4, [0, 3]) == [1, 0, 0, 1]


class TestPowerModel:
    def test_noise_free_deterministic(self):
        model = PowerModel(0.0)
        assert model.measure(10) == model.measure(10)

    def test_power_increases_with_toggles(self):
        model = PowerModel(0.0)
        assert model.measure(20) > model.measure(10)

    def test_noise_changes_samples(self):
        model = PowerModel(1.0, seed=1)
        samples = [model.measure(10) for _ in range(10)]
        assert len(set(samples)) > 1

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(-1.0)

    def test_trace_shape(self):
        macro = DigitalCimMacro([1, 2, 3, 4])
        trace = PowerModel(0.0).trace(macro, [1, 0, 0, 0],
                                      repetitions=7)
        assert trace.shape == (7,)
        assert np.all(trace == trace[0])


class TestKMeans:
    def test_separates_clear_clusters(self):
        data = [0.0, 0.1, 5.0, 5.1, 10.0, 10.2]
        km = KMeans(3, seed=0).fit(data)
        labels = km.labels_
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] == labels[5]
        assert len({labels[0], labels[2], labels[4]}) == 3

    def test_predict_consistent_with_fit(self):
        data = [0.0, 0.1, 9.0, 9.1]
        km = KMeans(2, seed=0).fit(data)
        assert list(km.predict(data)) == list(km.labels_)

    def test_2d_data(self):
        rng = np.random.default_rng(0)
        a = rng.normal((0, 0), 0.1, (20, 2))
        b = rng.normal((5, 5), 0.1, (20, 2))
        km = KMeans(2, seed=0).fit(np.vstack([a, b]))
        assert len(set(km.labels_[:20])) == 1
        assert km.labels_[0] != km.labels_[-1]

    def test_fewer_samples_than_clusters_rejected(self):
        with pytest.raises(ValueError):
            KMeans(5).fit([1.0, 2.0])

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            KMeans(0)

    def test_identical_points(self):
        km = KMeans(2, seed=0).fit([3.0, 3.0, 3.0])
        assert km.inertia_ == 0.0

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=4,
                    max_size=30))
    def test_inertia_non_negative(self, data):
        km = KMeans(2, seed=1).fit(data)
        assert km.inertia_ >= 0

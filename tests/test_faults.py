"""The fault-injection engine: spec semantics, hook sites, hardening.

Covers the ISSUE 2 tentpole contracts: the disarmed injector is a
strict no-op, every declared hook site fires deterministically, and the
hardened components (fail-closed boot, contained RTOS faults) react as
specified.
"""

import pytest

from repro.faults import (FAULTS, FaultSpec, Outcome, flip_bit,
                          injected)
from repro.faults.models import (BIT_FLIP, BUS_CORRUPT, BUS_DELAY,
                                 BUS_DROP, INSTRUCTION_SKIP,
                                 STACK_SMASH, TASK_BIT_FLIP,
                                 TRANSPORT_DROP, WILD_STORE)
from repro.rtos.kernel import Kernel
from repro.rtos.task import Delay, TaskState
from repro.soc.bus import FcfsArbiter, SharedBus, Transaction
from repro.soc.cpu import Hart
from repro.soc.memory import DRAM_BASE, PhysicalMemory
from repro.tee.bootrom import BootReport, BootRom
from repro.tee.device import Device
from repro.tee.platform import build_tee, synthetic_sm_binary


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with a disarmed global injector."""
    FAULTS.disarm()
    yield
    FAULTS.disarm()


class TestFaultSpec:
    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            FaultSpec("site", "melting")

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FaultSpec("site", BIT_FLIP, trigger=-1)
        with pytest.raises(ValueError):
            FaultSpec("site", BIT_FLIP, count=0)


class TestFlipBit:
    def test_flips_exactly_one_bit(self):
        data = bytes(4)
        flipped = flip_bit(data, 9)
        assert flipped != data
        assert flip_bit(flipped, 9) == data
        assert flipped[1] == 0x02

    def test_bit_index_wraps(self):
        assert flip_bit(b"\x00", 8) == b"\x01"

    def test_empty_is_identity(self):
        assert flip_bit(b"", 3) == b""


class TestInjectorCore:
    def test_disarmed_is_identity(self):
        assert not FAULTS.enabled
        assert FAULTS.corrupt("any.site", b"abc") == b"abc"
        assert FAULTS.fire("any.site") is None

    def test_fires_only_in_trigger_window(self):
        FAULTS.arm(FaultSpec("s", BIT_FLIP, trigger=1, count=2, bit=0))
        outcomes = [FAULTS.corrupt("s", b"\x00") for _ in range(4)]
        assert outcomes == [b"\x00", b"\x01", b"\x01", b"\x00"]
        events = FAULTS.disarm()
        assert [e.visit for e in events] == [1, 2]

    def test_sites_are_independent(self):
        FAULTS.arm(FaultSpec("a", BIT_FLIP, bit=0))
        assert FAULTS.corrupt("b", b"\x00") == b"\x00"
        assert FAULTS.corrupt("a", b"\x00") == b"\x01"

    def test_corrupt_ignores_non_bitflip_models(self):
        FAULTS.arm(FaultSpec("s", BUS_DROP))
        assert FAULTS.corrupt("s", b"\x00") == b"\x00"
        assert FAULTS.disarm() == ()

    def test_injected_context_manager_always_disarms(self):
        with pytest.raises(RuntimeError):
            with injected(FaultSpec("s", BIT_FLIP)):
                raise RuntimeError("boom")
        assert not FAULTS.enabled

    def test_disarm_returns_and_clears_events(self):
        with injected(FaultSpec("s", BIT_FLIP, bit=3)):
            FAULTS.corrupt("s", b"\x00")
            assert len(FAULTS.events) == 1
        assert FAULTS.events == []


class TestMemoryHooks:
    def test_read_bit_flip_leaves_memory_intact(self):
        memory = PhysicalMemory()
        memory.write(DRAM_BASE, b"\x00\x00")
        with injected(FaultSpec("soc.memory.read", BIT_FLIP, bit=0)):
            assert memory.read(DRAM_BASE, 2) == b"\x01\x00"
        assert memory.read(DRAM_BASE, 2) == b"\x00\x00"

    def test_write_bit_flip_persists(self):
        memory = PhysicalMemory()
        with injected(FaultSpec("soc.memory.write", BIT_FLIP, bit=8)):
            memory.write(DRAM_BASE, b"\x00\x00")
        assert memory.read(DRAM_BASE, 2) == b"\x00\x01"


class TestBusHooks:
    def _bus(self):
        return SharedBus(FcfsArbiter())

    def test_drop_diverts_to_dropped(self):
        bus = self._bus()
        with injected(FaultSpec("soc.bus.submit", BUS_DROP)):
            bus.submit(Transaction("a", 0))
            bus.submit(Transaction("a", 0))
        assert len(bus.dropped) == 1
        assert len(bus.run_until_drained()) == 1

    def test_corrupt_marks_transaction(self):
        bus = self._bus()
        with injected(FaultSpec("soc.bus.submit", BUS_CORRUPT)):
            bus.submit(Transaction("a", 0))
        (done,) = bus.run_until_drained()
        assert done.corrupted

    def test_delay_stretches_latency(self):
        bus = self._bus()
        with injected(FaultSpec("soc.bus.submit", BUS_DELAY,
                                magnitude=5)):
            bus.submit(Transaction("a", 0))
        (done,) = bus.run_until_drained()
        assert done.latency == 6

    def test_cycle_budget_watchdog_pins_runtime_error(self):
        """The cycle budget is the only liveness guard left after the
        dead idle-cycles path was removed — pin it."""
        bus = self._bus()
        bus.submit(Transaction("a", 0, latency=100))
        with pytest.raises(RuntimeError, match="cycle budget"):
            bus.run_until_drained(max_cycles=10)


class TestCpuHooks:
    def test_instruction_skip_returns_none(self):
        hart = Hart(0, PhysicalMemory())
        with injected(FaultSpec("soc.cpu.exec", INSTRUCTION_SKIP)):
            assert hart.run_with_stack(lambda: 42, 100) is None
        assert hart.run_with_stack(lambda: 42, 100) == 42
        assert hart.stack.depth == 0

    def test_fetch_bit_flip(self):
        memory = PhysicalMemory()
        hart = Hart(0, memory)
        memory.write(DRAM_BASE, bytes(4))
        with injected(FaultSpec("soc.cpu.fetch", BIT_FLIP, bit=0)):
            assert hart.fetch(DRAM_BASE) == b"\x01\x00\x00\x00"


class TestBootHardening:
    SM_BINARY = synthetic_sm_binary()

    def _bootrom(self):
        return BootRom(Device(bytes(32)))

    def test_boot_verified_ok_without_faults(self):
        verified = self._bootrom().boot_verified(self.SM_BINARY)
        assert verified.ok
        assert verified.fault is None
        assert isinstance(verified.report, BootReport)

    @pytest.mark.parametrize("trigger", [0, 1])
    def test_measurement_flip_fails_closed(self, trigger):
        bootrom = self._bootrom()
        with injected(FaultSpec("tee.bootrom.measure", BIT_FLIP,
                                trigger=trigger, bit=13)):
            verified = bootrom.boot_verified(self.SM_BINARY)
        assert not verified.ok
        assert verified.report is None
        assert verified.fault.outcome is Outcome.DETECTED
        assert verified.fault.reason == "boot-verification-failed"

    def test_boot_signature_flip_fails_closed(self):
        bootrom = self._bootrom()
        with injected(FaultSpec("tee.bootrom.sign", BIT_FLIP, bit=7)):
            verified = bootrom.boot_verified(self.SM_BINARY)
        assert not verified.ok

    def test_verify_handoff_rejects_any_field_corruption(self):
        from dataclasses import replace
        bootrom = self._bootrom()
        report = bootrom.boot(self.SM_BINARY)
        assert bootrom.verify_handoff(self.SM_BINARY, report)
        tampered = replace(report, sm_ed25519_seed=flip_bit(
            report.sm_ed25519_seed, 0))
        # verify_boot only checks the signed fields, so it misses a
        # flipped derived seed; verify_handoff must not.
        assert bootrom.verify_boot(self.SM_BINARY, tampered)
        assert not bootrom.verify_handoff(self.SM_BINARY, tampered)


class TestSmHooks:
    def test_sm_signature_flip_breaks_verification(self):
        from repro.tee import verify_report
        platform = build_tee()
        enclave = platform.sm.create_enclave(b"\x42" * 64)
        with injected(FaultSpec("tee.sm.sign", BIT_FLIP, bit=99)):
            report = platform.sm.attest_enclave(enclave)
        assert not verify_report(report,
                                 platform.device.public_identity(),
                                 expected_enclave_hash=enclave
                                 .measurement)

    def test_stack_smash_corrupts_signature(self):
        from repro.tee import verify_report
        platform = build_tee()            # 8 KB guard-less SM stack
        enclave = platform.sm.create_enclave(b"\x42" * 64)
        with injected(FaultSpec("tee.sm.stack", STACK_SMASH,
                                magnitude=8 * 1024)):
            report = platform.sm.attest_enclave(enclave)
        assert platform.sm.stack.corrupted
        assert not verify_report(report,
                                 platform.device.public_identity(),
                                 expected_enclave_hash=enclave
                                 .measurement)


def _poke_task(results):
    def entry(ctx):
        region = ctx.task.data_regions[0]
        ctx.store(region.base, b"\xaa" * 32)
        yield Delay(1)
        results.append(ctx.load(region.base, 32))
        yield Delay(1)
    return entry


class TestKernelFaultContainment:
    def _kernel(self, protected):
        memory = PhysicalMemory()
        return Kernel(memory, Hart(0, memory), protected=protected)

    def test_wild_store_contained_when_protected(self):
        kernel = self._kernel(protected=True)
        results = []
        kernel.create_task("victim", 1, _poke_task(results),
                           data_bytes=4096)
        kernel.create_task("bystander", 1, _poke_task(results),
                           data_bytes=4096)
        with injected(FaultSpec("rtos.kernel.task", WILD_STORE,
                                trigger=0, bit=5)):
            kernel.run(max_ticks=30)
        assert kernel.stats.injected_faults == 1
        assert kernel.stats.contained_faults == 1
        assert len(kernel.faulted_tasks()) == 1
        # The other task ran to completion: containment, not collapse.
        done = [t for t in kernel.tasks if t.state is TaskState.DONE]
        assert len(done) == 1

    def test_wild_store_lands_when_flat(self):
        kernel = self._kernel(protected=False)
        base = kernel.kernel_region.base
        kernel.memory.write(base, bytes(64))
        results = []
        kernel.create_task("victim", 1, _poke_task(results),
                           data_bytes=4096)
        with injected(FaultSpec("rtos.kernel.task", WILD_STORE,
                                trigger=0, bit=5)):
            kernel.run(max_ticks=30)
        assert kernel.stats.contained_faults == 0
        assert kernel.memory.read(base + 5, 1) == b"\xfb"

    def test_injected_stack_smash_is_contained(self):
        kernel = self._kernel(protected=True)
        results = []
        kernel.create_task("victim", 1, _poke_task(results),
                           data_bytes=4096)
        with injected(FaultSpec("rtos.kernel.task", STACK_SMASH)):
            kernel.run(max_ticks=30)
        assert kernel.stats.contained_faults == 1
        (faulted,) = kernel.faulted_tasks()
        assert faulted.name == "victim"

    def test_task_bit_flip_corrupts_task_data(self):
        kernel = self._kernel(protected=True)
        results = []
        kernel.create_task("victim", 1, _poke_task(results),
                           data_bytes=4096)
        with injected(FaultSpec("rtos.kernel.task", TASK_BIT_FLIP,
                                trigger=1, bit=3)):
            kernel.run(max_ticks=30)
        (readback,) = results
        assert readback != b"\xaa" * 32


class TestDefaultNoOp:
    def test_tier1_paths_identical_with_injector_imported(self):
        """The acceptance criterion: importing repro.faults and running
        an unmodified workload changes nothing."""
        baseline = build_tee().boot_report.encode()
        assert not FAULTS.enabled
        assert build_tee().boot_report.encode() == baseline

"""Tests for the ISSUE 3 tentpole: architectural perf counters, the
deterministic profiler, and the bench-history regression gate."""

import json
import subprocess
import sys
import pathlib
import threading

import pytest

from repro.obs import (PERF, CountingWindow, PerfCounters, PerfSnapshot,
                       Profiler, Telemetry, counting, parse_collapsed)
from repro.obs import history

REPO_ROOT = pathlib.Path(__file__).parent.parent


# -- PerfSnapshot arithmetic ---------------------------------------------


def test_snapshot_missing_events_read_zero():
    snap = PerfSnapshot({"a": 1})
    assert snap["a"] == 1
    assert snap["missing"] == 0
    assert "missing" not in snap          # __missing__ does not insert


def test_snapshot_subtraction_drops_zero_entries():
    after = PerfSnapshot({"a": 5, "b": 2, "c": 7})
    before = PerfSnapshot({"a": 3, "b": 2})
    delta = after - before
    assert delta == {"a": 2, "c": 7}
    assert isinstance(delta, PerfSnapshot)
    assert "b" not in delta               # zero delta dropped


def test_snapshot_addition_merges_and_drops_zero():
    one = PerfSnapshot({"a": 1, "x": -2})
    two = PerfSnapshot({"a": 2, "x": 2, "b": 3})
    total = one + two
    assert total == {"a": 3, "b": 3}
    assert isinstance(total, PerfSnapshot)


def test_snapshot_grouped_and_total():
    snap = PerfSnapshot({"soc.bus.cycles": 10, "soc.pmp.checks": 4,
                         "rtos.ticks": 2})
    groups = snap.grouped()
    assert set(groups) == {"soc", "rtos"}
    assert groups["soc"].total() == 14
    assert snap.total() == 16


# -- PerfCounters --------------------------------------------------------


def test_counters_disabled_by_default_and_sites_guard():
    counters = PerfCounters()
    assert not counters.enabled
    # sites are written `if PERF.enabled: PERF.inc(...)` — nothing
    # counts while disabled because the guard short-circuits.
    if counters.enabled:
        counters.inc("never")
    assert counters.snapshot() == {}


def test_counters_inc_count_snapshot_delta():
    counters = PerfCounters(enabled=True)
    counters.inc("a")
    counters.inc("a", 4)
    counters.inc("b", 2)
    assert counters.count("a") == 5
    before = counters.snapshot()
    counters.inc("a")
    assert counters.delta_since(before) == {"a": 1}
    counters.reset()
    assert counters.snapshot() == {}
    assert counters.enabled               # reset keeps the switch


def test_counting_window_restores_switch_state():
    counters = PerfCounters(enabled=False)
    with counting(counters) as window:
        assert counters.enabled
        counters.inc("inside")
        assert isinstance(window, CountingWindow)
    assert not counters.enabled
    assert window.delta() == {"inside": 1}
    # nested: an already-enabled counter stays enabled afterwards
    counters.enable()
    with counting(counters):
        pass
    assert counters.enabled


def test_global_counting_window_is_scoped_to_block():
    was_enabled = PERF.enabled
    with counting() as window:
        PERF.inc("test.event", 3)
    assert window.delta()["test.event"] == 3
    assert PERF.enabled == was_enabled


def test_concurrent_increments_do_not_lose_counts():
    counters = PerfCounters(enabled=True)

    def work():
        for _ in range(1000):
            counters.inc("shared")

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counters.count("shared") == 8000


# -- Profiler ------------------------------------------------------------


def test_profiler_self_vs_cumulative_attribution():
    counters = PerfCounters(enabled=True)
    profiler = Profiler(counters)
    with profiler.span("outer"):
        counters.inc("ev", 2)
        with profiler.span("inner"):
            counters.inc("ev", 5)
        counters.inc("ev", 1)
    report = profiler.report()
    assert report["outer"]["cumulative"]["ev"] == 8
    assert report["outer"]["self"]["ev"] == 3
    assert report["outer;inner"]["cumulative"]["ev"] == 5
    assert report["outer;inner"]["self"]["ev"] == 5
    assert report["outer"]["count"] == 1


def test_profiler_collapsed_round_trip():
    counters = PerfCounters(enabled=True)
    profiler = Profiler(counters)
    with profiler.span("a"):
        counters.inc("x", 2)
        with profiler.span("b"):
            counters.inc("x", 3)
        with profiler.span("quiet"):
            pass                          # zero self: omitted
    collapsed = profiler.collapsed()
    parsed = dict(parse_collapsed(collapsed))
    assert parsed == {("a",): 2, ("a", "b"): 3}
    # single-event selection
    assert dict(parse_collapsed(profiler.collapsed("x"))) == parsed
    assert profiler.collapsed("other-event") == ""


def test_profiler_attached_to_tracer_mirrors_spans():
    counters = PerfCounters(enabled=True)
    telemetry = Telemetry(enabled=True)
    profiler = Profiler(counters)
    profiler.attach(telemetry.tracer)
    assert profiler.attached
    try:
        with telemetry.span("root"):
            counters.inc("ev", 1)
            with telemetry.span("leaf"):
                counters.inc("ev", 4)
    finally:
        profiler.detach()
    assert not profiler.attached
    report = profiler.report()
    assert report["root;leaf"]["self"]["ev"] == 4
    assert report["root"]["self"]["ev"] == 1
    # after detach new spans are not attributed
    with telemetry.span("after"):
        pass
    assert "after" not in profiler.report()


def test_profiler_write_collapsed_is_atomic(tmp_path):
    counters = PerfCounters(enabled=True)
    profiler = Profiler(counters)
    with profiler.span("s"):
        counters.inc("ev")
    target = tmp_path / "profile.collapsed"
    profiler.write_collapsed(target)
    assert target.read_text() == "s 1\n"
    assert not list(tmp_path.glob("*.tmp"))


def test_parse_collapsed_skips_malformed_lines():
    text = "a;b 3\n\nnot-a-line\nc four\nd 5\n"
    assert parse_collapsed(text) == [(("a", "b"), 3), (("d",), 5)]


# -- bench history -------------------------------------------------------


def _summary(benches):
    return {"session_wall_time_s": 1.0, "telemetry_enabled": False,
            "perf_enabled": True,
            "benches": [
                {"name": name, "wall_time_s": wall, "status": "passed",
                 "tests": 1, "counters": counters or {}}
                for name, wall, counters in benches]}


def test_make_entry_carries_schema_version():
    entry = history.make_entry(
        _summary([("bench_a", 0.5, {"soc.bus.cycles": 10})]), run=1,
        timestamp=123.0)
    assert entry["schema_version"] == history.SCHEMA_VERSION
    assert entry["run"] == 1
    assert entry["recorded_at"] == 123.0
    assert entry["benches"][0]["counters"] == {"soc.bus.cycles": 10}


def test_append_run_numbers_runs_sequentially(tmp_path):
    path = tmp_path / "hist.jsonl"
    first = history.append_run(path, _summary([("b", 0.1, None)]),
                               timestamp=1.0)
    second = history.append_run(path, _summary([("b", 0.1, None)]),
                                timestamp=2.0)
    assert (first["run"], second["run"]) == (1, 2)
    entries, warnings = history.load_history(path)
    assert [e["run"] for e in entries] == [1, 2]
    assert warnings == []


def test_load_history_skips_bad_schema_with_warning(tmp_path):
    path = tmp_path / "hist.jsonl"
    good = history.make_entry(_summary([("b", 0.1, None)]), run=1,
                              timestamp=1.0)
    stale = dict(good, schema_version=history.SCHEMA_VERSION + 1, run=2)
    path.write_text(json.dumps(good) + "\n" +
                    json.dumps(stale) + "\n" +
                    "{broken json\n")
    entries, warnings = history.load_history(path)
    assert [e["run"] for e in entries] == [1]
    assert len(warnings) == 2
    assert any("schema_version" in w for w in warnings)
    assert any("unparsable" in w for w in warnings)


def _entries(runs):
    """Build history entries from [(run, [(bench, wall, counters)])]."""
    return [history.make_entry(_summary(benches), run=run,
                               timestamp=float(run))
            for run, benches in runs]


def test_detect_regressions_needs_two_runs():
    only = _entries([(1, [("b", 1.0, None)])])
    assert history.detect_regressions(only) == []


def test_wall_regression_against_median_baseline():
    entries = _entries([
        (1, [("b", 1.0, None)]),
        (2, [("b", 1.1, None)]),
        (3, [("b", 0.9, None)]),
        (4, [("b", 2.0, None)]),          # vs median 1.0: +100%
    ])
    found = history.detect_regressions(entries, wall_threshold=0.5)
    assert [r["kind"] for r in found] == ["wall"]
    assert found[0]["bench"] == "b"
    assert found[0]["baseline"] == 1.0
    # generous threshold: no regression
    assert history.detect_regressions(entries, wall_threshold=1.5) == []


def test_wall_regression_ignores_sub_floor_benches():
    entries = _entries([
        (1, [("fast", 0.001, None)]),
        (2, [("fast", 0.01, None)]),      # 10x but under the floor
    ])
    assert history.detect_regressions(entries, min_wall_s=0.05) == []


def test_counter_regression_vs_previous_run():
    entries = _entries([
        (1, [("b", 1.0, {"soc.bus.cycles": 100})]),
        (2, [("b", 1.0, {"soc.bus.cycles": 150,
                         "soc.pmp.checks": 7})]),
    ])
    found = history.detect_regressions(entries, counter_threshold=0.10)
    assert [(r["kind"], r["metric"]) for r in found] == \
        [("counter", "soc.bus.cycles")]
    # the counter new in run 2 is not gated
    assert all(r["metric"] != "soc.pmp.checks" for r in found)


def test_failed_bench_is_not_gated():
    entries = _entries([(1, [("b", 1.0, None)]),
                        (2, [("b", 9.0, None)])])
    entries[-1]["benches"][0]["status"] = "failed"
    assert history.detect_regressions(entries) == []


def test_trend_table_renders_runs_and_delta():
    entries = _entries([(1, [("b", 1.0, None)]),
                        (2, [("b", 1.5, None)])])
    table = history.trend_table(entries)
    assert "run 1" in table and "run 2" in table
    assert "+50.0%" in table
    assert history.trend_table([]).startswith("bench history: no")


def test_format_regressions_text():
    assert history.format_regressions([]) == "no regressions\n"
    text = history.format_regressions([
        {"bench": "b", "metric": "wall_time_s", "kind": "wall",
         "baseline": 1.0, "current": 2.0, "ratio": 2.0}])
    assert "1 regression(s)" in text and "b: wall_time_s" in text


# -- bench_history.py CLI ------------------------------------------------


def _run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "bench_history.py")]
        + args, cwd=cwd, capture_output=True, text=True)


def test_cli_records_trends_and_gates_on_regression(tmp_path):
    summary_path = tmp_path / "BENCH_SUMMARY.json"
    history_path = tmp_path / "hist.jsonl"

    summary_path.write_text(json.dumps(_summary(
        [("bench_x", 1.0, {"soc.bus.cycles": 100})])))
    first = _run_cli(["--summary", str(summary_path),
                      "--history", str(history_path)], tmp_path)
    assert first.returncode == 0, first.stderr
    assert "recorded run 1" in first.stdout

    summary_path.write_text(json.dumps(_summary(
        [("bench_x", 1.05, {"soc.bus.cycles": 100})])))
    second = _run_cli(["--summary", str(summary_path),
                       "--history", str(history_path), "--check",
                       "--trend"], tmp_path)
    assert second.returncode == 0, second.stdout + second.stderr
    assert "recorded run 2" in second.stdout
    assert "run 1" in second.stdout and "run 2" in second.stdout
    assert "no regressions" in second.stdout

    # synthetic regression: counters +50% over the previous run
    summary_path.write_text(json.dumps(_summary(
        [("bench_x", 1.0, {"soc.bus.cycles": 150})])))
    third = _run_cli(["--summary", str(summary_path),
                      "--history", str(history_path), "--check"],
                     tmp_path)
    assert third.returncode == 1
    assert "soc.bus.cycles" in third.stdout

    # --no-record --check over the same history still fails the gate
    gate = _run_cli(["--history", str(history_path), "--no-record",
                     "--check"], tmp_path)
    assert gate.returncode == 1


def test_cli_no_record_without_history(tmp_path):
    result = _run_cli(["--history", str(tmp_path / "none.jsonl"),
                       "--no-record"], tmp_path)
    assert result.returncode == 0
    assert "no usable history entries" in result.stdout
    gated = _run_cli(["--history", str(tmp_path / "none.jsonl"),
                      "--no-record", "--check"], tmp_path)
    assert gated.returncode == 1

"""Tests for the CompSOC worst-case service bound — the predictability
half of "composable and predictable execution"."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compsoc import (ComposablePlatform, periodic_workload,
                           worst_case_service_bound)


def _platform_with_load(vep_count, policy="tdm"):
    platform = ComposablePlatform(policy)
    veps = [platform.create_vep(f"v{i}") for i in range(vep_count)]
    apps = []
    for index, vep in enumerate(veps):
        app = periodic_workload(f"app{index}",
                                compute_ticks=index % 3,
                                requests=30,
                                base_address=vep.memory.base)
        vep.attach(app)
        apps.append(app)
    return platform, apps


class TestWorstCaseBound:
    def test_bound_formula(self):
        platform, _ = _platform_with_load(3)
        # 3 VEPs x memory_latency(2) slots + service 2.
        assert worst_case_service_bound(platform) == 8

    def test_bound_only_for_tdm(self):
        platform, _ = _platform_with_load(2, policy="fcfs")
        with pytest.raises(ValueError):
            worst_case_service_bound(platform)

    @pytest.mark.parametrize("vep_count", [1, 2, 4])
    def test_simulated_service_never_exceeds_bound(self, vep_count):
        platform, apps = _platform_with_load(vep_count)
        bound = worst_case_service_bound(platform)
        timelines = platform.run()
        for app in apps:
            times = timelines[app.name].service_times()
            assert times, "no requests served"
            assert max(times) <= bound

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 5), st.integers(0, 4), st.integers(1, 20))
    def test_bound_property_under_random_workloads(self, vep_count,
                                                   compute, requests):
        """The analytical bound holds for arbitrary workload shapes."""
        platform = ComposablePlatform("tdm")
        veps = [platform.create_vep(f"v{i}") for i in range(vep_count)]
        apps = []
        for index, vep in enumerate(veps):
            app = periodic_workload(
                f"a{index}", compute_ticks=(compute + index) % 5,
                requests=requests, base_address=vep.memory.base)
            vep.attach(app)
            apps.append(app)
        bound = worst_case_service_bound(platform)
        timelines = platform.run()
        for app in apps:
            for service in timelines[app.name].service_times():
                assert service <= bound

    def test_work_conserving_can_exceed_tdm_bound(self):
        """Under FCFS a burst can push another app's request past what
        the TDM platform would ever allow — why the bound needs TDM."""
        tdm_platform, _ = _platform_with_load(2)
        bound = worst_case_service_bound(tdm_platform)
        platform = ComposablePlatform("fcfs")
        v0 = platform.create_vep("v0")
        v1 = platform.create_vep("v1")
        victim = periodic_workload("victim", compute_ticks=5,
                                   requests=5,
                                   base_address=v0.memory.base)
        v0.attach(victim)
        # Many zero-compute hogs in the other VEP flood the queue.
        for index in range(6):
            hog = periodic_workload(f"hog{index}", compute_ticks=0,
                                    requests=100,
                                    base_address=v1.memory.base)
            v1.attach(hog)
        timelines = platform.run()
        assert max(timelines["victim"].service_times()) > bound

"""Tests for the from-scratch Keccak/SHA-3/SHAKE implementation.

The strongest oracle available offline is ``hashlib``, which implements
the same FIPS 202 functions in C; we cross-validate against it on fixed
and randomized inputs.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import keccak


class TestPermutation:
    def test_round_constant_count(self):
        assert len(keccak.ROUND_CONSTANTS) == 24

    def test_rho_offsets_shape_and_origin(self):
        assert len(keccak.ROTATION_OFFSETS) == 5
        assert all(len(row) == 5 for row in keccak.ROTATION_OFFSETS)
        assert keccak.ROTATION_OFFSETS[0][0] == 0

    def test_rho_offsets_known_values(self):
        # Spot-check entries of the FIPS 202 table.
        assert keccak.ROTATION_OFFSETS[1][0] == 1
        assert keccak.ROTATION_OFFSETS[2][2] == 43
        assert keccak.ROTATION_OFFSETS[4][4] == 14

    def test_permutation_changes_zero_state(self):
        out = keccak.keccak_f1600([0] * 25)
        assert out != [0] * 25
        # First lane of Keccak-f[1600] applied to the zero state.
        assert out[0] == 0xF1258F7940E1DDE7

    def test_permutation_is_pure(self):
        state = list(range(25))
        snapshot = list(state)
        keccak.keccak_f1600(state)
        assert state == snapshot


class TestPureAgainstHashlib:
    """The from-scratch sponge must be byte-identical to CPython's C
    implementation of FIPS 202 — this is the correctness oracle that
    justifies the accelerated dispatch in the public entry points."""

    CASES = [b"", b"a", b"abc", b"x" * 135, b"x" * 136, b"x" * 137,
             b"y" * 1000]

    @pytest.mark.parametrize("data", CASES)
    def test_sha3_256(self, data):
        assert keccak.pure_sha3_256(data) == \
            hashlib.sha3_256(data).digest()

    @pytest.mark.parametrize("data", CASES)
    def test_sha3_512(self, data):
        assert keccak.pure_sha3_512(data) == \
            hashlib.sha3_512(data).digest()

    @pytest.mark.parametrize("data", CASES)
    def test_shake128(self, data):
        assert keccak.pure_shake128(data, 64) == \
            hashlib.shake_128(data).digest(64)

    @pytest.mark.parametrize("data", CASES)
    def test_shake256(self, data):
        assert keccak.pure_shake256(data, 64) == \
            hashlib.shake_256(data).digest(64)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=600), st.integers(min_value=1, max_value=300))
    def test_shake256_random(self, data, out_len):
        assert keccak.pure_shake256(data, out_len) == \
            hashlib.shake_256(data).digest(out_len)

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=600))
    def test_sha3_256_random(self, data):
        assert keccak.pure_sha3_256(data) == \
            hashlib.sha3_256(data).digest()


class TestDispatch:
    """Public entry points agree with the pure sponge whichever backend
    is active."""

    @pytest.mark.parametrize("data", [b"", b"dispatch", b"z" * 137])
    def test_oneshot_functions(self, data):
        assert keccak.sha3_256(data) == keccak.pure_sha3_256(data)
        assert keccak.sha3_512(data) == keccak.pure_sha3_512(data)
        assert keccak.shake128(data, 77) == keccak.pure_shake128(data, 77)
        assert keccak.shake256(data, 77) == keccak.pure_shake256(data, 77)


class TestIncremental:
    def test_split_absorption_matches_oneshot(self):
        xof = keccak.Shake256()
        xof.absorb(b"hello ").absorb(b"world")
        assert xof.read(99) == keccak.shake256(b"hello world", 99)

    def test_split_squeeze_matches_oneshot(self):
        xof = keccak.Shake128(b"seed")
        out = xof.read(10) + xof.read(200) + xof.read(1)
        assert out == keccak.shake128(b"seed", 211)

    def test_absorb_after_read_rejected(self):
        xof = keccak.Shake256(b"x")
        xof.read(1)
        with pytest.raises(RuntimeError):
            xof.absorb(b"late")

    def test_pure_sponge_split_squeeze(self):
        sponge = keccak.KeccakSponge(136, 0x1F).absorb(b"seed")
        out = sponge.squeeze(10) + sponge.squeeze(200)
        assert out == hashlib.shake_256(b"seed").digest(210)

    def test_pure_sponge_absorb_after_squeeze_rejected(self):
        sponge = keccak.KeccakSponge(136, 0x1F)
        sponge.squeeze(1)
        with pytest.raises(RuntimeError):
            sponge.absorb(b"late")

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            keccak.KeccakSponge(0, 0x06)
        with pytest.raises(ValueError):
            keccak.KeccakSponge(200, 0x06)

    def test_squeeze_across_rate_boundary(self):
        # 136-byte rate: a 150-byte read forces a mid-read permutation.
        assert keccak.pure_shake256(b"q", 150) == \
            hashlib.shake_256(b"q").digest(150)

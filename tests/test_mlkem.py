"""Tests for the from-scratch ML-KEM (FIPS 203) implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import mlkem
from repro.crypto.mlkem import (ML_KEM_512, ML_KEM_768, ML_KEM_1024,
                                MLKEM, N, Q)

D_SEED = bytes(range(32))
Z_SEED = bytes(range(32, 64))


@pytest.fixture(scope="module")
def keypair768():
    return MLKEM(ML_KEM_768).key_gen(D_SEED, Z_SEED)


class TestNTT:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, Q - 1), min_size=N, max_size=N))
    def test_ntt_roundtrip(self, coeffs):
        assert mlkem.intt(mlkem.ntt(coeffs)) == coeffs

    def test_ntt_multiplication_matches_schoolbook(self):
        import random
        rng = random.Random(13)
        a = [rng.randrange(Q) for _ in range(N)]
        b = [rng.randrange(Q) for _ in range(N)]
        fast = mlkem.intt(mlkem.ntt_mul(mlkem.ntt(a), mlkem.ntt(b)))
        slow = [0] * N
        for i in range(N):
            for j in range(N):
                index = i + j
                term = a[i] * b[j]
                if index >= N:
                    slow[index - N] = (slow[index - N] - term) % Q
                else:
                    slow[index] = (slow[index] + term) % Q
        assert fast == slow

    def test_zetas_are_256th_roots(self):
        assert all(pow(z, 256, Q) == 1 for z in mlkem.ZETAS)
        assert len(mlkem.ZETAS) == 128
        assert len(mlkem.GAMMAS) == 128


class TestCompression:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, Q - 1), st.sampled_from([1, 4, 5, 10, 11]))
    def test_compress_roundtrip_error_bound(self, value, bits):
        """|Decompress(Compress(x)) - x| <= round(q / 2^{d+1})."""
        recovered = mlkem.decompress(mlkem.compress(value, bits), bits)
        error = min((recovered - value) % Q, (value - recovered) % Q)
        assert error <= (Q + (1 << (bits + 1)) - 1) // (1 << (bits + 1))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 1))
    def test_one_bit_roundtrip_exact(self, bit):
        assert mlkem.compress(mlkem.decompress(bit, 1), 1) == bit

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 2 ** 10 - 1), min_size=N,
                    max_size=N))
    def test_byte_encode_roundtrip(self, coeffs):
        assert mlkem.byte_decode(mlkem.byte_encode(coeffs, 10),
                                 10) == coeffs


class TestSampling:
    def test_sample_ntt_uniform_range(self):
        poly = mlkem.sample_ntt(bytes(32) + b"\x00\x01")
        assert len(poly) == N
        assert all(0 <= c < Q for c in poly)

    @pytest.mark.parametrize("eta", [2, 3])
    def test_cbd_range(self, eta):
        poly = mlkem.sample_cbd(bytes(range(64)) * eta, eta)
        assert len(poly) == N
        centred = [c if c <= Q // 2 else c - Q for c in poly]
        assert all(-eta <= c <= eta for c in centred)

    def test_cbd_length_check(self):
        with pytest.raises(ValueError):
            mlkem.sample_cbd(bytes(10), 2)


class TestParameterSets:
    @pytest.mark.parametrize("params,ek,dk,ct", [
        (ML_KEM_512, 800, 1632, 768),
        (ML_KEM_768, 1184, 2400, 1088),
        (ML_KEM_1024, 1568, 3168, 1568),
    ])
    def test_standard_sizes(self, params, ek, dk, ct):
        assert params.ek_bytes == ek
        assert params.dk_bytes == dk
        assert params.ciphertext_bytes == ct

    @pytest.mark.parametrize("params", [ML_KEM_512, ML_KEM_1024],
                             ids=lambda p: p.name)
    def test_roundtrip_other_sets(self, params):
        kem = MLKEM(params)
        ek, dk = kem.key_gen(D_SEED, Z_SEED)
        key, ciphertext = kem.encaps(ek, bytes(32))
        assert kem.decaps(dk, ciphertext) == key


class TestKem:
    def test_generated_sizes(self, keypair768):
        ek, dk = keypair768
        assert len(ek) == 1184
        assert len(dk) == 2400

    def test_encaps_decaps(self, keypair768):
        ek, dk = keypair768
        kem = MLKEM(ML_KEM_768)
        key, ciphertext = kem.encaps(ek, bytes(32))
        assert len(key) == 32
        assert len(ciphertext) == 1088
        assert kem.decaps(dk, ciphertext) == key

    def test_keygen_deterministic_in_seeds(self):
        kem = MLKEM(ML_KEM_768)
        assert kem.key_gen(D_SEED, Z_SEED) == kem.key_gen(D_SEED, Z_SEED)
        assert kem.key_gen(D_SEED, Z_SEED) != \
            kem.key_gen(Z_SEED, D_SEED)

    def test_different_randomness_different_key(self, keypair768):
        ek, _ = keypair768
        kem = MLKEM(ML_KEM_768)
        key_a, ct_a = kem.encaps(ek, b"\x01" * 32)
        key_b, ct_b = kem.encaps(ek, b"\x02" * 32)
        assert key_a != key_b
        assert ct_a != ct_b

    def test_implicit_rejection_on_tamper(self, keypair768):
        ek, dk = keypair768
        kem = MLKEM(ML_KEM_768)
        key, ciphertext = kem.encaps(ek, bytes(32))
        for index in (0, 500, 1087):
            tampered = bytearray(ciphertext)
            tampered[index] ^= 1
            derived = kem.decaps(dk, bytes(tampered))
            assert derived != key
            assert len(derived) == 32

    def test_implicit_rejection_deterministic(self, keypair768):
        """The rejection key depends only on (z, ciphertext)."""
        ek, dk = keypair768
        kem = MLKEM(ML_KEM_768)
        _, ciphertext = kem.encaps(ek, bytes(32))
        tampered = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
        assert kem.decaps(dk, tampered) == kem.decaps(dk, tampered)

    def test_wrong_decaps_key_gives_wrong_secret(self, keypair768):
        ek, _ = keypair768
        kem = MLKEM(ML_KEM_768)
        key, ciphertext = kem.encaps(ek, bytes(32))
        _, other_dk = kem.key_gen(b"\xaa" * 32, b"\xbb" * 32)
        assert kem.decaps(other_dk, ciphertext) != key

    def test_input_validation(self, keypair768):
        ek, dk = keypair768
        kem = MLKEM(ML_KEM_768)
        with pytest.raises(ValueError):
            kem.encaps(ek[:-1])
        with pytest.raises(ValueError):
            kem.encaps(ek, bytes(31))
        with pytest.raises(ValueError):
            kem.decaps(dk[:-1], bytes(1088))
        with pytest.raises(ValueError):
            kem.decaps(dk, bytes(1087))
        with pytest.raises(ValueError):
            kem.key_gen(bytes(31), bytes(32))

    def test_unreduced_ek_rejected(self, keypair768):
        """FIPS 203 input validation: coefficients must be < q."""
        ek, _ = keypair768
        coeffs = [Q] + [0] * (N - 1)       # q itself is not reduced
        bad = mlkem.byte_encode(coeffs, 12) + ek[384:]
        with pytest.raises(ValueError):
            MLKEM(ML_KEM_768).encaps(bad)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=32, max_size=32),
           st.binary(min_size=32, max_size=32))
    def test_roundtrip_property(self, d, m):
        kem = MLKEM(ML_KEM_768)
        ek, dk = kem.key_gen(d, bytes(32))
        key, ciphertext = kem.encaps(ek, m)
        assert kem.decaps(dk, ciphertext) == key

"""Tests for the RISC-V PMP model — the isolation primitive of the paper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc import (AddressMode, Pmp, PmpEntry, PrivilegeMode,
                       napot_address)

M = PrivilegeMode.MACHINE
S = PrivilegeMode.SUPERVISOR
U = PrivilegeMode.USER


class TestNapotEncoding:
    @pytest.mark.parametrize("base,size", [
        (0x8000_0000, 0x1000), (0, 8), (0x4000, 0x4000)])
    def test_roundtrip(self, base, size):
        entry = PmpEntry(mode=AddressMode.NAPOT,
                         address=napot_address(base, size))
        assert entry.range_for(0) == (base, base + size)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            napot_address(0, 24)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            napot_address(0, 4)

    def test_rejects_misaligned_base(self):
        with pytest.raises(ValueError):
            napot_address(0x100, 0x1000)


class TestAddressModes:
    def test_off_matches_nothing(self):
        assert PmpEntry().range_for(0) == (0, 0)

    def test_na4(self):
        entry = PmpEntry(mode=AddressMode.NA4, address=0x1000 >> 2)
        assert entry.range_for(0) == (0x1000, 0x1004)

    def test_tor(self):
        entry = PmpEntry(mode=AddressMode.TOR, address=0x2000 >> 2)
        assert entry.range_for(0x1000 >> 2) == (0x1000, 0x2000)

    def test_tor_empty_when_inverted(self):
        entry = PmpEntry(mode=AddressMode.TOR, address=0x1000 >> 2)
        assert entry.range_for(0x2000 >> 2) == (0, 0)

    def test_config_byte_roundtrip(self):
        entry = PmpEntry(mode=AddressMode.NAPOT, readable=True,
                         executable=True, locked=True, address=0xFF)
        rebuilt = PmpEntry.from_config_byte(entry.config_byte(), 0xFF)
        assert rebuilt == entry


class TestCheckAlgorithm:
    @pytest.fixture
    def pmp(self):
        pmp = Pmp()
        # Entry 0: 4 KB RW region for U-mode at 0x8000_0000.
        pmp.set_napot(0, 0x8000_0000, 0x1000, readable=True, writable=True)
        # Entry 1: 4 KB execute-only region.
        pmp.set_napot(1, 0x8000_1000, 0x1000, executable=True)
        return pmp

    def test_user_allowed_inside(self, pmp):
        assert pmp.check(0x8000_0000, 4, "read", U)
        assert pmp.check(0x8000_0FFC, 4, "write", U)
        assert not pmp.check(0x8000_0000, 4, "exec", U)

    def test_user_denied_outside(self, pmp):
        assert not pmp.check(0x8000_2000, 4, "read", U)

    def test_supervisor_denied_outside(self, pmp):
        assert not pmp.check(0x9000_0000, 4, "read", S)

    def test_machine_default_allow(self, pmp):
        assert pmp.check(0x9000_0000, 4, "read", M)
        assert pmp.check(0x8000_0000, 4, "exec", M)  # unlocked entry

    def test_execute_only_region(self, pmp):
        assert pmp.check(0x8000_1000, 4, "exec", U)
        assert not pmp.check(0x8000_1000, 4, "read", U)

    def test_access_straddling_boundary_denied(self, pmp):
        # 8-byte access straddling the RW region's end: conservative deny.
        assert not pmp.check(0x8000_0FFC, 8, "write", U)

    def test_priority_lowest_index_wins(self):
        pmp = Pmp()
        pmp.set_napot(0, 0x8000_0000, 0x1000, readable=True)
        pmp.set_napot(1, 0x8000_0000, 0x1000, readable=True, writable=True)
        assert pmp.check(0x8000_0000, 4, "read", U)
        # Entry 0 (read-only) shadows entry 1 (RW).
        assert not pmp.check(0x8000_0000, 4, "write", U)

    def test_locked_entry_binds_machine_mode(self):
        pmp = Pmp()
        pmp.set_napot(0, 0x8000_0000, 0x1000, readable=True, locked=True)
        assert pmp.check(0x8000_0000, 4, "read", M)
        assert not pmp.check(0x8000_0000, 4, "write", M)

    def test_locked_entry_immutable(self):
        pmp = Pmp()
        pmp.set_napot(0, 0x8000_0000, 0x1000, readable=True, locked=True)
        with pytest.raises(PermissionError):
            pmp.clear_entry(0)

    def test_only_machine_mode_programs_pmp(self):
        pmp = Pmp()
        with pytest.raises(PermissionError):
            pmp.set_napot(0, 0x8000_0000, 0x1000, readable=True, mode=S)

    def test_unknown_access_type(self):
        with pytest.raises(ValueError):
            Pmp().check(0, 4, "jump", M)

    def test_active_ranges(self):
        pmp = Pmp()
        pmp.set_napot(3, 0x8000_0000, 0x1000, readable=True)
        ranges = pmp.active_ranges()
        assert len(ranges) == 1
        assert ranges[0][:2] == (0x8000_0000, 0x8000_1000)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**30), st.sampled_from([8, 64, 4096, 65536]))
    def test_napot_range_property(self, block, size):
        """Every NAPOT entry covers exactly [base, base+size)."""
        base = (block * size) % (1 << 34)
        entry = PmpEntry(mode=AddressMode.NAPOT,
                         address=napot_address(base, size))
        lo, hi = entry.range_for(0)
        assert (lo, hi) == (base, base + size)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**20))
    def test_isolation_invariant(self, address):
        """U-mode can never touch anything with an all-OFF PMP."""
        assert not Pmp().check(address, 4, "read", U)
        assert Pmp().check(address, 4, "read", M)

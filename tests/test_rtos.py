"""Tests for the PMP-hardened RTOS: scheduling, IPC, isolation, and the
Fig. 3 attack-scenario suite."""

import pytest

from repro.rtos import (Acquire, Delay, Kernel, MessageQueue, Mutex,
                        Receive, Release, Send, TaskState,
                        run_all_scenarios)


def _spin(ticks):
    def entry(ctx):
        for _ in range(ticks):
            yield
    return entry


class TestScheduler:
    def test_tasks_run_to_completion(self):
        kernel = Kernel()
        task = kernel.create_task("t", 1, _spin(5))
        kernel.run(50)
        assert task.state is TaskState.DONE
        assert task.ticks_run >= 5

    def test_higher_priority_preempts(self):
        kernel = Kernel()
        low = kernel.create_task("low", 1, _spin(10))
        high = kernel.create_task("high", 5, _spin(10))
        kernel.run(12)
        assert high.ticks_run > low.ticks_run

    def test_equal_priority_round_robin(self):
        kernel = Kernel()
        a = kernel.create_task("a", 1, _spin(20))
        b = kernel.create_task("b", 1, _spin(20))
        kernel.run(20)
        assert abs(a.ticks_run - b.ticks_run) <= 1

    def test_delay_suspends_task(self):
        kernel = Kernel()
        events = []

        def sleeper(ctx):
            events.append(("before", kernel.tick))
            yield Delay(10)
            events.append(("after", kernel.tick))

        kernel.create_task("s", 1, sleeper)
        kernel.run(30)
        assert events[1][1] - events[0][1] >= 10

    def test_idle_when_all_delayed(self):
        kernel = Kernel()

        def sleeper(ctx):
            yield Delay(5)

        kernel.create_task("s", 1, sleeper)
        stats = kernel.run(30)
        assert stats.ticks >= 5

    def test_run_stops_when_everything_done(self):
        kernel = Kernel()
        kernel.create_task("t", 1, _spin(3))
        stats = kernel.run(1000)
        assert stats.ticks < 1000

    def test_budget_suspends_hog(self):
        kernel = Kernel(budget_window=50)
        hog = kernel.create_task("hog", 9, _spin(200), budget_ticks=10)
        worker = kernel.create_task("worker", 1, _spin(50))
        kernel.run(60)
        assert worker.ticks_run > 10   # hog could not monopolise
        assert any(e.kind == "budget-exhausted" for e in kernel.events)

    def test_budget_replenishes(self):
        kernel = Kernel(budget_window=20)
        hog = kernel.create_task("hog", 9, _spin(100), budget_ticks=5)
        kernel.create_task("w", 1, _spin(300))
        kernel.run(200)
        assert any(e.kind == "budget-replenished"
                   for e in kernel.events)
        assert hog.ticks_run > 5       # got to run again after refills


class TestIpc:
    def test_queue_roundtrip(self):
        kernel = Kernel()
        q = kernel.queue(4)
        received = []

        def producer(ctx):
            for i in range(3):
                yield Send(q, i)

        def consumer(ctx):
            for _ in range(3):
                value = yield Receive(q)
                received.append(value)

        kernel.create_task("p", 1, producer)
        kernel.create_task("c", 1, consumer)
        kernel.run(50)
        assert received == [0, 1, 2]

    def test_receive_blocks_until_data(self):
        kernel = Kernel()
        q = kernel.queue(4)
        received = []

        def consumer(ctx):
            value = yield Receive(q)
            received.append(value)

        def late_producer(ctx):
            yield Delay(10)
            yield Send(q, "late")

        consumer_task = kernel.create_task("c", 5, consumer)
        kernel.create_task("p", 1, late_producer)
        kernel.run(5)
        assert consumer_task.state is TaskState.BLOCKED
        kernel.run(30)
        assert received == ["late"]

    def test_send_blocks_when_full(self):
        kernel = Kernel()
        q = kernel.queue(1)

        def producer(ctx):
            yield Send(q, 1)
            yield Send(q, 2)   # blocks: capacity 1, nobody consuming yet
            yield

        producer_task = kernel.create_task("p", 1, producer)
        kernel.run(5)
        assert producer_task.state is TaskState.BLOCKED

    def test_queue_validation(self):
        with pytest.raises(ValueError):
            MessageQueue(0)

    def test_mutex_exclusion_and_inheritance(self):
        kernel = Kernel()
        m = kernel.mutex("resource")
        order = []

        def low(ctx):
            yield Acquire(m)
            order.append("low-acquired")
            for _ in range(10):
                yield
            order.append("low-releasing")
            yield Release(m)

        def high(ctx):
            yield Delay(5)          # let low take the mutex first
            yield Acquire(m)
            order.append("high-acquired")
            yield Release(m)

        def medium(ctx):
            yield Delay(6)          # wake while low holds the mutex
            for _ in range(100):
                yield

        low_task = kernel.create_task("low", 1, low)
        kernel.create_task("high", 9, high)
        kernel.create_task("medium", 5, medium)
        kernel.run(60)
        # Priority inheritance: despite the medium spinner, low (boosted
        # to high's priority) finishes its critical section and high
        # acquires immediately after the release.
        assert order == ["low-acquired", "low-releasing",
                         "high-acquired"]

    def test_mutex_release_by_non_holder_rejected(self):
        m = Mutex()

        class Dummy:
            name = "d"
            priority = 1

        holder, other = Dummy(), Dummy()
        m.acquire(holder)
        with pytest.raises(RuntimeError):
            m.release(other)


class TestIsolation:
    def test_task_reads_own_data(self):
        kernel = Kernel()
        seen = []

        def entry(ctx):
            ctx.store(ctx.stack.base, b"hello")
            seen.append(ctx.load(ctx.stack.base, 5))
            yield

        kernel.create_task("t", 1, entry)
        kernel.run(10)
        assert seen == [b"hello"]

    def test_cross_task_read_faults_when_protected(self):
        kernel = Kernel(protected=True)
        victim = kernel.create_task("v", 1, _spin(20), data_bytes=4096)

        def attacker(ctx):
            yield
            ctx.load(victim.data_regions[0].base, 4)
            yield

        attacker_task = kernel.create_task("a", 1, attacker)
        kernel.run(30)
        assert attacker_task.state is TaskState.FAULTED
        assert victim.state is not TaskState.FAULTED

    def test_cross_task_read_allowed_when_flat(self):
        kernel = Kernel(protected=False)
        victim = kernel.create_task("v", 1, _spin(20), data_bytes=4096)
        grabbed = []

        def attacker(ctx):
            yield
            grabbed.append(ctx.load(victim.data_regions[0].base, 4))
            yield

        attacker_task = kernel.create_task("a", 1, attacker)
        kernel.run(30)
        assert attacker_task.state is not TaskState.FAULTED
        assert grabbed

    def test_kernel_region_protected(self):
        kernel = Kernel(protected=True)

        def attacker(ctx):
            yield
            ctx.store(kernel.kernel_region.base, b"x")

        task = kernel.create_task("a", 1, attacker)
        kernel.run(10)
        assert task.state is TaskState.FAULTED

    def test_mmio_needs_grant(self):
        kernel = Kernel(protected=True)
        mmio = kernel.memory.memory_map["mmio"]

        def driver(ctx):
            ctx.store(mmio.base, b"\x01")
            yield

        def rogue(ctx):
            ctx.store(mmio.base, b"\x02")
            yield

        driver_task = kernel.create_task("driver", 1, driver,
                                         grant_mmio=True)
        rogue_task = kernel.create_task("rogue", 1, rogue)
        kernel.run(20)
        assert driver_task.state is TaskState.DONE
        assert rogue_task.state is TaskState.FAULTED

    def test_fault_recovery_system_keeps_running(self):
        kernel = Kernel(protected=True)

        def crasher(ctx):
            ctx.load(kernel.kernel_region.base, 4)
            yield

        worker_done = []

        def worker(ctx):
            for _ in range(10):
                yield
            worker_done.append(True)

        kernel.create_task("crash", 9, crasher)
        kernel.create_task("work", 1, worker)
        kernel.run(50)
        assert worker_done == [True]
        assert kernel.stats.faults == 1


class TestAttackSuite:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {
            False: run_all_scenarios(protected=False),
            True: run_all_scenarios(protected=True),
        }

    def test_all_attacks_succeed_on_flat_kernel(self, outcomes):
        assert all(o.attack_succeeded for o in outcomes[False])

    def test_all_attacks_blocked_on_protected_kernel(self, outcomes):
        assert not any(o.attack_succeeded for o in outcomes[True])

    def test_attackers_contained_when_protected(self, outcomes):
        assert all(o.attacker_contained for o in outcomes[True])

    def test_victims_always_survive_when_protected(self, outcomes):
        assert all(o.victim_survived for o in outcomes[True])

    def test_scenario_coverage(self, outcomes):
        names = {o.name for o in outcomes[True]}
        assert names == {"steal-secret", "smash-stack", "corrupt-kernel",
                         "hijack-peripheral", "starve-scheduler"}

"""Streaming anomaly detection over the audit stream (ISSUE 8).

Pins the detection-plane contracts:

* detectors are deterministic pure functions of the event window —
  threshold/window semantics, clear-on-fire, predicate and kind
  filters, and the calibrated perf-signature baseline;
* the engine re-emits detections into the ledger without ever
  detecting its own output (no feedback loops), and the resulting
  chain still verifies;
* every golden scenario runs silent — zero detections, zero
  non-info events;
* an adversary campaign produces a byte-identical ledger and
  detection sequence serial vs ``jobs=2`` (the parity acceptance
  criterion);
* the audit summary round-trips through the Prometheus exposition
  renderer and strict parser.
"""

import pytest

from repro.faults import FAULTS
from repro.faults.adversary import standard_adversary_campaign
from repro.faults.scenarios import standard_scenarios
from repro.obs.audit import (AUDIT, AuditLedger, canonical_encode,
                             summarize_records, verify_records)
from repro.obs.detect import (DETECT_SUBSYSTEM, AnomalyEngine,
                              PerfSignatureOutlierDetector,
                              WindowThresholdDetector,
                              standard_detectors)
from repro.obs.exposition import parse_exposition, render


def _event(seq, kind="boot-rejected", subsystem="tee.boot",
           severity="critical", detail=None):
    return {"type": "event", "seq": seq, "subsystem": subsystem,
            "kind": kind, "severity": severity,
            "detail": detail or {}}


@pytest.fixture(autouse=True)
def _pristine_global_audit():
    """Tests that touch the process-global ``AUDIT`` must not leak
    state (or listeners) into the rest of the suite."""
    yield
    AUDIT.disable()
    AUDIT.reset()
    AUDIT._listeners = []


# -- window/threshold detector --------------------------------------------

class TestWindowThresholdDetector:
    def test_tripwire_fires_on_first_match(self):
        detector = WindowThresholdDetector(
            "trip", kinds=("bus-watchdog",), threshold=1, window=1)
        detection = detector.observe(
            _event(5, kind="bus-watchdog", subsystem="soc.bus"))
        assert detection is not None
        assert detection.detector == "trip"
        assert (detection.first_seq, detection.last_seq) == (5, 5)
        assert detection.count == 1

    def test_threshold_needs_full_window(self):
        detector = WindowThresholdDetector(
            "burst", kinds=("boot-rejected",), threshold=3, window=64)
        assert detector.observe(_event(1)) is None
        assert detector.observe(_event(2)) is None
        detection = detector.observe(_event(3))
        assert detection is not None
        assert detection.first_seq == 1
        assert detection.count == 3
        assert detection.threshold == 3

    def test_window_expiry_forgets_old_events(self):
        detector = WindowThresholdDetector(
            "burst", kinds=("boot-rejected",), threshold=2, window=4)
        assert detector.observe(_event(0)) is None
        # seq 10 is outside [7, 10] window of seq 0 — count resets.
        assert detector.observe(_event(10)) is None
        assert detector.observe(_event(11)) is not None

    def test_clear_on_fire_means_one_detection_per_burst(self):
        detector = WindowThresholdDetector(
            "burst", kinds=("boot-rejected",), threshold=2, window=64)
        assert detector.observe(_event(1)) is None
        assert detector.observe(_event(2)) is not None
        # The window cleared; the next event alone must not re-fire.
        assert detector.observe(_event(3)) is None
        assert detector.observe(_event(4)) is not None

    def test_kind_subsystem_and_predicate_filters(self):
        detector = WindowThresholdDetector(
            "replay", kinds=("delivery-attempt-failed",),
            subsystems=("tee.delivery",),
            predicate=lambda r: (r.get("detail") or {})
            .get("reason") == "replay",
            threshold=1, window=1)
        wrong_kind = _event(1, kind="delivery-rejected",
                            subsystem="tee.delivery",
                            detail={"reason": "replay"})
        wrong_subsystem = _event(2, kind="delivery-attempt-failed",
                                 subsystem="soc.bus",
                                 detail={"reason": "replay"})
        wrong_reason = _event(3, kind="delivery-attempt-failed",
                              subsystem="tee.delivery",
                              detail={"reason": "timeout"})
        match = _event(4, kind="delivery-attempt-failed",
                       subsystem="tee.delivery",
                       detail={"reason": "replay"})
        assert detector.observe(wrong_kind) is None
        assert detector.observe(wrong_subsystem) is None
        assert detector.observe(wrong_reason) is None
        assert detector.observe(match) is not None

    def test_detection_events_never_match(self):
        detector = WindowThresholdDetector("any", threshold=1,
                                           window=1)
        record = _event(1, kind="detection",
                        subsystem=DETECT_SUBSYSTEM)
        assert detector.observe(record) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WindowThresholdDetector("x", threshold=0)
        with pytest.raises(ValueError):
            WindowThresholdDetector("x", window=0)


# -- perf-signature outlier -----------------------------------------------

class TestPerfSignatureOutlier:
    BASELINE = [((("bus_cycles", 3), ("pmp_checks", 1)))]

    def _perf_event(self, seq, signature):
        return _event(seq, kind="perf-signature",
                      subsystem="faults.adversary", severity="info",
                      detail={"signature": [list(pair)
                                            for pair in signature]})

    def test_silent_until_calibrated(self):
        detector = PerfSignatureOutlierDetector()
        novel = self._perf_event(1, (("bus_cycles", 9),))
        assert detector.observe(novel) is None

    def test_baseline_silent_outlier_fires(self):
        detector = PerfSignatureOutlierDetector()
        baseline_signature = (("bus_cycles", 3), ("pmp_checks", 1))
        detector.calibrate([baseline_signature])
        assert detector.observe(
            self._perf_event(1, baseline_signature)) is None
        detection = detector.observe(
            self._perf_event(2, (("bus_cycles", 9),)))
        assert detection is not None
        assert detection.detector == "perf-outlier"

    def test_other_kinds_ignored(self):
        detector = PerfSignatureOutlierDetector()
        detector.calibrate([])
        assert detector.observe(_event(1)) is None


# -- the engine on a live ledger ------------------------------------------

class TestAnomalyEngine:
    def test_detection_re_enters_ledger_and_chain_verifies(self):
        ledger = AuditLedger(enabled=True, checkpoint_every=0)
        engine = AnomalyEngine(ledger=ledger)
        try:
            for _ in range(3):
                ledger.emit("tee.boot", "boot-rejected",
                            severity="critical",
                            reason="boot-verification-failed")
        finally:
            engine.uninstall()
        assert engine.by_detector() == {"boot-failure-burst": 1}
        kinds = [r["kind"] for r in ledger.records()
                 if r["type"] == "event"]
        assert kinds == ["boot-rejected"] * 3 + ["detection"]
        detection = ledger.records()[-1]
        assert detection["subsystem"] == DETECT_SUBSYSTEM
        assert detection["detail"]["detector"] == "boot-failure-burst"
        assert detection["detail"]["source"] == "tee.boot"
        verify_records(ledger.export_records())

    def test_no_feedback_loop_on_detection_events(self):
        ledger = AuditLedger(enabled=True, checkpoint_every=0)
        # A tripwire on *everything* would loop forever if detections
        # could trigger detections.
        engine = AnomalyEngine(
            detectors=[WindowThresholdDetector("all", threshold=1,
                                               window=1)],
            ledger=ledger)
        try:
            ledger.emit("soc.bus", "bus-watchdog",
                        severity="critical", cycle=1, pending=1)
        finally:
            engine.uninstall()
        assert len(engine.detections) == 1
        assert ledger.event_count() == 2   # trigger + one detection

    def test_uninstall_stops_observation(self):
        ledger = AuditLedger(enabled=True, checkpoint_every=0)
        engine = AnomalyEngine(ledger=ledger)
        engine.uninstall()
        ledger.emit("soc.bus", "bus-watchdog", severity="critical")
        assert engine.detections == []

    def test_sequence_is_json_native(self):
        engine = AnomalyEngine(ledger=None)
        engine.observe(_event(1, kind="bus-watchdog",
                              subsystem="soc.bus"))
        sequence = engine.sequence()
        assert len(sequence) == 1
        canonical_encode(sequence)           # raises if not JSON-native
        assert sequence[0]["severity"] == "critical"

    def test_standard_suite_names_are_unique(self):
        names = [d.name for d in standard_detectors()]
        assert len(names) == len(set(names))
        assert "hardening-gate" in names


# -- golden runs are silent -----------------------------------------------

class TestGoldenSilence:
    def test_standard_scenarios_emit_no_detections(self):
        FAULTS.disarm()
        AUDIT.reset()
        AUDIT.enable()
        engine = AnomalyEngine(ledger=AUDIT)
        try:
            for scenario in standard_scenarios():
                result = scenario.execute()
                assert result["status"] == "ok", (scenario.name,
                                                  result)
        finally:
            engine.uninstall()
        assert engine.detections == []
        severities = {r["severity"] for r in AUDIT.records()
                      if r["type"] == "event"}
        assert severities <= {"info"}
        verify_records(AUDIT.export_records())


# -- serial vs parallel parity --------------------------------------------

class TestCampaignParity:
    def _campaign_ledger(self, jobs):
        AUDIT.reset()
        AUDIT.enable()
        engine = AnomalyEngine(ledger=AUDIT)
        try:
            standard_adversary_campaign(seed=11, generations=2,
                                        population=60, jobs=jobs)
        finally:
            engine.uninstall()
        records = AUDIT.export_records()
        sequence = engine.sequence()
        AUDIT.disable()
        AUDIT.reset()
        return records, sequence

    def test_ledger_and_detections_identical_serial_vs_jobs2(self):
        serial_records, serial_sequence = self._campaign_ledger(1)
        parallel_records, parallel_sequence = self._campaign_ledger(2)
        assert [canonical_encode(r) for r in parallel_records] == \
            [canonical_encode(r) for r in serial_records]
        assert parallel_sequence == serial_sequence
        assert verify_records(serial_records)["events"] > 0


# -- exposition round trip ------------------------------------------------

class TestExpositionRoundTrip:
    def test_audit_summary_renders_and_reparses(self):
        ledger = AuditLedger(enabled=True, checkpoint_every=0)
        engine = AnomalyEngine(ledger=ledger)
        try:
            ledger.emit("tee.boot", "boot-verified", post_quantum=True)
            ledger.emit("soc.bus", "bus-watchdog",
                        severity="critical", cycle=9, pending=2)
        finally:
            engine.uninstall()
        summary = summarize_records(ledger.export_records())
        text = render(audit=summary)
        families = parse_exposition(text)
        events = families["repro_audit_events_total"]
        assert {(labels["subsystem"], labels["severity"]): value
                for labels, value in events} == {
            ("tee.boot", "info"): 1.0,
            ("soc.bus", "critical"): 1.0,
            (DETECT_SUBSYSTEM, "critical"): 1.0}
        detections = families["repro_detections_total"]
        assert {labels["detector"]: value
                for labels, value in detections} == {
            "bus-wedge": 1.0}

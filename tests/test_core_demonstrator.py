"""Tests for the demonstrator assembly (paper Section IV)."""

import pytest

from repro.core import (ALL_USE_CASES, SecurityFramework,
                        build_demonstrator, default_catalog)


@pytest.fixture(scope="module")
def framework():
    return SecurityFramework()


class TestDemonstrator:
    @pytest.mark.parametrize("factory", ALL_USE_CASES,
                             ids=[f().name for f in ALL_USE_CASES])
    def test_every_use_case_demonstrates(self, framework, factory):
        """Section IV: the derived architecture must *work* when
        assembled, for all four use cases."""
        architecture = framework.derive(factory())
        report = build_demonstrator(architecture)
        assert report.all_passed, report.summary()

    def test_one_check_per_selected_feature(self, framework):
        from repro.core import traffic_supervision
        architecture = framework.derive(traffic_supervision())
        report = build_demonstrator(architecture)
        assert len(report.checks) == len(architecture.features)
        assert {c.feature for c in report.checks} == \
            set(architecture.feature_names)

    def test_every_catalog_feature_has_a_check(self):
        from repro.core.demonstrator import _CHECKS
        for name in default_catalog():
            assert name in _CHECKS, f"no demonstrator check for {name}"

    def test_summary_readable(self, framework):
        from repro.core import satellite_imagery
        report = build_demonstrator(framework.derive(satellite_imagery()))
        text = report.summary()
        assert "satellite-imagery" in text
        assert "[ok ]" in text

    def test_unknown_feature_fails_closed(self):
        """An architecture naming a feature without a wired check must
        surface a failure, never silently pass."""
        from repro.core import WORST_CASE, Asset, Overhead, \
            SecurityFeature, UseCaseProfile
        from repro.core.framework import SecurityArchitecture
        ghost = SecurityFeature(
            "ghost_feature", "not wired", frozenset(), Overhead())
        profile = UseCaseProfile("ghost", frozenset(), WORST_CASE)
        architecture = SecurityArchitecture(
            profile=profile, features=(ghost,))
        report = build_demonstrator(architecture)
        assert not report.all_passed
        assert "no demonstrator check wired" in report.checks[0].detail

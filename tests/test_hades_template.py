"""Tests for the HADES template system, metrics and masking models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hades import (Configuration, DesignContext,
                         InfeasibleConfiguration, Metrics,
                         OptimizationGoal, Template, enumerate_designs)
from repro.hades import masking


def _const_cost(area, latency, rand=0.0):
    return lambda params, subs, context: Metrics(area, latency, rand)


class TestMetrics:
    def test_products(self):
        m = Metrics(2.0, 10.0, 4.0)
        assert m.area_latency_product == 20.0
        assert m.area_latency_randomness_product == 80.0

    def test_combine(self):
        a = Metrics(1.0, 2.0, 3.0).combine(Metrics(4.0, 5.0, 6.0))
        assert a == Metrics(5.0, 7.0, 9.0)

    def test_scaled(self):
        assert Metrics(2.0, 4.0, 8.0).scaled(area=0.5) == \
            Metrics(1.0, 4.0, 8.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Metrics(-1.0, 1.0)

    @pytest.mark.parametrize("goal,expected", [
        (OptimizationGoal.LATENCY, 10.0),
        (OptimizationGoal.AREA, 2.0),
        (OptimizationGoal.RANDOMNESS, 4.0),
        (OptimizationGoal.AREA_LATENCY, 20.0),
        (OptimizationGoal.AREA_LATENCY_RANDOMNESS, 80.0),
    ])
    def test_goal_scores(self, goal, expected):
        assert goal.score(Metrics(2.0, 10.0, 4.0)) == expected

    def test_masking_only_goals(self):
        assert OptimizationGoal.RANDOMNESS.needs_masking
        assert not OptimizationGoal.AREA.needs_masking


class TestMaskingModel:
    def test_shares(self):
        assert masking.shares(0) == 1
        assert masking.shares(2) == 3

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            masking.shares(-1)

    def test_gadget_randomness_follows_d_d1_over_2(self):
        assert masking.and_gadget_randomness_bits(0) == 0
        assert masking.and_gadget_randomness_bits(1) == 1
        assert masking.and_gadget_randomness_bits(2) == 3
        assert masking.and_gadget_randomness_bits(3) == 6

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 8))
    def test_gadget_area_monotone_in_order(self, order):
        assert masking.and_gadget_area_ge(order + 1) > \
            masking.and_gadget_area_ge(order)

    def test_latency_stages_order_independent(self):
        assert masking.and_gadget_latency_stages(0) == 0
        assert masking.and_gadget_latency_stages(1) == \
            masking.and_gadget_latency_stages(5)


class TestTemplate:
    def test_count_parameters_multiply(self):
        t = Template("t", _const_cost(1, 1),
                     parameters={"a": (1, 2, 3), "b": ("x", "y")})
        assert t.count_configurations() == 6

    def test_count_slots_sum_then_multiply(self):
        leaf_a = Template("leaf_a", _const_cost(1, 1),
                          parameters={"p": (1, 2)})
        leaf_b = Template("leaf_b", _const_cost(2, 2))
        parent = Template("parent", _const_cost(0, 0),
                          parameters={"q": (1, 2, 3)},
                          slots={"s": (leaf_a, leaf_b)})
        assert parent.count_configurations() == 3 * (2 + 1)

    def test_enumeration_matches_count(self):
        leaf_a = Template("leaf_a", _const_cost(1, 1),
                          parameters={"p": (1, 2)})
        leaf_b = Template("leaf_b", _const_cost(2, 2))
        parent = Template(
            "parent",
            lambda params, subs, context: subs["s"].combine(
                Metrics(params["q"], 0)),
            parameters={"q": (1, 2, 3)}, slots={"s": (leaf_a, leaf_b)})
        designs = list(enumerate_designs(parent, DesignContext()))
        assert len(designs) == parent.count_configurations()

    def test_nested_metrics_flow_upward(self):
        leaf = Template("leaf", _const_cost(1.5, 7))
        parent = Template(
            "parent",
            lambda params, subs, context: subs["s"].scaled(area=2),
            slots={"s": (leaf,)})
        design = next(iter(enumerate_designs(parent, DesignContext())))
        assert design.metrics.area_kge == 3.0
        assert design.metrics.latency_cc == 7

    def test_empty_parameter_rejected(self):
        with pytest.raises(ValueError):
            Template("t", _const_cost(1, 1), parameters={"a": ()})

    def test_empty_slot_rejected(self):
        with pytest.raises(ValueError):
            Template("t", _const_cost(1, 1), slots={"s": ()})

    def test_infeasible_configurations_skipped(self):
        def cost(params, subs, context):
            if params["a"] == 2:
                raise InfeasibleConfiguration("no")
            return Metrics(1, 1)

        t = Template("t", cost, parameters={"a": (1, 2, 3)})
        designs = list(enumerate_designs(t, DesignContext()))
        assert len(designs) == 2
        assert t.count_configurations() == 3   # space size unchanged

    def test_evaluate_specific_configuration(self):
        t = Template("t", lambda p, s, c: Metrics(p["a"], 1),
                     parameters={"a": (1, 2, 3)})
        config = Configuration("t", (("a", 2),), ())
        assert t.evaluate(config, DesignContext()).area_kge == 2

    def test_evaluate_rejects_foreign_configuration(self):
        t = Template("t", _const_cost(1, 1))
        with pytest.raises(ValueError):
            t.evaluate(Configuration("other", (), ()), DesignContext())

    def test_default_configuration_is_first(self):
        leaf = Template("leaf", _const_cost(1, 1),
                        parameters={"p": (10, 20)})
        parent = Template("parent", lambda p, s, c: s["s"],
                          slots={"s": (leaf,)})
        config = parent.default_configuration()
        assert config.slot("s").param("p") == 10

    def test_random_configuration_valid(self):
        import random
        leaf_a = Template("leaf_a", _const_cost(1, 1),
                          parameters={"p": (1, 2)})
        leaf_b = Template("leaf_b", _const_cost(2, 2))
        parent = Template("parent", lambda p, s, c: s["s"],
                          parameters={"q": (1, 2, 3)},
                          slots={"s": (leaf_a, leaf_b)})
        rng = random.Random(3)
        seen = set()
        for _ in range(50):
            config = parent.random_configuration(rng)
            parent.evaluate(config, DesignContext())   # must not raise
            seen.add(config)
        assert len(seen) > 3

    def test_describe_readable(self):
        t = Template("t", _const_cost(1, 1), parameters={"a": (1,)})
        assert "a=1" in t.default_configuration().describe()

    def test_context_validation(self):
        with pytest.raises(ValueError):
            DesignContext(masking_order=-1)
        with pytest.raises(ValueError):
            DesignContext(width=0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 4))
    def test_count_formula_property(self, n_params, n_candidates, n_leaf):
        """Closed-form count always equals brute-force enumeration."""
        leaves = [Template(f"leaf{i}", _const_cost(1, 1),
                           parameters={"p": tuple(range(n_leaf))})
                  for i in range(n_candidates)]
        parent = Template("parent", lambda p, s, c: s["s"],
                          parameters={"a": tuple(range(n_params))},
                          slots={"s": tuple(leaves)})
        count = parent.count_configurations()
        assert count == n_params * n_candidates * n_leaf
        assert count == len(list(enumerate_designs(parent,
                                                   DesignContext())))

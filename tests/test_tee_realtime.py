"""Tests for the real-time + TEE integration (paper Section II-C).

"Nesting a TEE inside a real-time system breaks the security guarantees
of the TEE.  Conversely, nesting a real-time system inside a TEE breaks
any real-time guarantees ... A customized solution is therefore
required."  Each configuration must land exactly where the paper says.
"""

import pytest

from repro.tee import (convolve_integration, evaluate_realtime_tee,
                       rtos_inside_tee, tee_inside_rtos)


class TestNaiveNestings:
    def test_tee_inside_rtos_breaks_security(self):
        outcome = tee_inside_rtos()
        assert not outcome.security_preserved
        assert outcome.deadlines_met
        assert not outcome.viable

    def test_rtos_inside_tee_breaks_deadlines(self):
        outcome = rtos_inside_tee()
        assert outcome.security_preserved
        assert not outcome.deadlines_met
        assert not outcome.viable


class TestConvolveIntegration:
    def test_both_properties_hold(self):
        outcome = convolve_integration()
        assert outcome.security_preserved
        assert outcome.deadlines_met
        assert outcome.viable

    def test_only_the_customized_solution_is_viable(self):
        outcomes = evaluate_realtime_tee()
        viable = [o.name for o in outcomes if o.viable]
        assert viable == ["CONVOLVE integration"]

    def test_matrix_covers_both_failure_modes(self):
        """The paper's argument needs both naive failures to be
        *different* failures."""
        outcomes = {o.name: o for o in evaluate_realtime_tee()}
        tee_in_rtos = outcomes["TEE inside RTOS"]
        rtos_in_tee = outcomes["RTOS inside TEE"]
        assert tee_in_rtos.security_preserved != \
            rtos_in_tee.security_preserved
        assert tee_in_rtos.deadlines_met != rtos_in_tee.deadlines_met

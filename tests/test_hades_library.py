"""Tests for the HADES template library: Table I counts, Table II
behaviour, masking scaling and the AGEMA baseline."""

import pytest

from repro.hades import (DesignContext, ExhaustiveExplorer,
                         LocalSearchExplorer, OptimizationGoal,
                         agema_adder, enumerate_designs)
from repro.hades.library import (TABLE_I_ROWS, adder_family, adder_mod_q,
                                 aes256, arx_adder_family, chacha20,
                                 keccak, kyber_cca, kyber_cpa,
                                 netlist_stats, polymul, sparse_polymul)

G = OptimizationGoal


class TestTableIConfigurationCounts:
    """The exact configuration counts of Table I."""

    @pytest.mark.parametrize("name,factory,expected",
                             TABLE_I_ROWS, ids=[r[0] for r in TABLE_I_ROWS])
    def test_count(self, name, factory, expected):
        assert factory().count_configurations() == expected

    def test_family_sums(self):
        assert sum(t.count_configurations()
                   for t in adder_family()) == 31
        assert sum(t.count_configurations()
                   for t in arx_adder_family()) == 30

    @pytest.mark.parametrize(
        "factory", [keccak, adder_mod_q, sparse_polymul, chacha20,
                    polymul],
        ids=["keccak", "adder_mod_q", "sparse_polymul", "chacha20",
             "polymul"])
    def test_enumeration_matches_count_unmasked(self, factory):
        template = factory()
        designs = list(enumerate_designs(template, DesignContext()))
        assert len(designs) == template.count_configurations()

    def test_aes_feasible_subset(self):
        """Full unrolling requires the 128-bit datapath: of the 720
        unrolled points, the 480 with a narrow datapath are infeasible,
        leaving 960 buildable designs in the 1440-point space."""
        designs = list(enumerate_designs(aes256(), DesignContext()))
        assert len(designs) == 960

    def test_compositional_structure(self):
        """Kyber-CCA = polymul x keccak x local choices, as documented."""
        assert kyber_cca().count_configurations() == 1302 * 14 * 63
        assert kyber_cpa().count_configurations() == 1302 * 31


class TestMaskingBehaviour:
    @pytest.mark.parametrize("factory", [adder_mod_q, keccak],
                             ids=["adder_mod_q", "keccak"])
    def test_masked_designs_cost_more(self, factory):
        template = factory()
        base = ExhaustiveExplorer(template, DesignContext()).run(G.AREA)
        masked = ExhaustiveExplorer(
            template, DesignContext(masking_order=1)).run(G.AREA)
        assert masked.best.metrics.area_kge > base.best.metrics.area_kge
        assert masked.best.metrics.randomness_bits > 0
        assert base.best.metrics.randomness_bits == 0

    def test_randomness_scales_with_order(self):
        template = adder_mod_q()
        r1 = ExhaustiveExplorer(
            template, DesignContext(masking_order=1)).run(G.RANDOMNESS)
        r2 = ExhaustiveExplorer(
            template, DesignContext(masking_order=2)).run(G.RANDOMNESS)
        # d(d+1)/2 scaling: order 2 needs 3x the fresh bits.
        assert r2.best_score == pytest.approx(3 * r1.best_score)

    def test_aes_lut_sbox_infeasible_when_masked(self):
        designs = list(enumerate_designs(aes256(),
                                         DesignContext(masking_order=1)))
        assert all(d.configuration.param("sbox") != "lut"
                   for d in designs)
        assert len(designs) < aes256().count_configurations()


class TestTableIIAes:
    """The AES-256 case study must land on Table II's design points."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for order in (0, 1, 2):
            explorer = ExhaustiveExplorer(
                aes256(), DesignContext(masking_order=order))
            out[order] = explorer.run_all_goals()
        return out

    def test_d0_latency_optimum(self, results):
        best = results[0][G.LATENCY].best
        assert best.metrics.latency_cc == 19
        assert best.metrics.area_kge == pytest.approx(41.4, abs=0.5)
        assert best.configuration.param("sbox") == "lut"
        assert best.configuration.param("datapath") == 128

    def test_d0_area_optimum(self, results):
        best = results[0][G.AREA].best
        assert best.metrics.latency_cc == 1378
        assert best.metrics.area_kge == pytest.approx(12.9, rel=0.05)
        assert best.configuration.param("datapath") == 8

    @pytest.mark.parametrize("order,paper_latency", [(1, 71), (2, 71)])
    def test_masked_latency_optimum(self, results, order, paper_latency):
        best = results[order][G.LATENCY].best
        assert best.metrics.latency_cc == paper_latency
        assert best.configuration.param("round_unroll") == 14

    def test_masked_latency_randomness_shape(self, results):
        """Paper: 16 200 bits at d=1, 48 588 at d=2 (ratio ~3)."""
        r1 = results[1][G.LATENCY].best.metrics.randomness_bits
        r2 = results[2][G.LATENCY].best.metrics.randomness_bits
        assert r1 == pytest.approx(16200, rel=0.01)
        assert r2 == pytest.approx(3 * r1)

    @pytest.mark.parametrize("order,paper", [(1, 2948), (2, 2946)])
    def test_masked_area_optimum(self, results, order, paper):
        best = results[order][G.AREA].best
        assert best.metrics.latency_cc == pytest.approx(paper, abs=2)
        assert best.configuration.param("datapath") == 8

    def test_masked_area_randomness(self, results):
        assert results[1][G.AREA].best.metrics.randomness_bits == 144

    @pytest.mark.parametrize("order,paper_rand", [(1, 68), (2, 204)])
    def test_randomness_optimum(self, results, order, paper_rand):
        best = results[order][G.RANDOMNESS].best
        assert best.metrics.randomness_bits == paper_rand
        assert best.metrics.latency_cc == 4514

    def test_alp_optimum_latency(self, results):
        assert results[1][G.AREA_LATENCY].best.metrics.latency_cc == 75
        assert results[2][G.AREA_LATENCY].best.metrics.latency_cc == 75

    def test_masking_inflates_area_superlinearly(self, results):
        a0 = results[0][G.LATENCY].best.metrics.area_kge
        a1 = results[1][G.LATENCY].best.metrics.area_kge
        a2 = results[2][G.LATENCY].best.metrics.area_kge
        assert a1 > 20 * a0          # paper: 41.4 -> 1205.3
        assert a2 > 1.5 * a1         # paper: 1205.3 -> 2321.1


class TestLocalSearchOnKyber:
    """Paper: perfect Kyber-CCA result from ~50 starts, >>100x faster."""

    def test_fifty_starts_match_exhaustive(self):
        context = DesignContext(masking_order=1)
        exhaustive = ExhaustiveExplorer(kyber_cca(), context).run(G.AREA)
        local = LocalSearchExplorer(kyber_cca(), context,
                                    seed=42).run(G.AREA, starts=50)
        assert local.best_score == pytest.approx(exhaustive.best_score)
        assert local.evaluations < exhaustive.explored / 10

    def test_single_start_is_cheaper_but_may_be_worse(self):
        context = DesignContext(masking_order=1)
        fifty = LocalSearchExplorer(kyber_cca(), context,
                                    seed=42).run(G.AREA, starts=50)
        one = LocalSearchExplorer(kyber_cca(), context,
                                  seed=42).run(G.AREA, starts=1)
        assert one.evaluations < fifty.evaluations
        assert one.best_score >= fifty.best_score


class TestAgemaBaseline:
    """Paper: HADES adders outperform AGEMA's post-processed netlists."""

    @pytest.mark.parametrize("order", [1, 2])
    def test_hades_dominates_agema_on_every_adder(self, order):
        context = DesignContext(masking_order=order, width=32)
        for template in adder_family():
            for design in enumerate_designs(template, context):
                params = dict(design.configuration.params)
                baseline = agema_adder(template.name, params, context)
                assert design.metrics.area_kge < \
                    baseline.metrics.area_kge
                assert design.metrics.latency_cc <= \
                    baseline.metrics.latency_cc
                assert design.metrics.randomness_bits <= \
                    baseline.metrics.randomness_bits

    def test_agema_equals_netlist_when_unmasked(self):
        context = DesignContext(masking_order=0, width=32)
        result = agema_adder("ripple_carry", {}, context)
        # No gadgets, no sync registers: only the linear duplication
        # penalty differentiates the flows.
        assert result.metrics.randomness_bits == 0

    def test_netlist_stats_exposed(self):
        stats = netlist_stats("ripple_carry", {}, 32)
        assert stats["and_gates"] == 96
        assert stats["and_depth"] == 32


class TestDseRuntimeShape:
    """Table I's qualitative property: runtime grows with space size."""

    def test_runtime_ordering(self):
        times = {}
        for name, factory, count in TABLE_I_ROWS[:5]:
            result = ExhaustiveExplorer(factory(),
                                        DesignContext()).run(G.AREA)
            times[name] = (count, result.elapsed_seconds)
        keccak_time = times["Keccak"][1]
        aes_time = times["AES"][1]
        assert aes_time > keccak_time

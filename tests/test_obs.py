"""Unit tests for the observability primitives (ISSUE 1 tentpole)."""

import json
import logging
import threading

import pytest

from repro.obs import (Telemetry, Tracer, MetricsRegistry, percentile,
                       read_jsonl, read_spans, summarize, write_jsonl,
                       format_report, format_metrics)
from repro.obs import logging_bridge
from repro.obs.telemetry import _NULL_INSTRUMENT, _NULL_SPAN


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


@pytest.fixture
def telemetry():
    return Telemetry(enabled=True)


# -- spans ---------------------------------------------------------------


def test_span_nesting_parent_and_depth(telemetry):
    with telemetry.span("outer") as outer:
        with telemetry.span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.depth == 1
        assert outer.depth == 0
    records = telemetry.tracer.snapshot()
    assert [r["name"] for r in records] == ["inner", "outer"]


def test_span_timing_with_fake_clock():
    tracer = Tracer(clock=FakeClock(step=1.0))
    with tracer.span("a"):        # start at t=0, end at t=3
        with tracer.span("b"):    # start at t=1, end at t=2
            pass
    by_name = {s.name: s for s in tracer.finished}
    assert by_name["b"].duration_s == 1.0
    assert by_name["a"].duration_s == 3.0
    assert by_name["a"].duration_s >= by_name["b"].duration_s


def test_span_error_status(telemetry):
    with pytest.raises(ValueError):
        with telemetry.span("boom"):
            raise ValueError("x")
    (record,) = telemetry.tracer.snapshot()
    assert record["status"] == "error"
    # The stack unwound: a next span is a root again.
    with telemetry.span("after") as span:
        assert span.parent_id == 0


def test_span_attrs_and_set_attr(telemetry):
    with telemetry.span("s", template="aes") as span:
        span.set_attr("explored", 1440)
    (record,) = telemetry.tracer.snapshot()
    assert record["attrs"] == {"template": "aes", "explored": 1440}


def test_spans_in_threads_are_independent_roots(telemetry):
    def work():
        with telemetry.span("worker"):
            pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    with telemetry.span("main"):
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    workers = [r for r in telemetry.tracer.snapshot()
               if r["name"] == "worker"]
    assert len(workers) == 4
    # Worker spans run on other threads: no parent, despite "main"
    # being open on the main thread.
    assert all(r["parent_id"] == 0 for r in workers)


# -- metrics -------------------------------------------------------------


def test_counter_gauge_basics(telemetry):
    telemetry.counter("c").inc()
    telemetry.counter("c").inc(4)
    telemetry.gauge("g").set(2.5)
    telemetry.gauge("g").add(0.5)
    snap = telemetry.metrics_snapshot()
    assert snap["c"] == {"type": "counter", "value": 5}
    assert snap["g"] == {"type": "gauge", "value": 3.0}


def test_counter_rejects_negative(telemetry):
    with pytest.raises(ValueError):
        telemetry.counter("c").inc(-1)


def test_histogram_percentiles(telemetry):
    histogram = telemetry.histogram("h")
    for value in range(1, 101):       # 1..100
        histogram.observe(value)
    snap = telemetry.metrics_snapshot()["h"]
    assert snap["count"] == 100
    assert snap["min"] == 1 and snap["max"] == 100
    assert snap["mean"] == pytest.approx(50.5)
    assert snap["p50"] == 50
    assert snap["p95"] == 95
    assert snap["p99"] == 99


def test_percentile_nearest_rank_edges():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([1.0, 2.0], 0.5) == 1.0


def test_registry_type_conflict():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_timer_feeds_histogram():
    telemetry = Telemetry(enabled=True, clock=FakeClock(step=2.0))
    with telemetry.timer("t"):
        pass
    snap = telemetry.metrics_snapshot()["t"]
    assert snap["count"] == 1
    assert snap["p50"] == 2.0


# -- thread safety -------------------------------------------------------


def test_concurrent_counter_increments(telemetry):
    counter = telemetry.counter("hits")
    threads_n, per_thread = 8, 5000

    def work():
        for _ in range(per_thread):
            counter.inc()

    threads = [threading.Thread(target=work) for _ in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == threads_n * per_thread


def test_concurrent_histogram_observes(telemetry):
    histogram = telemetry.histogram("h")

    def work():
        for value in range(1000):
            histogram.observe(value)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert histogram.count == 4000


# -- no-op mode ----------------------------------------------------------


def test_disabled_telemetry_produces_zero_events():
    telemetry = Telemetry(enabled=False)
    with telemetry.span("s", a=1) as span:
        span.set_attr("b", 2)         # must be accepted and dropped
        telemetry.counter("c").inc()
        telemetry.gauge("g").set(1)
        telemetry.histogram("h").observe(1)
        with telemetry.timer("t"):
            pass
    assert telemetry.tracer.snapshot() == []
    assert telemetry.metrics_snapshot() == {}


def test_disabled_returns_shared_null_objects():
    telemetry = Telemetry(enabled=False)
    assert telemetry.span("a") is _NULL_SPAN
    assert telemetry.counter("a") is _NULL_INSTRUMENT
    assert telemetry.gauge("a") is _NULL_INSTRUMENT
    assert telemetry.histogram("a") is _NULL_INSTRUMENT


def test_traced_decorator(telemetry):
    @telemetry.traced("wrapped.call")
    def add(a, b):
        return a + b

    assert add(1, 2) == 3
    (record,) = telemetry.tracer.snapshot()
    assert record["name"] == "wrapped.call"
    telemetry.disable()
    assert add(2, 3) == 5
    assert len(telemetry.tracer.snapshot()) == 1


def test_reset_clears_spans_and_metrics(telemetry):
    with telemetry.span("s"):
        telemetry.counter("c").inc()
    telemetry.reset()
    assert telemetry.tracer.snapshot() == []
    assert telemetry.metrics_snapshot() == {}
    assert telemetry.enabled


# -- JSONL export round-trip ---------------------------------------------


def test_jsonl_round_trip(telemetry, tmp_path):
    with telemetry.span("outer", template="aes"):
        with telemetry.span("inner"):
            pass
    path = write_jsonl(telemetry.tracer.snapshot(),
                       tmp_path / "trace.jsonl")
    records = read_jsonl(path)
    assert records == telemetry.tracer.snapshot()
    spans = read_spans(path)
    assert [s.name for s in spans] == ["inner", "outer"]
    assert spans[0].duration_s == records[0]["duration_s"]


def test_export_writes_trace_and_metrics(telemetry, tmp_path):
    with telemetry.span("s"):
        telemetry.counter("c").inc(2)
    paths = telemetry.export(tmp_path)
    assert paths["trace"].exists() and paths["metrics"].exists()
    metrics = json.loads(paths["metrics"].read_text())
    assert metrics["c"]["value"] == 2


def test_jsonl_stringifies_exotic_attrs(telemetry, tmp_path):
    class Odd:
        def __repr__(self):
            return "odd!"

    with telemetry.span("s", odd=Odd()):
        pass
    path = write_jsonl(telemetry.tracer.snapshot(),
                       tmp_path / "t.jsonl")
    (record,) = read_jsonl(path)
    assert record["attrs"]["odd"] == "odd!"


# -- report --------------------------------------------------------------


def test_summarize_self_vs_cumulative_time():
    tracer = Tracer(clock=FakeClock(step=1.0))
    with tracer.span("parent"):       # 0..5: cumulative 5
        with tracer.span("child"):    # 1..2
            pass
        with tracer.span("child"):    # 3..4
            pass
    summary = summarize([s.to_record() for s in tracer.finished])
    assert summary["parent"]["total_s"] == 5.0
    assert summary["parent"]["self_s"] == 3.0      # 5 - two 1s children
    assert summary["child"]["count"] == 2
    assert summary["child"]["total_s"] == 2.0
    assert summary["child"]["self_s"] == 2.0


def test_summarize_empty_trace():
    assert summarize([]) == {}
    assert "0 spans" in format_report({}, sort="self", top=5)


def test_summarize_single_sample():
    tracer = Tracer(clock=FakeClock(step=2.0))
    with tracer.span("only"):
        pass
    summary = summarize([s.to_record() for s in tracer.finished])
    stats = summary["only"]
    assert stats["count"] == 1
    assert stats["total_s"] == stats["self_s"] == 2.0
    assert stats["min_s"] == stats["max_s"] == stats["mean_s"] == 2.0
    assert stats["errors"] == 0


def test_summarize_nested_deeper_than_three():
    tracer = Tracer(clock=FakeClock(step=1.0))
    with tracer.span("d0"):                    # 0..9  cumulative 9
        with tracer.span("d1"):                # 1..8  cumulative 7
            with tracer.span("d2"):            # 2..7  cumulative 5
                with tracer.span("d3"):        # 3..6  cumulative 3
                    with tracer.span("d4"):    # 4..5  cumulative 1
                        pass
    summary = summarize([s.to_record() for s in tracer.finished])
    # self time only subtracts *direct* children at every depth
    assert summary["d0"]["self_s"] == 9.0 - 7.0
    assert summary["d1"]["self_s"] == 7.0 - 5.0
    assert summary["d2"]["self_s"] == 5.0 - 3.0
    assert summary["d3"]["self_s"] == 3.0 - 1.0
    assert summary["d4"]["self_s"] == 1.0
    assert sum(s["self_s"] for s in summary.values()) == \
        summary["d0"]["total_s"]


def test_percentile_empty_and_single_sample():
    assert percentile([], 0.5) == 0.0
    assert percentile([], 0.99) == 0.0
    assert percentile([7.0], 0.0) == 7.0
    assert percentile([7.0], 0.5) == 7.0
    assert percentile([7.0], 1.0) == 7.0


def test_percentile_all_identical_samples():
    samples = [3.0] * 10
    for fraction in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert percentile(samples, fraction) == 3.0


def test_histogram_all_identical_samples(telemetry):
    hist = telemetry.histogram("flat")
    for _ in range(100):
        hist.observe(4.2)
    snap = hist.snapshot()
    assert snap["count"] == 100
    assert snap["mean"] == pytest.approx(4.2)
    assert snap["p50"] == snap["p95"] == snap["p99"] == 4.2


def test_format_report_and_metrics_render(telemetry):
    with telemetry.span("alpha"):
        telemetry.counter("c").inc()
        telemetry.histogram("h").observe(1.0)
    text = format_report(summarize(telemetry.tracer.snapshot()),
                         sort="count", top=5)
    assert "alpha" in text and "count" in text
    metrics_text = format_metrics(telemetry.metrics_snapshot())
    assert "c" in metrics_text and "histogram" in metrics_text
    with pytest.raises(ValueError):
        format_report({}, sort="nope")


# -- logging bridge ------------------------------------------------------


def test_logging_bridge_mirrors_spans(telemetry, caplog):
    bridge = logging_bridge.install(telemetry)
    try:
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            with telemetry.span("bridged", k=1):
                pass
    finally:
        logging_bridge.uninstall(bridge)
    messages = [r.getMessage() for r in caplog.records]
    assert any("bridged" in m and "k" in m for m in messages)
    # After uninstall: no further records.
    caplog.clear()
    with caplog.at_level(logging.DEBUG, logger="repro.obs"):
        with telemetry.span("silent"):
            pass
    assert not caplog.records


def test_logging_bridge_quiet_below_level(telemetry, caplog):
    bridge = logging_bridge.install(telemetry)
    try:
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            with telemetry.span("hidden"):
                pass
    finally:
        logging_bridge.uninstall(bridge)
    assert not [r for r in caplog.records if "hidden" in r.getMessage()]


# -- histogram percentile edges (ISSUE 6 satellite) ----------------------


def test_histogram_empty_snapshot_has_no_percentiles(telemetry):
    snap = telemetry.histogram("never.observed").snapshot()
    assert snap == {"type": "histogram", "count": 0}
    assert "p50" not in snap and "p99" not in snap


def test_histogram_single_sample_percentiles_collapse(telemetry):
    hist = telemetry.histogram("one.sample")
    hist.observe(7.5)
    snap = hist.snapshot()
    assert snap["count"] == 1
    assert snap["min"] == snap["max"] == snap["mean"] == 7.5
    assert snap["p50"] == snap["p95"] == snap["p99"] == 7.5


def test_histogram_percentiles_monotone_under_merge_delta():
    """Shipping worker samples through delta_since/merge_delta must
    leave the merged distribution's percentiles exact and ordered —
    nearest-rank over the union, not an average of summaries."""
    parent = MetricsRegistry()
    for value in (5.0, 1.0, 3.0):
        parent.histogram("lat").observe(value)
    worker = MetricsRegistry()
    mark = worker.mark()
    for value in (2.0, 2.0, 9.0, 4.0):
        worker.histogram("lat").observe(value)
    parent.merge_delta(worker.delta_since(mark))
    snap = parent.histogram("lat").snapshot()
    assert snap["count"] == 7
    assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"] \
        <= snap["max"]
    # nearest-rank over the union [1, 2, 2, 3, 4, 5, 9]
    assert snap["p50"] == 3.0
    assert snap["p95"] == 9.0
    assert snap["p99"] == 9.0


def test_histogram_merge_delta_all_equal_stays_degenerate():
    parent = MetricsRegistry()
    worker = MetricsRegistry()
    mark = worker.mark()
    for _ in range(25):
        worker.histogram("flat").observe(1.25)
    parent.merge_delta(worker.delta_since(mark))
    snap = parent.histogram("flat").snapshot()
    assert snap["count"] == 25
    assert snap["p50"] == snap["p95"] == snap["p99"] == 1.25


# -- logging bridge edges (ISSUE 6 satellite) ----------------------------


def test_logging_bridge_custom_level_mapping(telemetry, caplog):
    bridge = logging_bridge.install(telemetry, level=logging.WARNING)
    try:
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            with telemetry.span("warned"):
                pass
    finally:
        logging_bridge.uninstall(bridge)
    records = [r for r in caplog.records if "warned" in r.getMessage()]
    assert records
    assert all(r.levelno == logging.WARNING for r in records)


def test_logging_bridge_passes_structured_fields(telemetry, caplog):
    bridge = logging_bridge.install(telemetry)
    try:
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            with telemetry.span("attrs.span", site="alu", bits=13):
                pass
    finally:
        logging_bridge.uninstall(bridge)
    message = next(r.getMessage() for r in caplog.records
                   if "attrs.span" in r.getMessage())
    assert "'site': 'alu'" in message
    assert "'bits': 13" in message
    assert "status=ok" in message


def test_logging_bridge_disabled_telemetry_is_silent(caplog):
    quiet = Telemetry(enabled=False)
    bridge = logging_bridge.install(quiet)
    try:
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            with quiet.span("invisible"):
                pass
    finally:
        logging_bridge.uninstall(bridge)
    assert not caplog.records

"""Recovery-hardened attested delivery: typed errors, retry, timeout.

ISSUE 2 satellite: `DeliveryError` carries machine-readable reason
codes for each failure class, and the `DeliveryChannel` bounds every
transient fault with retry-with-backoff and a delivery deadline.
"""

import pytest

from repro.faults import FAULTS, FaultSpec, injected
from repro.faults.models import (TRANSPORT_CORRUPT, TRANSPORT_DELAY,
                                 TRANSPORT_DROP)
from repro.tee import build_tee
from repro.tee.delivery import (AttestedPublisher, DeliveryChannel,
                                DeliveryError, EnclaveKemIdentity,
                                SealedPackage)

PAYLOAD = b"model-weights-" * 16


@pytest.fixture(autouse=True)
def _disarmed():
    FAULTS.disarm()
    yield
    FAULTS.disarm()


@pytest.fixture(scope="module")
def rig():
    """Platform + attested enclave KEM identity + pinned publisher."""
    platform = build_tee()
    enclave = platform.sm.create_enclave(b"\x7f" * 128)
    kem = EnclaveKemIdentity(seed_d=bytes(32), seed_z=bytes(32))
    report = platform.sm.attest_enclave(enclave, kem.report_binding())
    publisher = AttestedPublisher(
        platform.device.public_identity(),
        expected_sm_hash=platform.boot_report.sm_measurement,
        expected_enclave_hash=enclave.measurement)
    return {"publisher": publisher, "kem": kem,
            "report_bytes": report.encode()}


def _channel(rig, **kwargs):
    return DeliveryChannel(rig["publisher"], rig["kem"], **kwargs)


class TestDeliveryErrorReasons:
    def test_is_a_value_error(self):
        assert issubclass(DeliveryError, ValueError)

    def test_decaps_reason(self, rig):
        package = SealedPackage(label=b"l", kem_ciphertext=b"short",
                                nonce=bytes(12), sealed_payload=b"x")
        with pytest.raises(DeliveryError) as excinfo:
            rig["kem"].unwrap(package)
        assert excinfo.value.reason == "decaps"

    def test_auth_reason_on_tampered_ciphertext(self, rig):
        package = rig["publisher"].deliver(
            rig["report_bytes"], rig["kem"].ek, PAYLOAD,
            entropy=bytes(32))
        bad = SealedPackage(
            label=package.label,
            kem_ciphertext=bytes(package.kem_ciphertext[:-1])
            + bytes([package.kem_ciphertext[-1] ^ 1]),
            nonce=package.nonce,
            sealed_payload=package.sealed_payload)
        # ML-KEM implicit rejection: decaps "succeeds" with an
        # unrelated secret, then AEAD authentication catches it.
        with pytest.raises(DeliveryError) as excinfo:
            rig["kem"].unwrap(bad)
        assert excinfo.value.reason == "auth"

    def test_package_decode_reason(self):
        with pytest.raises(DeliveryError) as excinfo:
            SealedPackage.decode(b"NOPE" + bytes(40))
        assert excinfo.value.reason == "package-decode"


class TestSealedPackageWireFormat:
    def test_round_trip(self, rig):
        package = rig["publisher"].deliver(
            rig["report_bytes"], rig["kem"].ek, PAYLOAD,
            entropy=bytes(32))
        decoded = SealedPackage.decode(package.encode())
        assert decoded == package
        assert rig["kem"].unwrap(decoded) == PAYLOAD

    def test_truncation_rejected(self, rig):
        package = rig["publisher"].deliver(
            rig["report_bytes"], rig["kem"].ek, PAYLOAD,
            entropy=bytes(32))
        with pytest.raises(DeliveryError):
            SealedPackage.decode(package.encode()[:-1])
        with pytest.raises(DeliveryError):
            SealedPackage.decode(package.encode() + b"\x00")


class TestDeliveryChannel:
    def test_clean_delivery_first_attempt(self, rig):
        outcome = _channel(rig).deliver(rig["report_bytes"], PAYLOAD)
        assert outcome.ok
        assert outcome.payload == PAYLOAD
        assert outcome.attempts == 1
        assert not outcome.recovered
        assert outcome.fault is None

    def test_transient_drop_recovers(self, rig):
        with injected(FaultSpec("tee.delivery.transport",
                                TRANSPORT_DROP)):
            outcome = _channel(rig).deliver(rig["report_bytes"],
                                            PAYLOAD)
        assert outcome.ok
        assert outcome.payload == PAYLOAD
        assert outcome.attempts == 2
        assert outcome.recovered

    def test_transient_corruption_recovers(self, rig):
        with injected(FaultSpec("tee.delivery.transport",
                                TRANSPORT_CORRUPT, bit=777)):
            outcome = _channel(rig).deliver(rig["report_bytes"],
                                            PAYLOAD)
        assert outcome.ok
        assert outcome.recovered

    def test_persistent_drop_times_out_bounded(self, rig):
        with injected(FaultSpec("tee.delivery.transport",
                                TRANSPORT_DROP, count=100)):
            outcome = _channel(rig, max_attempts=4).deliver(
                rig["report_bytes"], PAYLOAD)
        assert not outcome.ok
        assert outcome.attempts == 4
        assert outcome.fault.reason == "transport-timeout"
        assert "transport-drop" in outcome.fault.detail

    def test_huge_delay_misses_deadline(self, rig):
        with injected(FaultSpec("tee.delivery.transport",
                                TRANSPORT_DELAY, magnitude=1000)):
            outcome = _channel(rig, deadline=64).deliver(
                rig["report_bytes"], PAYLOAD)
        assert not outcome.ok
        assert outcome.fault.reason == "transport-timeout"
        assert "transport-delay" in outcome.fault.detail

    def test_attestation_rejection_fails_fast(self, rig):
        outcome = _channel(rig).deliver(b"garbage-report", PAYLOAD)
        assert not outcome.ok
        assert outcome.attempts == 1
        assert outcome.fault.reason == "attestation-rejected"

    def test_rejects_zero_attempts(self, rig):
        with pytest.raises(ValueError):
            _channel(rig, max_attempts=0)


class TestRetryExhaustionDiagnostics:
    """ISSUE 7 satellite: after retry exhaustion the raised
    :class:`DeliveryError` carries the attempt count and the last
    transport reason code, with a pinned message shape."""

    def test_message_shape_pinned(self, rig):
        with injected(FaultSpec("tee.delivery.transport",
                                TRANSPORT_DROP, count=100)):
            with pytest.raises(DeliveryError) as excinfo:
                _channel(rig, max_attempts=4).deliver_or_raise(
                    rig["report_bytes"], PAYLOAD)
        exc = excinfo.value
        assert str(exc) == ("delivery failed after 4 attempts "
                            "(last: transport-drop)")
        assert exc.reason == "transport-timeout"
        assert exc.attempts == 4
        assert exc.last_reason == "transport-drop"

    def test_outcome_carries_last_reason(self, rig):
        with injected(FaultSpec("tee.delivery.transport",
                                TRANSPORT_DROP, count=100)):
            outcome = _channel(rig, max_attempts=3).deliver(
                rig["report_bytes"], PAYLOAD)
        assert not outcome.ok
        assert outcome.last_reason == "transport-drop"

    def test_success_passes_through(self, rig):
        outcome = _channel(rig).deliver_or_raise(rig["report_bytes"],
                                                 PAYLOAD)
        assert outcome.ok
        assert outcome.payload == PAYLOAD

    def test_single_step_errors_leave_diagnostics_unset(self, rig):
        package = SealedPackage(label=b"l", kem_ciphertext=b"short",
                                nonce=bytes(12), sealed_payload=b"x")
        with pytest.raises(DeliveryError) as excinfo:
            rig["kem"].unwrap(package)
        assert excinfo.value.attempts is None
        assert excinfo.value.last_reason is None


class TestReplayRejection:
    """ISSUE 7: the session + sequence label binding rejects replayed
    and rolled-back packages before any cryptography runs."""

    def _sealed(self, rig, label, payload=PAYLOAD):
        return rig["publisher"].deliver(rig["report_bytes"],
                                        rig["kem"].ek, payload,
                                        label=label, entropy=bytes(32))

    def test_matching_binding_unwraps(self, rig):
        channel = _channel(rig, session=b"s1")
        label = channel._wire_label(b"payload", 0)
        package = self._sealed(rig, label)
        assert rig["kem"].unwrap(package,
                                 expected_label=label) == PAYLOAD

    def test_cross_session_replay_rejected(self, rig):
        stale = _channel(rig, session=b"session-old") \
            ._wire_label(b"weights", 0)
        live = _channel(rig, session=b"session-live") \
            ._wire_label(b"weights", 0)
        package = self._sealed(rig, stale, payload=b"stale-weights")
        with pytest.raises(DeliveryError) as excinfo:
            rig["kem"].unwrap(package, expected_label=live)
        assert excinfo.value.reason == "replay"

    def test_sequence_rollback_rejected(self, rig):
        channel = _channel(rig, session=b"s1")
        old = self._sealed(rig, channel._wire_label(b"payload", 0))
        # Protocol state has moved on to sequence 1: re-presenting
        # the sequence-0 package is a rollback, not a delivery.
        with pytest.raises(DeliveryError) as excinfo:
            rig["kem"].unwrap(
                old, expected_label=channel._wire_label(b"payload", 1))
        assert excinfo.value.reason == "replay"

    def test_channel_advances_sequence_per_delivery(self, rig):
        channel = _channel(rig, session=b"s1")
        first = channel.deliver(rig["report_bytes"], PAYLOAD)
        second = channel.deliver(rig["report_bytes"], PAYLOAD)
        assert first.ok and second.ok
        assert channel._sequence == 2

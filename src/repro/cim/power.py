"""Power model: switching activity -> noisy power samples.

The paper's toolchain (Genus + Questasim + Spyglass at TSMC 40 nm)
produces power traces whose operation-level aggregate correlates with
the adder tree's switching activity.  This model maps toggle counts to
power through a linear CMOS dynamic-power term plus a static offset and
Gaussian measurement noise; ``noise_sigma=0`` reproduces the paper's
"noise-free environment" claims.
"""

from __future__ import annotations

import numpy as np

from ..obs import TELEMETRY

#: Energy per toggled node bit, arbitrary power units.
ENERGY_PER_TOGGLE = 1.0
#: Static/leakage baseline per operation.
STATIC_POWER = 5.0


class PowerModel:
    """Measurement channel of the attacker's oscilloscope."""

    def __init__(self, noise_sigma: float = 0.0, seed: int = 0):
        if noise_sigma < 0:
            raise ValueError("noise must be non-negative")
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)

    def measure(self, toggles: int) -> float:
        """One power sample for an operation with ``toggles`` bit flips."""
        power = STATIC_POWER + ENERGY_PER_TOGGLE * toggles
        if self.noise_sigma:
            power += self._rng.normal(0.0, self.noise_sigma)
        return float(power)

    def measure_many(self, toggles) -> np.ndarray:
        """Power samples for a whole toggle-count batch.

        Bit-identical to calling :meth:`measure` per element: the noise
        generator draws one normal per sample in order (and none when
        ``noise_sigma`` is zero), so stream consumption matches the
        scalar loop exactly.
        """
        power = STATIC_POWER + ENERGY_PER_TOGGLE * np.asarray(
            toggles, dtype=float)
        if self.noise_sigma:
            power = power + self._rng.normal(
                0.0, self.noise_sigma, size=power.shape)
        return power

    def trace(self, macro, inputs: list, repetitions: int = 1) -> np.ndarray:
        """Repeated fresh-query measurements of one input mask."""
        if TELEMETRY.enabled:
            TELEMETRY.counter("cim.power.traces").inc()
            TELEMETRY.counter("cim.power.samples").inc(repetitions)
        if hasattr(macro, "query_fresh_many"):
            # Macro and noise draws live on separate generators, so
            # query-then-measure batching consumes both streams exactly
            # as the interleaved scalar loop does.
            masks = np.tile(np.asarray(inputs, dtype=np.int64),
                            (repetitions, 1))
            return self.measure_many(macro.query_fresh_many(masks))
        samples = [self.measure(macro.query_fresh(inputs))
                   for _ in range(repetitions)]
        return np.asarray(samples)

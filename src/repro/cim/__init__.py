"""Compute-in-memory security: the power side-channel attack of paper
Section III-C (Figs. 1 and 2) and its countermeasures.

* :mod:`~repro.cim.macro` — the digital SRAM CIM macro (weights, adder
  tree, MAC accumulator)
* :mod:`~repro.cim.power` — switching-activity power model
* :mod:`~repro.cim.attack` — the two-phase weight-extraction attack
* :mod:`~repro.cim.kmeans` — k-means++ (scikit-learn stand-in)
* :mod:`~repro.cim.countermeasures` — masking and shuffling defences
* :mod:`~repro.cim.tvla` — Welch t-test leakage assessment
"""

from .adder_tree import AdderTree, hamming_distance, hamming_weight
from .macro import (DigitalCimMacro, WEIGHT_BITS, WEIGHT_MAX, one_hot,
                    subset_mask)
from .power import PowerModel
from .kmeans import KMeans
from .attack import (AttackResult, Phase1Result, WeightExtractionAttack,
                     phase2_power_patterns, values_with_hamming_weight)
from .countermeasures import MaskedCimMacro, ShuffledCimMacro
from .tvla import LeakageAssessment, T_THRESHOLD, assess_macro, welch_t
from .cpa import CpaAttack, CpaResult
from .layer import (CimLayer, LayerExtractionAttack,
                    LayerExtractionResult)
from .second_order import SecondOrderAttack, SecondOrderResult

__all__ = [
    "CpaAttack", "CpaResult",
    "CimLayer", "LayerExtractionAttack", "LayerExtractionResult",
    "SecondOrderAttack", "SecondOrderResult",
    "AdderTree", "hamming_distance", "hamming_weight",
    "DigitalCimMacro", "WEIGHT_BITS", "WEIGHT_MAX", "one_hot",
    "subset_mask",
    "PowerModel", "KMeans",
    "AttackResult", "Phase1Result", "WeightExtractionAttack",
    "phase2_power_patterns", "values_with_hamming_weight",
    "MaskedCimMacro", "ShuffledCimMacro",
    "LeakageAssessment", "T_THRESHOLD", "assess_macro", "welch_t",
]

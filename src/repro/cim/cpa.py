"""Known-input power analysis (linear-regression attack) on the CIM
macro.

A classical complement to the paper's two-phase chosen-input attack:
the attacker only *observes* random input activations (e.g. normal
inference traffic) and their power — the weaker attacker of Real &
Salvador's survey [21] who cannot drive the inputs.

Method (LRA, linear-regression analysis):

1. collect power samples for many random masks,
2. least-squares fit ``power ~ b0 + sum_c beta_c * mask_c``; the joint
   regression isolates each column's marginal power contribution from
   its co-activated neighbours (where a naive difference-of-means stays
   confounded by carry absorption in the adder tree),
3. classify each ``beta_c`` against per-Hamming-weight levels profiled
   on a simulated clone of the (public) design with diverse known
   weights.

The result is each column's Hamming weight — the same information as
the paper's phase 1, but from passive observation.  Accuracy is
measurably below the chosen-input attack's 100% (~85-95% on 16-column
macros), which quantifies exactly what the paper's input-manipulation
capability buys the attacker.  The chosen-input phase 2 is still
needed for exact value recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .adder_tree import hamming_weight
from .macro import DigitalCimMacro
from .power import PowerModel

#: Profiling weights covering every 4-bit value once (all HW classes).
PROFILING_WEIGHTS = (0, 1, 3, 7, 15, 2, 5, 11, 4, 6, 13, 8, 9, 14, 10,
                     12)


@dataclass
class CpaResult:
    """Outcome of a known-input LRA campaign against one macro."""

    hw_estimates: list          # per-column estimated Hamming weight
    betas: list                 # per-column regression coefficient
    class_levels: dict          # profiled beta level per HW class
    traces_used: int

    def hw_accuracy(self, true_weights: list) -> float:
        correct = sum(1 for est, w in zip(self.hw_estimates,
                                          true_weights)
                      if est == hamming_weight(w))
        return correct / len(true_weights)


class CpaAttack:
    """Passive (known-input) Hamming-weight recovery via LRA."""

    def __init__(self, macro: DigitalCimMacro, power: PowerModel = None,
                 seed: int = 0):
        self.macro = macro
        self.power = power or PowerModel()
        self._rng = np.random.default_rng(seed)

    def _observe_betas(self, macro, traces: int, rng) -> np.ndarray:
        """Collect random-mask traces and regress out per-column
        contributions."""
        length = len(macro)
        masks = rng.integers(0, 2, size=(traces, length))
        samples = self.power.measure_many(macro.query_fresh_many(masks))
        design = np.hstack([np.ones((traces, 1)),
                            masks.astype(float)])
        coefficients, *_ = np.linalg.lstsq(design, samples, rcond=None)
        return coefficients[1:]

    def _profile_levels(self, traces: int) -> dict:
        """Per-HW-class beta levels from a simulated clone with known,
        class-diverse weights (the design is public; only the target's
        SRAM contents are secret)."""
        length = len(self.macro)
        profile_weights = [PROFILING_WEIGHTS[i % len(PROFILING_WEIGHTS)]
                           for i in range(length)]
        clone = DigitalCimMacro(profile_weights)
        rng = np.random.default_rng(0xC1A)
        betas = self._observe_betas(clone, traces, rng)
        levels = {}
        for hw in range(5):
            members = [betas[c] for c in range(length)
                       if hamming_weight(profile_weights[c]) == hw]
            if members:
                levels[hw] = float(np.mean(members))
        return levels

    def run(self, traces: int = 2000,
            profile_traces: int = 3000) -> CpaResult:
        """Estimate every column's Hamming weight passively."""
        levels = self._profile_levels(profile_traces)
        betas = self._observe_betas(self.macro, traces, self._rng)
        hw_estimates = [
            min(levels, key=lambda hw: abs(levels[hw] - beta))
            for beta in betas]
        return CpaResult(hw_estimates=hw_estimates,
                         betas=[float(b) for b in betas],
                         class_levels=levels, traces_used=traces)

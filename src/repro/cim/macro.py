"""The digital SRAM compute-in-memory macro under attack.

Models the macro of Mir et al. [23] that the paper evaluates: a row of
4-bit weights in SRAM, bit-wise multiplication with binary input
activations (an AND per weight), an adder tree, and a MAC accumulator
register.  The attacker drives the binary inputs — "selective inclusion
or exclusion of 4-bit weights in the accumulation process by providing
binary input values as masks" — and observes power.
"""

from __future__ import annotations

import numpy as np

from ..obs.perf import PERF
from .adder_tree import AdderTree, fresh_tree_activity, hamming_distance

WEIGHT_BITS = 4
WEIGHT_MAX = (1 << WEIGHT_BITS) - 1


class DigitalCimMacro:
    """One CIM macro row: weights, adder tree, MAC accumulator.

    Parameters
    ----------
    weights:
        The stored 4-bit weights (the IP the attack extracts).
    accumulate:
        If True the MAC register accumulates across operations; the
        attack resets it per query (fresh accumulation), which is the
        configuration the paper analyses.
    """

    def __init__(self, weights: list, accumulate: bool = False):
        for w in weights:
            if not 0 <= w <= WEIGHT_MAX:
                raise ValueError(f"weight {w} outside 4-bit range")
        self.weights = list(weights)
        self.accumulate = accumulate
        self.tree = AdderTree(len(weights))
        self.mac_register = 0

    def __len__(self) -> int:
        return len(self.weights)

    def reset(self) -> None:
        """Power-cycle: clear the tree state and the MAC register."""
        self.tree.reset()
        self.mac_register = 0

    def operate(self, inputs: list) -> tuple:
        """One MAC operation with binary ``inputs``.

        Returns ``(mac_value, toggles)`` where ``toggles`` is the total
        switching activity of the operation: adder-tree node flips plus
        MAC-register flips — the signal the power model scales.
        """
        if len(inputs) != len(self.weights):
            raise ValueError(
                f"expected {len(self.weights)} inputs, got {len(inputs)}")
        if any(bit not in (0, 1) for bit in inputs):
            raise ValueError("inputs must be binary activation masks")
        products = [bit * weight
                    for bit, weight in zip(inputs, self.weights)]
        total, tree_activity = self.tree.evaluate(products)
        new_mac = (self.mac_register + total) if self.accumulate \
            else total
        mac_activity = hamming_distance(self.mac_register, new_mac)
        self.mac_register = new_mac
        return new_mac, tree_activity + mac_activity

    def query_fresh(self, inputs: list) -> int:
        """The attacker's primitive: reset, operate once, return the
        switching activity of that single operation."""
        self.reset()
        _, toggles = self.operate(inputs)
        return toggles

    def _check_masks(self, masks) -> "np.ndarray":
        masks = np.asarray(masks, dtype=np.int64)
        if masks.ndim != 2 or masks.shape[1] != len(self.weights):
            raise ValueError(
                f"expected masks of shape (traces, {len(self.weights)}),"
                f" got {masks.shape}")
        if masks.size and (masks.min() < 0 or masks.max() > 1):
            raise ValueError("inputs must be binary activation masks")
        return masks

    def _fresh_toggles_batch(self, masks: "np.ndarray") -> "np.ndarray":
        """Vectorized fresh-query toggles for ``masks`` rows (no state
        update; every row starts from the reset state)."""
        weights = np.asarray(self.weights, dtype=np.int64)
        totals, activity = fresh_tree_activity(masks * weights)
        return activity + np.bitwise_count(
            totals.astype(np.uint64)).astype(np.int64)

    def query_fresh_many(self, masks) -> "np.ndarray":
        """Batch of fresh queries: one toggle count per row of ``masks``.

        Bit-identical to calling :meth:`query_fresh` once per row —
        including the macro's final register/RNG state, because the
        last row is replayed through the scalar path — but evaluates
        the first ``traces - 1`` rows in one numpy pass.
        """
        masks = self._check_masks(masks)
        count = masks.shape[0]
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        toggles = self._fresh_toggles_batch(masks[:-1])
        if PERF.enabled:
            PERF.inc("cim.traces_vectorized", count - 1)
        last = self.query_fresh([int(bit) for bit in masks[-1]])
        return np.concatenate(
            [toggles, np.array([last], dtype=np.int64)])


def one_hot(length: int, index: int) -> list:
    """Input mask activating only weight ``index``."""
    mask = [0] * length
    mask[index] = 1
    return mask


def subset_mask(length: int, indices) -> list:
    """Input mask activating exactly ``indices``."""
    mask = [0] * length
    for index in indices:
        mask[index] = 1
    return mask

"""Full NN-layer extraction: scaling the attack from one macro row to a
complete weight matrix.

The paper frames the threat as model IP theft ("trained models
represent valuable intellectual property that can be compromised
through power side-channel attacks").  A real accelerator maps a
fully-connected layer onto many CIM rows — one per output neuron —
evaluated sequentially or in banks, each observable on the power rail.
This module models such a layer and extracts the *entire* weight
matrix with the paper's two-phase attack, then checks functional
equivalence: the stolen matrix must produce identical MAC outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .attack import WeightExtractionAttack
from .macro import DigitalCimMacro, WEIGHT_MAX
from .power import PowerModel


class CimLayer:
    """A fully-connected layer on CIM hardware: one macro row per
    output neuron, all sharing the input activations."""

    def __init__(self, weight_matrix):
        matrix = [list(row) for row in weight_matrix]
        if not matrix or not matrix[0]:
            raise ValueError("weight matrix must be non-empty")
        width = len(matrix[0])
        if any(len(row) != width for row in matrix):
            raise ValueError("ragged weight matrix")
        for row in matrix:
            for w in row:
                if not 0 <= w <= WEIGHT_MAX:
                    raise ValueError(f"weight {w} outside 4-bit range")
        self.weight_matrix = matrix
        self.rows = [DigitalCimMacro(row) for row in matrix]

    @property
    def shape(self) -> tuple:
        return (len(self.weight_matrix), len(self.weight_matrix[0]))

    def infer(self, activations: list) -> list:
        """One forward pass: the MAC output of every neuron."""
        outputs = []
        for row in self.rows:
            value, _ = row.operate(activations)
            outputs.append(value)
        return outputs


@dataclass
class LayerExtractionResult:
    """Outcome of extracting a full layer."""

    recovered_matrix: list
    per_row_queries: list
    unresolved_rows: list = field(default_factory=list)

    @property
    def total_queries(self) -> int:
        return sum(self.per_row_queries)

    def accuracy(self, true_matrix) -> float:
        total = 0
        correct = 0
        for recovered_row, true_row in zip(self.recovered_matrix,
                                           true_matrix):
            for recovered, true in zip(recovered_row, true_row):
                total += 1
                correct += int(recovered == true)
        return correct / total

    def functionally_equivalent(self, layer: CimLayer,
                                trials: int = 16,
                                seed: int = 0) -> bool:
        """Does the stolen matrix reproduce the victim's outputs?"""
        if any(w is None for row in self.recovered_matrix
               for w in row):
            return False
        stolen = CimLayer(self.recovered_matrix)
        rng = np.random.default_rng(seed)
        _, width = layer.shape
        for _ in range(trials):
            activations = [int(b) for b in rng.integers(0, 2, width)]
            if stolen.infer(activations) != layer.infer(activations):
                return False
        return True


class LayerExtractionAttack:
    """Drive the two-phase attack against every row of a layer.

    Rows are evaluated one at a time (the attacker gates the rows via
    the row-enable inputs, or simply observes the sequential row
    schedule), so each row is an independent instance of the
    single-macro attack.
    """

    def __init__(self, layer: CimLayer, power: PowerModel = None,
                 repetitions: int = 1):
        self.layer = layer
        self.power = power or PowerModel()
        self.repetitions = repetitions

    def run(self, tolerance: float = 1e-6) -> LayerExtractionResult:
        recovered = []
        queries = []
        unresolved_rows = []
        for row_index, row in enumerate(self.layer.rows):
            attack = WeightExtractionAttack(row, self.power,
                                            self.repetitions)
            result = attack.run(tolerance=tolerance)
            recovered.append(result.recovered)
            queries.append(result.queries_used)
            if result.unresolved:
                unresolved_rows.append(row_index)
        return LayerExtractionResult(recovered_matrix=recovered,
                                     per_row_queries=queries,
                                     unresolved_rows=unresolved_rows)

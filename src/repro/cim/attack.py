"""The two-phase CIM weight-extraction attack (paper Section III-C).

Phase 1 ("clustering", Fig. 1): every weight is activated alone; the
macro's switching activity is proportional to the weight's Hamming
weight, so k-means over the per-weight mean powers yields five clusters
that map onto HW 0..4 by ascending power.

Phase 2 ("combination", Fig. 2): weights whose HW pins their value
(HW 0 -> 0, HW 4 -> 15) become *known*.  An unknown weight is activated
together with known companions; the measured activity is matched
against the attacker's power predictions for every candidate value of
the unknown's HW class, shrinking the candidate set until one value
remains.  Newly recovered weights immediately serve as companions for
the rest — the paper's "iterative process, optimized through
exhaustive search".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..obs import TELEMETRY
from .adder_tree import hamming_weight
from .kmeans import KMeans
from .macro import (DigitalCimMacro, WEIGHT_MAX, one_hot, subset_mask)
from .power import PowerModel, STATIC_POWER, ENERGY_PER_TOGGLE


def values_with_hamming_weight(hw: int) -> list:
    """All 4-bit values of a given Hamming weight."""
    return [v for v in range(WEIGHT_MAX + 1) if hamming_weight(v) == hw]


@dataclass
class Phase1Result:
    """Outcome of the clustering phase (the data behind Fig. 1)."""

    mean_powers: list                 # per-weight mean measured power
    cluster_labels: list              # raw k-means labels
    hw_estimates: list                # clusters ordered by power -> HW
    traces_used: int

    def accuracy(self, true_weights: list) -> float:
        correct = sum(1 for est, w in zip(self.hw_estimates, true_weights)
                      if est == hamming_weight(w))
        return correct / len(true_weights)


@dataclass
class AttackResult:
    """Outcome of the full two-phase attack."""

    recovered: list                   # estimated weight values (or None)
    phase1: Phase1Result
    queries_used: int
    unresolved: list = field(default_factory=list)

    def accuracy(self, true_weights: list) -> float:
        correct = sum(1 for est, w in zip(self.recovered, true_weights)
                      if est == w)
        return correct / len(true_weights)


class WeightExtractionAttack:
    """Attacker model: chooses binary input masks, observes power, and
    owns a simulatable clone of the macro design (the gate-level
    implementation is public; only the SRAM contents are secret)."""

    def __init__(self, macro: DigitalCimMacro, power: PowerModel = None,
                 repetitions: int = 5):
        self.macro = macro
        self.power = power or PowerModel()
        self.repetitions = repetitions
        self.queries_used = 0

    # -- measurement ------------------------------------------------------

    def _measure(self, mask: list) -> float:
        self.queries_used += 1
        if TELEMETRY.enabled:
            TELEMETRY.counter("cim.queries").inc()
        return float(np.mean(self.power.trace(self.macro, mask,
                                              self.repetitions)))

    # -- prediction (the attacker's design clone) -------------------------

    @staticmethod
    def _predict_toggles(unknown_index: int, candidate: int,
                         companions: dict, length: int) -> int:
        """Exact switching activity the design clone predicts for a
        fresh query activating ``unknown_index`` plus companions."""
        weights = [0] * length
        weights[unknown_index] = candidate
        for index, value in companions.items():
            weights[index] = value
        clone = DigitalCimMacro(weights)
        mask = subset_mask(length, [unknown_index] + list(companions))
        return clone.query_fresh(mask)

    @staticmethod
    def _predicted_power(toggles: int) -> float:
        return STATIC_POWER + ENERGY_PER_TOGGLE * toggles

    # -- phase 1 -----------------------------------------------------------

    def phase1_cluster(self, seed: int = 0) -> Phase1Result:
        """Activate each weight alone, cluster mean powers into 5 HW
        classes (Fig. 1)."""
        with TELEMETRY.span("cim.phase1", weights=len(self.macro)):
            return self._phase1_cluster(seed)

    def _phase1_cluster(self, seed: int) -> Phase1Result:
        length = len(self.macro)
        means = []
        with TELEMETRY.span("cim.phase1.trace_generation",
                            repetitions=self.repetitions):
            for index in range(length):
                mask = one_hot(length, index)
                means.append(self._measure(mask))
        with TELEMETRY.span("cim.phase1.clustering"):
            n_clusters = min(5, len(set(np.round(means, 6))))
            km = KMeans(n_clusters=n_clusters, seed=seed).fit(means)
        # Order clusters by mean power: lowest power -> lowest HW.
        order = np.argsort(km.centers_[:, 0])
        # Map each cluster to an HW value using its nearest noise-free
        # power level (robust when some HW classes are absent).
        level_of_cluster = {}
        for rank, cluster in enumerate(order):
            center = km.centers_[cluster, 0]
            predicted_levels = [
                self._predicted_power(self._predict_toggles(0, value,
                                                            {}, length))
                for value in (0, 1, 3, 7, 15)]
            level_of_cluster[int(cluster)] = int(np.argmin(
                [abs(center - level) for level in predicted_levels]))
        hw_estimates = [level_of_cluster[int(label)]
                        for label in km.labels_]
        return Phase1Result(
            mean_powers=means, cluster_labels=list(map(int, km.labels_)),
            hw_estimates=hw_estimates,
            traces_used=length * self.repetitions)

    # -- phase 2 -----------------------------------------------------------

    def _companion_subsets(self, known: dict, max_size: int = 4,
                           pool_limit: int = 8):
        """Candidate companion sets, cheapest first (the exhaustive
        search that 'minimizes additions').

        The pool keeps one representative index per distinct known
        value (value diversity separates candidates fastest) topped up
        with extra copies of the largest value (stacked identical
        companions distinguish residue classes, e.g. {7, 11} need
        four 15s), capped at ``pool_limit`` to bound the search.
        """
        indices = sorted((i for i in known if known[i] != 0),
                         key=lambda i: -known[i])
        pool = []
        seen_values = set()
        for index in indices:
            if known[index] not in seen_values:
                pool.append(index)
                seen_values.add(known[index])
        for index in indices:
            if len(pool) >= pool_limit:
                break
            if index not in pool:
                pool.append(index)
        for size in range(1, max_size + 1):
            for subset in itertools.combinations(pool, size):
                yield subset

    def _resolve_unknown(self, index: int, candidates: list,
                         known: dict, tolerance: float) -> int:
        """Shrink ``candidates`` for one unknown weight via combined
        activations; returns the value or None if unresolved."""
        length = len(self.macro)
        remaining = list(candidates)
        for subset in self._companion_subsets(known):
            if len(remaining) <= 1:
                break
            companions = {i: known[i] for i in subset}
            predictions = {
                value: self._predicted_power(self._predict_toggles(
                    index, value, companions, length))
                for value in remaining}
            if len(set(predictions.values())) == 1:
                continue               # this subset cannot discriminate
            measured = self._measure(
                subset_mask(length, [index] + list(subset)))
            best_gap = min(abs(p - measured)
                           for p in predictions.values())
            remaining = [value for value, p in predictions.items()
                         if abs(p - measured) <= best_gap + tolerance]
        return remaining[0] if len(remaining) == 1 else None

    def _predict_pair_toggles(self, index_a: int, candidate_a: int,
                              index_b: int, candidate_b: int,
                              companions: dict, length: int) -> int:
        weights = [0] * length
        weights[index_a] = candidate_a
        weights[index_b] = candidate_b
        for index, value in companions.items():
            weights[index] = value
        clone = DigitalCimMacro(weights)
        mask = subset_mask(length,
                           [index_a, index_b] + list(companions))
        return clone.query_fresh(mask)

    def _resolve_pair(self, index_a: int, candidates_a: list,
                      index_b: int, candidates_b: list, known: dict,
                      tolerance: float) -> tuple:
        """Joint resolution: activate two unknowns together (optionally
        with known companions) and filter the *pair* candidate set.

        Needed when single-unknown queries cannot separate values whose
        sums with every known companion tie in Hamming weight (e.g.
        {7, 11} with only a 15 available) — the joint sum breaks the
        tie.  Returns the possibly-narrowed candidate lists.
        """
        length = len(self.macro)
        pairs = [(va, vb) for va in candidates_a for vb in candidates_b]
        subsets = [()] + [s for s in self._companion_subsets(
            known, max_size=2)]
        for subset in subsets:
            if len(pairs) <= 1:
                break
            companions = {i: known[i] for i in subset}
            predictions = {
                pair: self._predicted_power(self._predict_pair_toggles(
                    index_a, pair[0], index_b, pair[1], companions,
                    length))
                for pair in pairs}
            if len(set(predictions.values())) == 1:
                continue
            measured = self._measure(subset_mask(
                length, [index_a, index_b] + list(subset)))
            best_gap = min(abs(p - measured)
                           for p in predictions.values())
            pairs = [pair for pair, p in predictions.items()
                     if abs(p - measured) <= best_gap + tolerance]
        remaining_a = sorted({pair[0] for pair in pairs})
        remaining_b = sorted({pair[1] for pair in pairs})
        return remaining_a, remaining_b

    def run(self, seed: int = 0, tolerance: float = 1e-6) -> AttackResult:
        """The full two-phase extraction."""
        with TELEMETRY.span("cim.attack.run",
                            weights=len(self.macro)) as span:
            result = self._run(seed, tolerance)
            if TELEMETRY.enabled:
                span.set_attr("queries_used", self.queries_used)
                span.set_attr("unresolved", len(result.unresolved))
                TELEMETRY.gauge("cim.weights_unresolved").set(
                    len(result.unresolved))
            return result

    def _run(self, seed: int, tolerance: float) -> AttackResult:
        phase1 = self.phase1_cluster(seed=seed)
        length = len(self.macro)
        recovered = [None] * length
        known = {}
        for index, hw in enumerate(phase1.hw_estimates):
            values = values_with_hamming_weight(hw)
            if len(values) == 1:       # HW 0 and HW 4 pin the value
                recovered[index] = values[0]
                known[index] = values[0]
        with TELEMETRY.span("cim.phase2.combination"):
            unresolved = self._phase2_rounds(phase1, recovered, known,
                                             tolerance)
        return AttackResult(recovered=recovered, phase1=phase1,
                            queries_used=self.queries_used,
                            unresolved=unresolved)

    def _phase2_rounds(self, phase1: Phase1Result, recovered: list,
                       known: dict, tolerance: float) -> list:
        """The combination rounds; mutates ``recovered``/``known`` and
        returns the indices left unresolved."""
        length = len(self.macro)
        # Resolve easy classes first so their weights serve as
        # companions for the harder ones, and keep retrying the rest in
        # rounds: every recovered weight enlarges the companion pool
        # (the paper's "iterative process").
        pending = sorted((index for index in range(length)
                          if recovered[index] is None),
                         key=lambda i: (len(values_with_hamming_weight(
                             phase1.hw_estimates[i])),
                             phase1.hw_estimates[i]))
        while pending:
            progressed = False
            still_pending = []
            for index in pending:
                candidates = values_with_hamming_weight(
                    phase1.hw_estimates[index])
                value = self._resolve_unknown(index, candidates, known,
                                              tolerance)
                if value is None:
                    still_pending.append(index)
                else:
                    recovered[index] = value
                    known[index] = value
                    progressed = True
            pending = still_pending
            if not progressed:
                break
        # Joint pass: pairs of unknowns activated together break ties
        # that no single-unknown query can (the paper's exhaustive
        # combination search in full generality).
        progressed = True
        while progressed and len(pending) >= 2:
            progressed = False
            for position in range(len(pending) - 1):
                index_a = pending[position]
                index_b = pending[position + 1]
                candidates_a = values_with_hamming_weight(
                    phase1.hw_estimates[index_a])
                candidates_b = values_with_hamming_weight(
                    phase1.hw_estimates[index_b])
                remaining_a, remaining_b = self._resolve_pair(
                    index_a, candidates_a, index_b, candidates_b,
                    known, tolerance)
                changed = False
                for index, remaining in ((index_a, remaining_a),
                                         (index_b, remaining_b)):
                    if len(remaining) == 1 and recovered[index] is None:
                        recovered[index] = remaining[0]
                        known[index] = remaining[0]
                        changed = True
                if changed:
                    progressed = True
                    # Retry stragglers with the enlarged companion pool.
                    retry = [i for i in pending
                             if recovered[i] is None]
                    for index in list(retry):
                        value = self._resolve_unknown(
                            index, values_with_hamming_weight(
                                phase1.hw_estimates[index]),
                            known, tolerance)
                        if value is not None:
                            recovered[index] = value
                            known[index] = value
                    pending = [i for i in pending
                               if recovered[i] is None]
                    break
        return pending


def phase2_power_patterns(values: list, companion_value: int,
                          length: int = 16) -> dict:
    """The data behind Fig. 2: predicted power of activating each
    candidate value with and without a known companion weight.

    Returns ``{value: (power_alone, power_with_companion)}``.
    """
    patterns = {}
    for value in values:
        weights = [0] * length
        weights[0] = value
        weights[1] = companion_value
        clone = DigitalCimMacro(weights)
        alone = clone.query_fresh(one_hot(length, 0))
        combined = clone.query_fresh(subset_mask(length, [0, 1]))
        patterns[value] = (STATIC_POWER + ENERGY_PER_TOGGLE * alone,
                           STATIC_POWER + ENERGY_PER_TOGGLE * combined)
    return patterns

"""Bit-level adder-tree model with switching-activity tracking.

The paper's CIM macro (Section III-C) multiplies binary inputs with
4-bit SRAM weights and feeds the products into an adder tree "which
subsequently accumulates the products of all inputs and weights in a
MAC accumulator".  The attack observes that "the switching activity of
the accumulator can be confined to the desired level through input
manipulation" — so the simulator must model exactly that: per-node
values whose cycle-to-cycle Hamming distance is the power signal.
"""

from __future__ import annotations

import numpy as np


def hamming_weight(value: int) -> int:
    """Number of set bits (the quantity phase 1 clusters on)."""
    return bin(value).count("1")


def hamming_distance(a: int, b: int) -> int:
    """Bit flips between two register states."""
    return hamming_weight(a ^ b)


def fresh_tree_activity(products: "np.ndarray") -> tuple:
    """Batched from-reset tree evaluation: ``(totals, activity)``.

    ``products`` is a ``(traces, leaf_count)`` int64 array; each row is
    one evaluation of a freshly reset :class:`AdderTree`.  From the
    all-zero state every node's Hamming distance equals the Hamming
    weight of its new value, so the switching activity of row ``t`` is
    the popcount sum over every node of the reduction — exactly what
    ``AdderTree.evaluate`` reports after ``reset()``.
    """
    current = products.astype(np.uint64)
    activity = np.bitwise_count(current).sum(axis=1).astype(np.int64)
    while current.shape[1] > 1:
        if current.shape[1] % 2:
            current = np.concatenate(
                [current, np.zeros((current.shape[0], 1),
                                   dtype=current.dtype)], axis=1)
        current = current[:, 0::2] + current[:, 1::2]
        activity += np.bitwise_count(current).sum(axis=1).astype(np.int64)
    return current[:, 0].astype(np.int64), activity


class AdderTree:
    """A binary adder tree over ``leaf_count`` product inputs.

    The tree keeps its internal node values between evaluations, so an
    evaluation reports the true switching activity (sum of Hamming
    distances of every node, including the leaves) relative to the
    previous cycle — the dominant dynamic-power term of the macro.
    """

    def __init__(self, leaf_count: int):
        if leaf_count < 1:
            raise ValueError("adder tree needs at least one leaf")
        self.leaf_count = leaf_count
        # levels[0] = leaves; each higher level halves (rounding up).
        self._levels = []
        size = leaf_count
        while size > 1:
            self._levels.append([0] * size)
            size = (size + 1) // 2
        self._levels.append([0] * 1)

    @property
    def depth(self) -> int:
        return len(self._levels) - 1

    def evaluate(self, products: list) -> tuple:
        """Sum the products; returns (total, switching_activity).

        ``switching_activity`` counts every bit flip in every tree node
        relative to the previous evaluation.
        """
        if len(products) != self.leaf_count:
            raise ValueError(
                f"expected {self.leaf_count} products, got "
                f"{len(products)}")
        activity = 0
        current = list(products)
        for level_index, stored in enumerate(self._levels):
            for i, value in enumerate(current):
                activity += hamming_distance(stored[i], value)
                stored[i] = value
            if len(current) == 1:
                break
            current = [
                current[2 * i] + (current[2 * i + 1]
                                  if 2 * i + 1 < len(current) else 0)
                for i in range((len(current) + 1) // 2)]
        return self._levels[-1][0], activity

    def reset(self) -> None:
        """Clear all stored node values (power-cycle the macro)."""
        for level in self._levels:
            for i in range(len(level)):
                level[i] = 0

"""Second-order attack on the first-order-masked CIM macro.

First-order arithmetic masking makes the *mean* switching activity
weight-independent, but not the higher moments: for a one-hot query of
a weight ``w`` split as ``(r, w - r)``, the visible activity is
``HW(r) + HW(w - r)`` (times the tree path length), whose *variance*
over uniform ``r`` depends strongly on ``w`` — e.g. ``w = 15`` gives
``HW(r) + HW(15 - r) = 4`` exactly (zero variance) while ``w = 0``
has maximal variance.  The variance profile is almost unique per value,
so a second-order (variance-based) distinguisher recovers the weights
through the first-order countermeasure.

The defence, as masking theory prescribes, is a higher order:
``MaskedCimMacro(..., order=2)`` flattens the variance and defeats this
attack — reproduced in the tests and the higher-order bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .countermeasures import MaskedCimMacro
from .macro import WEIGHT_MAX, one_hot
from .power import PowerModel


@dataclass
class SecondOrderResult:
    """Outcome of a variance-based extraction campaign."""

    recovered: list             # best-guess value per column
    variances: list             # measured per-column variance
    templates: dict             # value -> profiled variance
    traces_used: int

    def accuracy(self, true_weights: list) -> float:
        correct = sum(1 for est, w in zip(self.recovered, true_weights)
                      if est == w)
        return correct / len(true_weights)


class SecondOrderAttack:
    """Variance-based value recovery against a masked macro."""

    def __init__(self, macro, power: PowerModel = None):
        self.macro = macro
        self.power = power or PowerModel()

    def _column_variance(self, macro, column: int,
                         traces: int) -> float:
        mask = one_hot(len(macro), column)
        masks = np.tile(np.asarray(mask, dtype=np.int64), (traces, 1))
        samples = self.power.measure_many(macro.query_fresh_many(masks))
        return float(np.var(samples))

    def _profile_templates(self, traces: int) -> dict:
        """Per-value variance templates from a simulated clone (the
        share distribution is design-determined; the attacker needs no
        knowledge of the target's RNG state)."""
        length = len(self.macro)
        order = getattr(self.macro, "order", 1)
        templates = {}
        for value in range(WEIGHT_MAX + 1):
            clone = MaskedCimMacro([value] + [0] * (length - 1),
                                   seed=0x5EC0, order=order)
            templates[value] = self._column_variance(clone, 0, traces)
        return templates

    def run(self, traces: int = 3000,
            profile_traces: int = 4000) -> SecondOrderResult:
        templates = self._profile_templates(profile_traces)
        length = len(self.macro)
        recovered = []
        variances = []
        for column in range(length):
            variance = self._column_variance(self.macro, column, traces)
            variances.append(variance)
            recovered.append(min(
                templates, key=lambda v: abs(templates[v] - variance)))
        return SecondOrderResult(recovered=recovered,
                                 variances=variances,
                                 templates=templates,
                                 traces_used=traces * length)

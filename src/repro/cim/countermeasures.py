"""Side-channel countermeasures for the CIM macro.

The paper's conclusion for CONVOLVE: "side-channel attacks and
counter-measures must be meticulously analyzed and integrated to enable
adoption in industry."  Two classic defences are modelled so that the
attack benches can ablate them:

* **Arithmetic masking** — every stored weight is split into two
  arithmetic shares whose sum (mod 2^b) is the weight; each operation
  processes re-randomised shares, so the accumulator's switching
  activity is decorrelated from the weight value.
* **Input shuffling** — the mapping between logical and physical weight
  columns is permuted per operation, destroying the attacker's ability
  to address a chosen weight.
"""

from __future__ import annotations

import numpy as np

from .adder_tree import fresh_tree_activity, hamming_distance
from .macro import DigitalCimMacro, WEIGHT_MAX


class MaskedCimMacro(DigitalCimMacro):
    """Arithmetically masked macro at arbitrary order.

    Every operation splits each weight into ``order + 1`` fresh random
    shares and evaluates the tree once per share domain; the
    recombination happens in a register the power model does not
    expose (modelled as a balanced dual-rail recombiner).  The mean of
    the visible switching activity is weight-independent at any order;
    the *variance* still leaks at order 1 (see
    :mod:`repro.cim.second_order`) and flattens from order 2 on —
    matching masking theory, where a d-th-order scheme resists attacks
    combining up to d statistical moments.
    """

    SHARE_MODULUS = WEIGHT_MAX + 1

    def __init__(self, weights: list, seed: int = 0, order: int = 1):
        super().__init__(weights)
        if order < 1:
            raise ValueError("masking order must be >= 1")
        self.order = order
        self._rng = np.random.default_rng(seed)

    def operate(self, inputs: list) -> tuple:
        if len(inputs) != len(self.weights):
            raise ValueError(
                f"expected {len(self.weights)} inputs, got {len(inputs)}")
        if any(bit not in (0, 1) for bit in inputs):
            raise ValueError("inputs must be binary activation masks")
        share_vectors = []
        remaining = list(self.weights)
        for _ in range(self.order):
            fresh = [int(self._rng.integers(self.SHARE_MODULUS))
                     for _ in self.weights]
            share_vectors.append(fresh)
            remaining = [(w - r) % self.SHARE_MODULUS
                         for w, r in zip(remaining, fresh)]
        share_vectors.append(remaining)
        total = 0
        toggles = 0
        for share_vector in share_vectors:
            # Precharge the tree between share passes: without it the
            # node transitions between domains leak the weight through
            # the Hamming-distance model (the classic arithmetic-
            # masking pitfall).  With precharge, each pass toggles by
            # the Hamming weight of uniformly distributed share sums.
            self.tree.reset()
            products = [bit * share
                        for bit, share in zip(inputs, share_vector)]
            share_sum, tree_activity = self.tree.evaluate(products)
            toggles += tree_activity
            total += share_sum
        true_total = sum(bit * w for bit, w in zip(inputs, self.weights))
        new_mac = true_total if not self.accumulate \
            else self.mac_register + true_total
        # The recombination register is dual-rail balanced: its
        # contribution is constant per operation.
        toggles += self.tree.depth + 1
        mac_activity = hamming_distance(self.mac_register, new_mac)
        _ = mac_activity                     # hidden behind the balancing
        self.mac_register = new_mac
        return new_mac, toggles

    def _fresh_toggles_batch(self, masks: "np.ndarray") -> "np.ndarray":
        traces = masks.shape[0]
        if traces == 0:
            return np.zeros(0, dtype=np.int64)
        length = len(self.weights)
        weights = np.asarray(self.weights, dtype=np.int64)
        # One batched draw consumes the generator stream exactly as the
        # per-trace, per-order, per-weight scalar draws do (row-major).
        fresh = self._rng.integers(
            self.SHARE_MODULUS, size=(traces, self.order, length))
        remaining = (weights - fresh.sum(axis=1)) % self.SHARE_MODULUS
        shares = np.concatenate([fresh, remaining[:, None, :]], axis=1)
        products = masks[:, None, :] * shares
        _, activity = fresh_tree_activity(
            products.reshape(traces * (self.order + 1), length))
        return (activity.reshape(traces, self.order + 1).sum(axis=1)
                + (self.tree.depth + 1))


class ShuffledCimMacro(DigitalCimMacro):
    """Macro with per-operation random column permutation.

    The attacker's input mask addresses *physical* columns, but the
    weights move under a fresh secret permutation every operation, so a
    one-hot query hits a random weight.
    """

    def __init__(self, weights: list, seed: int = 0):
        super().__init__(weights)
        self._rng = np.random.default_rng(seed)

    def operate(self, inputs: list) -> tuple:
        permutation = self._rng.permutation(len(self.weights))
        shuffled = [self.weights[p] for p in permutation]
        original = self.weights
        self.weights = shuffled
        try:
            return super().operate(inputs)
        finally:
            self.weights = original

    def _fresh_toggles_batch(self, masks: "np.ndarray") -> "np.ndarray":
        traces = masks.shape[0]
        if traces == 0:
            return np.zeros(0, dtype=np.int64)
        length = len(self.weights)
        weights = np.asarray(self.weights, dtype=np.int64)
        # Permutations stay per-trace (the generator's stream must match
        # the scalar path draw-for-draw); the tree evaluation batches.
        permutations = np.stack(
            [self._rng.permutation(length) for _ in range(traces)])
        totals, activity = fresh_tree_activity(
            masks * weights[permutations])
        return activity + np.bitwise_count(
            totals.astype(np.uint64)).astype(np.int64)

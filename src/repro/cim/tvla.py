"""TVLA-style leakage assessment (Welch's t-test).

The standard fixed-vs-random methodology: collect power samples for a
fixed input and for random inputs; a |t| statistic above 4.5 indicates
exploitable first-order leakage.  Used by the benches to show that the
unprotected macro leaks and the masked macro does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .power import PowerModel

#: The conventional TVLA significance threshold.
T_THRESHOLD = 4.5


def welch_t(sample_a, sample_b) -> float:
    """Welch's t statistic between two sample sets."""
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if len(a) < 2 or len(b) < 2:
        raise ValueError("need at least two samples per group")
    var_a = a.var(ddof=1) / len(a)
    var_b = b.var(ddof=1) / len(b)
    denominator = np.sqrt(var_a + var_b)
    if denominator == 0:
        return 0.0 if a.mean() == b.mean() else float("inf")
    return float((a.mean() - b.mean()) / denominator)


@dataclass
class LeakageAssessment:
    """Outcome of a fixed-vs-random-weights TVLA campaign."""

    t_statistic: float
    traces: int

    @property
    def leaks(self) -> bool:
        return abs(self.t_statistic) > T_THRESHOLD


def assess_macro(macro_factory, weights: list, traces: int = 300,
                 noise_sigma: float = 1.0,
                 seed: int = 0) -> LeakageAssessment:
    """Fixed-vs-random-*weights* t-test on a CIM macro design.

    The leakage of interest is weight dependence, so the two groups
    hold the *inputs* distribution identical and vary the secret:
    group A runs the macro with the fixed ``weights`` under test, group
    B with fresh random weights per trace.  A design whose power
    depends on the stored values separates the groups; a properly
    masked design does not.

    ``macro_factory(weights) -> macro`` selects the design under test
    (plain, masked, shuffled, ...).
    """
    rng = np.random.default_rng(seed)
    power = PowerModel(noise_sigma=noise_sigma, seed=seed + 1)
    length = len(weights)
    # Fixed full activation: every trace exercises every weight, the
    # strongest first-order test vector for this macro.
    mask = [1] * length
    fixed_macro = macro_factory(list(weights))
    mask_rows = np.tile(np.asarray(mask, dtype=np.int64), (traces, 1))
    fixed_toggles = fixed_macro.query_fresh_many(mask_rows)
    # The random group needs a fresh macro per trace (each carries its
    # own countermeasure RNG), so only the weight draws batch; the
    # (traces, length) draw consumes ``rng`` exactly like the scalar
    # per-trace draws.
    random_weights = rng.integers(0, 16, size=(traces, length))
    random_toggles = np.empty(traces, dtype=np.int64)
    for t in range(traces):
        random_macro = macro_factory([int(w) for w in random_weights[t]])
        random_toggles[t] = random_macro.query_fresh(mask)
    # The scalar loop alternated fixed/random measurements, so the noise
    # stream must see the toggles in that interleaved order.
    interleaved = np.empty(2 * traces, dtype=np.int64)
    interleaved[0::2] = fixed_toggles
    interleaved[1::2] = random_toggles
    samples = power.measure_many(interleaved)
    return LeakageAssessment(
        t_statistic=welch_t(samples[0::2], samples[1::2]),
        traces=2 * traces)

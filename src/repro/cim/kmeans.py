"""Minimal k-means++ — the clustering engine of the phase-1 attack.

The paper implements the attack "in Python, leveraging the capabilities
of scikit-learn"; scikit-learn is not available offline, so this module
provides the one algorithm the attack needs (k-means with k-means++
seeding) on plain numpy.
"""

from __future__ import annotations

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation.

    Works on data of shape ``(n_samples, n_features)``; 1-D inputs are
    promoted automatically (the attack clusters scalar mean powers).
    """

    def __init__(self, n_clusters: int, n_init: int = 8,
                 max_iter: int = 200, seed: int = 0):
        if n_clusters < 1:
            raise ValueError("need at least one cluster")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.seed = seed
        self.centers_ = None
        self.labels_ = None
        self.inertia_ = None

    @staticmethod
    def _as_2d(data) -> np.ndarray:
        array = np.asarray(data, dtype=float)
        if array.ndim == 1:
            array = array[:, None]
        return array

    def _init_centers(self, data: np.ndarray, rng) -> np.ndarray:
        """k-means++ seeding."""
        n = data.shape[0]
        centers = [data[rng.integers(n)]]
        for _ in range(self.n_clusters - 1):
            distances = np.min(
                [np.sum((data - c) ** 2, axis=1) for c in centers],
                axis=0)
            total = distances.sum()
            if total == 0:
                centers.append(data[rng.integers(n)])
                continue
            probabilities = distances / total
            centers.append(data[rng.choice(n, p=probabilities)])
        return np.array(centers)

    def _single_run(self, data: np.ndarray, rng) -> tuple:
        centers = self._init_centers(data, rng)
        labels = np.zeros(len(data), dtype=int)
        for _ in range(self.max_iter):
            distances = np.stack(
                [np.sum((data - c) ** 2, axis=1) for c in centers])
            new_labels = np.argmin(distances, axis=0)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for k in range(self.n_clusters):
                members = data[labels == k]
                if len(members):
                    centers[k] = members.mean(axis=0)
        inertia = float(np.sum(
            (data - centers[labels]) ** 2))
        return centers, labels, inertia

    def fit(self, data) -> "KMeans":
        """Cluster ``data``; keeps the best of ``n_init`` restarts."""
        array = self._as_2d(data)
        if len(array) < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        best = None
        for run in range(self.n_init):
            rng = np.random.default_rng(self.seed + run)
            centers, labels, inertia = self._single_run(array, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, data) -> np.ndarray:
        array = self._as_2d(data)
        distances = np.stack(
            [np.sum((array - c) ** 2, axis=1) for c in self.centers_])
        return np.argmin(distances, axis=0)

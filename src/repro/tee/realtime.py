"""Real-time + TEE integration — the paper's central open challenge.

Section II-C: "Combining real-time constraints and Trusted Execution
Environments (TEEs) is non-trivial ... Nesting a TEE inside a real-time
system breaks the security guarantees of the TEE.  Conversely, nesting
a real-time system inside a TEE breaks any real-time guarantees, as the
TEE may (unintentionally) inhibit the scheduling.  A customized
solution is therefore required."

This module makes all three configurations executable:

* :func:`tee_inside_rtos` — the enclave is just an RTOS task.  PMP
  isolates tasks from *each other*, but the kernel (with machine-level
  driver code) remains in the TCB and reads the "enclave" secret at
  will: **security broken, deadlines met**.
* :func:`rtos_inside_tee` — the whole RTOS runs inside one enclave
  under a classic security monitor.  When the SM performs a heavyweight
  service (an ML-DSA attestation, hundreds of microseconds with the
  core unavailable), the RTOS is blacked out and its deadlines are
  missed: **security kept, real time broken**.
* :func:`convolve_integration` — the customized solution: the SM
  carves *locked* PMP entries around real-time enclave tasks (the
  RISC-V L bit makes the denial bind even machine-mode driver code),
  while scheduling authority stays with the RTOS and SM services are
  executed as a budgeted kernel task that the scheduler preempts like
  any other: **security and deadlines both hold**.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import ed25519
from ..soc.cpu import Hart
from ..soc.memory import AccessFault
from ..soc.pmp import PrivilegeMode
from ..rtos.kernel import Kernel
from ..rtos.task import Delay

SECRET = b"enclave-model-key"

#: Ticks one ML-DSA attestation occupies the core in the naive design
#: (tens of thousands of cycles at SoC clocks; scaled to kernel ticks).
SM_SERVICE_TICKS = 120

#: Deadline of the real-time control loop in ticks.
CONTROL_DEADLINE = 60


@dataclass
class IntegrationOutcome:
    """What one configuration achieves."""

    name: str
    security_preserved: bool
    deadlines_met: bool
    detail: str = ""

    @property
    def viable(self) -> bool:
        return self.security_preserved and self.deadlines_met


def _control_loop(iterations=5, period=8):
    """A periodic control task: misses its deadline if starved."""
    def entry(ctx):
        for _ in range(iterations):
            yield Delay(period)
            yield                     # one tick of computation
    return entry


def _secret_holder(secret_address):
    def entry(ctx):
        ctx.store(secret_address, SECRET)
        for _ in range(40):
            yield
    return entry


def tee_inside_rtos() -> IntegrationOutcome:
    """Naive nesting #1: the 'enclave' is an ordinary (PMP-protected)
    RTOS task; the kernel stays in the TCB."""
    kernel = Kernel(protected=True)
    holder = kernel.create_task("enclave-task", 3,
                                entry=lambda ctx: iter(()),
                                data_bytes=4096)
    secret_address = holder.data_regions[0].base
    holder.entry = _secret_holder(secret_address)
    control = kernel.create_task("control", 5, _control_loop(),
                                 deadline_ticks=CONTROL_DEADLINE)
    kernel.run(8)                      # let the secret be written
    # A malicious or buggy kernel driver runs with machine privilege:
    # task-level PMP views do not bind M-mode (no locked entries).
    stolen = kernel.hart.load(secret_address, len(SECRET))
    kernel.run(200)
    return IntegrationOutcome(
        name="TEE inside RTOS",
        security_preserved=stolen != SECRET,
        deadlines_met=not control.deadline_missed,
        detail="kernel-level code read the enclave secret"
               if stolen == SECRET else "")


def rtos_inside_tee() -> IntegrationOutcome:
    """Naive nesting #2: the RTOS lives in one enclave; the SM's own
    services stall the core for unbounded stretches."""
    kernel = Kernel(protected=True)
    holder = kernel.create_task("enclave-task", 3,
                                entry=lambda ctx: iter(()),
                                data_bytes=4096)
    secret_address = holder.data_regions[0].base
    holder.entry = _secret_holder(secret_address)
    control = kernel.create_task("control", 5, _control_loop(),
                                 deadline_ticks=CONTROL_DEADLINE)
    # The SM preempts the *whole* RTOS (it is one enclave to the SM):
    # nothing schedules while the monitor signs an attestation.
    kernel.run(10)
    signature = ed25519.sign(bytes(32), b"attestation-payload")
    kernel.tick += SM_SERVICE_TICKS        # the core is the SM's
    kernel.run(200)
    # Security holds: the (untrusted) OS outside the enclave cannot
    # reach in.  The SM's blackout view on the OS core leaves no PMP
    # entry matching enclave memory, so the S-mode access is denied.
    outside_core = Hart(1, kernel.memory)
    outside_core.drop_to(PrivilegeMode.SUPERVISOR)
    try:
        outside_core.load(secret_address, len(SECRET))
        outside_reads = True
    except AccessFault:
        outside_reads = False
    return IntegrationOutcome(
        name="RTOS inside TEE",
        security_preserved=not outside_reads and len(signature) == 64,
        deadlines_met=not control.deadline_missed,
        detail=f"SM service stalled the RTOS for {SM_SERVICE_TICKS} "
               f"ticks" if control.deadline_missed else "")


def convolve_integration() -> IntegrationOutcome:
    """The customized solution: locked PMP carve-outs for real-time
    enclave tasks + SM services as budgeted, preemptible kernel work."""
    kernel = Kernel(protected=True, budget_window=50)
    holder = kernel.create_task("rt-enclave", 3,
                                entry=lambda ctx: iter(()),
                                data_bytes=4096)
    secret_address = holder.data_regions[0].base
    holder.entry = _secret_holder(secret_address)
    control = kernel.create_task("control", 5, _control_loop(),
                                 deadline_ticks=CONTROL_DEADLINE)
    kernel.run(8)                      # secret written
    # The SM locks the enclave task's data region: the L bit binds the
    # denial even for machine-mode kernel/driver code, removing the
    # kernel from the enclave's TCB while the scheduler keeps running.
    region = holder.data_regions[0]
    kernel.hart.pmp.set_napot(12, region.base, region.size,
                              locked=True)

    def sm_service(ctx):
        # The attestation is chopped into scheduler-visible slices: a
        # budgeted low-priority task instead of an uninterruptible
        # monitor call.
        for _ in range(SM_SERVICE_TICKS):
            yield
        ed25519.sign(bytes(32), b"attestation-payload")

    kernel.create_task("sm-service", 1, sm_service, budget_ticks=25)
    kernel.run(500)
    sm_done = any(e.kind == "done" and e.task == "sm-service"
                  for e in kernel.events)
    # Machine-mode driver attack fails against the locked entry: only
    # the enclave task's own scheduled context (U-mode, its PMP view)
    # ever opens the region; kernel code running in any other context
    # hits the locked denial.
    try:
        kernel.hart.load(secret_address, len(SECRET))
        machine_reads = True
    except AccessFault:
        machine_reads = False
    return IntegrationOutcome(
        name="CONVOLVE integration",
        security_preserved=not machine_reads,
        deadlines_met=not control.deadline_missed and sm_done,
        detail="locked PMP carve-out + budgeted SM service")


def evaluate_all() -> list:
    """Run the three configurations; only the customized one is viable."""
    return [tee_inside_rtos(), rtos_inside_tee(),
            convolve_integration()]

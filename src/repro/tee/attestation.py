"""Keystone attestation reports, default and PQ-enabled formats.

The report proves to a remote verifier that (a) a specific security
monitor booted on a specific device and (b) a specific enclave runs
under that SM, optionally binding 1 KB of enclave-chosen data (e.g. a
key-exchange public key).

Layout of the default report (1320 bytes, Table III):

====================  =====  =========================================
field                 bytes  meaning
====================  =====  =========================================
enclave.hash             64  SHA3-512 measurement of the enclave
enclave.data_len          8  big-endian length of the bound data
enclave.data           1024  enclave-chosen payload (zero padded)
enclave.signature        64  Ed25519 by the SM attestation key
sm.hash                  64  SHA3-512 measurement of the SM
sm.public_key            32  SM Ed25519 attestation public key
sm.signature             64  Ed25519 by the *device* key
====================  =====  =========================================

The PQ-enabled report appends the hybrid material (7472 bytes total):
the SM's ML-DSA-44 public key (1312) and ML-DSA-44 signatures over the
enclave part (2420) and the SM part (2420).  Verification follows the
hybrid rule: *all* present signatures must verify.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import ed25519
from ..crypto.mldsa import ML_DSA_44, MLDSA, MLDSAParams

ENCLAVE_HASH_LEN = 64
SM_HASH_LEN = 64
MAX_DATA_LEN = 1024

DEFAULT_REPORT_LEN = (ENCLAVE_HASH_LEN + 8 + MAX_DATA_LEN + 64
                      + SM_HASH_LEN + 32 + 64)


def sm_certificate_payload(sm_hash: bytes, sm_ed25519_public: bytes,
                           sm_mldsa_public: bytes = b"") -> bytes:
    """The device-signed statement binding the SM measurement to the
    SM's attestation public keys.  Produced by the bootrom at boot and
    embedded (as ``sm.signature`` / ``sm.pq_signature``) in every
    attestation report."""
    return (b"keystone-sm-v1" + sm_hash + sm_ed25519_public
            + sm_mldsa_public)


def pq_report_len(params: MLDSAParams = ML_DSA_44) -> int:
    """Size of the PQ-enabled report for a given ML-DSA parameter set."""
    return (DEFAULT_REPORT_LEN + params.public_key_bytes
            + 2 * params.signature_bytes)


@dataclass
class AttestationReport:
    """A parsed attestation report (either format)."""

    enclave_hash: bytes
    enclave_data: bytes
    enclave_signature: bytes
    sm_hash: bytes
    sm_ed25519_public: bytes
    sm_signature: bytes
    # PQ-only fields; empty bytes in the default format.
    sm_mldsa_public: bytes = b""
    enclave_pq_signature: bytes = b""
    sm_pq_signature: bytes = b""

    @property
    def post_quantum(self) -> bool:
        return bool(self.sm_mldsa_public)

    # -- byte-level encoding ------------------------------------------

    def encode(self) -> bytes:
        if len(self.enclave_data) > MAX_DATA_LEN:
            raise ValueError("enclave data exceeds 1024 bytes")
        padded = self.enclave_data.ljust(MAX_DATA_LEN, b"\x00")
        body = (self.enclave_hash
                + len(self.enclave_data).to_bytes(8, "big")
                + padded
                + self.enclave_signature
                + self.sm_hash
                + self.sm_ed25519_public
                + self.sm_signature)
        if self.post_quantum:
            body += (self.sm_mldsa_public + self.enclave_pq_signature
                     + self.sm_pq_signature)
        return body

    @classmethod
    def decode(cls, data: bytes,
               params: MLDSAParams = ML_DSA_44) -> "AttestationReport":
        if len(data) not in (DEFAULT_REPORT_LEN, pq_report_len(params)):
            raise ValueError(
                f"report must be {DEFAULT_REPORT_LEN} or "
                f"{pq_report_len(params)} bytes, got {len(data)}")
        offset = 0

        def take(n):
            nonlocal offset
            chunk = data[offset:offset + n]
            offset += n
            return chunk

        enclave_hash = take(ENCLAVE_HASH_LEN)
        data_len = int.from_bytes(take(8), "big")
        if data_len > MAX_DATA_LEN:
            raise ValueError("declared data length exceeds 1024")
        padded = take(MAX_DATA_LEN)
        if any(padded[data_len:]):
            raise ValueError("nonzero padding after enclave data")
        report = cls(
            enclave_hash=enclave_hash,
            enclave_data=padded[:data_len],
            enclave_signature=take(64),
            sm_hash=take(SM_HASH_LEN),
            sm_ed25519_public=take(32),
            sm_signature=take(64),
        )
        if offset < len(data):
            report.sm_mldsa_public = take(params.public_key_bytes)
            report.enclave_pq_signature = take(params.signature_bytes)
            report.sm_pq_signature = take(params.signature_bytes)
        return report

    # -- signed payloads ------------------------------------------------

    def enclave_payload(self) -> bytes:
        """What the SM signs about the enclave."""
        return (b"keystone-enclave-v1" + self.enclave_hash
                + len(self.enclave_data).to_bytes(8, "big")
                + self.enclave_data)

    def sm_payload(self) -> bytes:
        """What the device key signs about the SM (binds *all* the SM's
        attestation public keys, classical and PQ)."""
        return sm_certificate_payload(self.sm_hash,
                                      self.sm_ed25519_public,
                                      self.sm_mldsa_public)


def verify_report(report: AttestationReport, device_identity: dict,
                  expected_enclave_hash: bytes = None,
                  expected_sm_hash: bytes = None,
                  params: MLDSAParams = ML_DSA_44) -> bool:
    """Full verifier-side chain check.

    ``device_identity`` is :meth:`repro.tee.device.Device.public_identity`
    output.  In the PQ format every signature (classical and PQ, on both
    report halves) must verify; a report claiming to be PQ while the
    verifier knows no device ML-DSA key fails closed.

    Measured boot is "measure and report", not "refuse to boot": the
    bootrom will happily certify a *modified* SM (it just measures
    differently), so a verifier that cares about SM integrity MUST pass
    ``expected_sm_hash`` — the signature chain alone only proves the
    report comes from *some* SM on the genuine device.
    """
    if expected_enclave_hash is not None and \
            report.enclave_hash != expected_enclave_hash:
        return False
    if expected_sm_hash is not None and \
            report.sm_hash != expected_sm_hash:
        return False
    if not ed25519.verify(device_identity["ed25519"], report.sm_payload(),
                          report.sm_signature):
        return False
    if not ed25519.verify(report.sm_ed25519_public,
                          report.enclave_payload(),
                          report.enclave_signature):
        return False
    if report.post_quantum:
        device_pq = device_identity.get("mldsa")
        if device_pq is None:
            return False
        # Cached verifier contexts: the NTT-domain key expansion for
        # the device and SM keys is paid once per key, not per report.
        scheme = MLDSA(params)
        try:
            device_verifier = scheme.verifier(device_pq)
        except ValueError:
            return False
        if not device_verifier.verify(report.sm_payload(),
                                      report.sm_pq_signature):
            return False
        try:
            sm_verifier = scheme.verifier(report.sm_mldsa_public)
        except ValueError:
            return False
        if not sm_verifier.verify(report.enclave_payload(),
                                  report.enclave_pq_signature):
            return False
    return True


def verify_reports(reports, device_identity,
                   expected_enclave_hash: bytes = None,
                   expected_sm_hash: bytes = None,
                   params: MLDSAParams = ML_DSA_44) -> list:
    """Batch :func:`verify_report`: entry *i* equals
    ``verify_report(reports[i], ...)``.

    ``device_identity`` is either ONE identity dict applied to every
    report, or a sequence of identity dicts pairing up with ``reports``
    — the attestation-service shape, where one flushed micro-batch
    mixes reports from many devices.

    The classical signatures of every candidate report (two per report)
    go through one Ed25519 random-linear-combination batch check, and
    the ML-DSA signatures batch through ``verify_many`` grouped by
    public key (device keys and SM keys each group independently).
    Results are boolean-identical to the scalar loop; per-scheme PERF
    counters can differ because the batch path does not short-circuit
    after a failed earlier check.
    """
    reports = list(reports)
    if isinstance(device_identity, dict):
        identities = [device_identity] * len(reports)
    else:
        identities = list(device_identity)
        if len(identities) != len(reports):
            raise ValueError("one device identity per report required, "
                             f"got {len(identities)} identities for "
                             f"{len(reports)} reports")
    results = [False] * len(reports)
    candidates = []
    for i, report in enumerate(reports):
        if expected_enclave_hash is not None and \
                report.enclave_hash != expected_enclave_hash:
            continue
        if expected_sm_hash is not None and \
                report.sm_hash != expected_sm_hash:
            continue
        if report.post_quantum and identities[i].get("mldsa") is None:
            continue
        candidates.append(i)
    if not candidates:
        return results
    items = []
    for i in candidates:
        report = reports[i]
        items.append((identities[i]["ed25519"], report.sm_payload(),
                      report.sm_signature))
        items.append((report.sm_ed25519_public,
                      report.enclave_payload(),
                      report.enclave_signature))
    classical_ok = ed25519.verify_batch(items)
    candidates = [i for j, i in enumerate(candidates)
                  if classical_ok[2 * j] and classical_ok[2 * j + 1]]
    pq = [i for i in candidates if reports[i].post_quantum]
    for i in candidates:
        if not reports[i].post_quantum:
            results[i] = True
    if pq:
        scheme = MLDSA(params)
        device_groups = {}
        for i in pq:
            device_groups.setdefault(
                bytes(identities[i]["mldsa"]), []).append(i)
        passed = []
        for device_public, indices in device_groups.items():
            device_ok = scheme.verify_many(
                device_public,
                [reports[i].sm_payload() for i in indices],
                [reports[i].sm_pq_signature for i in indices])
            passed.extend(i for i, ok in zip(indices, device_ok) if ok)
        groups = {}
        for i in sorted(passed):
            groups.setdefault(reports[i].sm_mldsa_public, []).append(i)
        for sm_public, indices in groups.items():
            enclave_ok = scheme.verify_many(
                sm_public,
                [reports[i].enclave_payload() for i in indices],
                [reports[i].enclave_pq_signature for i in indices])
            for i, ok in zip(indices, enclave_ok):
                results[i] = ok
    return results

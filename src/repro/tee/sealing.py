"""Data sealing: encryption bound to (device, SM, enclave identity).

Paper Section III-B: "data is encrypted in such a way so that only a
specific enclave, identified by its hash value, running on a specific
device and a specific Keystone implementation can decrypt the data" —
used to e.g. ship model weights that only a genuine device can open.

In the PQ configuration the sealing key is derived from *both* the
Ed25519-derived and the ML-DSA-derived SM secrets, as the paper
specifies, so compromising either hierarchy alone does not expose
sealed data.
"""

from __future__ import annotations

from ..crypto.aes import open_aead, seal_aead
from ..crypto.kdf import derive_key

SEALING_KEY_LEN = 32


def derive_sealing_key(sm_classical_secret: bytes, enclave_hash: bytes,
                       sm_pq_secret: bytes = b"") -> bytes:
    """The per-enclave sealing key.

    Any change to the SM secrets (i.e. a different device or a modified
    SM) or to the enclave hash yields an unrelated key.
    """
    if not sm_classical_secret:
        raise ValueError("SM classical secret required")
    root = sm_classical_secret + sm_pq_secret
    return derive_key(root, "data-sealing", enclave_hash, SEALING_KEY_LEN)


def seal(sealing_key: bytes, nonce: bytes, plaintext: bytes,
         associated_data: bytes = b"") -> bytes:
    """AEAD-seal ``plaintext`` under a key from :func:`derive_sealing_key`."""
    return seal_aead(sealing_key, nonce, plaintext, associated_data)


def unseal(sealing_key: bytes, nonce: bytes, sealed: bytes,
           associated_data: bytes = b"") -> bytes:
    """Open a sealed blob; raises ``ValueError`` if anything was wrong
    (wrong enclave, wrong device, tampered ciphertext...)."""
    return open_aead(sealing_key, nonce, sealed, associated_data)

"""The Keystone-style security monitor (SM).

The SM runs in M-mode, owns the PMP, and implements the TEE:

* it walls off its own memory from the OS and from enclaves,
* it creates enclaves in PMP-isolated DRAM regions and context-switches
  the PMP when entering/leaving them,
* it signs attestation reports with keys derived at boot (Section III-B),
* it derives per-enclave sealing keys.

The paper's stack-size finding is modelled mechanically: every signing
operation charges its stack frame against the SM's per-core stack
(default 8 KB, no guard page).  ML-DSA's working set silently corrupts
that stack — reproduce with ``KeystoneConfig(stack_bytes=8 * 1024)`` —
until it is raised to 128 KB as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import ed25519
from ..crypto.mldsa import ML_DSA_44, MLDSA, MLDSAParams
from ..faults.injector import FAULTS
from ..faults.models import STACK_SMASH
from ..obs import TELEMETRY
from ..obs.audit import AUDIT
from ..obs.perf import PERF
from ..soc.cpu import Hart, StackModel
from ..soc.memory import PhysicalMemory, Region
from ..soc.pmp import PmpEntry, PrivilegeMode
from .attestation import AttestationReport
from .bootrom import BootReport
from .enclave import Enclave, EnclaveState
from .sealing import derive_sealing_key

#: Measured stack demand of an Ed25519 signing call (C implementation).
ED25519_SIGNING_STACK = 4 * 1024

DEFAULT_SM_STACK = 8 * 1024          # Keystone default (Table III)
PQ_SM_STACK = 128 * 1024             # the paper's stopgap fix

SM_REGION_SIZE = 2 * 1024 * 1024     # SM code + data carve-out
ENCLAVE_REGION_SIZE = 1024 * 1024    # per-enclave DRAM slice

# PMP entry allocation plan.
_PMP_SM = 0                # SM self-protection (highest priority)
_PMP_ENCLAVE_BASE = 1      # one entry per live enclave
_PMP_ENCLAVE_COUNT = 8
_PMP_ALL_DRAM = 15         # lowest priority: OS default access


@dataclass
class KeystoneConfig:
    """Build-time configuration of the SM (the Table III knobs)."""

    post_quantum: bool = False
    stack_bytes: int = DEFAULT_SM_STACK
    mldsa_params: MLDSAParams = ML_DSA_44


class SecurityMonitor:
    """The M-mode trusted computing base."""

    def __init__(self, hart, memory: PhysicalMemory,
                 boot_report: BootReport, dram: Region,
                 config: KeystoneConfig = None):
        # ``hart`` may be a single Hart or a list (the paper's SoC has
        # four Rocket cores); PMP is a per-hart structure, so the SM
        # must program every core's registers coherently.
        self.harts = list(hart) if isinstance(hart, (list, tuple)) \
            else [hart]
        self.hart = self.harts[0]
        self.memory = memory
        self.boot_report = boot_report
        self.config = config or KeystoneConfig()
        if self.config.post_quantum and not boot_report.sm_mldsa_seed:
            raise ValueError("PQ-enabled SM requires a PQ boot report")
        # Per-core SM stacks: no guard page, like the deployment the
        # paper debugged — overflow corrupts silently.  (Table III:
        # "SM stack size per core".)
        self.stacks = {h.hart_id: StackModel(self.config.stack_bytes,
                                             guard=False)
                       for h in self.harts}
        self.stack = self.stacks[self.hart.hart_id]
        self._mldsa = MLDSA(self.config.mldsa_params)
        self._sm_mldsa_secret = None   # expanded lazily from the seed
        # Attestation-key signing contexts, built lazily on the first
        # report and reused for every subsequent one: the Ed25519 comb
        # precomputation and the ML-DSA NTT-domain key expansion are
        # paid once per SM instead of once per attestation.
        self._sm_ed_signer = None
        self._sm_mldsa_signer = None
        self._dram = dram
        self._next_enclave_base = dram.base + SM_REGION_SIZE
        self._next_enclave_id = 1
        self.enclaves = {}
        self._running = None
        self._install_base_pmp()

    # -- PMP management -------------------------------------------------

    def _install_base_pmp(self) -> None:
        """SM self-protection + OS default access to the rest of DRAM,
        programmed identically on every core."""
        for hart in self.harts:
            pmp = hart.pmp
            pmp.set_napot(_PMP_SM, self._dram.base, SM_REGION_SIZE)
            # Lowest-priority catch-all: the OS may use all of DRAM;
            # the deny entries above it carve out the SM and the
            # enclaves.
            pmp.set_napot(_PMP_ALL_DRAM, self._dram.base,
                          self._dram.size, readable=True,
                          writable=True, executable=True)

    def _enclave_pmp_slot(self, enclave: Enclave) -> int:
        index = _PMP_ENCLAVE_BASE + (enclave.enclave_id - 1) \
            % _PMP_ENCLAVE_COUNT
        return index

    def _enter_os_context(self) -> None:
        """OS view on every core: live enclave memory is blacked out."""
        for hart in self.harts:
            for enclave in self.enclaves.values():
                if enclave.state is EnclaveState.DESTROYED:
                    continue
                hart.pmp.set_napot(self._enclave_pmp_slot(enclave),
                                   enclave.region.base,
                                   enclave.region.size)
        self._running = None

    def _enter_enclave_context(self, enclave: Enclave,
                               hart: Hart) -> None:
        """Enclave view on the executing core only: its own region is
        RWX, everything else in DRAM (other enclaves, the OS, the SM)
        stays blocked.  Every *other* core keeps the OS view, where
        this enclave's memory remains blacked out."""
        if PERF.enabled:
            PERF.inc("tee.sm.enclave_switches")
        hart.pmp.set_napot(self._enclave_pmp_slot(enclave),
                           enclave.region.base, enclave.region.size,
                           readable=True, writable=True,
                           executable=True)
        # Swap the catch-all from allow (OS) to deny (enclave): an
        # enclave must not see OS memory.
        hart.pmp.set_entry(_PMP_ALL_DRAM, PmpEntry())
        hart.pmp.set_napot(_PMP_ALL_DRAM - 1, self._dram.base,
                           self._dram.size)
        self._running = enclave

    def _leave_enclave_context(self, enclave: Enclave,
                               hart: Hart) -> None:
        hart.pmp.set_napot(self._enclave_pmp_slot(enclave),
                           enclave.region.base, enclave.region.size)
        hart.pmp.clear_entry(_PMP_ALL_DRAM - 1)
        hart.pmp.set_napot(_PMP_ALL_DRAM, self._dram.base,
                           self._dram.size, readable=True,
                           writable=True, executable=True)
        self._running = None

    # -- enclave lifecycle ----------------------------------------------

    def create_enclave(self, binary: bytes,
                       runtime_data: bytes = b"") -> Enclave:
        """Allocate, load and measure a new enclave."""
        if len(binary) > ENCLAVE_REGION_SIZE:
            raise ValueError("enclave binary exceeds region size")
        if len(self.enclaves) >= _PMP_ENCLAVE_COUNT:
            raise RuntimeError("out of PMP entries for enclaves")
        base = self._next_enclave_base
        if base + ENCLAVE_REGION_SIZE > self._dram.end:
            raise RuntimeError("out of enclave DRAM")
        self._next_enclave_base += ENCLAVE_REGION_SIZE
        region = Region(f"enclave{self._next_enclave_id}", base,
                        ENCLAVE_REGION_SIZE)
        enclave = Enclave(self._next_enclave_id, binary, region,
                          runtime_data)
        self._next_enclave_id += 1
        self.memory.write(base, binary)
        self.enclaves[enclave.enclave_id] = enclave
        self._enter_os_context()
        return enclave

    def run_enclave(self, enclave: Enclave, workload, *args,
                    hart_id: int = None):
        """Execute ``workload(hart, *args)`` inside the enclave context.

        The chosen hart drops to U-mode with the enclave PMP view
        installed (every other core keeps the blackout view); any
        attempt by the workload to touch memory outside the enclave
        raises an ``AccessFault``, exactly as the hardware would.
        """
        self._require_live(enclave)
        hart = self.hart if hart_id is None else next(
            h for h in self.harts if h.hart_id == hart_id)
        enclave.mark_running()
        self._enter_enclave_context(enclave, hart)
        previous_mode = hart.mode
        hart.drop_to(PrivilegeMode.USER)
        try:
            return workload(hart, *args)
        finally:
            hart.trap("enclave-exit")
            hart.mode = previous_mode
            self._leave_enclave_context(enclave, hart)
            enclave.mark_stopped()

    def destroy_enclave(self, enclave: Enclave) -> None:
        """Wipe the enclave's memory and release its PMP entry."""
        self._require_live(enclave)
        self.memory.write(enclave.region.base,
                          bytes(enclave.region.size))
        enclave.mark_destroyed()
        for hart in self.harts:
            hart.pmp.clear_entry(self._enclave_pmp_slot(enclave))
        del self.enclaves[enclave.enclave_id]

    def _require_live(self, enclave: Enclave) -> None:
        if enclave.enclave_id not in self.enclaves:
            raise RuntimeError(f"unknown enclave {enclave.enclave_id}")

    # -- attestation -----------------------------------------------------

    def _sign_with_stack(self, signer, frame_bytes: int,
                         payload: bytes) -> bytes:
        """Run a signing routine charged against the SM stack.

        If the frame overflows the (guard-less) SM stack, the stack
        corrupts silently and the produced signature is garbage — the
        exact failure mode the paper hit with ML-DSA on the default
        8 KB stack.  An injected stack-smash fault inflates the frame
        by ``magnitude`` bytes (a glitched allocation), reproducing
        the same corruption on demand; an injected bit flip at
        ``tee.sm.sign`` models a glitched signing engine.
        """
        if PERF.enabled:
            PERF.inc("tee.sm.signs")
        if FAULTS.enabled:
            spec = FAULTS.fire("tee.sm.stack")
            if spec is not None and spec.model == STACK_SMASH:
                frame_bytes += max(1, spec.magnitude)
        self.stack.push_frame(frame_bytes)
        try:
            signature = signer(payload)
            if self.stack.corrupted:
                signature = bytes(b ^ 0xA5 for b in signature)
            if FAULTS.enabled:
                signature = FAULTS.corrupt("tee.sm.sign", signature)
            return signature
        finally:
            self.stack.pop_frame()

    def attest_enclave(self, enclave: Enclave,
                       report_data: bytes = b"") -> AttestationReport:
        """Produce the (default or PQ) attestation report for an enclave."""
        if PERF.enabled:
            PERF.inc("tee.sm.attestations")
        if AUDIT.enabled:
            AUDIT.emit("tee.sm", "attest-sign",
                       enclave=int(enclave.enclave_id),
                       post_quantum=self.config.post_quantum)
        with TELEMETRY.span("tee.attest",
                            enclave=enclave.enclave_id,
                            post_quantum=self.config.post_quantum):
            return self._attest_enclave(enclave, report_data)

    def _attest_enclave(self, enclave: Enclave,
                        report_data: bytes) -> AttestationReport:
        self._require_live(enclave)
        report = AttestationReport(
            enclave_hash=enclave.measurement,
            enclave_data=report_data,
            enclave_signature=b"",
            sm_hash=self.boot_report.sm_measurement,
            sm_ed25519_public=self.boot_report.sm_ed25519_public,
            sm_signature=self.boot_report.sm_cert_classical,
        )
        if self.config.post_quantum:
            report.sm_mldsa_public = self.boot_report.sm_mldsa_public
            report.sm_pq_signature = self.boot_report.sm_cert_pq
        payload = report.enclave_payload()
        if self._sm_ed_signer is None:
            self._sm_ed_signer = ed25519.SigningKey(
                self.boot_report.sm_ed25519_seed)
        with TELEMETRY.span("tee.attest.sign", scheme="ed25519"), \
                TELEMETRY.timer("tee.attest.sign_seconds"):
            report.enclave_signature = self._sign_with_stack(
                self._sm_ed_signer.sign, ED25519_SIGNING_STACK, payload)
        if self.config.post_quantum:
            if self._sm_mldsa_signer is None:
                _, self._sm_mldsa_secret = self._mldsa.key_gen(
                    self.boot_report.sm_mldsa_seed)
                self._sm_mldsa_signer = self._mldsa.signer(
                    self._sm_mldsa_secret)
            with TELEMETRY.span("tee.attest.sign", scheme="mldsa"), \
                    TELEMETRY.timer("tee.attest.sign_seconds"):
                report.enclave_pq_signature = self._sign_with_stack(
                    self._sm_mldsa_signer.sign,
                    self._mldsa.signing_stack_bytes, payload)
        return report

    def attest_enclaves(self, enclaves, report_data=None) -> list:
        """Attest a batch of enclaves; entry *i* equals
        ``attest_enclave(enclaves[i], report_data[i])`` byte for byte.

        In the PQ configuration the ML-DSA signatures batch through the
        signer's ``sign_many`` rejection-loop kernel under a single SM
        stack frame (the per-call frames never coexist and are all the
        same size, so the corruption outcome is identical).  The scalar
        path is used whenever fault injection is armed — per-signature
        fault hooks must see every sign — or when batching cannot help
        (classical-only configuration, batches of one).
        """
        enclaves = list(enclaves)
        if report_data is None:
            data_list = [b""] * len(enclaves)
        elif isinstance(report_data, (bytes, bytearray)):
            data_list = [bytes(report_data)] * len(enclaves)
        else:
            data_list = [bytes(d) for d in report_data]
        if len(data_list) != len(enclaves):
            raise ValueError("report_data length mismatch")
        if FAULTS.enabled or not self.config.post_quantum \
                or len(enclaves) < 2:
            return [self.attest_enclave(e, d)
                    for e, d in zip(enclaves, data_list)]
        for enclave in enclaves:
            self._require_live(enclave)
        if PERF.enabled:
            PERF.inc("tee.sm.attestations", len(enclaves))
        if AUDIT.enabled:
            for enclave in enclaves:
                AUDIT.emit("tee.sm", "attest-sign",
                           enclave=int(enclave.enclave_id),
                           post_quantum=True)
        with TELEMETRY.span("tee.attest.batch", batch=len(enclaves),
                            post_quantum=True):
            reports = []
            payloads = []
            for enclave, data in zip(enclaves, data_list):
                report = AttestationReport(
                    enclave_hash=enclave.measurement,
                    enclave_data=data,
                    enclave_signature=b"",
                    sm_hash=self.boot_report.sm_measurement,
                    sm_ed25519_public=self.boot_report.sm_ed25519_public,
                    sm_signature=self.boot_report.sm_cert_classical,
                    sm_mldsa_public=self.boot_report.sm_mldsa_public,
                    sm_pq_signature=self.boot_report.sm_cert_pq,
                )
                reports.append(report)
                payloads.append(report.enclave_payload())
            if self._sm_ed_signer is None:
                self._sm_ed_signer = ed25519.SigningKey(
                    self.boot_report.sm_ed25519_seed)
            with TELEMETRY.span("tee.attest.sign", scheme="ed25519"), \
                    TELEMETRY.timer("tee.attest.sign_seconds"):
                for report, payload in zip(reports, payloads):
                    report.enclave_signature = self._sign_with_stack(
                        self._sm_ed_signer.sign, ED25519_SIGNING_STACK,
                        payload)
            if self._sm_mldsa_signer is None:
                _, self._sm_mldsa_secret = self._mldsa.key_gen(
                    self.boot_report.sm_mldsa_seed)
                self._sm_mldsa_signer = self._mldsa.signer(
                    self._sm_mldsa_secret)
            with TELEMETRY.span("tee.attest.sign", scheme="mldsa",
                                batch=len(payloads)), \
                    TELEMETRY.timer("tee.attest.sign_seconds"):
                if PERF.enabled:
                    PERF.inc("tee.sm.signs", len(payloads))
                self.stack.push_frame(self._mldsa.signing_stack_bytes)
                try:
                    signatures = self._sm_mldsa_signer.sign_many(
                        payloads)
                    if self.stack.corrupted:
                        signatures = [bytes(b ^ 0xA5 for b in s)
                                      for s in signatures]
                finally:
                    self.stack.pop_frame()
            for report, signature in zip(reports, signatures):
                report.enclave_pq_signature = signature
        return reports

    def attestation_requests(self, enclaves, report_data=None) -> list:
        """Wire-format attestation submissions for a batch of enclaves.

        The encoded-bytes shape a fleet device ships to an
        :class:`~repro.tee.service.AttestationService`: entry *i* is
        ``attest_enclaves(...)[i].encode()``.
        """
        return [report.encode()
                for report in self.attest_enclaves(enclaves,
                                                   report_data)]

    # -- sealing ----------------------------------------------------------

    def sealing_key(self, enclave: Enclave) -> bytes:
        """The sealing key for this (device, SM, enclave) triple.

        In the PQ configuration it mixes both SM secret hierarchies, per
        the paper: "derived from both the Ed25519 and the ML-DSA SM
        secret keys."
        """
        self._require_live(enclave)
        return derive_sealing_key(
            self.boot_report.sm_ed25519_seed, enclave.measurement,
            sm_pq_secret=self.boot_report.sm_mldsa_seed)

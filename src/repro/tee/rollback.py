"""Rollback-protected sealing with monotonic counters.

Sealing alone does not stop an attacker with storage access from
re-installing an *old* sealed blob (e.g. model weights with a known
vulnerability, or a downgraded firmware image) — a practical concern
for CONVOLVE's in-field update story (Section III-E mentions "software
updates at the application or system level").  The standard fix is a
hardware monotonic counter in the root of trust:

* every sealed blob carries a version bound into the AEAD associated
  data,
* the device's non-volatile counter records the minimum acceptable
  version,
* unsealing anything older than the counter fails, and committing an
  update advances the counter irreversibly.
"""

from __future__ import annotations

from .sealing import seal, unseal


class MonotonicCounter:
    """A non-volatile hardware counter: read and increase-only."""

    def __init__(self, initial: int = 0):
        if initial < 0:
            raise ValueError("counter cannot start negative")
        self._value = initial

    @property
    def value(self) -> int:
        return self._value

    def advance_to(self, value: int) -> None:
        """Raise the counter; lowering it is physically impossible."""
        if value < self._value:
            raise ValueError(
                f"monotonic counter cannot move backwards "
                f"({self._value} -> {value})")
        self._value = value


class RollbackError(Exception):
    """A sealed blob older than the device's counter was presented."""


class VersionedSealer:
    """Sealing with version binding + monotonic-counter enforcement."""

    def __init__(self, sealing_key: bytes, counter: MonotonicCounter):
        self.sealing_key = sealing_key
        self.counter = counter

    @staticmethod
    def _associated_data(version: int, label: bytes) -> bytes:
        return b"versioned-seal-v1:" + version.to_bytes(8, "big") + label

    def seal(self, version: int, payload: bytes,
             label: bytes = b"") -> bytes:
        """Seal ``payload`` as ``version``; layout ``version || blob``."""
        if version < 0:
            raise ValueError("version must be non-negative")
        nonce = version.to_bytes(12, "big")
        blob = seal(self.sealing_key, nonce, payload,
                    self._associated_data(version, label))
        return version.to_bytes(8, "big") + blob

    def unseal(self, sealed: bytes, label: bytes = b"") -> bytes:
        """Open a versioned blob, enforcing the monotonic counter.

        Raises :class:`RollbackError` for stale versions and
        ``ValueError`` for tampered blobs (including a forged version
        prefix, which breaks the AEAD binding).
        """
        if len(sealed) < 8:
            raise ValueError("versioned blob too short")
        version = int.from_bytes(sealed[:8], "big")
        if version < self.counter.value:
            raise RollbackError(
                f"blob version {version} older than counter "
                f"{self.counter.value}")
        payload = unseal(self.sealing_key, version.to_bytes(12, "big"),
                         sealed[8:],
                         self._associated_data(version, label))
        return payload

    def commit(self, version: int) -> None:
        """After installing ``version``, burn it into the counter so
        every older blob becomes permanently unusable."""
        self.counter.advance_to(version)

"""Attestation-as-a-service: a batching verification frontend.

The paper's Section III-B attestation flow is device-side; the ROADMAP
north star is the *other* end of that link — a verifier serving
millions of edge devices.  This module is that serving tier: an
:class:`AttestationService` that accepts attestation-report
submissions from a registered device fleet, coalesces them in a
deterministic micro-batching queue, and drains whole batches through
the batch crypto kernels (grouped ML-DSA ``verify_many``, Ed25519 RLC
``verify_batch`` with the Pippenger multi-scalar path above its
crossover) plus an enclave-session cache.

Determinism is the design axis, same as the rest of the runtime:

* **Admission** — requests get a monotonically increasing sequence
  number; batches are formed purely from admission order, a maximum
  batch size, and a simulated deadline clock.  No wall clock, no
  thread scheduling: the same submissions always form the same
  batches.
* **Drain** — sealed batches process independently (optionally across
  ``run_sharded`` fork workers) against the session cache *frozen at
  drain start*; new cache entries are collected and applied by the
  parent in shard order after the drain.  Workers fork with the same
  frozen cache the serial loop reads, so the hit/miss pattern — and
  with it every result byte, audit event and PERF counter — is
  identical for any ``REPRO_JOBS``.
* **Session cache** — content-addressed like the PR 5 boot memo: the
  key covers the device identity, the enclave measurement, the SM
  image hash (both via the full report bytes) and the verification
  policy, and the value holds the verdict plus the deterministic
  session token.  Entries built by a single-request flush also record
  the PERF delta of the verification and replay it on every hit
  (bootrom semantics: counter totals independent of cache warmth).
  Entries built by a multi-lane batch deliberately store no delta —
  the combined-chain Ed25519 counters are a property of the *batch*,
  not attributable to one lane — so their hits leave only the
  ``tee.service.*`` bookkeeping counters.  The cache is bypassed
  entirely while FAULTS are armed (injections must reach the real
  verification) or a telemetry subscriber is active (timed spans
  cannot be replayed); bypassed verdicts are byte-identical because
  the token is content-derived, not cache-derived.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..crypto.keccak import sha3_256, sha3_512
from ..crypto.mldsa import ML_DSA_44, MLDSAParams
from ..faults.injector import FAULTS
from ..obs import TELEMETRY
from ..obs.audit import AUDIT
from ..obs.perf import PERF
from ..runtime.executor import run_sharded
from ..runtime.memo import Memo
from .attestation import (DEFAULT_REPORT_LEN, AttestationReport,
                          pq_report_len, verify_reports)

_SESSION_KEY_DOMAIN = b"tee-service-session-v1"
_SESSION_TOKEN_DOMAIN = b"tee-service-token-v1"

#: Offset of the 64-byte SM measurement inside an encoded report
#: (enclave hash, data length, padded data, enclave signature).
_SM_HASH_OFFSET = 64 + 8 + 1024 + 64


@dataclass(frozen=True)
class ServiceRequest:
    """One queued verification request (plain data, picklable)."""

    seq: int
    device_id: str
    report: bytes
    expected_enclave_hash: bytes = None
    arrival: int = 0


def _drain_worker(service, batch):
    """Module-level shard entry for :func:`run_sharded` (fork state)."""
    return service._process_batch(batch)


class AttestationService:
    """Deterministic micro-batching frontend over batch verification.

    ``devices`` maps a fleet device id to its
    :meth:`~repro.tee.device.Device.public_identity` dict; requests
    naming an unregistered device are rejected without touching any
    crypto.  ``expected_sm_hashes`` optionally pins the SM measurement
    per device (the :func:`~repro.tee.attestation.verify_report`
    docstring explains why a careful verifier should).

    Queue semantics: :meth:`submit` admits one request; a batch seals
    when ``max_batch`` requests are pending, when the oldest pending
    request is ``deadline_ticks`` old on the simulated clock
    (:meth:`tick`), or when :meth:`drain` flushes the tail.  Batches
    then verify via :func:`verify_reports` — one Ed25519 RLC equation
    and per-key-grouped ML-DSA lanes per batch — with per-request
    results returned in admission order.
    """

    def __init__(self, devices=None, *, max_batch: int = 64,
                 deadline_ticks: int = 4, session_cache: bool = True,
                 cache_size: int = 4096,
                 params: MLDSAParams = ML_DSA_44):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if deadline_ticks < 1:
            raise ValueError("deadline_ticks must be at least 1")
        self.max_batch = max_batch
        self.deadline_ticks = deadline_ticks
        self.params = params
        self.session_cache_enabled = bool(session_cache)
        self._devices = {}
        self._expected_sm = {}
        self._cache = Memo(maxsize=cache_size)
        self._cache_lock = threading.Lock()
        self._clock = 0
        self._next_seq = 0
        self._pending = []
        self._sealed = []
        for device_id, identity in (devices or {}).items():
            self.register_device(device_id, identity)

    # -- fleet registry ----------------------------------------------------

    def register_device(self, device_id: str, identity: dict,
                        expected_sm_hash: bytes = None) -> None:
        """Register (or update) a fleet device's public identity."""
        if "ed25519" not in identity:
            raise ValueError("device identity needs an ed25519 key")
        self._devices[str(device_id)] = {
            "ed25519": bytes(identity["ed25519"]),
            "mldsa": (bytes(identity["mldsa"])
                      if identity.get("mldsa") else None),
        }
        if expected_sm_hash is not None:
            self._expected_sm[str(device_id)] = bytes(expected_sm_hash)

    # -- admission ---------------------------------------------------------

    def submit(self, device_id: str, report: bytes,
               expected_enclave_hash: bytes = None) -> int:
        """Admit one request; returns its sequence number.

        Admission order is the arrival order of ``submit`` calls —
        callers that need a reproducible interleaving (the bench's
        seeded client mix) order their submissions deterministically
        and the queue preserves that order exactly.
        """
        seq = self._next_seq
        self._next_seq += 1
        if PERF.enabled:
            PERF.inc("tee.service.requests")
        self._pending.append(ServiceRequest(
            seq=seq, device_id=str(device_id), report=bytes(report),
            expected_enclave_hash=(bytes(expected_enclave_hash)
                                   if expected_enclave_hash is not None
                                   else None),
            arrival=self._clock))
        if len(self._pending) >= self.max_batch:
            self._seal("size")
        return seq

    def tick(self, ticks: int = 1) -> None:
        """Advance the simulated deadline clock; seals the pending
        batch when its oldest request has waited ``deadline_ticks``."""
        self._clock += int(ticks)
        if self._pending and \
                self._clock - self._pending[0].arrival >= \
                self.deadline_ticks:
            self._seal("deadline")

    def _seal(self, cause: str) -> None:
        if not self._pending:
            return
        if PERF.enabled:
            PERF.inc("tee.service.batches")
            PERF.inc(f"tee.service.flush_{cause}")
        self._sealed.append(self._pending)
        self._pending = []

    def pending_count(self) -> int:
        return len(self._pending)

    def sealed_count(self) -> int:
        return len(self._sealed)

    # -- session cache -----------------------------------------------------

    def _identity_for(self, device_id: str):
        return self._devices.get(device_id)

    def _session_key(self, request: ServiceRequest,
                     identity: dict) -> bytes:
        """Content address of one verification: device identity keys,
        policy, and the full report bytes (which carry the enclave
        measurement and the SM image hash)."""
        parts = [
            request.device_id.encode(),
            identity["ed25519"],
            identity["mldsa"] or b"",
            request.expected_enclave_hash or b"",
            self._expected_sm.get(request.device_id) or b"",
            request.report,
        ]
        blob = b"".join(len(p).to_bytes(4, "big") + p for p in parts)
        return sha3_512(_SESSION_KEY_DOMAIN + blob)

    @staticmethod
    def _session_token(key: bytes) -> bytes:
        """The verified-session token: deterministic in the content
        address, so cached, fresh and bypassed verifications of the
        same request mint the same token."""
        return sha3_256(_SESSION_TOKEN_DOMAIN + key)

    def cache_stats(self) -> dict:
        """Hit/miss/eviction statistics of the session cache (service-
        local diagnostics; deliberately not PERF counters)."""
        return self._cache.stats()

    # -- drain -------------------------------------------------------------

    def drain(self, jobs: int = None) -> list:
        """Process every sealed batch (sealing the pending tail first)
        and return all results in admission order.

        Batches fan out across ``run_sharded`` workers when ``jobs``
        (or ``REPRO_JOBS``) asks for it.  All batches — serial or
        parallel — read the session cache as frozen at drain start;
        entries minted by the drain are merged afterwards in shard
        order with first-writer-wins dedup.  That freeze is what makes
        the hit/miss pattern (and therefore results, audit events and
        counters) byte-identical for any worker count: a forked worker
        could never observe a sibling batch's insertions anyway, so
        the serial loop must not either.
        """
        self._seal("drain")
        batches, self._sealed = self._sealed, []
        if not batches:
            return []
        outs = run_sharded(_drain_worker, self, batches, jobs=jobs)
        results = []
        merged = {}
        for batch_results, entries in outs:
            results.extend(batch_results)
            for key, entry in entries:
                if key not in merged:
                    merged[key] = entry
        if self.session_cache_enabled:
            with self._cache_lock:
                for key, entry in merged.items():
                    # __contains__ skips the hit/miss accounting: the
                    # merge is bookkeeping, not a cache access.
                    if key not in self._cache:
                        self._cache.store(key, entry)
        results.sort(key=lambda r: r["seq"])
        return results

    def process(self, requests, jobs: int = None) -> list:
        """Submit ``(device_id, report_bytes)`` pairs (or 3-tuples with
        an expected enclave hash) and drain; results in input order."""
        for request in requests:
            self.submit(*request)
        return self.drain(jobs=jobs)

    # -- batch verification (runs inside drain workers) --------------------

    def _process_batch(self, batch):
        """Verify one sealed batch against the frozen session cache.

        Returns ``(results, new_entries)`` — both plain data — where
        ``new_entries`` carries the cache inserts for the parent to
        apply after the drain.  Audit events and PERF ticks emitted
        here are captured and merged in shard order by the runtime, so
        the serial and parallel streams are identical.
        """
        bypass = (not self.session_cache_enabled or FAULTS.enabled
                  or TELEMETRY.enabled)
        with TELEMETRY.span("tee.service.batch", batch=len(batch)):
            lanes = []          # (request, identity, key) to verify
            hits = []           # (request, key, entry)
            results = {}        # seq -> result dict
            reasons = {}        # seq -> rejection reason (or None)
            for request in batch:
                identity = self._identity_for(request.device_id)
                if identity is None:
                    results[request.seq] = self._result(request, False,
                                                        b"")
                    reasons[request.seq] = "unknown-device"
                    continue
                if not self._structurally_plausible(request):
                    results[request.seq] = self._result(request, False,
                                                        b"")
                    reasons[request.seq] = "policy-mismatch"
                    continue
                key = self._session_key(request, identity)
                if not bypass:
                    with self._cache_lock:
                        found, entry = self._cache.lookup(key)
                    if found:
                        hits.append((request, key, entry))
                        continue
                lanes.append((request, identity, key))
            # Hit/miss tallies live in the Memo's own stats
            # (:meth:`cache_stats`), deliberately NOT in PERF: a cold
            # and a warm run of the same workload must produce the same
            # counter file (the boot-memo contract), which no
            # hit-or-miss counter can satisfy.
            for request, key, entry in hits:
                ok, token, reason, delta = entry
                if delta is not None and PERF.enabled:
                    PERF.merge(delta)
                results[request.seq] = self._result(request, ok, token)
                reasons[request.seq] = reason
            new_entries = []
            if lanes:
                new_entries = self._verify_lanes(lanes, results,
                                                 reasons, bypass)
            verified = sum(1 for r in results.values() if r["ok"])
            if AUDIT.enabled:
                AUDIT.emit("tee.service", "batch-verified",
                           batch=len(batch), verified=verified,
                           rejected=len(batch) - verified)
                for request in batch:
                    reason = reasons.get(request.seq)
                    if reason is not None:
                        AUDIT.emit("tee.service", "request-rejected",
                                   severity="warning",
                                   seq=int(request.seq),
                                   device=request.device_id,
                                   reason=reason)
            if PERF.enabled:
                # Zero-amount ticks are skipped: a worker's capture
                # delta drops zero entries, so minting the key only on
                # the serial path would break serial/parallel parity.
                if verified:
                    PERF.inc("tee.service.verified", verified)
                if len(batch) - verified:
                    PERF.inc("tee.service.rejected",
                             len(batch) - verified)
            ordered = [results[request.seq] for request in batch]
            return ordered, new_entries

    def _verify_lanes(self, lanes, results, reasons, bypass) -> list:
        """Run the fresh lanes through the batch verifier; returns the
        session-cache entries to insert (empty when bypassed)."""
        reports = []
        identities = []
        parsed = []
        for request, identity, key in lanes:
            try:
                report = AttestationReport.decode(request.report,
                                                  self.params)
            except ValueError:
                results[request.seq] = self._result(request, False, b"")
                reasons[request.seq] = "malformed-report"
                continue
            reports.append(report)
            identities.append(identity)
            parsed.append((request, key))
        if not parsed:
            return []
        measure = PERF.enabled and not bypass and len(parsed) == 1
        if measure:
            before = PERF.snapshot()
        verdicts = verify_reports(reports, identities,
                                  params=self.params)
        delta = PERF.delta_since(before) if measure else None
        new_entries = []
        for (request, key), ok in zip(parsed, verdicts):
            token = self._session_token(key) if ok else b""
            reason = None if ok else "verification-failed"
            results[request.seq] = self._result(request, ok, token)
            reasons[request.seq] = reason
            if not bypass:
                new_entries.append((key, (ok, token, reason, delta)))
        return new_entries

    def _structurally_plausible(self, request: ServiceRequest) -> bool:
        """Policy pre-filter on the raw report bytes — no decode, no
        crypto: length sanity plus the expected-measurement pins the
        scalar verifier would reject anyway."""
        report = request.report
        if len(report) not in (DEFAULT_REPORT_LEN,
                               pq_report_len(self.params)):
            return True   # let decode produce the malformed verdict
        if request.expected_enclave_hash is not None and \
                report[:64] != request.expected_enclave_hash:
            return False
        expected_sm = self._expected_sm.get(request.device_id)
        if expected_sm is not None and \
                report[_SM_HASH_OFFSET:_SM_HASH_OFFSET + 64] != \
                expected_sm:
            return False
        return True

    @staticmethod
    def _result(request: ServiceRequest, ok: bool, token: bytes) -> dict:
        return {"seq": int(request.seq),
                "device": request.device_id,
                "ok": bool(ok),
                "session": token.hex()}

"""One-call assembly of the full TEE stack on the simulated SoC.

Wires together device → bootrom → measured boot → security monitor,
the way the paper's FPGA demonstrator does: modified bootrom measures
the SM in DRAM, signs it, derives SM key material, and the SM then
programs the PMP and runs enclaves.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.keccak import shake256
from ..soc.cpu import Hart
from ..soc.memory import PhysicalMemory, default_memory_map
from .bootrom import BootReport, BootRom
from .device import Device
from .sm import (DEFAULT_SM_STACK, PQ_SM_STACK, KeystoneConfig,
                 SecurityMonitor)

#: Size of the synthetic SM binary measured at boot.
SM_BINARY_SIZE = 192 * 1024


def synthetic_sm_binary(version: int = 1) -> bytes:
    """A deterministic stand-in for the SM's DRAM image."""
    return shake256(b"security-monitor-image-v%d" % version,
                    SM_BINARY_SIZE)


@dataclass
class TeePlatform:
    """The assembled stack: everything a test or example needs."""

    device: Device
    bootrom: BootRom
    boot_report: BootReport
    sm: SecurityMonitor
    hart: Hart
    memory: PhysicalMemory
    sm_binary: bytes
    harts: list = None


def build_tee(root_secret: bytes = bytes(32), *,
              post_quantum: bool = False,
              stack_bytes: int = None,
              sm_version: int = 1,
              hart_count: int = 1) -> TeePlatform:
    """Boot a fresh simulated device into a running security monitor.

    ``stack_bytes`` defaults to the Keystone default (8 KB) for the
    classical configuration and to the paper's 128 KB for PQ — pass an
    explicit value (e.g. ``stack_bytes=8 * 1024`` with
    ``post_quantum=True``) to reproduce the stack-corruption bug.
    """
    if stack_bytes is None:
        stack_bytes = PQ_SM_STACK if post_quantum else DEFAULT_SM_STACK
    if hart_count < 1:
        raise ValueError("need at least one hart")
    device = Device(root_secret, post_quantum=post_quantum)
    bootrom = BootRom(device)
    memory = PhysicalMemory(default_memory_map())
    harts = [Hart(i, memory) for i in range(hart_count)]
    hart = harts[0]
    sm_binary = synthetic_sm_binary(sm_version)
    # The SM image is loaded into DRAM before the bootrom measures it.
    dram = memory.memory_map["dram"]
    memory.write(dram.base, sm_binary)
    boot_report = bootrom.boot(sm_binary)
    config = KeystoneConfig(post_quantum=post_quantum,
                            stack_bytes=stack_bytes)
    sm = SecurityMonitor(harts, memory, boot_report, dram, config)
    return TeePlatform(device=device, bootrom=bootrom,
                       boot_report=boot_report, sm=sm, hart=hart,
                       memory=memory, sm_binary=sm_binary, harts=harts)

"""Attested payload delivery: release secrets only to verified enclaves.

The paper's motivating TEE application (Section III-B): "ensure that
only a genuine, uncompromised devices get access to sensitive data such
as model weights or other sensitive data, and even then the data is
restricted to an enclave."

The construction combines the attestation chain with ML-KEM:

1. the enclave generates an ML-KEM-768 key pair and binds
   ``SHA3-256(ek)`` into its attestation report's data field,
2. the publisher verifies the full chain (device identity, pinned SM
   measurement, expected enclave measurement), checks that the offered
   encapsulation key matches the bound hash, encapsulates a session
   secret and AEAD-encrypts the payload under a key derived from it,
3. only the attested enclave can decapsulate and decrypt — a quantum
   adversary recording the exchange learns nothing (ML-KEM), and a
   classical MITM cannot swap the key (it is bound into the signed
   report).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.aes import open_aead, seal_aead
from ..crypto.kdf import derive_key
from ..crypto.keccak import sha3_256
from ..crypto.mlkem import ML_KEM_768, MLKEM, MLKEMParams
from ..faults.injector import FAULTS
from ..faults.models import (TRANSPORT_CORRUPT, TRANSPORT_DELAY,
                             TRANSPORT_DROP, flip_bit)
from ..faults.report import FaultReport, Outcome
from ..obs.audit import AUDIT
from .attestation import AttestationReport, verify_report

_BINDING_PREFIX = b"mlkem-ek-v1:"


class DeliveryError(ValueError):
    """A delivery step failed, with a machine-readable reason code.

    Subclasses ``ValueError`` so callers that treated unwrap failures
    as generic value errors keep working; new callers can dispatch on
    :attr:`reason` instead of parsing messages.

    Reason codes:

    * ``"decaps"`` — the KEM ciphertext was malformed (wrong size,
      not a valid encapsulation for this key),
    * ``"auth"`` — AEAD authentication failed (tampered payload, or
      ML-KEM implicit rejection fed a garbage key into the KDF),
    * ``"package-decode"`` — the wire bytes are not a well-formed
      :class:`SealedPackage`,
    * ``"attestation-rejected"`` — the publisher refused the report
      or key binding,
    * ``"transport-timeout"`` — retries exhausted the channel's
      delivery deadline,
    * ``"replay"`` — the package's label binding does not match the
      label this delivery expects: a replayed, rolled-back or
      cross-session package (a corrupted label field surfaces the
      same way — either case, the package is not the one this
      exchange produced).

    Errors raised after retry exhaustion additionally carry
    :attr:`attempts` (how many tries the channel made) and
    :attr:`last_reason` (the reason code of the final failed attempt);
    both are ``None`` on single-step failures like unwrap errors.
    """

    def __init__(self, reason: str, message: str = "",
                 attempts: int = None, last_reason: str = None):
        super().__init__(message or reason)
        self.reason = reason
        self.attempts = attempts
        self.last_reason = last_reason


class EnclaveKemIdentity:
    """Enclave-side: an ML-KEM key pair bound to attestation."""

    def __init__(self, seed_d: bytes = None, seed_z: bytes = None,
                 params: MLKEMParams = ML_KEM_768):
        self.params = params
        self._kem = MLKEM(params)
        self.ek, self._dk = self._kem.key_gen(seed_d, seed_z)

    def report_binding(self) -> bytes:
        """The value the enclave puts in its attestation report data
        (fits easily in the 1024-byte field)."""
        return _BINDING_PREFIX + sha3_256(self.ek)

    def unwrap(self, package: "SealedPackage",
               expected_label: bytes = None) -> bytes:
        """Decapsulate and decrypt a delivered payload.

        Raises :class:`DeliveryError` with reason ``"decaps"`` for a
        malformed KEM ciphertext and ``"auth"`` when AEAD opening
        fails — which is also how ML-KEM's implicit rejection
        surfaces: decapsulation of a tampered ciphertext silently
        yields an unrelated shared secret, and the derived key then
        fails authentication.

        ``expected_label`` pins the label the caller's protocol state
        says this package must carry (the :class:`DeliveryChannel`
        binds session and sequence number into it).  A mismatch
        raises reason ``"replay"`` *before* any cryptography runs:
        an AEAD-valid package from another delivery — a recorded
        session replayed, an old payload rolled back — is rejected
        outright instead of decrypting to stale plaintext.
        """
        if expected_label is not None \
                and package.label != expected_label:
            raise DeliveryError(
                "replay",
                f"package label {package.label!r} does not match "
                f"the expected binding {expected_label!r}")
        try:
            shared = self._kem.decaps(self._dk, package.kem_ciphertext)
        except ValueError as exc:
            raise DeliveryError("decaps", str(exc)) from exc
        key = derive_key(shared, "attested-delivery",
                         package.label)
        try:
            return open_aead(key, package.nonce, package.sealed_payload,
                             package.label)
        except ValueError as exc:
            raise DeliveryError("auth", str(exc)) from exc


@dataclass
class SealedPackage:
    """What the publisher sends to the device."""

    label: bytes
    kem_ciphertext: bytes
    nonce: bytes
    sealed_payload: bytes

    MAGIC = b"SPKG1"

    def encode(self) -> bytes:
        """Wire format: magic, then each field with a 4-byte
        big-endian length prefix."""
        parts = [self.MAGIC]
        for value in (self.label, self.kem_ciphertext, self.nonce,
                      self.sealed_payload):
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "SealedPackage":
        """Parse :meth:`encode` output; raises :class:`DeliveryError`
        with reason ``"package-decode"`` on any malformed input."""
        if data[:len(cls.MAGIC)] != cls.MAGIC:
            raise DeliveryError("package-decode", "bad package magic")
        offset = len(cls.MAGIC)

        def take(n):
            nonlocal offset
            chunk = data[offset:offset + n]
            if len(chunk) != n:
                raise DeliveryError("package-decode",
                                    "truncated package")
            offset += n
            return chunk

        values = []
        for _ in range(4):
            length = int.from_bytes(take(4), "big")
            if length > len(data):
                raise DeliveryError("package-decode",
                                    "package field length too large")
            values.append(take(length))
        if offset != len(data):
            raise DeliveryError("package-decode",
                                "trailing bytes after package")
        return cls(label=values[0], kem_ciphertext=values[1],
                   nonce=values[2], sealed_payload=values[3])


class AttestedPublisher:
    """Publisher-side: verify, then encrypt-to-enclave.

    Parameters pin everything a careful verifier must pin: the device's
    public identity, the known-good SM measurement and the expected
    enclave measurement.
    """

    def __init__(self, device_identity: dict, expected_sm_hash: bytes,
                 expected_enclave_hash: bytes,
                 params: MLKEMParams = ML_KEM_768):
        self.device_identity = device_identity
        self.expected_sm_hash = expected_sm_hash
        self.expected_enclave_hash = expected_enclave_hash
        self.params = params
        self._kem = MLKEM(params)

    def deliver(self, report_bytes: bytes, enclave_ek: bytes,
                payload: bytes, label: bytes = b"payload",
                entropy: bytes = None):
        """Verify the report + key binding; return a
        :class:`SealedPackage` or None if anything fails."""
        try:
            report = AttestationReport.decode(report_bytes)
        except ValueError:
            return None
        if not verify_report(report, self.device_identity,
                             self.expected_enclave_hash,
                             self.expected_sm_hash):
            return None
        if report.enclave_data != _BINDING_PREFIX + sha3_256(enclave_ek):
            return None                   # offered key not the attested one
        try:
            shared, kem_ciphertext = self._kem.encaps(enclave_ek,
                                                      entropy)
        except ValueError:
            return None
        key = derive_key(shared, "attested-delivery", label)
        nonce = sha3_256(kem_ciphertext)[:12]
        sealed = seal_aead(key, nonce, payload, label)
        return SealedPackage(label=label, kem_ciphertext=kem_ciphertext,
                             nonce=nonce, sealed_payload=sealed)


@dataclass
class DeliveryOutcome:
    """Result of a hardened delivery attempt sequence."""

    payload: bytes                    # None when delivery failed
    attempts: int
    elapsed: int                      # abstract transport time units
    recovered: bool                   # succeeded after >= 1 retry
    fault: FaultReport = None         # set only on failure
    last_reason: str = ""             # reason of the final failed try

    @property
    def ok(self) -> bool:
        return self.payload is not None


class DeliveryChannel:
    """Publisher-to-enclave delivery over a faultable transport, with
    bounded retry, exponential backoff and a delivery deadline.

    This is the recovery-hardening layer: a transient transport fault
    (dropped or corrupted package) costs one retry and the delivery
    *recovers*; a persistent fault exhausts ``max_attempts`` or the
    ``deadline`` budget and the channel fails closed with a
    machine-readable :class:`~repro.faults.report.FaultReport` —
    never a hang, never a silently wrong payload (AEAD authentication
    rejects every corrupted package).

    The transport is where ``tee.delivery.transport`` faults land:
    drop (package lost), corrupt (single-bit upset on the wire) and
    delay (adds ``magnitude`` time units toward the deadline).

    Every package is additionally bound to this channel's ``session``
    identifier and a per-delivery sequence number: the publisher seals
    under a wire label ``label | session | sequence`` and the enclave
    refuses (reason ``"replay"``) any package whose label is not the
    one the current delivery expects.  That closes the rollback attack
    the adversary campaign found: an AEAD-valid package recorded from
    an earlier session (stale model weights, a downgraded firmware
    blob) authenticates perfectly, so without the binding the enclave
    would silently accept it.
    """

    def __init__(self, publisher: AttestedPublisher,
                 enclave: EnclaveKemIdentity, max_attempts: int = 4,
                 backoff_base: int = 1, deadline: int = 64,
                 session: bytes = b""):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.publisher = publisher
        self.enclave = enclave
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.deadline = deadline
        self.session = session
        self._sequence = 0

    def _wire_label(self, label: bytes, sequence: int) -> bytes:
        """The sealed label: caller label, channel session and the
        monotonically increasing delivery sequence number."""
        return b"|".join((label, self.session,
                          sequence.to_bytes(4, "big")))

    def _transport(self, wire: bytes):
        """One traversal of the faultable wire.

        Returns ``(received_bytes_or_None, extra_delay)``.
        """
        delay = 1
        if FAULTS.enabled:
            spec = FAULTS.fire("tee.delivery.transport")
            if spec is not None:
                if spec.model == TRANSPORT_DROP:
                    return None, delay
                if spec.model == TRANSPORT_CORRUPT:
                    wire = flip_bit(wire, spec.bit)
                elif spec.model == TRANSPORT_DELAY:
                    delay += max(1, spec.magnitude)
        return wire, delay

    def deliver(self, report_bytes: bytes, payload: bytes,
                label: bytes = b"payload") -> DeliveryOutcome:
        """Run the full attested delivery with recovery.

        Attestation rejection is deterministic, so it fails fast (no
        retry).  Transport-level failures — lost package, corrupted
        wire bytes, AEAD rejection — are retried with exponential
        backoff until ``max_attempts`` or ``deadline`` runs out.
        """
        elapsed = 0
        last_reason = "transport-timeout"
        sequence = self._sequence
        self._sequence += 1
        wire_label = self._wire_label(label, sequence)
        for attempt in range(1, self.max_attempts + 1):
            # Fresh encapsulation entropy per attempt: a replayed
            # package is never re-sent, so a corrupting channel cannot
            # collect two copies of the same ciphertext.
            entropy = sha3_256(b"delivery-attempt" + wire_label
                               + attempt.to_bytes(4, "big"))
            package = self.publisher.deliver(report_bytes,
                                             self.enclave.ek, payload,
                                             label=wire_label,
                                             entropy=entropy)
            if package is None:
                if AUDIT.enabled:
                    AUDIT.emit("tee.delivery", "delivery-rejected",
                               severity="critical",
                               reason="attestation-rejected",
                               sequence=sequence, attempts=attempt)
                return DeliveryOutcome(
                    payload=None, attempts=attempt, elapsed=elapsed,
                    recovered=False, fault=FaultReport(
                        component="tee.delivery",
                        outcome=Outcome.DETECTED,
                        reason="attestation-rejected"),
                    last_reason="attestation-rejected")
            received, delay = self._transport(package.encode())
            elapsed += delay
            if elapsed > self.deadline:
                # The receiver gave up before the package arrived; a
                # late package is discarded, never half-trusted.
                last_reason = "transport-delay"
                break
            if received is not None:
                try:
                    decoded = SealedPackage.decode(received)
                    clear = self.enclave.unwrap(
                        decoded, expected_label=wire_label)
                    if AUDIT.enabled:
                        AUDIT.emit("tee.delivery", "delivery-accepted",
                                   sequence=sequence, attempts=attempt,
                                   recovered=attempt > 1)
                    return DeliveryOutcome(
                        payload=clear, attempts=attempt,
                        elapsed=elapsed, recovered=attempt > 1)
                except DeliveryError as exc:
                    last_reason = exc.reason
            else:
                last_reason = "transport-drop"
            if AUDIT.enabled:
                AUDIT.emit("tee.delivery", "delivery-attempt-failed",
                           severity="warning", reason=last_reason,
                           sequence=sequence, attempt=attempt)
            if elapsed >= self.deadline:
                break
            elapsed += self.backoff_base * (2 ** (attempt - 1))
        if AUDIT.enabled:
            AUDIT.emit("tee.delivery", "delivery-rejected",
                       severity="critical", reason=last_reason,
                       sequence=sequence, attempts=attempt)
        return DeliveryOutcome(
            payload=None, attempts=attempt, elapsed=elapsed,
            recovered=False, fault=FaultReport(
                component="tee.delivery", outcome=Outcome.DETECTED,
                reason="transport-timeout",
                detail=f"last failure: {last_reason}"),
            last_reason=last_reason)

    def deliver_or_raise(self, report_bytes: bytes, payload: bytes,
                         label: bytes = b"payload") -> DeliveryOutcome:
        """:meth:`deliver`, raising on failure instead of returning a
        fault-bearing outcome.

        The raised :class:`DeliveryError` carries the channel's fault
        reason plus :attr:`~DeliveryError.attempts` and
        :attr:`~DeliveryError.last_reason`, with the pinned message
        shape ``delivery failed after N attempts (last: <reason>)`` —
        callers that log the exception get the retry story in one
        line.
        """
        outcome = self.deliver(report_bytes, payload, label=label)
        if not outcome.ok:
            raise DeliveryError(
                outcome.fault.reason,
                f"delivery failed after {outcome.attempts} attempts "
                f"(last: {outcome.last_reason})",
                attempts=outcome.attempts,
                last_reason=outcome.last_reason)
        return outcome

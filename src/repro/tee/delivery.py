"""Attested payload delivery: release secrets only to verified enclaves.

The paper's motivating TEE application (Section III-B): "ensure that
only a genuine, uncompromised devices get access to sensitive data such
as model weights or other sensitive data, and even then the data is
restricted to an enclave."

The construction combines the attestation chain with ML-KEM:

1. the enclave generates an ML-KEM-768 key pair and binds
   ``SHA3-256(ek)`` into its attestation report's data field,
2. the publisher verifies the full chain (device identity, pinned SM
   measurement, expected enclave measurement), checks that the offered
   encapsulation key matches the bound hash, encapsulates a session
   secret and AEAD-encrypts the payload under a key derived from it,
3. only the attested enclave can decapsulate and decrypt — a quantum
   adversary recording the exchange learns nothing (ML-KEM), and a
   classical MITM cannot swap the key (it is bound into the signed
   report).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.aes import open_aead, seal_aead
from ..crypto.kdf import derive_key
from ..crypto.keccak import sha3_256
from ..crypto.mlkem import ML_KEM_768, MLKEM, MLKEMParams
from .attestation import AttestationReport, verify_report

_BINDING_PREFIX = b"mlkem-ek-v1:"


class EnclaveKemIdentity:
    """Enclave-side: an ML-KEM key pair bound to attestation."""

    def __init__(self, seed_d: bytes = None, seed_z: bytes = None,
                 params: MLKEMParams = ML_KEM_768):
        self.params = params
        self._kem = MLKEM(params)
        self.ek, self._dk = self._kem.key_gen(seed_d, seed_z)

    def report_binding(self) -> bytes:
        """The value the enclave puts in its attestation report data
        (fits easily in the 1024-byte field)."""
        return _BINDING_PREFIX + sha3_256(self.ek)

    def unwrap(self, package: "SealedPackage") -> bytes:
        """Decapsulate and decrypt a delivered payload."""
        shared = self._kem.decaps(self._dk, package.kem_ciphertext)
        key = derive_key(shared, "attested-delivery",
                         package.label)
        return open_aead(key, package.nonce, package.sealed_payload,
                         package.label)


@dataclass
class SealedPackage:
    """What the publisher sends to the device."""

    label: bytes
    kem_ciphertext: bytes
    nonce: bytes
    sealed_payload: bytes


class AttestedPublisher:
    """Publisher-side: verify, then encrypt-to-enclave.

    Parameters pin everything a careful verifier must pin: the device's
    public identity, the known-good SM measurement and the expected
    enclave measurement.
    """

    def __init__(self, device_identity: dict, expected_sm_hash: bytes,
                 expected_enclave_hash: bytes,
                 params: MLKEMParams = ML_KEM_768):
        self.device_identity = device_identity
        self.expected_sm_hash = expected_sm_hash
        self.expected_enclave_hash = expected_enclave_hash
        self.params = params
        self._kem = MLKEM(params)

    def deliver(self, report_bytes: bytes, enclave_ek: bytes,
                payload: bytes, label: bytes = b"payload",
                entropy: bytes = None):
        """Verify the report + key binding; return a
        :class:`SealedPackage` or None if anything fails."""
        try:
            report = AttestationReport.decode(report_bytes)
        except ValueError:
            return None
        if not verify_report(report, self.device_identity,
                             self.expected_enclave_hash,
                             self.expected_sm_hash):
            return None
        if report.enclave_data != _BINDING_PREFIX + sha3_256(enclave_ek):
            return None                   # offered key not the attested one
        try:
            shared, kem_ciphertext = self._kem.encaps(enclave_ek,
                                                      entropy)
        except ValueError:
            return None
        key = derive_key(shared, "attested-delivery", label)
        nonce = sha3_256(kem_ciphertext)[:12]
        sealed = seal_aead(key, nonce, payload, label)
        return SealedPackage(label=label, kem_ciphertext=kem_ciphertext,
                             nonce=nonce, sealed_payload=sealed)

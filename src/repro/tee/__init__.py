"""Keystone-style trusted execution environment with post-quantum
hybrid attestation (paper Section III-B, Table III).

Build a full platform with :func:`~repro.tee.platform.build_tee`, or
compose the pieces directly:

* :class:`~repro.tee.device.Device` — per-device root of trust
* :class:`~repro.tee.bootrom.BootRom` — measured boot + key derivation
* :class:`~repro.tee.sm.SecurityMonitor` — M-mode TCB, PMP, enclaves
* :class:`~repro.tee.attestation.AttestationReport` — report formats
* :mod:`~repro.tee.sealing` — enclave-bound data sealing
"""

from .device import Device
from .bootrom import (BootReport, BootRom, DEFAULT_SECTIONS,
                      PQ_EXTRA_SECTIONS, VerifiedBoot)
from .enclave import Enclave, EnclaveState
from .attestation import (AttestationReport, DEFAULT_REPORT_LEN,
                          pq_report_len, verify_report, verify_reports)
from .sealing import derive_sealing_key, seal, unseal
from .sm import (DEFAULT_SM_STACK, ED25519_SIGNING_STACK, PQ_SM_STACK,
                 KeystoneConfig, SecurityMonitor)
from .service import AttestationService, ServiceRequest
from .platform import TeePlatform, build_tee, synthetic_sm_binary
from .delivery import (AttestedPublisher, DeliveryChannel,
                       DeliveryError, DeliveryOutcome,
                       EnclaveKemIdentity, SealedPackage)
from .rollback import MonotonicCounter, RollbackError, VersionedSealer
from .realtime import (IntegrationOutcome, convolve_integration,
                       evaluate_all as evaluate_realtime_tee,
                       rtos_inside_tee, tee_inside_rtos)

__all__ = [
    "IntegrationOutcome", "convolve_integration",
    "evaluate_realtime_tee", "rtos_inside_tee", "tee_inside_rtos",
    "AttestedPublisher", "DeliveryChannel", "DeliveryError",
    "DeliveryOutcome", "EnclaveKemIdentity", "SealedPackage",
    "MonotonicCounter", "RollbackError", "VersionedSealer",
    "Device", "BootReport", "BootRom", "DEFAULT_SECTIONS",
    "PQ_EXTRA_SECTIONS", "VerifiedBoot",
    "Enclave", "EnclaveState",
    "AttestationReport", "DEFAULT_REPORT_LEN", "pq_report_len",
    "verify_report", "verify_reports",
    "derive_sealing_key", "seal", "unseal",
    "KeystoneConfig", "SecurityMonitor", "DEFAULT_SM_STACK",
    "PQ_SM_STACK", "ED25519_SIGNING_STACK",
    "AttestationService", "ServiceRequest",
    "TeePlatform", "build_tee", "synthetic_sm_binary",
]

"""Enclave lifecycle and measurement.

An enclave is a measured binary plus a PMP-isolated slice of DRAM.  Its
identity is the SHA3-512 hash of its initial contents — the value that
appears in attestation reports and that sealing keys are bound to.
"""

from __future__ import annotations

from enum import Enum

from ..crypto.keccak import sha3_512
from ..soc.memory import Region


class EnclaveState(Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    DESTROYED = "destroyed"


class Enclave:
    """One enclave managed by the security monitor.

    The simulator represents the enclave's program as an opaque binary
    (bytes) and models execution via callables that run while the SM has
    switched the hart's PMP into this enclave's context.
    """

    def __init__(self, enclave_id: int, binary: bytes, region: Region,
                 runtime_data: bytes = b""):
        self.enclave_id = enclave_id
        self.binary = bytes(binary)
        self.runtime_data = bytes(runtime_data)
        self.region = region
        self.state = EnclaveState.CREATED
        self.measurement = self.measure(self.binary, self.runtime_data)

    @staticmethod
    def measure(binary: bytes, runtime_data: bytes = b"") -> bytes:
        """The enclave identity hash (binary || runtime data)."""
        return sha3_512(b"enclave-measurement-v1"
                        + len(binary).to_bytes(8, "big") + binary
                        + runtime_data)

    def _require_state(self, *allowed: EnclaveState) -> None:
        if self.state not in allowed:
            names = "/".join(s.value for s in allowed)
            raise RuntimeError(
                f"enclave {self.enclave_id} is {self.state.value}, "
                f"needs {names}")

    def mark_running(self) -> None:
        self._require_state(EnclaveState.CREATED, EnclaveState.STOPPED)
        self.state = EnclaveState.RUNNING

    def mark_stopped(self) -> None:
        self._require_state(EnclaveState.RUNNING)
        self.state = EnclaveState.STOPPED

    def mark_destroyed(self) -> None:
        self._require_state(EnclaveState.CREATED, EnclaveState.STOPPED,
                            EnclaveState.RUNNING)
        self.state = EnclaveState.DESTROYED

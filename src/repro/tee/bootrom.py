"""The measured-boot ROM: image layout and first-stage boot flow.

Paper Section III-B: "we modified the SoC bootrom to perform a
measurement of the SM located in DRAM, sign the measurement hash with a
unique device key currently stored in the bootrom, and derive key
material for the SM to use for its own signing operations".

Two concerns live here:

1. **Image layout** — the bootrom is real bytes (sections with
   deterministic filler content), so the Table III size comparison is a
   measurement of a serialized artifact, not a constant.  Section sizes
   are calibrated to the paper's Keystone bootrom (50.7 KB default);
   the PQ additions (ML-DSA signing code + a 32-byte stored seed
   instead of a 2560-byte key) grow it to 60.2 KB.
2. **Boot flow** — measure the SM image, sign the measurement with the
   device key(s), derive the SM's signing key material, and hand off.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

from ..faults.injector import FAULTS
from ..faults.report import FaultReport, Outcome
from ..obs import TELEMETRY
from ..obs.audit import AUDIT
from ..obs.perf import PERF
from ..crypto import ed25519
from ..crypto.keccak import sha3_512, shake256
from ..crypto.kdf import derive_seed_pair
from ..crypto.mldsa import MLDSA
from ..runtime.memo import Memo
from .attestation import sm_certificate_payload
from .device import Device

# Content-addressed measured-boot cache.  Boot is deterministic in the
# device identity, the ROM section layout and the SM image bytes, so a
# repeat boot of the same triple can replay the stored hand-off instead
# of re-running two signatures and (in the PQ configuration) an ML-DSA
# key regeneration.  Entries hold ``(report.encode(), perf_delta)`` —
# the recorded PERF delta is merged on every hit so architectural
# counter totals are independent of cache state.  The cache is never
# consulted or populated while fault injection is armed (an injection
# scenario must re-measure and re-sign for its faults to land) or while
# a telemetry subscriber is active (timed spans cannot be replayed, so
# traced boots always show the real span tree).
_BOOT_MEMO = Memo(maxsize=64)
_BOOT_LOCK = threading.Lock()


@dataclass(frozen=True)
class RomSection:
    """A named bootrom image section with deterministic filler bytes."""

    name: str
    size: int

    def content(self) -> bytes:
        return shake256(b"bootrom-section:" + self.name.encode(),
                        self.size)


# Sizes calibrated against the Keystone bootrom the paper measures
# (Table III: 50.7 KB default).  1 KB = 1024 bytes throughout.
DEFAULT_SECTIONS = (
    RomSection("header", 653),
    RomSection("boot_code", 33 * 1024),
    RomSection("sha3_code", 6 * 1024),
    RomSection("ed25519_code", 11 * 1024),
    RomSection("device_ed25519_keys", 64),
)

# The PQ additions: size-optimised ML-DSA-44 signing code plus the
# 32-byte stored seed (the full 2560-byte secret key is deliberately NOT
# stored — it is regenerated during boot) and hybrid hand-off glue.
PQ_EXTRA_SECTIONS = (
    RomSection("mldsa_code", 9 * 1024),
    RomSection("device_mldsa_seed", 32),
    RomSection("hybrid_handoff_code", 480),
)


@dataclass
class BootReport:
    """Everything the bootrom hands to the security monitor.

    The device key never leaves the bootrom; instead the bootrom leaves
    behind *certificates* (``sm_cert_*``) over the SM's derived
    attestation public keys, which the SM embeds in every attestation
    report.
    """

    sm_measurement: bytes
    classical_boot_signature: bytes
    pq_boot_signature: bytes          # empty in the default configuration
    sm_ed25519_seed: bytes
    sm_mldsa_seed: bytes              # empty in the default configuration
    sm_ed25519_public: bytes = b""
    sm_mldsa_public: bytes = b""
    sm_cert_classical: bytes = b""
    sm_cert_pq: bytes = b""
    regenerated_pq_key_bytes: int = 0  # secret-key bytes expanded from
                                       # the stored 32-byte seed

    # -- byte-level encoding (length-prefixed, self-delimiting) --------

    MAGIC = b"BRPT1"

    def encode(self) -> bytes:
        """Serialize the hand-off: magic, then every byte field with a
        4-byte big-endian length prefix, then the regeneration count."""
        parts = [self.MAGIC]
        for name in self._byte_fields():
            value = getattr(self, name)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        parts.append(self.regenerated_pq_key_bytes.to_bytes(4, "big"))
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "BootReport":
        """Parse :meth:`encode` output; raises ``ValueError`` on any
        malformed input (bad magic, truncation, trailing bytes)."""
        if data[:len(cls.MAGIC)] != cls.MAGIC:
            raise ValueError("bad boot-report magic")
        offset = len(cls.MAGIC)

        def take(n):
            nonlocal offset
            chunk = data[offset:offset + n]
            if len(chunk) != n:
                raise ValueError("truncated boot report")
            offset += n
            return chunk

        values = {}
        for name in cls._byte_fields():
            length = int.from_bytes(take(4), "big")
            if length > len(data):
                raise ValueError("boot-report field length too large")
            values[name] = take(length)
        values["regenerated_pq_key_bytes"] = int.from_bytes(take(4),
                                                            "big")
        if offset != len(data):
            raise ValueError("trailing bytes after boot report")
        return cls(**values)

    @classmethod
    def _byte_fields(cls) -> tuple:
        return tuple(f.name for f in fields(cls) if f.type == "bytes")


@dataclass
class VerifiedBoot:
    """Outcome of :meth:`BootRom.boot_verified`: either a verified
    :class:`BootReport` or a fail-closed
    :class:`~repro.faults.report.FaultReport` — never both, never an
    exception."""

    report: BootReport
    fault: FaultReport

    @property
    def ok(self) -> bool:
        return self.report is not None


class BootRom:
    """The immutable first-stage boot loader."""

    def __init__(self, device: Device):
        self.device = device
        sections = list(DEFAULT_SECTIONS)
        if device.post_quantum:
            sections.extend(PQ_EXTRA_SECTIONS)
        self.sections = tuple(sections)

    def image(self) -> bytes:
        """The serialized ROM image (what Table III measures)."""
        return b"".join(section.content() for section in self.sections)

    @property
    def image_size(self) -> int:
        return sum(section.size for section in self.sections)

    def measure(self, sm_binary: bytes) -> bytes:
        """SHA3-512 measurement of the SM image in DRAM."""
        if PERF.enabled:
            PERF.inc("tee.bootrom.measurements")
        measurement = sha3_512(sm_binary)
        if FAULTS.enabled:
            measurement = FAULTS.corrupt("tee.bootrom.measure",
                                         measurement)
        return measurement

    def _sign_device(self, message: bytes) -> bytes:
        """Device-key Ed25519 signing, with the fault hook that models
        a glitched signing engine."""
        if PERF.enabled:
            PERF.inc("tee.bootrom.device_signs")
        signature = self.device.sign_classical(message)
        if FAULTS.enabled:
            signature = FAULTS.corrupt("tee.bootrom.sign", signature)
        return signature

    def _boot_cache_key(self, sm_binary: bytes) -> bytes:
        """Content address of one deterministic boot: device identity,
        section layout and the exact SM image bytes."""
        layout = ";".join(f"{s.name}:{s.size}" for s in self.sections)
        parts = [
            self.device.ed25519_seed,
            self.device.mldsa_seed or b"",
            self.device.mldsa_params.name.encode()
            if self.device.post_quantum else b"",
            layout.encode(),
            sm_binary,
        ]
        blob = b"".join(len(p).to_bytes(4, "big") + p for p in parts)
        return sha3_512(b"bootrom-memo-v1" + blob)

    def boot(self, sm_binary: bytes) -> BootReport:
        """Run the measured-boot sequence and produce the SM hand-off.

        The sequence is deterministic, so repeat boots of the same
        (device, layout, image) triple are served from a
        content-addressed cache — unless fault injection is armed or a
        telemetry subscriber is active, in which case the cache is
        bypassed entirely and the full measure/sign sequence runs, so
        injected faults take effect and traces show the real span tree
        (PERF deltas can be replayed exactly on a hit; timed spans
        cannot).  Cache hits replay the PERF delta recorded when the
        entry was built, keeping counter totals cache-independent.
        """
        if FAULTS.enabled or TELEMETRY.enabled:
            return self._boot(sm_binary)
        key = self._boot_cache_key(sm_binary)
        with _BOOT_LOCK:
            found, entry = _BOOT_MEMO.lookup(key)
        if found:
            encoded, delta = entry
            if delta is not None and PERF.enabled:
                PERF.merge(delta)
            return BootReport.decode(encoded)
        if PERF.enabled:
            before = PERF.snapshot()
            report = self._boot(sm_binary)
            delta = PERF.delta_since(before)
        else:
            report = self._boot(sm_binary)
            delta = None
        with _BOOT_LOCK:
            _BOOT_MEMO.store(key, (report.encode(), delta))
        return report

    def _boot(self, sm_binary: bytes) -> BootReport:
        """The real measured-boot sequence.

        The signatures cover the measurement and bind it to this device;
        SM signing seeds are derived from the device secret *and* the
        measurement, so a tampered SM gets unrelated keys.
        """
        if PERF.enabled:
            PERF.inc("tee.bootrom.boots")
        with TELEMETRY.span("tee.boot",
                            post_quantum=self.device.post_quantum):
            with TELEMETRY.span("tee.boot.measure",
                                sm_bytes=len(sm_binary)):
                measurement = self.measure(sm_binary)
            with TELEMETRY.span("tee.boot.sign", scheme="ed25519"):
                classical_sig = self._sign_device(
                    b"keystone-boot-v1" + measurement)
            pq_sig = b""
            regenerated = 0
            device_pq_secret = None
            if self.device.post_quantum:
                # Regenerate the ML-DSA key pair from the stored 32-byte
                # seed — the bootrom-size mitigation from the paper.
                with TELEMETRY.span("tee.boot.regenerate_pq_key"):
                    scheme = MLDSA(self.device.mldsa_params)
                    _, device_pq_secret = scheme.key_gen(
                        self.device.mldsa_seed)
                regenerated = len(device_pq_secret)
                with TELEMETRY.span("tee.boot.sign", scheme="mldsa"):
                    pq_sig = scheme.sign(
                        device_pq_secret,
                        b"keystone-boot-v1" + measurement)
            # Derive the SM's attestation seeds from the device secret
            # and the measurement, then certify the derived public keys.
            with TELEMETRY.span("tee.boot.derive_sm_keys"):
                sm_secret = self.device.derive_sm_secret(measurement)
                sm_ed_seed, sm_mldsa_seed = derive_seed_pair(sm_secret,
                                                             "sm-keys")
                sm_ed_public = ed25519.public_key(sm_ed_seed)
                sm_mldsa_public = b""
                if self.device.post_quantum:
                    scheme = MLDSA(self.device.mldsa_params)
                    sm_mldsa_public, _ = scheme.key_gen(sm_mldsa_seed)
            with TELEMETRY.span("tee.boot.certify"):
                cert_payload = sm_certificate_payload(
                    measurement, sm_ed_public, sm_mldsa_public)
                cert_classical = self._sign_device(cert_payload)
                cert_pq = b""
                if self.device.post_quantum:
                    cert_pq = MLDSA(self.device.mldsa_params).sign(
                        device_pq_secret, cert_payload)
            return BootReport(
            sm_measurement=measurement,
            classical_boot_signature=classical_sig,
            pq_boot_signature=pq_sig,
            sm_ed25519_seed=sm_ed_seed,
            sm_mldsa_seed=(sm_mldsa_seed if self.device.post_quantum
                           else b""),
            sm_ed25519_public=sm_ed_public,
            sm_mldsa_public=sm_mldsa_public,
            sm_cert_classical=cert_classical,
            sm_cert_pq=cert_pq,
            regenerated_pq_key_bytes=regenerated,
        )

    def boot_verified(self, sm_binary: bytes) -> "VerifiedBoot":
        """Measured boot with fail-closed verification.

        Runs :meth:`boot` followed by :meth:`verify_boot` and *never*
        lets a raw exception or an unverified report escape: any
        failure — a corrupted measurement, a glitched signature, an
        error thrown mid-boot — degrades gracefully to a
        :class:`VerifiedBoot` carrying a machine-readable
        :class:`~repro.faults.report.FaultReport` and no boot report.
        """
        try:
            report = self.boot(sm_binary)
        except Exception as exc:          # fail closed, report the cause
            if AUDIT.enabled:
                AUDIT.emit("tee.boot", "boot-rejected",
                           severity="critical", reason="boot-exception")
            return VerifiedBoot(report=None, fault=FaultReport(
                component="tee.bootrom", outcome=Outcome.DETECTED,
                reason="boot-exception",
                detail=f"{type(exc).__name__}: {exc}"[:200]))
        try:
            verified = self.verify_boot(sm_binary, report)
        except Exception as exc:
            if AUDIT.enabled:
                AUDIT.emit("tee.boot", "boot-rejected",
                           severity="critical",
                           reason="verify-exception")
            return VerifiedBoot(report=None, fault=FaultReport(
                component="tee.bootrom", outcome=Outcome.DETECTED,
                reason="verify-exception",
                detail=f"{type(exc).__name__}: {exc}"[:200]))
        if not verified:
            if AUDIT.enabled:
                AUDIT.emit("tee.boot", "boot-rejected",
                           severity="critical",
                           reason="boot-verification-failed")
            return VerifiedBoot(report=None, fault=FaultReport(
                component="tee.bootrom", outcome=Outcome.DETECTED,
                reason="boot-verification-failed"))
        if AUDIT.enabled:
            AUDIT.emit("tee.boot", "boot-verified",
                       post_quantum=self.device.post_quantum)
        return VerifiedBoot(report=report, fault=None)

    def verify_handoff(self, sm_binary: bytes,
                       report: BootReport) -> bool:
        """Strict hand-off integrity check: the *entire* report —
        signatures, derived seeds, certificates — must be exactly what
        this device's deterministic boot produces for ``sm_binary``.

        :meth:`verify_boot` checks only the signed fields; a bit flip
        in, say, the derived SM seed would slip past it.  Device-side
        recomputation closes that gap (at the cost of a full re-boot),
        so any single-bit corruption of a stored/transmitted hand-off
        is rejected.
        """
        try:
            expected = self.boot(sm_binary)
        except Exception:
            if AUDIT.enabled:
                AUDIT.emit("tee.boot", "handoff-rejected",
                           severity="critical",
                           reason="reboot-exception")
            return False
        ok = expected.encode() == report.encode()
        if AUDIT.enabled:
            if ok:
                AUDIT.emit("tee.boot", "handoff-verified")
            else:
                AUDIT.emit("tee.boot", "handoff-rejected",
                           severity="critical",
                           reason="handoff-mismatch")
        return ok

    def verify_boot(self, sm_binary: bytes, report: BootReport) -> bool:
        """Verifier-side check of the boot signatures (both must hold in
        the PQ configuration — the hybrid rule)."""
        with TELEMETRY.span("tee.boot.verify",
                            post_quantum=self.device.post_quantum):
            return self._verify_boot(sm_binary, report)

    def _verify_boot(self, sm_binary: bytes, report: BootReport) -> bool:
        measurement = self.measure(sm_binary)
        if measurement != report.sm_measurement:
            return False
        message = b"keystone-boot-v1" + measurement
        if not ed25519.verify(self.device.ed25519_public, message,
                              report.classical_boot_signature):
            return False
        if self.device.post_quantum:
            # Cached verifier context for the (fixed) device ML-DSA key.
            try:
                verifier = MLDSA(self.device.mldsa_params).verifier(
                    self.device.mldsa_public)
            except ValueError:
                return False
            return verifier.verify(message, report.pq_boot_signature)
        return not report.pq_boot_signature

"""Device identity: the per-device unique secret and its key hierarchy.

Keystone's chain of trust starts from "a per-device unique secret, e.g.
stored in a root-of-trust" (paper Section III-B).  The PQ-enabled variant
needs *two* device key pairs (Ed25519 and ML-DSA), and — to keep the
bootrom small — the ML-DSA key is stored as a 32-byte seed and
regenerated deterministically during boot.
"""

from __future__ import annotations

from ..crypto import ed25519
from ..crypto.kdf import derive_key, derive_seed_pair
from ..crypto.mldsa import ML_DSA_44, MLDSA, MLDSAParams


class Device:
    """A physical device with a unique root secret.

    Parameters
    ----------
    root_secret:
        32 bytes fused into the root of trust at manufacturing.
    post_quantum:
        Whether the device provisions an ML-DSA identity in addition to
        Ed25519 (the paper's PQ-enabled configuration).
    """

    def __init__(self, root_secret: bytes, post_quantum: bool = False,
                 mldsa_params: MLDSAParams = ML_DSA_44):
        if len(root_secret) != 32:
            raise ValueError("device root secret must be 32 bytes")
        self.post_quantum = post_quantum
        self.mldsa_params = mldsa_params
        ed_seed, mldsa_seed = derive_seed_pair(root_secret, "device-keys")
        self.ed25519_seed = ed_seed
        # Keyed signing context: clamped scalar + nonce prefix computed
        # once, so every boot signature is a single fixed-base multiply.
        self._ed_signer = ed25519.SigningKey(ed_seed)
        self.ed25519_public = self._ed_signer.public
        if post_quantum:
            # Stored as a seed; expanded on demand (i.e. at boot) exactly
            # as the paper's bootrom-size mitigation prescribes.
            self.mldsa_seed = mldsa_seed
            scheme = MLDSA(mldsa_params)
            self.mldsa_public, self._mldsa_secret = scheme.key_gen(
                mldsa_seed)
        else:
            self.mldsa_seed = None
            self.mldsa_public = None
            self._mldsa_secret = None

    # -- device-key signing (only ever used by the bootrom) ------------

    def sign_classical(self, message: bytes) -> bytes:
        return self._ed_signer.sign(message)

    def sign_post_quantum(self, message: bytes) -> bytes:
        if not self.post_quantum:
            raise RuntimeError("device has no post-quantum identity")
        return MLDSA(self.mldsa_params).signer(self._mldsa_secret).sign(
            message)

    def sign_post_quantum_many(self, messages) -> list:
        """Batch :meth:`sign_post_quantum` (byte-identical signatures,
        rejection loops batched through the signer's ``sign_many``)."""
        if not self.post_quantum:
            raise RuntimeError("device has no post-quantum identity")
        return MLDSA(self.mldsa_params).signer(
            self._mldsa_secret).sign_many(messages)

    def derive_sm_secret(self, sm_measurement: bytes) -> bytes:
        """The SM's root secret, bound to the measured SM image.

        A modified SM measures differently and therefore derives
        different keys — the property remote attestation rests on.
        """
        return derive_key(self.ed25519_seed + (self.mldsa_seed or b""),
                          "sm-secret", sm_measurement)

    def public_identity(self) -> dict:
        """What a remote verifier is provisioned with."""
        identity = {"ed25519": self.ed25519_public}
        if self.post_quantum:
            identity["mldsa"] = self.mldsa_public
        return identity

"""Hart (hardware thread) model: privilege modes, PMP-checked accesses
and stack accounting.

This is not an ISA simulator — the TEE and RTOS substrates need exactly
three architectural behaviours from a core:

1. privilege transitions (M/S/U) with trap entry into M-mode,
2. every load/store/fetch filtered through the hart's PMP, and
3. a stack model with a high-water mark, so the security monitor's
   8 KB-vs-128 KB stack experiment (paper Section III-B) can be run as a
   real measurement instead of an assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.injector import FAULTS
from ..faults.models import INSTRUCTION_SKIP
from ..obs.perf import PERF
from .memory import AccessFault, PhysicalMemory
from .pmp import Pmp, PrivilegeMode


class StackOverflowFault(Exception):
    """A stack frame allocation exceeded the configured stack size."""

    def __init__(self, message: str, requested: int, limit: int):
        super().__init__(message)
        self.requested = requested
        self.limit = limit


@dataclass
class StackModel:
    """Downward-growing stack with watermark tracking.

    ``corrupted`` latches when an overflow is *not* trapped — modelling
    the paper's observation that ML-DSA signing silently corrupted the
    SM's 8 KB stack until the allocation was raised to 128 KB.
    """

    size_bytes: int
    guard: bool = True
    depth: int = 0
    high_water: int = 0
    corrupted: bool = False
    _frames: list = field(default_factory=list)

    def push_frame(self, frame_bytes: int) -> None:
        if frame_bytes < 0:
            raise ValueError("negative frame size")
        self.depth += frame_bytes
        self._frames.append(frame_bytes)
        self.high_water = max(self.high_water, self.depth)
        if self.depth > self.size_bytes:
            if self.guard:
                raise StackOverflowFault(
                    f"stack overflow: {self.depth} B used of "
                    f"{self.size_bytes} B", self.depth, self.size_bytes)
            self.corrupted = True

    def pop_frame(self) -> None:
        if not self._frames:
            raise RuntimeError("pop from empty stack")
        self.depth -= self._frames.pop()

    def reset(self) -> None:
        self.depth = 0
        self.high_water = 0
        self.corrupted = False
        self._frames.clear()


class Hart:
    """One core of the simulated SoC.

    All memory traffic goes through :meth:`load` / :meth:`store` /
    :meth:`fetch`, which consult the hart's PMP with the current
    privilege mode — exactly the enforcement point Keystone and the
    PMP-hardened FreeRTOS rely on.
    """

    def __init__(self, hart_id: int, memory: PhysicalMemory,
                 stack_bytes: int = 8 * 1024):
        self.hart_id = hart_id
        self.memory = memory
        self.pmp = Pmp()
        self.mode = PrivilegeMode.MACHINE
        self.stack = StackModel(stack_bytes)
        self.trap_log = []

    # -- privilege ----------------------------------------------------------

    def drop_to(self, mode: PrivilegeMode) -> None:
        """mret/sret-style transition to a less privileged mode."""
        if mode > self.mode:
            raise PermissionError(
                f"cannot raise privilege from {self.mode.name} to "
                f"{mode.name} without a trap")
        self.mode = mode

    def trap(self, cause: str) -> None:
        """Enter M-mode, recording the cause (ecall, access fault, ...)."""
        if PERF.enabled:
            PERF.inc("soc.cpu.traps")
        self.trap_log.append((cause, self.mode))
        self.mode = PrivilegeMode.MACHINE

    # -- PMP-checked memory access -------------------------------------

    def _checked(self, address: int, size: int, access: str) -> None:
        if not self.pmp.check(address, size, access, self.mode):
            raise AccessFault(
                f"PMP denies {access} at {address:#x} (+{size}) in "
                f"{self.mode.name} mode", address=address, access=access)

    def load(self, address: int, size: int) -> bytes:
        if PERF.enabled:
            PERF.inc("soc.cpu.loads")
        self._checked(address, size, "read")
        return self.memory.read(address, size)

    def store(self, address: int, data: bytes) -> None:
        if PERF.enabled:
            PERF.inc("soc.cpu.stores")
        self._checked(address, len(data), "write")
        self.memory.write(address, data)

    def fetch(self, address: int, size: int = 4) -> bytes:
        if PERF.enabled:
            PERF.inc("soc.cpu.instructions")
        self._checked(address, size, "exec")
        data = self.memory.read(address, size)
        if FAULTS.enabled:
            data = FAULTS.corrupt("soc.cpu.fetch", data)
        return data

    # -- stack-aware call simulation -------------------------------------

    def run_with_stack(self, function, frame_bytes: int, *args, **kwargs):
        """Run ``function`` charging ``frame_bytes`` against this hart's
        stack, propagating :class:`StackOverflowFault` if guarded.

        An injected instruction-skip fault (clock/voltage glitch model)
        suppresses the call entirely and yields None — callers that
        validate their results observe a missing value, not a wrong one.
        """
        if FAULTS.enabled:
            spec = FAULTS.fire("soc.cpu.exec")
            if spec is not None and spec.model == INSTRUCTION_SKIP:
                return None
        self.stack.push_frame(frame_bytes)
        try:
            return function(*args, **kwargs)
        finally:
            self.stack.pop_frame()

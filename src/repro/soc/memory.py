"""Physical memory and memory map for the simulated RISC-V SoC.

The paper's hardware target is a Chipyard Rocket SoC with a bootrom, an
L2-backed 2 GB DRAM and memory-mapped peripherals (Section III-B).  The
TEE and RTOS substrates share this model: a sparse physical memory plus a
named memory map, with every access mediated by the PMP (see
:mod:`repro.soc.pmp`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.injector import FAULTS
from ..obs.perf import PERF


class AccessFault(Exception):
    """A memory access was denied or fell outside mapped memory."""

    def __init__(self, message: str, address: int = None,
                 access: str = None):
        super().__init__(message)
        self.address = address
        self.access = access


@dataclass(frozen=True)
class Region:
    """A named, contiguous physical address range ``[base, base+size)``."""

    name: str
    base: int
    size: int

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise ValueError(f"region {self.name!r} has negative base")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.base <= address and address + size <= self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class MemoryMap:
    """An ordered collection of non-overlapping named regions."""

    def __init__(self):
        self._regions = []

    def add(self, name: str, base: int, size: int) -> Region:
        region = Region(name, base, size)
        for existing in self._regions:
            if existing.name == name:
                raise ValueError(f"duplicate region name {name!r}")
            if existing.overlaps(region):
                raise ValueError(
                    f"region {name!r} overlaps {existing.name!r}")
        self._regions.append(region)
        return region

    def __getitem__(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def __iter__(self):
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def region_at(self, address: int):
        """The region containing ``address``, or None."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None


# Default layout mirroring the paper's evaluation SoC: a boot ROM, MMIO
# space and external DRAM (scaled down from 2 GB for simulation).
BOOTROM_BASE = 0x0000_1000
BOOTROM_SIZE = 0x0002_0000        # generous 128 KB window for ROM images
MMIO_BASE = 0x0200_0000
MMIO_SIZE = 0x0010_0000
DRAM_BASE = 0x8000_0000
DRAM_SIZE = 0x0400_0000           # 64 MB of simulated DRAM


def default_memory_map() -> MemoryMap:
    """The Rocket-style layout used by the TEE and RTOS substrates."""
    memory_map = MemoryMap()
    memory_map.add("bootrom", BOOTROM_BASE, BOOTROM_SIZE)
    memory_map.add("mmio", MMIO_BASE, MMIO_SIZE)
    memory_map.add("dram", DRAM_BASE, DRAM_SIZE)
    return memory_map


class PhysicalMemory:
    """Sparse byte-addressable physical memory.

    Backing storage is allocated per page on first touch, so a 64 MB DRAM
    region costs nothing until written.  Accesses outside any mapped
    region raise :class:`AccessFault`.
    """

    PAGE_SIZE = 4096

    def __init__(self, memory_map: MemoryMap = None):
        self.memory_map = memory_map or default_memory_map()
        self._pages = {}

    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(self.PAGE_SIZE)
            self._pages[page_number] = page
        return page

    def _check_mapped(self, address: int, size: int) -> None:
        region = self.memory_map.region_at(address)
        if region is None or not region.contains(address, size):
            if PERF.enabled:
                PERF.inc("soc.memory.faults")
            raise AccessFault(
                f"unmapped physical access at {address:#x} (+{size})",
                address=address, access="map")

    def read(self, address: int, size: int) -> bytes:
        """Read ``size`` bytes; the range must lie in one mapped region."""
        if size < 0:
            raise ValueError("negative read size")
        if PERF.enabled:
            PERF.inc("soc.memory.reads")
        self._check_mapped(address, max(size, 1))
        out = bytearray()
        while size > 0:
            page_number, offset = divmod(address, self.PAGE_SIZE)
            take = min(size, self.PAGE_SIZE - offset)
            page = self._pages.get(page_number)
            if page is None:
                out.extend(bytes(take))
            else:
                out.extend(page[offset:offset + take])
            address += take
            size -= take
        data = bytes(out)
        if FAULTS.enabled:
            data = FAULTS.corrupt("soc.memory.read", data)
        return data

    def write(self, address: int, data: bytes) -> None:
        """Write ``data``; the range must lie in one mapped region."""
        if PERF.enabled:
            PERF.inc("soc.memory.writes")
        if FAULTS.enabled:
            data = FAULTS.corrupt("soc.memory.write", data)
        self._check_mapped(address, max(len(data), 1))
        offset_in_data = 0
        size = len(data)
        while offset_in_data < size:
            page_number, offset = divmod(address, self.PAGE_SIZE)
            take = min(size - offset_in_data, self.PAGE_SIZE - offset)
            page = self._page(page_number)
            page[offset:offset + take] = \
                data[offset_in_data:offset_in_data + take]
            address += take
            offset_in_data += take

    def allocated_bytes(self) -> int:
        """Bytes of backing storage actually allocated (for tests)."""
        return len(self._pages) * self.PAGE_SIZE

"""Cycle-level shared-resource bus with pluggable arbitration.

The composability substrate (paper Section III-E) needs a shared
resource whose arbitration policy determines whether co-running
applications can interfere with each other's timing.  This bus serves
one request per grant; requestors enqueue transactions and the arbiter
decides, cycle by cycle, who is served.

Three arbiters are provided:

* :class:`FcfsArbiter` — a plain FIFO, maximally interference-prone;
* :class:`RoundRobinArbiter` — work-conserving fair sharing, still
  timing-coupled to co-runners;
* :class:`TdmArbiter` — CompSOC-style time-division multiplexing, the
  composable policy (a requestor's service cycles depend only on its own
  slot table, never on other requestors' load).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..faults.injector import FAULTS
from ..faults.models import BUS_CORRUPT, BUS_DELAY, BUS_DROP
from ..obs.audit import AUDIT
from ..obs.perf import PERF


@dataclass
class Transaction:
    """One bus request from ``requestor``; ``latency`` service cycles.

    ``corrupted`` marks a payload upset visible to ECC/parity at the
    receiver (set only by an injected :data:`BUS_CORRUPT` fault).
    """

    requestor: str
    issued_cycle: int
    latency: int = 1
    completed_cycle: int = None
    tag: object = None
    corrupted: bool = False


class Arbiter:
    """Arbitration policy interface: pick which requestor is served."""

    def grant(self, cycle: int, pending: dict):
        """Return the requestor granted at ``cycle`` or None.

        ``pending`` maps requestor name -> non-empty deque of
        transactions.
        """
        raise NotImplementedError


class FcfsArbiter(Arbiter):
    """First-come-first-served across all requestors."""

    def grant(self, cycle: int, pending: dict):
        oldest = None
        for name, queue in pending.items():
            head = queue[0]
            key = (head.issued_cycle, name)
            if oldest is None or key < oldest[0]:
                oldest = (key, name)
        return oldest[1] if oldest else None


class RoundRobinArbiter(Arbiter):
    """Work-conserving round-robin over the declared requestor order."""

    def __init__(self, requestors: list):
        self.requestors = list(requestors)
        self._next = 0

    def grant(self, cycle: int, pending: dict):
        if not pending:
            return None
        for offset in range(len(self.requestors)):
            candidate = self.requestors[
                (self._next + offset) % len(self.requestors)]
            if candidate in pending:
                self._next = (self.requestors.index(candidate) + 1) \
                    % len(self.requestors)
                return candidate
        return None


class TdmArbiter(Arbiter):
    """Time-division multiplexing over a fixed slot table.

    Slot ``cycle mod len(table)`` belongs exclusively to
    ``table[slot]``; an idle slot is never donated, which is precisely
    what buys composability at the price of utilisation.
    """

    def __init__(self, slot_table: list):
        if not slot_table:
            raise ValueError("TDM slot table must be non-empty")
        self.slot_table = list(slot_table)

    def grant(self, cycle: int, pending: dict):
        owner = self.slot_table[cycle % len(self.slot_table)]
        if owner not in pending:
            return None
        # A transaction may only start if it finishes within the owner's
        # consecutive slot run; otherwise it would steal cycles from the
        # next slot's owner and destroy composability.
        latency = pending[owner][0].latency
        table_len = len(self.slot_table)
        fits = all(self.slot_table[(cycle + i) % table_len] == owner
                   for i in range(latency))
        return owner if fits else None


@dataclass
class BusStatistics:
    """Per-requestor service accounting."""

    served: int = 0
    total_wait_cycles: int = 0
    completion_times: list = field(default_factory=list)


class SharedBus:
    """A single shared resource serving one transaction at a time."""

    def __init__(self, arbiter: Arbiter):
        self.arbiter = arbiter
        self.cycle = 0
        self._queues = {}
        self._busy_until = 0
        self._active = None
        self.stats = {}
        self.dropped = []

    def submit(self, transaction: Transaction) -> None:
        if PERF.enabled:
            PERF.inc("soc.bus.requests")
        if FAULTS.enabled:
            spec = FAULTS.fire("soc.bus.submit")
            if spec is not None:
                if spec.model == BUS_DROP:
                    self.dropped.append(transaction)
                    if AUDIT.enabled:
                        AUDIT.emit("soc.bus", "bus-transaction-dropped",
                                   severity="warning",
                                   requestor=transaction.requestor)
                    return
                if spec.model == BUS_CORRUPT:
                    transaction.corrupted = True
                elif spec.model == BUS_DELAY:
                    transaction.latency += max(1, spec.magnitude)
        queue = self._queues.setdefault(transaction.requestor, deque())
        queue.append(transaction)
        self.stats.setdefault(transaction.requestor, BusStatistics())

    def pending_count(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def step(self) -> list:
        """Advance one cycle; returns transactions completed this cycle."""
        completed = []
        if self._active is not None and self.cycle >= self._busy_until:
            transaction = self._active
            transaction.completed_cycle = self.cycle
            stats = self.stats[transaction.requestor]
            stats.served += 1
            stats.total_wait_cycles += (self.cycle
                                        - transaction.issued_cycle)
            stats.completion_times.append(self.cycle)
            completed.append(transaction)
            self._active = None
        if self._active is None:
            pending = {name: queue for name, queue in self._queues.items()
                       if queue}
            granted = self.arbiter.grant(self.cycle, pending)
            if granted is not None:
                transaction = self._queues[granted].popleft()
                self._active = transaction
                self._busy_until = self.cycle + transaction.latency
                if PERF.enabled:
                    PERF.inc("soc.bus.grants")
            elif pending and PERF.enabled:
                # Traffic waiting but nobody served: an arbitration
                # stall (e.g. an idle TDM slot that is never donated).
                PERF.inc("soc.bus.stall_cycles")
        if PERF.enabled:
            PERF.inc("soc.bus.cycles")
            if completed:
                PERF.inc("soc.bus.served", len(completed))
                for transaction in completed:
                    PERF.inc("soc.bus.wait_cycles",
                             transaction.completed_cycle
                             - transaction.issued_cycle)
        self.cycle += 1
        return completed

    def run_until_drained(self, max_cycles: int = 1_000_000) -> list:
        """Step until all queues are empty; returns all completions.

        Raises ``RuntimeError`` once ``max_cycles`` is reached with
        traffic still pending — the watchdog that turns a wedged bus
        (e.g. a transaction that can never fit its TDM slot run) into
        a detected fault instead of a hang.
        """
        completed = []
        while (self.pending_count() or self._active is not None):
            if self.cycle >= max_cycles:
                if AUDIT.enabled:
                    AUDIT.emit("soc.bus", "bus-watchdog",
                               severity="critical", cycle=self.cycle,
                               pending=self.pending_count())
                raise RuntimeError("bus did not drain within cycle budget")
            completed.extend(self.step())
        return completed

"""Simulated RISC-V SoC substrate.

The paper's evaluation platform is a Chipyard-built Rocket SoC on a
VCU118 FPGA (four cores, PMP enabled, 2 GB DRAM).  This package models
the architectural pieces the security stack actually exercises:

* :mod:`~repro.soc.memory` — physical memory + memory map
* :mod:`~repro.soc.pmp` — RISC-V PMP registers and the check algorithm
* :mod:`~repro.soc.cpu` — harts with privilege modes and stack accounting
* :mod:`~repro.soc.bus` — a shared bus with FCFS / round-robin / TDM
  arbitration (the composability substrate)
"""

from .memory import (AccessFault, MemoryMap, PhysicalMemory, Region,
                     default_memory_map, BOOTROM_BASE, BOOTROM_SIZE,
                     DRAM_BASE, DRAM_SIZE, MMIO_BASE, MMIO_SIZE)
from .pmp import (AddressMode, Pmp, PmpEntry, PrivilegeMode,
                  napot_address, PMP_ENTRY_COUNT)
from .cpu import Hart, StackModel, StackOverflowFault
from .bus import (Arbiter, BusStatistics, FcfsArbiter, RoundRobinArbiter,
                  SharedBus, TdmArbiter, Transaction)

__all__ = [
    "AccessFault", "MemoryMap", "PhysicalMemory", "Region",
    "default_memory_map", "BOOTROM_BASE", "BOOTROM_SIZE", "DRAM_BASE",
    "DRAM_SIZE", "MMIO_BASE", "MMIO_SIZE",
    "AddressMode", "Pmp", "PmpEntry", "PrivilegeMode", "napot_address",
    "PMP_ENTRY_COUNT",
    "Hart", "StackModel", "StackOverflowFault",
    "Arbiter", "BusStatistics", "FcfsArbiter", "RoundRobinArbiter",
    "SharedBus", "TdmArbiter", "Transaction",
]

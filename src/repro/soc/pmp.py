"""RISC-V Physical Memory Protection (privileged spec v1.12 semantics).

PMP is the isolation primitive of the whole paper: Keystone's security
monitor programs it to carve enclaves out of DRAM (Section III-B), and
the hardened FreeRTOS uses it as an MPU substitute for inter-task
protection (Section III-D).

The model implements the architectural behaviour the software stack
depends on:

* 16 entries, statically prioritised (lowest index wins),
* address-matching modes OFF / TOR / NA4 / NAPOT,
* R/W/X permission bits,
* the L (lock) bit, which makes an entry apply to M-mode as well,
* default-deny for S/U modes when no entry matches, default-allow for M.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum

from ..obs.audit import AUDIT
from ..obs.perf import PERF


class PrivilegeMode(IntEnum):
    """RISC-V privilege levels used by the simulator."""

    USER = 0
    SUPERVISOR = 1
    MACHINE = 3


class AddressMode(Enum):
    """PMP address-matching mode (the A field of pmpcfg)."""

    OFF = 0
    TOR = 1
    NA4 = 2
    NAPOT = 3


PMP_ENTRY_COUNT = 16

# Permission bit masks within a pmpcfg byte.
PMP_R = 1 << 0
PMP_W = 1 << 1
PMP_X = 1 << 2
PMP_L = 1 << 7


@dataclass
class PmpEntry:
    """One pmpcfg/pmpaddr pair.

    ``address`` follows the hardware convention: it holds bits [XLEN-1:2]
    of the physical address, i.e. ``physical >> 2``.
    """

    mode: AddressMode = AddressMode.OFF
    readable: bool = False
    writable: bool = False
    executable: bool = False
    locked: bool = False
    address: int = 0

    def config_byte(self) -> int:
        value = self.mode.value << 3
        if self.readable:
            value |= PMP_R
        if self.writable:
            value |= PMP_W
        if self.executable:
            value |= PMP_X
        if self.locked:
            value |= PMP_L
        return value

    @classmethod
    def from_config_byte(cls, config: int, address: int) -> "PmpEntry":
        return cls(
            mode=AddressMode((config >> 3) & 0x3),
            readable=bool(config & PMP_R),
            writable=bool(config & PMP_W),
            executable=bool(config & PMP_X),
            locked=bool(config & PMP_L),
            address=address,
        )

    def range_for(self, previous_address: int) -> tuple:
        """The matched physical byte range ``[lo, hi)`` of this entry.

        ``previous_address`` is the pmpaddr of the preceding entry,
        needed for TOR.  Returns ``(0, 0)`` when the entry is OFF.
        """
        if self.mode is AddressMode.OFF:
            return (0, 0)
        if self.mode is AddressMode.TOR:
            lo = previous_address << 2
            hi = self.address << 2
            return (lo, hi) if lo < hi else (0, 0)
        if self.mode is AddressMode.NA4:
            lo = self.address << 2
            return (lo, lo + 4)
        # NAPOT: trailing ones of the stored address encode the size.
        trailing = 0
        value = self.address
        while value & 1:
            trailing += 1
            value >>= 1
        size = 1 << (trailing + 3)
        lo = (self.address & ~((1 << trailing) - 1)) << 2
        return (lo, lo + size)


def napot_address(base: int, size: int) -> int:
    """Encode a naturally-aligned power-of-two region as a pmpaddr value.

    Raises ``ValueError`` if ``size`` is not a power of two >= 8 or the
    base is not aligned to it.
    """
    if size < 8 or size & (size - 1):
        raise ValueError(f"NAPOT size must be a power of two >= 8: {size}")
    if base % size:
        raise ValueError(f"base {base:#x} not aligned to size {size:#x}")
    return (base >> 2) | ((size // 8) - 1)


class Pmp:
    """The per-hart PMP register file with the standard check algorithm."""

    def __init__(self, entry_count: int = PMP_ENTRY_COUNT):
        self.entries = [PmpEntry() for _ in range(entry_count)]

    def set_entry(self, index: int, entry: PmpEntry,
                  mode: PrivilegeMode = PrivilegeMode.MACHINE) -> None:
        """Program entry ``index``; only M-mode may write, and locked
        entries are immutable until reset (as in hardware)."""
        if mode is not PrivilegeMode.MACHINE:
            raise PermissionError("PMP registers are M-mode only")
        if self.entries[index].locked:
            raise PermissionError(f"PMP entry {index} is locked")
        self.entries[index] = entry

    def set_napot(self, index: int, base: int, size: int, *,
                  readable: bool = False, writable: bool = False,
                  executable: bool = False, locked: bool = False,
                  mode: PrivilegeMode = PrivilegeMode.MACHINE) -> None:
        """Convenience: program a NAPOT entry covering ``[base, base+size)``."""
        entry = PmpEntry(mode=AddressMode.NAPOT, readable=readable,
                         writable=writable, executable=executable,
                         locked=locked,
                         address=napot_address(base, size))
        self.set_entry(index, entry, mode=mode)

    def clear_entry(self, index: int,
                    mode: PrivilegeMode = PrivilegeMode.MACHINE) -> None:
        self.set_entry(index, PmpEntry(), mode=mode)

    def _matching_entry(self, address: int, size: int):
        previous = 0
        for entry in self.entries:
            lo, hi = entry.range_for(previous)
            previous = entry.address
            if entry.mode is AddressMode.OFF:
                continue
            if lo <= address and address + size <= hi:
                return entry
            # A partial overlap fails the access outright (spec: accesses
            # must not straddle a PMP boundary with differing permissions;
            # we conservatively deny).
            if lo < address + size and address < hi:
                return PmpEntry(mode=entry.mode, locked=True)
        return None

    def check(self, address: int, size: int, access: str,
              mode: PrivilegeMode) -> bool:
        """True iff an ``access`` ('read'/'write'/'exec') is permitted."""
        if access not in ("read", "write", "exec"):
            raise ValueError(f"unknown access type {access!r}")
        entry = self._matching_entry(address, size)
        if entry is None:
            # No matching entry: M succeeds, S/U fail.
            allowed = mode is PrivilegeMode.MACHINE
        elif mode is PrivilegeMode.MACHINE and not entry.locked:
            allowed = True
        elif access == "read":
            allowed = entry.readable
        elif access == "write":
            allowed = entry.writable
        else:
            allowed = entry.executable
        if PERF.enabled:
            PERF.inc("soc.pmp.checks")
            if not allowed:
                PERF.inc("soc.pmp.denials")
        if not allowed and AUDIT.enabled:
            AUDIT.emit("soc.pmp", "pmp-denial", severity="warning",
                       access=access, mode=int(mode), address=address,
                       size=size)
        return allowed

    def active_ranges(self) -> list:
        """The (lo, hi, entry) tuples of all non-OFF entries (for tests
        and for the security monitor's sanity dump)."""
        ranges = []
        previous = 0
        for entry in self.entries:
            lo, hi = entry.range_for(previous)
            previous = entry.address
            if entry.mode is not AddressMode.OFF and lo < hi:
                ranges.append((lo, hi, entry))
        return ranges

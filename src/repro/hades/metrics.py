"""Performance metrics and optimization goals for HADES.

Paper Section III-A: "HADES considers several performance metrics such
as cycle count, latency, area, or, in the case of masked
implementations, randomness requirements.  For trade-offs, HADES also
considers common combinations such as the area-latency-product."

Table II uses exactly the goals modelled here: L (latency), A (area),
R (randomness), ALP (area-latency product) and ALRP
(area-latency-randomness product).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


@dataclass(frozen=True)
class Metrics:
    """Predicted implementation cost of one design point.

    Attributes
    ----------
    area_kge:
        Silicon area in kilo gate equivalents.
    latency_cc:
        End-to-end latency in clock cycles at the reference clock
        (cycle count scaled by the design's relative critical path, so
        that unrolling cannot cheat the metric).
    randomness_bits:
        Fresh random bits consumed per operation (0 when unmasked).
    """

    area_kge: float
    latency_cc: float
    randomness_bits: float = 0.0

    def __post_init__(self):
        if self.area_kge < 0 or self.latency_cc < 0 or \
                self.randomness_bits < 0:
            raise ValueError("metrics must be non-negative")

    @property
    def area_latency_product(self) -> float:
        return self.area_kge * self.latency_cc

    @property
    def area_latency_randomness_product(self) -> float:
        return self.area_kge * self.latency_cc * self.randomness_bits

    def combine(self, other: "Metrics") -> "Metrics":
        """Component-wise accumulation (used when a template instantiates
        several independent subcomponents)."""
        return Metrics(self.area_kge + other.area_kge,
                       self.latency_cc + other.latency_cc,
                       self.randomness_bits + other.randomness_bits)

    def scaled(self, area: float = 1.0, latency: float = 1.0,
               randomness: float = 1.0) -> "Metrics":
        return Metrics(self.area_kge * area, self.latency_cc * latency,
                       self.randomness_bits * randomness)


class OptimizationGoal(Enum):
    """What the explorer minimises (Table II column "Opt.")."""

    LATENCY = "L"
    AREA = "A"
    RANDOMNESS = "R"
    AREA_LATENCY = "ALP"
    AREA_LATENCY_RANDOMNESS = "ALRP"

    def score(self, metrics: Metrics) -> float:
        """The scalar this goal minimises (lower is better)."""
        if self is OptimizationGoal.LATENCY:
            return metrics.latency_cc
        if self is OptimizationGoal.AREA:
            return metrics.area_kge
        if self is OptimizationGoal.RANDOMNESS:
            return metrics.randomness_bits
        if self is OptimizationGoal.AREA_LATENCY:
            return metrics.area_latency_product
        return metrics.area_latency_randomness_product

    @property
    def needs_masking(self) -> bool:
        """R and ALRP are only meaningful for masked designs (d >= 1)."""
        return self in (OptimizationGoal.RANDOMNESS,
                        OptimizationGoal.AREA_LATENCY_RANDOMNESS)

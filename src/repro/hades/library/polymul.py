"""Polynomial multiplier templates for lattice cryptography.

Two Table I rows live here:

* ``sparse_polymul`` (372 configurations) — multiplication by a sparse
  (fixed-weight) polynomial, the core of BIKE's bit-flipping decoder:
  4 (coefficient parallelism) x 3 (rotation unit) x 31 (nested
  accumulator adder) = 372.
* ``polymul`` (1302 configurations) — dense modular polynomial
  multiplication as used by Kyber: a modular adder (42) feeding an
  accumulator tree (31), 42 x 31 = 1302.

Both templates nest the generic adder family — the paper's showcase of
template reuse.
"""

from __future__ import annotations

from ..masking import linear_area_factor, register_area_ge
from ..metrics import Metrics
from ..template import Template
from .adders import adder_family, adder_mod_q

_N = 256                 # polynomial length (Kyber-style)
_COEFF_BITS = 12


def _sparse_cost(params, subs, context):
    order = context.masking_order
    accumulator = subs["accumulator"]
    parallelism = params["coeff_parallelism"]
    rotation = params["rotation_unit"]
    rotation_area = {"naive": 300.0, "log": 900.0, "barrel": 2600.0}
    rotation_cycles = {"naive": 8.0, "log": 3.0, "barrel": 1.0}
    area = (parallelism * accumulator.area_kge * 1000.0
            + rotation_area[rotation] * linear_area_factor(order)
            + register_area_ge(_N, order)
            + 800.0) / 1000.0
    # One rotate + accumulate per nonzero coefficient; weight ~ N/4.
    weight = _N // 4
    steps = -(-weight // parallelism)
    latency = steps * (rotation_cycles[rotation]
                       + accumulator.latency_cc) + 4
    randomness = accumulator.randomness_bits * parallelism
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def sparse_polymul() -> Template:
    """Sparse polynomial multiplier (Table I: 372 configurations)."""
    return Template(
        "sparse_polymul", _sparse_cost,
        parameters={
            "coeff_parallelism": (1, 2, 4, 8),
            "rotation_unit": ("barrel", "log", "naive"),
        },
        slots={"accumulator": adder_family()})


def _polymul_cost(params, subs, context):
    order = context.masking_order
    mod_adder = subs["mod_adder"]
    accumulator = subs["accumulator"]
    # Schoolbook MAC datapath: one modular butterfly per cycle pair,
    # with the accumulator tree folding partial products.
    mac_area = (mod_adder.area_kge + accumulator.area_kge) * 1000.0
    multiplier_ge = _COEFF_BITS * _COEFF_BITS * 2.8 \
        * linear_area_factor(order) ** 2
    area = (mac_area + multiplier_ge + register_area_ge(
        _N * _COEFF_BITS // 8, order) + 1200.0) / 1000.0
    ntt_stages = 8                                 # log2(256)
    butterflies = _N // 2 * ntt_stages
    latency = (butterflies / 2.0) * (mod_adder.latency_cc * 0.5
                                     + accumulator.latency_cc * 0.25) + 16
    randomness = (mod_adder.randomness_bits
                  + accumulator.randomness_bits) * 2
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def polymul() -> Template:
    """Dense modular polynomial multiplier (Table I: 1302 = 42 x 31)."""
    return Template(
        "polymul", _polymul_cost,
        slots={"mod_adder": (adder_mod_q(),),
               "accumulator": adder_family()})

"""AES-256 hardware template — the CONVOLVE payload cipher (Table II).

"For CONVOLVE, we are specifically interested in AES-256 as the
algorithm for payload encryption" (Section III-A).  The template spans
1440 configurations:

==================  ========================================  ======
parameter           choices                                   count
==================  ========================================  ======
datapath            8 / 32 / 128 bits                             3
sbox                lut, canright, boyar_peralta,
                    comp_gf256, comp_gf16                         5
pipeline            0-3 extra register cuts                       4
key_schedule        online, precomputed                           2
mixcolumns          xtime_chain, factored, lut                    3
round_unroll        1 (round-based), 14 (fully unrolled)          2
sbox_instances      shared, parallel                              2
==================  ========================================  ======

Masking: table-lookup S-boxes cannot be masked, so ``lut`` is
infeasible at d >= 1; the tower-field S-boxes replace their AND gates
by HPC gadgets with per-architecture AND counts, pipeline stages and
per-evaluation fresh-randomness budgets.  Randomness is reported as
fresh bits per cycle (the RNG bandwidth the design demands) — the
quantity that separates Table II's R-optimal designs: a fully unrolled
masked pipeline keeps all 14 x 20 S-boxes drawing randomness every
cycle, while a byte-serial design with one shared S-box draws one
S-box's worth.

The constants are calibrated against Table II; EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

from __future__ import annotations

from ..masking import and_gadget_area_ge, and_gadget_randomness_bits
from ..metrics import Metrics
from ..template import InfeasibleConfiguration, Template

ROUNDS = 14  # AES-256

# Per-S-box-architecture properties.
#   area_ge: unmasked combinational area
#   linear_ge: linear (XOR) part, replicated per share when masked
#   ands: AND gates that become HPC gadgets when masked
#   stages: register stages of the masked S-box (HPC layers)
#   rand_base: fresh bits per evaluation at d(d+1)/2 = 1
#   serial_penalty: extra cycles per byte in the 8-bit datapath (masked)
_SBOX = {
    "lut": {"area_ge": 1638.0, "linear_ge": 0.0, "ands": 0,
            "stages": 0, "internal_bits": 0, "rand_base": 0,
            "serial_refresh": 0, "serial_penalty": 0, "maskable": False},
    "canright": {"area_ge": 260.0, "linear_ge": 420.0, "ands": 36,
                 "stages": 6, "internal_bits": 18, "rand_base": 72,
                 "serial_refresh": 72, "serial_penalty": 7,
                 "maskable": True},
    "boyar_peralta": {"area_ge": 310.0, "linear_ge": 380.0, "ands": 32,
                      "stages": 5, "internal_bits": 40, "rand_base": 58,
                      "serial_refresh": 30, "serial_penalty": 9,
                      "maskable": True},
    "comp_gf256": {"area_ge": 420.0, "linear_ge": 450.0, "ands": 45,
                   "stages": 6, "internal_bits": 30, "rand_base": 90,
                   "serial_refresh": 30, "serial_penalty": 5,
                   "maskable": True},
    "comp_gf16": {"area_ge": 235.0, "linear_ge": 270.0, "ands": 34,
                  "stages": 8, "internal_bits": 20, "rand_base": 40,
                  "serial_refresh": 28, "serial_penalty": 14,
                  "maskable": True},
}

_MIXCOLUMNS_GE = {"xtime_chain": 290.0, "factored": 335.0, "lut": 620.0}

_FF_GE = 4.5
_SERIAL_REGFILE_GE = 384 * 12.0   # byte-addressable state/key storage
_WORD_REGFILE_GE = 384 * 9.0      # word-addressable state/key storage


def _sbox_area_ge(arch: dict, order: int) -> float:
    """Area of one S-box instance at masking order ``order``."""
    if order == 0:
        return arch["area_ge"]
    shares = order + 1
    gadgets = arch["ands"] * and_gadget_area_ge(order)
    linear = arch["linear_ge"] * shares
    stage_registers = (arch["stages"] * arch["internal_bits"] * _FF_GE
                       * shares)
    return gadgets + linear + stage_registers


def _sbox_rand_per_eval(arch: dict, order: int, serial: bool) -> float:
    """Fresh random bits one S-box evaluation consumes per cycle.

    Serial datapaths reuse one gadget pipeline for successive dependent
    bytes, which requires refreshing the recombined tower-field inputs
    between evaluations — an extra randomness term pipelined designs
    avoid.  The compact Canright structure reuses intermediates the
    most aggressively and pays the largest refresh.
    """
    if order == 0:
        return 0.0
    per_eval = arch["rand_base"] + (arch["serial_refresh"] if serial
                                    else 0)
    return per_eval * and_gadget_randomness_bits(order)


def _active_sboxes(params: dict) -> int:
    """S-box instances present in hardware (and, for the pipelined
    designs, simultaneously active)."""
    datapath = params["datapath"]
    unroll = params["round_unroll"]
    if datapath == 128:
        per_round = 16 + (4 if params["key_schedule"] == "online" else 0)
        count = per_round * unroll
        if params["key_schedule"] == "precomputed":
            count += 4                 # schedule precomputation unit
        return count
    if datapath == 32:
        return 4 + (4 if params["sbox_instances"] == "parallel" else 1)
    # 8-bit datapath: one data S-box, key S-box shared or separate.
    return 1 if params["sbox_instances"] == "shared" else 2


def _latency_cycles(params: dict, arch: dict, order: int) -> float:
    datapath = params["datapath"]
    unroll = params["round_unroll"]
    pipeline = params["pipeline"]
    stages = arch["stages"] if order > 0 else 0
    if datapath == 128:
        if order == 0:
            # At the reference clock the LUT S-box fits one round per
            # cycle; the deeper tower-field S-boxes need two.  Key
            # expansion and I/O add 5.
            round_cycles = 1 if params["sbox"] == "lut" else 2
            cycles = ROUNDS * round_cycles + 5
        elif unroll == ROUNDS:
            # Fully unrolled masked pipeline: latency is the gadget
            # stage count per round, plus output registration.
            cycles = ROUNDS * stages + 1
        else:
            # Round-based masked: the same stages per round, plus the
            # feedback path (load, mux, final) overhead of 5.
            cycles = ROUNDS * stages + 5
    elif datapath == 32:
        if order == 0:
            cycles = ROUNDS * 5 + 4
        else:
            # Four dependent word groups share one masked S-box
            # pipeline per round; dependencies prevent overlapping.
            cycles = ROUNDS * 4 * stages + 4
    else:
        shared_penalty = 16 if params["sbox_instances"] == "shared" else 12
        round_cycles = (82 + shared_penalty
                        + (16 * arch["serial_penalty"] if order else 0))
        cycles = ROUNDS * round_cycles + 6
    if params["key_schedule"] == "precomputed":
        cycles += ROUNDS if datapath == 128 else 4 * ROUNDS
    return cycles + pipeline


def _area_kge(params: dict, arch: dict, order: int) -> float:
    datapath = params["datapath"]
    unroll = params["round_unroll"]
    shares = order + 1
    area = _active_sboxes(params) * _sbox_area_ge(arch, order)
    # MixColumns: per 32-bit column instantiated.
    columns = {128: 4, 32: 1, 8: 1}[datapath] * unroll
    area += columns * _MIXCOLUMNS_GE[params["mixcolumns"]] * shares
    # State + key registers (AES-256: 128-bit state, 256-bit key);
    # unrolled designs keep a state/key register per round stage.
    stage_copies = unroll if datapath == 128 else 1
    area += (128 + 256) * _FF_GE * shares * stage_copies
    if params["key_schedule"] == "precomputed":
        area += 15 * 128 * _FF_GE * shares    # round-key store
    # Narrow datapaths keep state and key in an addressable register
    # file rather than plain flops (byte-wide for the 8-bit datapath,
    # word-wide for the 32-bit one).
    if datapath == 8:
        area += _SERIAL_REGFILE_GE * shares
    elif datapath == 32:
        area += _WORD_REGFILE_GE * shares
    # Datapath muxing and control; masked control is replicated per
    # share domain.
    control = {128: 3700.0, 32: 6500.0, 8: 6000.0}[datapath]
    area += control * (1 + 0.6 * order)
    area += 16.0 * datapath * shares
    area += params["pipeline"] * datapath * _FF_GE * shares
    return area / 1000.0


def _randomness_per_cycle(params: dict, arch: dict, order: int) -> float:
    if order == 0:
        return 0.0
    serial = params["datapath"] == 8
    return (_active_sboxes(params)
            * _sbox_rand_per_eval(arch, order, serial))


def _aes_cost(params, subs, context) -> Metrics:
    order = context.masking_order
    arch = _SBOX[params["sbox"]]
    if order > 0 and not arch["maskable"]:
        raise InfeasibleConfiguration("table-lookup S-box cannot be masked")
    if params["round_unroll"] == ROUNDS and params["datapath"] != 128:
        raise InfeasibleConfiguration("unrolling needs the full datapath")
    return Metrics(
        area_kge=_area_kge(params, arch, order),
        latency_cc=_latency_cycles(params, arch, order),
        randomness_bits=_randomness_per_cycle(params, arch, order))


def aes256() -> Template:
    """The AES-256 template (Table I row "AES": 1440 configurations)."""
    return Template(
        "aes256", _aes_cost,
        parameters={
            "datapath": (8, 32, 128),
            "sbox": tuple(sorted(_SBOX)),
            "pipeline": (0, 1, 2, 3),
            "key_schedule": ("online", "precomputed"),
            "mixcolumns": tuple(sorted(_MIXCOLUMNS_GE)),
            "round_unroll": (1, ROUNDS),
            "sbox_instances": ("shared", "parallel"),
        })

"""Keccak-f[1600] hardware template (Table I row "Keccak": 14 configs).

"In CONVOLVE, we also realize Keccak in hardware as it is an important
subroutine of BIKE, CRYSTALS-Dilithium and can be used by the TEE for
signing as well" (Section III-A).

Two architecture families fill the 14-point space:

* ``keccak_full_width`` — the whole 1600-bit state in flops, 1 to 24
  rounds unrolled per cycle: unroll in {1, 2, 3, 4, 6, 8, 12, 24} (8);
* ``keccak_slice_serial`` — a slice-serial datapath processing
  ``slice_width`` of the 64 lanes' slices per cycle:
  slice_width in {1, 2, 4, 8, 16, 32} (6).

Only chi is non-linear (one AND+NOT per state bit), so a masked Keccak
pays 1600 gadgets per round-equivalent of logic — the reason the paper
keeps full PQC schemes off the SoC and accelerates only the permutation.
"""

from __future__ import annotations

from ..masking import (and_gadget_area_ge, and_gadget_latency_stages,
                       and_gadget_randomness_bits, linear_area_factor,
                       register_area_ge)
from ..metrics import Metrics
from ..template import Template

ROUNDS = 24
STATE_BITS = 1600
_CHI_ANDS_PER_ROUND = STATE_BITS      # one AND per state bit
_LINEAR_GE_PER_ROUND = 4200.0         # theta/rho/pi/iota XOR network
_XOR_GE = 2.2


def _full_width_cost(params, subs, context):
    order = context.masking_order
    unroll = params["unroll"]
    ands = _CHI_ANDS_PER_ROUND * unroll
    area = (ands * and_gadget_area_ge(order)
            + _LINEAR_GE_PER_ROUND * unroll * linear_area_factor(order)
            + register_area_ge(STATE_BITS, order)
            + 900.0) / 1000.0
    stage = and_gadget_latency_stages(order)
    if order == 0:
        # Deep unrolled combinational chains stretch the reference
        # clock; latency in reference cycles barely improves.
        cycles = ROUNDS // unroll
        path_factor = 1.0 + 0.35 * (unroll - 1)
        latency = cycles * path_factor
    else:
        # Every chi layer inserts a gadget register stage: the masked
        # latency floor is one stage per round regardless of unrolling;
        # unrolling only removes the per-pass feedback cycles.
        latency = ROUNDS * stage + ROUNDS // unroll
    randomness = ands * and_gadget_randomness_bits(order)
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def _slice_serial_cost(params, subs, context):
    order = context.masking_order
    width = params["slice_width"]
    slices_per_round = 64 // width
    ands = _CHI_ANDS_PER_ROUND * width // 64
    area = (ands * and_gadget_area_ge(order)
            + (_LINEAR_GE_PER_ROUND * width / 64.0)
            * linear_area_factor(order)
            + register_area_ge(STATE_BITS, order)   # full state kept
            + 1400.0) / 1000.0                      # slice addressing
    stage = and_gadget_latency_stages(order)
    cycles = ROUNDS * slices_per_round * (1 + stage) + 2
    randomness = ands * and_gadget_randomness_bits(order)
    return Metrics(area_kge=area, latency_cc=cycles,
                   randomness_bits=randomness)


def keccak_candidates() -> tuple:
    """The two Keccak architectures (8 + 6 = 14 configurations)."""
    return (
        Template("keccak_full_width", _full_width_cost,
                 parameters={"unroll": (1, 2, 3, 4, 6, 8, 12, 24)}),
        Template("keccak_slice_serial", _slice_serial_cost,
                 parameters={"slice_width": (1, 2, 4, 8, 16, 32)}),
    )


def keccak() -> Template:
    """Wrapper template over both families (Table I: 14 configurations)."""
    return Template(
        "keccak", lambda params, subs, context: subs["core"],
        slots={"core": keccak_candidates()})

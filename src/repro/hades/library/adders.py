"""Adder templates: the workhorse subcomponents of the HADES library.

Adders appear as nested slots in almost every other template (polynomial
multipliers, ChaCha's ARX network, Kyber's butterflies), and they are the
unit HADES is compared against AGEMA on ("HADES produces adders which
outperform those generated with AGEMA").

The standard family exposes 31 configurations:

=================  ==========================================  ======
architecture       local parameters                            counts
=================  ==========================================  ======
ripple_carry       —                                                1
carry_lookahead    block in {2, 4, 8, 16}                           4
carry_skip         block in {2, 4, 8, 16}                           4
carry_select       block in {2, 4, 8, 16}                           4
carry_increment    block in {2, 4, 8, 16}                           4
parallel_prefix    topology in {KS, BK, SK, HC, LF} x radix 2/4    10
carry_save_hybrid  compressor in {3:2, 4:2}                         2
digit_serial       digit in {8, 16}                                 2
=================  ==========================================  ======

The ARX variant (for ChaCha's mod-2^32 additions) drops the carry-save
hybrids (no redundant form survives the XOR/rotate feedback), drops the
Ladner-Fischer prefix topology and widens the serial digit choice —
30 configurations.

Every architecture is described by a *netlist statistics* function
(AND gates, AND depth, XOR gates, cycles, path, state bits) from which
the masked cost is assembled: masking replaces each AND by an HPC
gadget (area quadratic in shares, d(d+1)/2 fresh bits each) and inserts
one register stage per AND level of the carry network.  The same
statistics feed the AGEMA baseline (:mod:`repro.hades.agema`), which
consumes the identical synthesized netlist but masks it post hoc.
"""

from __future__ import annotations

import math

from ..masking import (and_gadget_area_ge, and_gadget_latency_stages,
                       and_gadget_randomness_bits, linear_area_factor,
                       register_area_ge)
from ..metrics import Metrics
from ..template import Template

_FULL_ADDER_GE = 5.5
_XOR_GE = 2.2


def _log2(w: int) -> int:
    return max(1, math.ceil(math.log2(w)))


# -- netlist statistics per architecture ------------------------------------
# Each returns a dict with: and_gates, and_depth, xor_gates, base_cycles,
# path_factor, state_bits.


def _ripple_stats(params: dict, width: int) -> dict:
    return {"and_gates": 3 * width, "and_depth": width,
            "xor_gates": 2 * width, "base_cycles": 1,
            "path_factor": 2 * width / 16.0, "state_bits": 0}


def _lookahead_stats(params: dict, width: int) -> dict:
    block = params["block"]
    blocks = math.ceil(width / block)
    return {"and_gates": width * (block + 1),
            "and_depth": 2 * math.ceil(math.log2(block + 1)) + blocks,
            "xor_gates": 3 * width, "base_cycles": 1,
            "path_factor": (2 * blocks + block) / 16.0, "state_bits": 0}


def _skip_stats(params: dict, width: int) -> dict:
    block = params["block"]
    blocks = math.ceil(width / block)
    return {"and_gates": 3 * width + blocks,
            "and_depth": block + blocks, "xor_gates": 2 * width,
            "base_cycles": 1,
            "path_factor": (2 * block + blocks) / 16.0, "state_bits": 0}


def _select_stats(params: dict, width: int) -> dict:
    block = params["block"]
    blocks = math.ceil(width / block)
    return {"and_gates": 6 * width, "and_depth": block + blocks,
            "xor_gates": 4 * width + blocks, "base_cycles": 1,
            "path_factor": (2 * block + blocks) / 16.0, "state_bits": 0}


def _increment_stats(params: dict, width: int) -> dict:
    block = params["block"]
    blocks = math.ceil(width / block)
    return {"and_gates": 4 * width, "and_depth": block + blocks - 1,
            "xor_gates": 3 * width, "base_cycles": 1,
            "path_factor": (2 * block + blocks - 1) / 16.0,
            "state_bits": 0}


_PREFIX_OP_COUNT = {
    "kogge_stone": lambda w: w * _log2(w),
    "brent_kung": lambda w: 2 * w - _log2(w) - 2,
    "sklansky": lambda w: (w // 2) * _log2(w),
    "han_carlson": lambda w: (w // 2) * _log2(w) + w,
    "ladner_fischer": lambda w: (w // 2) * _log2(w) + w // 2,
}

_PREFIX_DEPTH = {
    "kogge_stone": lambda w: _log2(w),
    "brent_kung": lambda w: 2 * _log2(w) - 1,
    "sklansky": lambda w: _log2(w),
    "han_carlson": lambda w: _log2(w) + 1,
    "ladner_fischer": lambda w: _log2(w) + 1,
}


def _prefix_stats(params: dict, width: int) -> dict:
    cells = _PREFIX_OP_COUNT[params["topology"]](width)
    depth = _PREFIX_DEPTH[params["topology"]](width)
    if params["radix"] == 4:
        cells = math.ceil(cells * 1.4)        # fatter cells ...
        depth = max(1, math.ceil(depth / 2))  # ... half the levels
    # Each prefix cell: 2 ANDs (g, p merge) + 1 XOR.
    return {"and_gates": 2 * cells, "and_depth": depth,
            "xor_gates": cells + 2 * width, "base_cycles": 1,
            "path_factor": depth / 8.0, "state_bits": 0}


def _carry_save_stats(params: dict, width: int) -> dict:
    rows = 2 if params["compressor"] == "4:2" else 1
    return {"and_gates": 3 * width * rows, "and_depth": 2 * rows,
            "xor_gates": 3 * width * rows, "base_cycles": 1,
            "path_factor": (2 + rows) / 8.0, "state_bits": 2 * width}


def _serial_stats(params: dict, width: int) -> dict:
    digit = params["digit"]
    return {"and_gates": 3 * digit, "and_depth": digit,
            "xor_gates": 2 * digit,
            "base_cycles": math.ceil(width / digit),
            "path_factor": digit / 16.0, "state_bits": width + digit}


NETLIST_STATS = {
    "ripple_carry": _ripple_stats,
    "carry_lookahead": _lookahead_stats,
    "carry_skip": _skip_stats,
    "carry_select": _select_stats,
    "carry_increment": _increment_stats,
    "parallel_prefix": _prefix_stats,
    "carry_save_hybrid": _carry_save_stats,
    "digit_serial": _serial_stats,
}


def netlist_stats(architecture: str, params: dict, width: int) -> dict:
    """Gate-level statistics of one adder design — what a synthesized
    netlist hands to AGEMA-style post-processing."""
    return NETLIST_STATS[architecture](params, width)


def assemble_metrics(stats: dict, context) -> Metrics:
    """HADES-native cost assembly from netlist statistics.

    Masked designs pay one HPC gadget per AND and one register stage
    per AND level; only live carry intermediates are registered (the
    template knows the dataflow — the advantage over netlist-level
    post-processing).
    """
    order = context.masking_order
    area = (stats["and_gates"] * and_gadget_area_ge(order)
            + stats["xor_gates"] * _XOR_GE * linear_area_factor(order)
            + register_area_ge(stats["state_bits"], order)) / 1000.0
    stages = stats["and_depth"] * and_gadget_latency_stages(order)
    latency = (stats["base_cycles"] * max(1.0, stats["path_factor"])
               + stages)
    randomness = stats["and_gates"] * and_gadget_randomness_bits(order)
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def _cost_for(architecture: str):
    def cost(params, subs, context):
        return assemble_metrics(
            netlist_stats(architecture, params, context.width), context)
    return cost


def adder_family() -> tuple:
    """The standard 31-configuration adder slot family."""
    return (
        Template("ripple_carry", _cost_for("ripple_carry")),
        Template("carry_lookahead", _cost_for("carry_lookahead"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("carry_skip", _cost_for("carry_skip"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("carry_select", _cost_for("carry_select"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("carry_increment", _cost_for("carry_increment"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("parallel_prefix", _cost_for("parallel_prefix"),
                 parameters={"topology": tuple(sorted(_PREFIX_OP_COUNT)),
                             "radix": (2, 4)}),
        Template("carry_save_hybrid", _cost_for("carry_save_hybrid"),
                 parameters={"compressor": ("3:2", "4:2")}),
        Template("digit_serial", _cost_for("digit_serial"),
                 parameters={"digit": (8, 16)}),
    )


def arx_adder_family() -> tuple:
    """The 30-configuration mod-2^32 adder family used inside ChaCha.

    Carry-save forms cannot cross the XOR/rotate feedback of an ARX
    round, and the Ladner-Fischer topology is dropped in favour of a
    finer digit-serial sweep.
    """
    arx_topologies = tuple(sorted(set(_PREFIX_OP_COUNT)
                                  - {"ladner_fischer"}))
    return (
        Template("ripple_carry", _cost_for("ripple_carry")),
        Template("carry_lookahead", _cost_for("carry_lookahead"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("carry_skip", _cost_for("carry_skip"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("carry_select", _cost_for("carry_select"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("carry_increment", _cost_for("carry_increment"),
                 parameters={"block": (2, 4, 8, 16)}),
        Template("parallel_prefix", _cost_for("parallel_prefix"),
                 parameters={"topology": arx_topologies, "radix": (2, 4)}),
        Template("digit_serial", _cost_for("digit_serial"),
                 parameters={"digit": (1, 2, 4, 8, 16)}),
    )


# ---------------------------------------------------------------------------
# AdderModQ: the modular adder of lattice cryptography (Table I: 42).

_REDUCTION_OVERHEAD = {
    # (area factor, latency add, extra ANDs factor)
    "conditional_subtract": (2.0, 1.0, 1.0),
    "barrett": (2.6, 2.0, 1.5),
    "montgomery": (2.4, 2.0, 1.4),
    "pseudo_mersenne": (1.6, 0.5, 0.6),
    "lazy": (1.2, 0.0, 0.2),
    "lut": (3.5, 1.0, 0.1),
    "redundant": (1.8, 0.5, 0.8),
}

_MOD_CORE_STATS = {
    "ripple": lambda w: _ripple_stats({}, w),
    "cla4": lambda w: _lookahead_stats({"block": 4}, w),
    "kogge_stone": lambda w: _prefix_stats(
        {"topology": "kogge_stone", "radix": 2}, w),
    "brent_kung": lambda w: _prefix_stats(
        {"topology": "brent_kung", "radix": 2}, w),
    "sklansky": lambda w: _prefix_stats(
        {"topology": "sklansky", "radix": 2}, w),
    "han_carlson": lambda w: _prefix_stats(
        {"topology": "han_carlson", "radix": 2}, w),
}


def _mod_q_cost(params, subs, context):
    width = context.width
    stats = dict(_MOD_CORE_STATS[params["core"]](width))
    area_factor, latency_add, and_factor = \
        _REDUCTION_OVERHEAD[params["reduction"]]
    stats["and_gates"] = math.ceil(stats["and_gates"] * (1 + and_factor))
    stats["xor_gates"] = math.ceil(stats["xor_gates"] * area_factor)
    stats["base_cycles"] = stats["base_cycles"] + latency_add
    stats["path_factor"] = stats["path_factor"] * (1 + latency_add / 4.0)
    return assemble_metrics(stats, context)


def adder_mod_q() -> Template:
    """Modular adder template: 6 cores x 7 reductions = 42 configurations
    (Table I row "AdderModQ")."""
    return Template(
        "adder_mod_q", _mod_q_cost,
        parameters={"core": tuple(sorted(_MOD_CORE_STATS)),
                    "reduction": tuple(sorted(_REDUCTION_OVERHEAD))})

"""ChaCha20 hardware template (Table I row "ChaCha20": 1080 configs).

ChaCha20 is the mask-stream generator of choice for high-order masked
implementations (cheap per-bit randomness), which is why it sits in the
HADES library next to the PQC subroutines.

Configuration space: 3 (quarter-round parallelism) x 4 (double-round
unroll) x 3 (pipeline) x 30 (the nested mod-2^32 adder family)
= 1080.  The ARX adder is a genuine nested slot — exactly the paper's
"placeholders for nested components such as adders".
"""

from __future__ import annotations

from ..masking import linear_area_factor, register_area_ge
from ..metrics import Metrics
from ..template import Template
from .adders import arx_adder_family

DOUBLE_ROUNDS = 10
_QR_ADDS = 4            # additions per quarter-round
_QR_LINEAR_GE = 700.0   # XOR + rotate network of one quarter-round
_STATE_BITS = 512


def _chacha_cost(params, subs, context):
    order = context.masking_order
    adder = subs["adder32"]
    qr_parallel = params["qr_parallelism"]
    unroll = params["double_round_unroll"]
    pipeline = params["pipeline"]
    # One physical quarter-round datapath = 4 adders + linear network.
    qr_area = (_QR_ADDS * adder.area_kge * 1000.0
               + _QR_LINEAR_GE * linear_area_factor(order))
    datapath_copies = qr_parallel * unroll
    area = (qr_area * datapath_copies
            + register_area_ge(_STATE_BITS, order)
            + 1100.0 + 240.0 * pipeline) / 1000.0
    # 8 quarter-rounds per double round, qr_parallel at a time; the four
    # serial adds of a QR dominate its latency.
    qr_latency = _QR_ADDS * adder.latency_cc
    qr_groups = -(-4 // qr_parallel) * 2      # column pass + diagonal pass
    cycles_per_double_round = qr_groups * qr_latency
    cycles = (DOUBLE_ROUNDS / unroll) * cycles_per_double_round
    cycles = cycles * unroll if order == 0 and unroll > 1 else cycles
    latency = cycles / (1 + 0.25 * pipeline) + pipeline + 2
    randomness = (adder.randomness_bits * _QR_ADDS * datapath_copies)
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def chacha20() -> Template:
    """The ChaCha20 template (Table I: 1080 configurations)."""
    return Template(
        "chacha20", _chacha_cost,
        parameters={
            "qr_parallelism": (1, 2, 4),
            "double_round_unroll": (1, 2, 5, 10),
            "pipeline": (0, 1, 2),
        },
        slots={"adder32": arx_adder_family()})

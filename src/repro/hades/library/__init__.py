"""The HADES template library: every Table I case study.

========================  =================================  ==========
factory                   Table I row                        configs
========================  =================================  ==========
``keccak()``              Keccak                                     14
``adder_mod_q()``         AdderModQ                                  42
``sparse_polymul()``      Sparse Polynomial Multiplication          372
``chacha20()``            ChaCha20                                 1080
``aes256()``              AES                                      1440
``polymul()``             Polynomial Multiplication                1302
``kyber_cpa()``           Kyber-CPA                               40362
``kyber_cca()``           Kyber-CCA                             1148364
========================  =================================  ==========
"""

from .adders import (adder_family, adder_mod_q, arx_adder_family,
                     assemble_metrics, netlist_stats)
from .aes import aes256
from .chacha import chacha20
from .keccak import keccak, keccak_candidates
from .kyber import kyber_cca, kyber_cpa
from .polymul import polymul, sparse_polymul

TABLE_I_ROWS = (
    ("Keccak", keccak, 14),
    ("AdderModQ", adder_mod_q, 42),
    ("Sparse Polynomial Multiplication", sparse_polymul, 372),
    ("ChaCha20", chacha20, 1080),
    ("AES", aes256, 1440),
    ("Polynomial Multiplication", polymul, 1302),
    ("Kyber-CPA", kyber_cpa, 40362),
    ("Kyber-CCA", kyber_cca, 1148364),
)

__all__ = [
    "adder_family", "arx_adder_family", "adder_mod_q",
    "assemble_metrics", "netlist_stats",
    "aes256", "chacha20", "keccak", "keccak_candidates",
    "kyber_cca", "kyber_cpa", "polymul", "sparse_polymul",
    "TABLE_I_ROWS",
]

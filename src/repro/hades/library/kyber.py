"""CRYSTALS-Kyber templates — the HADES flagship case studies.

"We obtain the first arbitrary-order masked implementation of
CRYSTALs-Kyber" (Section III-A).  Two Table I rows:

* ``kyber_cpa`` (40 362 configurations) — the CPA-secure encryption
  core: a dense polynomial multiplier (1302) plus a compression
  accumulator from the generic adder family (31): 1302 x 31 = 40 362.
* ``kyber_cca`` (1 148 364 configurations) — the CCA-secure
  (Fujisaki-Okamoto) wrapper: the polynomial multiplier (1302), a
  Keccak core for G/H/KDF (14), and 63 local choices for the
  re-encryption comparator, the binomial sampler and the control
  micro-architecture: 1302 x 14 x 63 = 1 148 364 — the paper's 36-hour
  exhaustive-search space.
"""

from __future__ import annotations

from ..masking import (and_gadget_area_ge, and_gadget_randomness_bits,
                       linear_area_factor, register_area_ge)
from ..metrics import Metrics
from ..template import Template
from .adders import adder_family
from .keccak import keccak_candidates
from .polymul import polymul

_K = 3                       # Kyber-768-style module dimension
_POLY_BYTES = 384


def _cpa_cost(params, subs, context):
    order = context.masking_order
    multiplier = subs["polymul"]
    compressor = subs["compress_adder"]
    area = (multiplier.area_kge + 2 * compressor.area_kge
            + register_area_ge(8 * _POLY_BYTES, order) / 1000.0
            + 2.4)
    # k^2 polynomial products per encryption plus compression passes.
    latency = (_K * _K * multiplier.latency_cc
               + _K * 256 * compressor.latency_cc / 8.0 + 32)
    randomness = (multiplier.randomness_bits
                  + 2 * compressor.randomness_bits)
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def kyber_cpa() -> Template:
    """Kyber CPA core (Table I: 40 362 = 1302 x 31 configurations)."""
    return Template(
        "kyber_cpa", _cpa_cost,
        slots={"polymul": (polymul(),),
               "compress_adder": adder_family()})


_COMPARE_PROFILES = {
    # re-encryption comparator: (area GE, latency cc, AND gates)
    "serial": (600.0, 96.0, 8),
    "word32": (1700.0, 24.0, 32),
    "word64": (3100.0, 12.0, 64),
    "tree": (5200.0, 4.0, 128),
    "masked_and_tree": (6800.0, 6.0, 160),
    "hash_based": (2400.0, 40.0, 0),
    "hybrid": (3900.0, 16.0, 96),
}

_SAMPLER_PROFILES = {
    # centred-binomial sampler: (area GE, latency cc, AND gates)
    "lut": (2100.0, 8.0, 0),
    "adder_tree": (1500.0, 12.0, 24),
    "popcount": (1100.0, 16.0, 16),
}

_CONTROL_PROFILES = {
    # scheme sequencing micro-architecture: (area GE, latency factor)
    "microcode": (2600.0, 1.15),
    "fsm": (1900.0, 1.0),
    "hardwired": (3400.0, 0.92),
}


def _cca_cost(params, subs, context):
    order = context.masking_order
    multiplier = subs["polymul"]
    keccak_core = subs["keccak"]
    cmp_area, cmp_latency, cmp_ands = _COMPARE_PROFILES[params["compare"]]
    smp_area, smp_latency, smp_ands = _SAMPLER_PROFILES[params["sampler"]]
    ctl_area, ctl_factor = _CONTROL_PROFILES[params["control"]]
    gadget_ands = cmp_ands + smp_ands
    area = (multiplier.area_kge + keccak_core.area_kge
            + (cmp_area + smp_area) * linear_area_factor(order) / 1000.0
            + gadget_ands * and_gadget_area_ge(order) / 1000.0
            + ctl_area / 1000.0
            + register_area_ge(8 * _POLY_BYTES * 2, order) / 1000.0)
    # Decapsulation: CPA decrypt + re-encrypt (k^2 products twice),
    # 3 Keccak permutations, comparison and sampling per poly.
    latency = ctl_factor * (
        2 * _K * _K * multiplier.latency_cc
        + 3 * keccak_core.latency_cc
        + _K * (cmp_latency + smp_latency) + 64)
    randomness = (multiplier.randomness_bits
                  + keccak_core.randomness_bits
                  + gadget_ands * and_gadget_randomness_bits(order))
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def kyber_cca() -> Template:
    """Kyber CCA decapsulation (Table I: 1 148 364 configurations)."""
    return Template(
        "kyber_cca", _cca_cost,
        parameters={
            "compare": tuple(sorted(_COMPARE_PROFILES)),
            "sampler": tuple(sorted(_SAMPLER_PROFILES)),
            "control": tuple(sorted(_CONTROL_PROFILES)),
        },
        slots={"polymul": (polymul(),),
               "keccak": keccak_candidates()})

"""Power/energy prediction for explored designs — the paper's HADES
future-work item, implemented.

Section III-A: "In future work, this could even be extended to power
consumption, given that the relevant data sets are available."  This
module provides that extension with a first-order 40 nm-class CMOS
model (the "data set" reduced to three documented coefficients):

* dynamic power  ~ switched capacitance x activity x frequency
  (area in kGE is the capacitance proxy),
* leakage power  ~ area,
* energy per operation = total power x latency.

Activity factors differ by micro-architecture — a byte-serial datapath
keeps its few gates toggling every cycle while a deeply pipelined
unrolled design has large idle structures — which is exactly why an
energy optimum can differ from both the area and the ALP optimum (see
``benchmarks/bench_power_extension.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import Metrics
from .template import Configuration

# 40 nm-class coefficients (per kGE).
DYNAMIC_UW_PER_KGE_MHZ = 0.055   # uW per kGE per MHz at activity 1.0
LEAKAGE_UW_PER_KGE = 1.8         # static leakage per kGE


@dataclass(frozen=True)
class PowerEstimate:
    """Predicted power/energy of one design point."""

    dynamic_mw: float
    leakage_mw: float
    energy_per_op_nj: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw


class HardwarePowerModel:
    """Maps (metrics, activity factor) to power and per-op energy."""

    def __init__(self, clock_mhz: float = 100.0):
        if clock_mhz <= 0:
            raise ValueError("clock must be positive")
        self.clock_mhz = clock_mhz

    def estimate(self, metrics: Metrics,
                 activity_factor: float) -> PowerEstimate:
        if not 0.0 <= activity_factor <= 1.0:
            raise ValueError("activity factor must be in [0, 1]")
        dynamic = (DYNAMIC_UW_PER_KGE_MHZ * metrics.area_kge
                   * activity_factor * self.clock_mhz) / 1000.0
        leakage = LEAKAGE_UW_PER_KGE * metrics.area_kge / 1000.0
        seconds_per_op = metrics.latency_cc / (self.clock_mhz * 1e6)
        energy_nj = (dynamic + leakage) * 1e-3 * seconds_per_op * 1e9
        return PowerEstimate(dynamic_mw=dynamic, leakage_mw=leakage,
                             energy_per_op_nj=energy_nj)


def aes_activity_factor(configuration: Configuration) -> float:
    """Per-micro-architecture switching activity of the AES template.

    Serial designs keep a tiny datapath busy every cycle; wide
    pipelined designs amortise control but leave round hardware idle
    between uses (round-based) or half-toggling (unrolled pipeline).
    """
    datapath = configuration.param("datapath")
    unroll = configuration.param("round_unroll")
    if datapath == 8:
        return 0.42
    if datapath == 32:
        return 0.30
    if unroll > 1:
        return 0.15          # fully pipelined: shallow toggling per stage
    return 0.22              # 128-bit round-based


def rank_by_energy(designs, activity_fn,
                   model: HardwarePowerModel = None) -> list:
    """Sort evaluated designs by predicted energy per operation.

    ``designs`` is an iterable of
    :class:`~repro.hades.template.EvaluatedDesign`; ``activity_fn``
    maps a configuration to its activity factor.  Returns a list of
    ``(design, PowerEstimate)`` pairs, best (lowest energy) first.
    """
    model = model or HardwarePowerModel()
    ranked = [(design, model.estimate(design.metrics,
                                      activity_fn(design.configuration)))
              for design in designs]
    ranked.sort(key=lambda pair: pair[1].energy_per_op_nj)
    return ranked

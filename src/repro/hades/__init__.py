"""HADES: automated hardware design-space exploration for cryptographic
primitives (paper Section III-A; Buschkowski et al., ePrint 2024/130).

The tool "systematically traverses thousands (and even millions) of
different designs and ranks them based on the specified optimization
target" — here rebuilt as:

* :mod:`~repro.hades.template` — nested generic templates,
* :mod:`~repro.hades.metrics` — metrics and optimization goals,
* :mod:`~repro.hades.masking` — arbitrary-order masking cost models,
* :mod:`~repro.hades.explorer` — exhaustive and local-search DSE,
* :mod:`~repro.hades.library` — the Table I case studies,
* :mod:`~repro.hades.agema` — the AGEMA post-hoc masking baseline.

Quick use (a runnable doctest — ``tests/test_imports.py`` executes it):

    >>> from repro.hades import (DesignContext, ExhaustiveExplorer,
    ...                          OptimizationGoal)
    >>> from repro.hades.library import aes256
    >>> explorer = ExhaustiveExplorer(aes256(),
    ...                               DesignContext(masking_order=1))
    >>> result = explorer.run(OptimizationGoal.AREA)
    >>> result.explored                    # the Table I AES row
    1440
    >>> result.best.metrics.area_kge < result.best.metrics.latency_cc
    True
    >>> isinstance(result.best.configuration.describe(), str)
    True
"""

from .metrics import Metrics, OptimizationGoal
from .template import (Configuration, DesignContext, EvaluatedDesign,
                       InfeasibleConfiguration, Template,
                       enumerate_designs)
from .explorer import (ExhaustiveExplorer, ExplorationResult,
                       LocalSearchExplorer, neighbours, pareto_front)
from .agema import AgemaResult, agema_adder, agema_mask_netlist
from .power import (HardwarePowerModel, PowerEstimate,
                    aes_activity_factor, rank_by_energy)

__all__ = [
    "HardwarePowerModel", "PowerEstimate", "aes_activity_factor",
    "rank_by_energy",
    "Metrics", "OptimizationGoal",
    "Configuration", "DesignContext", "EvaluatedDesign",
    "InfeasibleConfiguration", "Template", "enumerate_designs",
    "ExhaustiveExplorer", "ExplorationResult", "LocalSearchExplorer",
    "neighbours", "pareto_front",
    "AgemaResult", "agema_adder", "agema_mask_netlist",
]

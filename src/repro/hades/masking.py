"""Cost models for Boolean masking at arbitrary order.

HADES's headline feature (Section III-A): "any arbitrary design can
automatically be masked at any masking order without additional
implementation effort".  A design masked at order ``d`` splits every
secret into ``d + 1`` shares; linear gates are replicated per share
while non-linear (AND) gates become *gadgets* (HPC2-style) whose area
grows quadratically in the share count and which consume fresh
randomness every evaluation.

The constants below are calibrated so that the AES-256 case study lands
in the neighbourhood of the paper's Table II (kGE of a NAND2-equivalent
40 nm library).
"""

from __future__ import annotations


def shares(order: int) -> int:
    """Number of shares for masking order ``d`` (``d + 1``)."""
    if order < 0:
        raise ValueError("masking order must be >= 0")
    return order + 1


def and_gadget_area_ge(order: int) -> float:
    """Gate-equivalent area of one masked AND (HPC2-like gadget).

    Order 0 degenerates to a plain AND gate.  The gadget needs
    ``s^2`` partial products, ``s * (s - 1)`` refresh XORs and one
    register layer per share.
    """
    s = shares(order)
    if order == 0:
        return 1.5
    return 3.0 * s * s + 7.0 * s * (s - 1) + 6.0 * s


def and_gadget_randomness_bits(order: int) -> int:
    """Fresh random bits per masked-AND evaluation: d*(d+1)/2."""
    return order * (order + 1) // 2


def and_gadget_latency_stages(order: int) -> int:
    """Pipeline register stages a masked AND inserts (0 when unmasked).

    HPC-style gadgets need register stages for glitch robustness; the
    stage count is independent of the order, which is why Table II shows
    the same latency-optimal cycle count for d = 1 and d = 2.
    """
    return 0 if order == 0 else 1


def linear_area_factor(order: int) -> int:
    """Linear layers are replicated once per share."""
    return shares(order)


def register_area_ge(bits: int, order: int) -> float:
    """Flip-flop area for ``bits`` of (shared) state, ~4.5 GE per FF."""
    return 4.5 * bits * shares(order)


def randomness_per_cycle_to_total(bits_per_gadget: int,
                                  gadget_evaluations: int) -> int:
    """Total fresh randomness of one operation: gadgets x bits each."""
    return bits_per_gadget * gadget_evaluations

"""Design-space exploration strategies.

Paper Section III-A: "Since the number of combinations grows rapidly
and the optimization target is not necessarily attainable via a greedy
search, HADES offers two options.  The naive approach traverses the
design space exhaustively and obtains provably optimal results.  The
smarter approach employs a heuristic strategy called *local search*."

* :class:`ExhaustiveExplorer` — streams the whole space (Table I
  measures exactly this traversal) and returns provable optima.
* :class:`LocalSearchExplorer` — multi-start coordinate descent: from a
  random instantiation, every decision site is varied individually and
  improvements are kept until a fixpoint.  The paper reports perfect
  Kyber-CCA results from as few as 50 random starts in under 200 s
  versus 36 h exhaustively.

Both explorers ride the deterministic parallel executor
(:mod:`repro.runtime`): ``jobs=`` (or ``REPRO_JOBS``) shards the
exhaustive traversal by interleaved index ranges and fans independent
local-search starts across worker processes, with per-shard
reductions merged so that the optimum, the top-k ranking and every
counter total are identical for any worker count.  Coordinate descent
additionally memoizes revisited neighbours through a bounded
:class:`~repro.runtime.memo.Memo` cache, and
:meth:`ExhaustiveExplorer.run_all_goals` scores every goal in a single
traversal instead of re-enumerating the space per goal.
"""

from __future__ import annotations

import bisect
import heapq
import random
import time
from dataclasses import dataclass, field

from ..obs import TELEMETRY
from ..obs.coverage import CoverageMap
from ..runtime import (Memo, chunk_bounds, resolve_jobs, run_sharded,
                       stride_shards)
from .metrics import OptimizationGoal
from .template import (Configuration, DesignContext, EvaluatedDesign,
                       InfeasibleConfiguration, Template,
                       enumerate_designs)

#: An env-requested parallel exhaustive run stays serial below this
#: many raw configurations per worker — pool startup would dominate.
MIN_CONFIGS_PER_JOB = 2048

#: Likewise for local search: every worker gets at least this many
#: independent random starts.
MIN_STARTS_PER_JOB = 2


@dataclass
class ExplorationResult:
    """Outcome of one DSE run."""

    template_name: str
    goal: OptimizationGoal
    best: EvaluatedDesign
    explored: int               # design points visited (Table I column)
    feasible: int               # points that produced a valid prediction
    evaluations: int            # cost-function calls actually made
    elapsed_seconds: float
    top: list = field(default_factory=list)   # best-first ranking
    jobs: int = 1               # worker processes the run fanned over

    @property
    def best_score(self) -> float:
        return self.goal.score(self.best.metrics)


def _rank_key(goal: OptimizationGoal, design: EvaluatedDesign,
              raw_index: int) -> tuple:
    """The total order every exhaustive reduction ranks by: the goal
    score, tie-broken by area-latency product, then area ("optimized
    towards one or more optimization goals"), then raw enumeration
    index — so shard merges reproduce serial first-encounter wins and
    ``top[0]`` always equals ``best``."""
    metrics = design.metrics
    return (goal.score(metrics), metrics.area_latency_product,
            metrics.area_kge, raw_index)


class _GoalReduction:
    """Streaming (best, top-k heap) reduction for one goal on one shard.

    ``heap`` is a bounded max-heap over the negated rank key, so the
    *worst* kept design pops first; shard dumps are plain
    ``(best_key, best, [(key, design), ...])`` tuples that pickle and
    merge commutatively.
    """

    __slots__ = ("goal", "top_k", "best_key", "best", "heap")

    def __init__(self, goal: OptimizationGoal, top_k: int):
        self.goal = goal
        self.top_k = top_k
        self.best_key = None
        self.best = None
        self.heap = []

    def consider(self, raw_index: int, design: EvaluatedDesign) -> None:
        key = _rank_key(self.goal, design, raw_index)
        if self.best_key is None or key < self.best_key:
            self.best_key, self.best = key, design
        if self.top_k > 1:
            heapq.heappush(self.heap,
                           (tuple(-c for c in key), design))
            if len(self.heap) > self.top_k:
                heapq.heappop(self.heap)

    def dump(self) -> tuple:
        kept = [(tuple(-c for c in negated), design)
                for negated, design in self.heap]
        return self.best_key, self.best, kept


def _metrics_vector(template_name: str, metrics) -> dict:
    """The cost vector a design contributes to a coverage map."""
    return {f"{template_name}.area_kge": metrics.area_kge,
            f"{template_name}.latency_cc": metrics.latency_cc,
            f"{template_name}.randomness_bits": metrics.randomness_bits}


def _exhaustive_shard(state, shard) -> tuple:
    """Reduce one interleaved index shard of the full space.

    Runs in a pool worker (or inline when serial); everything it
    returns is plain data, and the union of all shards is exactly the
    serial stream, so the merged result is provably the serial one.
    """
    template, context, goals, top_k, want_coverage = state
    offset, step = shard
    obs_counter = TELEMETRY.counter("hades.evaluations") \
        if TELEMETRY.enabled else None
    cover = CoverageMap() if want_coverage else None
    feasible = 0
    reductions = [_GoalReduction(goal, top_k) for goal in goals]
    for raw_index, design in enumerate_designs(
            template, context, start=offset, step=step,
            with_index=True):
        feasible += 1
        if obs_counter is not None:
            obs_counter.inc()
        if cover is not None:
            cover.observe(template.name,
                          _metrics_vector(template.name,
                                          design.metrics))
        for reduction in reductions:
            reduction.consider(raw_index, design)
    return (feasible, [reduction.dump() for reduction in reductions],
            cover.to_dict() if cover is not None else None)


def _merge_goal(outputs: list, position: int, top_k: int) -> tuple:
    """Merge one goal's per-shard reductions: minimum by rank key for
    the optimum, global sort of the kept heaps for the top-k."""
    best_key = best = None
    entries = []
    for _, dumps, _ in outputs:
        shard_key, shard_best, kept = dumps[position]
        if shard_key is not None and \
                (best_key is None or shard_key < best_key):
            best_key, best = shard_key, shard_best
        entries.extend(kept)
    top = [design for _, design in
           sorted(entries, key=lambda entry: entry[0])[:top_k]] \
        if top_k > 1 else []
    return best, top


class ExhaustiveExplorer:
    """Provably optimal DSE by full traversal (the paper's naive mode)."""

    def __init__(self, template: Template,
                 context: DesignContext = DesignContext()):
        self.template = template
        self.context = context

    def run(self, goal: OptimizationGoal, top_k: int = 1,
            jobs: int = None,
            coverage: CoverageMap = None) -> ExplorationResult:
        """Traverse the entire space and return the optimum for ``goal``.

        ``top_k`` > 1 additionally collects the k best designs ("a small
        set of implementations optimized towards one or more goals").
        ``jobs`` > 1 shards the traversal across worker processes with
        an identical result (serial is the default; ``REPRO_JOBS``
        applies when ``jobs`` is omitted).  ``coverage`` folds every
        feasible design's log-bucketized cost vector into the given
        :class:`~repro.obs.coverage.CoverageMap` (per-shard maps merge
        in shard order, so the map is identical for any worker count).
        """
        with TELEMETRY.span("hades.exhaustive.run",
                            template=self.template.name,
                            goal=goal.name) as span:
            return self._run_goals((goal,), top_k, jobs, span,
                                   coverage)[goal]

    def run_all_goals(self, goals=None, top_k: int = 1,
                      jobs: int = None,
                      coverage: CoverageMap = None) -> dict:
        """One *shared* traversal scoring every goal at once; returns
        ``{goal: ExplorationResult}``.

        Each design point is enumerated and its cost predicted exactly
        once — the per-goal reductions all consume the same stream —
        instead of re-traversing the full space once per goal.
        """
        if goals is None:
            goals = list(OptimizationGoal)
            if self.context.masking_order == 0:
                goals = [g for g in goals if not g.needs_masking]
        goals = tuple(goals)
        with TELEMETRY.span("hades.exhaustive.run_all_goals",
                            template=self.template.name,
                            goals=len(goals)) as span:
            return self._run_goals(goals, top_k, jobs, span, coverage)

    def _run_goals(self, goals: tuple, top_k: int, jobs: int,
                   span, coverage: CoverageMap = None) -> dict:
        started = time.perf_counter()
        total = self.template.count_configurations()
        jobs = resolve_jobs(jobs, work=total,
                            min_work_per_job=MIN_CONFIGS_PER_JOB)
        outputs = run_sharded(
            _exhaustive_shard, (self.template, self.context, goals,
                                top_k, coverage is not None),
            stride_shards(jobs), jobs=jobs)
        feasible = sum(shard_feasible
                       for shard_feasible, _, _ in outputs)
        if coverage is not None:
            for _, _, cover_dict in outputs:
                coverage.merge(cover_dict)
        if feasible == 0:
            raise InfeasibleConfiguration(
                f"no feasible design for {self.template.name} in "
                f"{self.context}")
        elapsed = time.perf_counter() - started
        if TELEMETRY.enabled:
            span.set_attr("explored", total)
            span.set_attr("feasible", feasible)
            span.set_attr("jobs", jobs)
            if elapsed > 0:
                TELEMETRY.gauge("hades.evals_per_sec").set(
                    feasible / elapsed)
        results = {}
        for position, goal in enumerate(goals):
            best, top = _merge_goal(outputs, position, top_k)
            results[goal] = ExplorationResult(
                template_name=self.template.name, goal=goal, best=best,
                explored=total, feasible=feasible, evaluations=feasible,
                elapsed_seconds=elapsed, top=top, jobs=jobs)
        return results


def pareto_front(designs, include_randomness: bool = True) -> list:
    """The non-dominated designs over (area, latency[, randomness]).

    The paper's output is "a small set of implementations optimized
    towards one or more optimization goals" — the Pareto front is that
    set in one shot: every design not strictly worse than another in
    all objectives.

    Single pass over the objective-sorted designs with a latency /
    randomness staircase, O(n log n): a candidate is dominated exactly
    when some already-kept point has latency and randomness no larger
    (its area is no larger by sort order), and kept points maintain
    latencies strictly ascending with randomness strictly descending so
    that one bisect answers the query.  Designs with identical
    objective vectors are all kept, matching the historical O(n^2)
    sweep bit for bit (the property test pins the equivalence).
    """
    def key(design):
        metrics = design.metrics
        objectives = [metrics.area_kge, metrics.latency_cc]
        if include_randomness:
            objectives.append(metrics.randomness_bits)
        return tuple(objectives)

    candidates = sorted(designs, key=key)
    front = []
    lats, rands = [], []          # the kept-point staircase
    index, total = 0, len(candidates)
    while index < total:
        design_key = key(candidates[index])
        group_end = index
        while group_end < total and \
                key(candidates[group_end]) == design_key:
            group_end += 1
        latency = design_key[1]
        randomness = design_key[2] if include_randomness else 0.0
        # Rightmost kept latency <= ours carries the smallest
        # randomness among all kept points at or below our latency.
        pos = bisect.bisect_right(lats, latency)
        dominated = pos > 0 and rands[pos - 1] <= randomness
        if not dominated:
            front.extend(candidates[index:group_end])
            insert = bisect.bisect_left(lats, latency)
            cut = insert
            while cut < len(lats) and rands[cut] >= randomness:
                cut += 1          # staircase points we now dominate
            lats[insert:cut] = [latency]
            rands[insert:cut] = [randomness]
        index = group_end
    return front


def _with_param(config: Configuration, name: str, value) -> Configuration:
    params = tuple((k, value if k == name else v)
                   for k, v in config.params)
    return Configuration(config.template, params, config.slots)


def _with_slot(config: Configuration, name: str,
               sub: Configuration) -> Configuration:
    slots = tuple((k, sub if k == name else v) for k, v in config.slots)
    return Configuration(config.template, config.params, slots)


def neighbours(template: Template, config: Configuration):
    """All single-decision variations of ``config`` (the paper: "all
    parameters are varied individually instead of jointly")."""
    for name, values in template.parameters.items():
        current = config.param(name)
        for value in values:
            if value != current:
                yield _with_param(config, name, value)
    for slot_name, candidates in template.slots.items():
        sub = config.slot(slot_name)
        current_candidate = template._candidate(slot_name, sub.template)
        for candidate in candidates:
            if candidate.name != sub.template:
                yield _with_slot(config, slot_name,
                                 candidate.default_configuration())
        for new_sub in neighbours(current_candidate, sub):
            yield _with_slot(config, slot_name, new_sub)


def _memo_evaluate(template: Template, context: DesignContext,
                   config: Configuration, memo: Memo):
    """Evaluate through the bounded memo cache; ``None`` = infeasible
    (cached too — repeated infeasibility is exactly the expensive
    outcome on masked spaces)."""
    found, metrics = memo.lookup(config)
    if found:
        return metrics
    if TELEMETRY.enabled:
        TELEMETRY.counter("hades.evaluations").inc()
    try:
        metrics = template.evaluate(config, context)
    except InfeasibleConfiguration:
        metrics = None
    memo.store(config, metrics)
    return metrics


def _descend(template: Template, context: DesignContext,
             config: Configuration, goal: OptimizationGoal) -> tuple:
    """Coordinate descent to a local optimum; returns
    ``(config, metrics, evaluations, cache_hits)`` where evaluations
    counts actual cost-function calls (memo misses)."""
    memo = Memo()
    metrics = _memo_evaluate(template, context, config, memo)
    # A random start may be infeasible (e.g. LUT S-box while masked);
    # walk to any feasible neighbour first.
    attempts = 0
    while metrics is None:
        improved = False
        for candidate in neighbours(template, config):
            candidate_metrics = _memo_evaluate(template, context,
                                               candidate, memo)
            if candidate_metrics is not None:
                config, metrics = candidate, candidate_metrics
                improved = True
                break
        attempts += 1
        if not improved or attempts > 100:
            return None, None, memo.misses, memo.hits
    score = goal.score(metrics)
    while True:
        best_neighbour = None
        for candidate in neighbours(template, config):
            candidate_metrics = _memo_evaluate(template, context,
                                               candidate, memo)
            if candidate_metrics is None:
                continue
            candidate_score = goal.score(candidate_metrics)
            if candidate_score < score:
                best_neighbour = (candidate, candidate_metrics)
                score = candidate_score
        if best_neighbour is None:
            return config, metrics, memo.misses, memo.hits
        config, metrics = best_neighbour


def _local_search_shard(state, bounds) -> tuple:
    """Run one contiguous block of independent random starts."""
    template, context, goal, start_configs, want_coverage = state
    lo, hi = bounds
    cover = CoverageMap() if want_coverage else None
    results = []
    for index in range(lo, hi):
        with TELEMETRY.span("hades.local_search.descent", start=index):
            config, metrics, evaluations, hits = _descend(
                template, context, start_configs[index], goal)
        if cover is not None and metrics is not None:
            cover.observe(template.name,
                          _metrics_vector(template.name, metrics))
        results.append((index, config, metrics, evaluations, hits))
    return results, cover.to_dict() if cover is not None else None


class LocalSearchExplorer:
    """Multi-start coordinate-descent DSE (the paper's heuristic mode)."""

    def __init__(self, template: Template,
                 context: DesignContext = DesignContext(),
                 seed: int = 0):
        self.template = template
        self.context = context
        self.seed = seed

    def run(self, goal: OptimizationGoal, starts: int = 50,
            jobs: int = None,
            coverage: CoverageMap = None) -> ExplorationResult:
        """Run ``starts`` random performance baselines (paper: "we obtain
        perfect results for Kyber-CCA for as few as 50 random
        performance base-lines").

        Every start is pre-drawn in the parent process from the single
        seeded stream — the exact historical serial sequence — so
        starts become independent work items the executor fans across
        ``jobs`` workers with an identical best-by-(score, start index)
        merge for any worker count.  ``coverage`` folds every feasible
        descent's final cost vector into the given map (shard-order
        merged, worker-count independent).
        """
        with TELEMETRY.span("hades.local_search.run",
                            template=self.template.name,
                            goal=goal.name, starts=starts) as span:
            started = time.perf_counter()
            rng = random.Random(self.seed)
            start_configs = [self.template.random_configuration(rng)
                             for _ in range(starts)]
            jobs = resolve_jobs(jobs, work=starts,
                                min_work_per_job=MIN_STARTS_PER_JOB)
            outputs = run_sharded(
                _local_search_shard,
                (self.template, self.context, goal, start_configs,
                 coverage is not None),
                chunk_bounds(starts, jobs), jobs=jobs)
            if coverage is not None:
                for _, cover_dict in outputs:
                    coverage.merge(cover_dict)
            best = None
            best_rank = None
            feasible = 0
            total_evaluations = 0
            cache_hits = 0
            for shard, _ in outputs:
                for index, config, metrics, evaluations, hits in shard:
                    total_evaluations += evaluations
                    cache_hits += hits
                    if config is None:
                        continue
                    feasible += 1
                    rank = (goal.score(metrics), index)
                    if best_rank is None or rank < best_rank:
                        best = EvaluatedDesign(config, metrics)
                        best_rank = rank
            if best is None:
                raise InfeasibleConfiguration(
                    f"no feasible local optimum found for "
                    f"{self.template.name}")
            elapsed = time.perf_counter() - started
            if TELEMETRY.enabled:
                span.set_attr("evaluations", total_evaluations)
                span.set_attr("cache_hits", cache_hits)
                span.set_attr("jobs", jobs)
                if elapsed > 0:
                    TELEMETRY.gauge("hades.evals_per_sec").set(
                        total_evaluations / elapsed)
            return ExplorationResult(
                template_name=self.template.name, goal=goal, best=best,
                explored=total_evaluations, feasible=feasible,
                evaluations=total_evaluations, elapsed_seconds=elapsed,
                jobs=jobs)

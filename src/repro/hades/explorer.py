"""Design-space exploration strategies.

Paper Section III-A: "Since the number of combinations grows rapidly
and the optimization target is not necessarily attainable via a greedy
search, HADES offers two options.  The naive approach traverses the
design space exhaustively and obtains provably optimal results.  The
smarter approach employs a heuristic strategy called *local search*."

* :class:`ExhaustiveExplorer` — streams the whole space (Table I
  measures exactly this traversal) and returns provable optima.
* :class:`LocalSearchExplorer` — multi-start coordinate descent: from a
  random instantiation, every decision site is varied individually and
  improvements are kept until a fixpoint.  The paper reports perfect
  Kyber-CCA results from as few as 50 random starts in under 200 s
  versus 36 h exhaustively.
"""

from __future__ import annotations

import heapq
import random
import time
from dataclasses import dataclass, field

from ..obs import TELEMETRY
from .metrics import OptimizationGoal
from .template import (Configuration, DesignContext, EvaluatedDesign,
                       InfeasibleConfiguration, Template,
                       enumerate_designs)


@dataclass
class ExplorationResult:
    """Outcome of one DSE run."""

    template_name: str
    goal: OptimizationGoal
    best: EvaluatedDesign
    explored: int               # design points visited (Table I column)
    feasible: int               # points that produced a valid prediction
    evaluations: int            # cost-function calls actually made
    elapsed_seconds: float
    top: list = field(default_factory=list)   # best-first ranking

    @property
    def best_score(self) -> float:
        return self.goal.score(self.best.metrics)


class ExhaustiveExplorer:
    """Provably optimal DSE by full traversal (the paper's naive mode)."""

    def __init__(self, template: Template,
                 context: DesignContext = DesignContext()):
        self.template = template
        self.context = context

    def run(self, goal: OptimizationGoal,
            top_k: int = 1) -> ExplorationResult:
        """Traverse the entire space and return the optimum for ``goal``.

        ``top_k`` > 1 additionally collects the k best designs ("a small
        set of implementations optimized towards one or more goals").
        """
        with TELEMETRY.span("hades.exhaustive.run",
                            template=self.template.name,
                            goal=goal.name) as span:
            return self._run(goal, top_k, span)

    def _run(self, goal: OptimizationGoal, top_k: int,
             span) -> ExplorationResult:
        started = time.perf_counter()
        total = self.template.count_configurations()
        feasible = 0
        heap = []      # max-heap of (-score, counter, design)
        counter = 0
        best = None
        best_score = (float("inf"),) * 3
        obs_counter = TELEMETRY.counter("hades.evaluations") \
            if TELEMETRY.enabled else None
        for design in enumerate_designs(self.template, self.context):
            feasible += 1
            if obs_counter is not None:
                obs_counter.inc()
            # Ties on the primary goal resolve by area-latency product,
            # then area — "optimized towards one or more optimization
            # goals".
            score = (goal.score(design.metrics),
                     design.metrics.area_latency_product,
                     design.metrics.area_kge)
            if score < best_score:
                best, best_score = design, score
            if top_k > 1:
                heapq.heappush(heap, (-score[0], counter, design))
                counter += 1
                if len(heap) > top_k:
                    heapq.heappop(heap)
        if best is None:
            raise InfeasibleConfiguration(
                f"no feasible design for {self.template.name} in "
                f"{self.context}")
        elapsed = time.perf_counter() - started
        top = [design for _, _, design in
               sorted(heap, key=lambda item: -item[0])]
        if TELEMETRY.enabled:
            span.set_attr("explored", total)
            span.set_attr("feasible", feasible)
            if elapsed > 0:
                TELEMETRY.gauge("hades.evals_per_sec").set(
                    feasible / elapsed)
        return ExplorationResult(
            template_name=self.template.name, goal=goal, best=best,
            explored=total, feasible=feasible, evaluations=feasible,
            elapsed_seconds=elapsed, top=top)

    def run_all_goals(self, goals=None) -> dict:
        """One traversal per goal; returns {goal: ExplorationResult}."""
        if goals is None:
            goals = list(OptimizationGoal)
            if self.context.masking_order == 0:
                goals = [g for g in goals if not g.needs_masking]
        return {goal: self.run(goal) for goal in goals}


def pareto_front(designs, include_randomness: bool = True) -> list:
    """The non-dominated designs over (area, latency[, randomness]).

    The paper's output is "a small set of implementations optimized
    towards one or more optimization goals" — the Pareto front is that
    set in one shot: every design not strictly worse than another in
    all objectives.  O(n^2) sweep after an area sort; fine for the
    library's spaces.
    """
    def key(design):
        metrics = design.metrics
        objectives = [metrics.area_kge, metrics.latency_cc]
        if include_randomness:
            objectives.append(metrics.randomness_bits)
        return tuple(objectives)

    candidates = sorted(designs, key=key)
    front = []
    for design in candidates:
        dominated = False
        design_key = key(design)
        for kept in front:
            kept_key = key(kept)
            if all(a <= b for a, b in zip(kept_key, design_key)) and \
                    any(a < b for a, b in zip(kept_key, design_key)):
                dominated = True
                break
        if not dominated:
            # Drop earlier points this one dominates (possible only on
            # exact ties in the sort prefix).
            front = [kept for kept in front
                     if not (all(a <= b for a, b in
                                 zip(design_key, key(kept)))
                             and any(a < b for a, b in
                                     zip(design_key, key(kept))))]
            front.append(design)
    return front


def _with_param(config: Configuration, name: str, value) -> Configuration:
    params = tuple((k, value if k == name else v)
                   for k, v in config.params)
    return Configuration(config.template, params, config.slots)


def _with_slot(config: Configuration, name: str,
               sub: Configuration) -> Configuration:
    slots = tuple((k, sub if k == name else v) for k, v in config.slots)
    return Configuration(config.template, config.params, slots)


def neighbours(template: Template, config: Configuration):
    """All single-decision variations of ``config`` (the paper: "all
    parameters are varied individually instead of jointly")."""
    for name, values in template.parameters.items():
        current = config.param(name)
        for value in values:
            if value != current:
                yield _with_param(config, name, value)
    for slot_name, candidates in template.slots.items():
        sub = config.slot(slot_name)
        current_candidate = template._candidate(slot_name, sub.template)
        for candidate in candidates:
            if candidate.name != sub.template:
                yield _with_slot(config, slot_name,
                                 candidate.default_configuration())
        for new_sub in neighbours(current_candidate, sub):
            yield _with_slot(config, slot_name, new_sub)


class LocalSearchExplorer:
    """Multi-start coordinate-descent DSE (the paper's heuristic mode)."""

    def __init__(self, template: Template,
                 context: DesignContext = DesignContext(),
                 seed: int = 0):
        self.template = template
        self.context = context
        self.seed = seed

    def _evaluate(self, config: Configuration):
        if TELEMETRY.enabled:
            TELEMETRY.counter("hades.evaluations").inc()
        try:
            return self.template.evaluate(config, self.context)
        except InfeasibleConfiguration:
            return None

    def _descend(self, config: Configuration,
                 goal: OptimizationGoal) -> tuple:
        """Coordinate descent to a local optimum; returns
        (config, metrics, evaluations)."""
        evaluations = 0
        metrics = self._evaluate(config)
        evaluations += 1
        # A random start may be infeasible (e.g. LUT S-box while masked);
        # walk to any feasible neighbour first.
        attempts = 0
        while metrics is None:
            improved = False
            for candidate in neighbours(self.template, config):
                candidate_metrics = self._evaluate(candidate)
                evaluations += 1
                if candidate_metrics is not None:
                    config, metrics = candidate, candidate_metrics
                    improved = True
                    break
            attempts += 1
            if not improved or attempts > 100:
                return None, None, evaluations
        score = goal.score(metrics)
        while True:
            best_neighbour = None
            for candidate in neighbours(self.template, config):
                candidate_metrics = self._evaluate(candidate)
                evaluations += 1
                if candidate_metrics is None:
                    continue
                candidate_score = goal.score(candidate_metrics)
                if candidate_score < score:
                    best_neighbour = (candidate, candidate_metrics)
                    score = candidate_score
            if best_neighbour is None:
                return config, metrics, evaluations
            config, metrics = best_neighbour

    def run(self, goal: OptimizationGoal,
            starts: int = 50) -> ExplorationResult:
        """Run ``starts`` random performance baselines (paper: "we obtain
        perfect results for Kyber-CCA for as few as 50 random
        performance base-lines")."""
        with TELEMETRY.span("hades.local_search.run",
                            template=self.template.name,
                            goal=goal.name, starts=starts) as span:
            started = time.perf_counter()
            rng = random.Random(self.seed)
            best = None
            best_score = float("inf")
            total_evaluations = 0
            feasible = 0
            for start_index in range(starts):
                start = self.template.random_configuration(rng)
                with TELEMETRY.span("hades.local_search.descent",
                                    start=start_index):
                    config, metrics, evaluations = self._descend(start,
                                                                 goal)
                total_evaluations += evaluations
                if config is None:
                    continue
                feasible += 1
                score = goal.score(metrics)
                if score < best_score:
                    best = EvaluatedDesign(config, metrics)
                    best_score = score
            if best is None:
                raise InfeasibleConfiguration(
                    f"no feasible local optimum found for "
                    f"{self.template.name}")
            elapsed = time.perf_counter() - started
            if TELEMETRY.enabled:
                span.set_attr("evaluations", total_evaluations)
                if elapsed > 0:
                    TELEMETRY.gauge("hades.evals_per_sec").set(
                        total_evaluations / elapsed)
            return ExplorationResult(
                template_name=self.template.name, goal=goal, best=best,
                explored=total_evaluations, feasible=feasible,
                evaluations=total_evaluations, elapsed_seconds=elapsed)

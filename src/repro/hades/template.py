"""The HADES template system: generic designs with explorable choices.

Paper Section III-A: "The templates abstractly describe the
cryptographic primitives or subroutines thereof with placeholders for
nested components such as adders or masked gadgets.  Templates can be
nested as needed and a user need only be concerned with the interface
of a template."

A :class:`Template` owns

* ``parameters`` — named finite sets of local design choices,
* ``slots`` — named placeholders, each with a list of *candidate*
  templates that may fill it (recursion happens here), and
* ``cost`` — the "customized performance prediction which may depend on
  the performance of sub-templates".

The configuration space of a template is the Cartesian product of its
parameter choices with, for every slot, the disjoint union of every
candidate's own configuration space — :meth:`Template.count_configurations`
computes the size in closed form and :func:`enumerate_designs` streams
the actual (configuration, metrics) pairs bottom-up, reusing evaluated
sub-spaces so that a million-point space (Kyber-CCA) enumerates in
seconds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .metrics import Metrics


class InfeasibleConfiguration(Exception):
    """Raised by a cost function when a configuration cannot be built in
    the present context (e.g. a table-lookup S-box at masking order > 0)."""


@dataclass(frozen=True)
class DesignContext:
    """Global exploration knobs shared by the whole template tree."""

    masking_order: int = 0
    width: int = 32          # operand width for width-generic templates

    def __post_init__(self):
        if self.masking_order < 0:
            raise ValueError("masking order must be >= 0")
        if self.width <= 0:
            raise ValueError("width must be positive")


@dataclass(frozen=True)
class Configuration:
    """A fully instantiated design point of some template.

    ``params`` maps parameter names to chosen values; ``slots`` maps
    slot names to the (candidate template name, sub-configuration)
    actually chosen.
    """

    template: str
    params: tuple          # sorted tuple of (name, value)
    slots: tuple           # sorted tuple of (slot, Configuration)

    def param(self, name: str):
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)

    def slot(self, name: str) -> "Configuration":
        for key, value in self.slots:
            if key == name:
                return value
        raise KeyError(name)

    def describe(self) -> str:
        """Human-readable one-line description of the design point."""
        parts = [f"{k}={v}" for k, v in self.params]
        parts += [f"{k}:[{v.describe()}]" for k, v in self.slots]
        inner = ", ".join(parts)
        return f"{self.template}({inner})"


class Template:
    """A generic hardware design with explorable parameters and slots."""

    def __init__(self, name: str, cost, parameters: dict = None,
                 slots: dict = None):
        self.name = name
        self.cost = cost
        self.parameters = {key: tuple(values)
                           for key, values in (parameters or {}).items()}
        self.slots = {key: tuple(candidates)
                      for key, candidates in (slots or {}).items()}
        for key, values in self.parameters.items():
            if not values:
                raise ValueError(f"parameter {key!r} of {name!r} is empty")
        for key, candidates in self.slots.items():
            if not candidates:
                raise ValueError(f"slot {key!r} of {name!r} is empty")

    def __repr__(self):
        return f"Template({self.name!r})"

    def count_configurations(self) -> int:
        """Closed-form size of this template's configuration space."""
        count = 1
        for values in self.parameters.values():
            count *= len(values)
        for candidates in self.slots.values():
            count *= sum(c.count_configurations() for c in candidates)
        return count

    def evaluate(self, configuration: Configuration,
                 context: DesignContext) -> Metrics:
        """Predict the metrics of one configuration (recursively)."""
        if configuration.template != self.name:
            raise ValueError(
                f"configuration is for {configuration.template!r}, "
                f"not {self.name!r}")
        sub_metrics = {}
        for slot_name, sub_config in configuration.slots:
            candidate = self._candidate(slot_name, sub_config.template)
            sub_metrics[slot_name] = candidate.evaluate(sub_config,
                                                        context)
        params = dict(configuration.params)
        return self.cost(params, sub_metrics, context)

    def _candidate(self, slot_name: str, template_name: str) -> "Template":
        for candidate in self.slots[slot_name]:
            if candidate.name == template_name:
                return candidate
        raise KeyError(
            f"no candidate {template_name!r} for slot {slot_name!r}")

    def default_configuration(self) -> Configuration:
        """The first configuration in enumeration order."""
        params = tuple(sorted(
            (key, values[0]) for key, values in self.parameters.items()))
        slots = tuple(sorted(
            (key, candidates[0].default_configuration())
            for key, candidates in self.slots.items()))
        return Configuration(self.name, params, slots)

    def random_configuration(self, rng) -> Configuration:
        """A uniformly random configuration (for local-search starts)."""
        params = tuple(sorted(
            (key, rng.choice(values))
            for key, values in self.parameters.items()))
        slots = []
        for key, candidates in self.slots.items():
            weights = [c.count_configurations() for c in candidates]
            candidate = rng.choices(candidates, weights=weights)[0]
            slots.append((key, candidate.random_configuration(rng)))
        return Configuration(self.name, params, tuple(sorted(slots)))


@dataclass
class EvaluatedDesign:
    """One enumerated design point with its predicted metrics."""

    configuration: Configuration
    metrics: Metrics


def enumerate_designs(template: Template, context: DesignContext,
                      start: int = 0, stop: int = None, step: int = 1,
                      with_index: bool = False):
    """Stream every feasible (configuration, metrics) of ``template``.

    Sub-template spaces are evaluated once and cached in full — the
    paper's bottom-up fold over the internal tree — so a parent with a
    million-point product space (Kyber-CCA) pays only one arithmetic
    cost call per point and the top level is never materialised.
    Infeasible configurations are skipped silently.

    ``start`` / ``stop`` / ``step`` slice the *raw top-level
    enumeration order* (before feasibility filtering) so parallel
    shards can split one space without repeating cost calls: shard
    ``k`` of ``J`` streams ``start=k, step=J`` and the union over all
    shards is exactly the serial stream.  Skipped positions never
    invoke the top-level cost function.  ``with_index=True``
    additionally yields each design's raw enumeration index —
    ``(index, design)`` — which shards use as the deterministic
    tie-break so merged optima match serial first-encounter order.
    """
    yield from _stream(template, context, {}, start, stop, step,
                       with_index)


def _stream(template: Template, context: DesignContext, cache: dict,
            start: int = 0, stop: int = None, step: int = 1,
            with_index: bool = False):
    """Lazily generate this template's designs; slots are materialised."""
    param_names = sorted(template.parameters)
    param_spaces = [template.parameters[name] for name in param_names]
    slot_names = sorted(template.slots)
    slot_spaces = []
    for slot_name in slot_names:
        sub_designs = []
        for candidate in template.slots[slot_name]:
            sub_designs.extend(_materialise(candidate, context, cache))
        slot_spaces.append(sub_designs)
    n_params = len(param_names)
    # One flat product in the same nested order as the historical
    # params-outer / slots-inner loops; islice makes index-range
    # sharding skip combinations *before* any cost call.
    combos = enumerate(itertools.product(*param_spaces, *slot_spaces))
    last_param_combo = params = param_dict = None
    for raw_index, combo in itertools.islice(combos, start, stop, step):
        param_combo, slot_combo = combo[:n_params], combo[n_params:]
        if param_combo != last_param_combo:
            params = tuple(zip(param_names, param_combo))
            param_dict = dict(params)
            last_param_combo = param_combo
        slots = tuple(
            (name, design.configuration)
            for name, design in zip(slot_names, slot_combo))
        sub_metrics = {name: design.metrics
                       for name, design in zip(slot_names, slot_combo)}
        try:
            metrics = template.cost(param_dict, sub_metrics, context)
        except InfeasibleConfiguration:
            continue
        design = EvaluatedDesign(
            Configuration(template.name, params, slots), metrics)
        yield (raw_index, design) if with_index else design


def _materialise(template: Template, context: DesignContext,
                 cache: dict) -> list:
    key = id(template)
    if key not in cache:
        cache[key] = list(_stream(template, context, cache))
    return cache[key]

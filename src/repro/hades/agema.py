"""AGEMA-style baseline: post-hoc masking of synthesized netlists.

AGEMA (Knichel et al., TCHES 2022) automates masking by *post-
processing a synthesized netlist*: every AND gate is replaced by an HPC
gadget and pipeline registers are inserted across the full cut of every
gadget layer.  Because the tool sees only gates — not the template-
level dataflow — it cannot retime, share refresh randomness, or
register just the live intermediates.

The paper's claim (Section III-A): "HADES produces adders which
outperform those generated with AGEMA, which applies straight-forward
post-processing to synthesized netlists."  This module reproduces the
baseline so the claim can be benchmarked
(:mod:`benchmarks.bench_agema_comparison`).

Model of the AGEMA overheads relative to the HADES-native assembly
(:func:`repro.hades.library.adders.assemble_metrics`):

* every gadget layer registers the *entire* datapath width, not just
  the live carry signals — a ``width x depth`` flop sheet;
* the netlist's XOR cloud is duplicated per share without the
  common-subexpression sharing a template can apply (~15% extra);
* synchronisation registers are inserted at the primary inputs and
  outputs of each gadget stage (no retiming across gadget boundaries),
  costing two extra latency cycles;
* fresh randomness is not shared between gadgets in the same layer
  (~20% extra bits).
"""

from __future__ import annotations

from dataclasses import dataclass

from .masking import (and_gadget_area_ge, and_gadget_latency_stages,
                      and_gadget_randomness_bits, linear_area_factor,
                      register_area_ge)
from .metrics import Metrics
from .template import DesignContext
from .library.adders import netlist_stats

_XOR_GE = 2.2
_LINEAR_DUPLICATION_PENALTY = 1.15
_RANDOMNESS_SHARING_PENALTY = 1.20
_SYNC_LATENCY_CYCLES = 2


@dataclass(frozen=True)
class AgemaResult:
    """A masked netlist produced by the baseline flow."""

    architecture: str
    params: dict
    metrics: Metrics


def agema_mask_netlist(stats: dict, context: DesignContext,
                       width: int) -> Metrics:
    """Apply AGEMA-style post-processing to netlist statistics."""
    order = context.masking_order
    gadget_area = stats["and_gates"] * and_gadget_area_ge(order)
    linear_area = (stats["xor_gates"] * _XOR_GE
                   * linear_area_factor(order)
                   * _LINEAR_DUPLICATION_PENALTY)
    # Full-width register sheets at every gadget layer.
    stages = stats["and_depth"] * and_gadget_latency_stages(order)
    pipeline_area = register_area_ge(width * max(stages, 0), order)
    state_area = register_area_ge(stats["state_bits"], order)
    area = (gadget_area + linear_area + pipeline_area + state_area) / 1000.0
    latency = (stats["base_cycles"] * max(1.0, stats["path_factor"])
               + stages + (_SYNC_LATENCY_CYCLES if order > 0 else 0))
    randomness = (stats["and_gates"] * and_gadget_randomness_bits(order)
                  * (_RANDOMNESS_SHARING_PENALTY if order > 0 else 1.0))
    return Metrics(area_kge=area, latency_cc=latency,
                   randomness_bits=randomness)


def agema_adder(architecture: str, params: dict,
                context: DesignContext) -> AgemaResult:
    """Mask one adder design with the AGEMA baseline flow."""
    stats = netlist_stats(architecture, params, context.width)
    metrics = agema_mask_netlist(stats, context, context.width)
    return AgemaResult(architecture=architecture, params=dict(params),
                       metrics=metrics)

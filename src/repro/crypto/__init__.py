"""Cryptographic substrate for the CONVOLVE reproduction.

Everything the post-quantum TEE and the HADES case studies rely on,
implemented from scratch in pure Python:

* :mod:`~repro.crypto.keccak` — Keccak-f[1600], SHA3-256/512, SHAKE128/256
* :mod:`~repro.crypto.aes` — AES-128/192/256 + CTR + encrypt-then-MAC AEAD
* :mod:`~repro.crypto.ed25519` — RFC 8032 signatures (Keystone default)
* :mod:`~repro.crypto.mldsa` — FIPS 204 ML-DSA-44/65/87 (the PQ addition)
* :mod:`~repro.crypto.mlkem` — FIPS 203 ML-KEM-512/768/1024 (Kyber)
* :mod:`~repro.crypto.hybrid` — Ed25519 & ML-DSA hybrid signatures
* :mod:`~repro.crypto.kdf` — SHAKE256 key derivation

These are behavioural references for the simulator, not hardened
constant-time implementations.  The hot paths — the unrolled
Keccak-f[1600], windowed Ed25519 scalar multiplication, keyed ML-DSA
signing/verification contexts on batched int64 numpy NTT kernels, and
AES T-tables — are pinned byte-identical to retained loop-form
references by KAT and hypothesis parity suites
(``tests/test_crypto_fastpaths.py``).
"""

from .keccak import sha3_256, sha3_512, shake128, shake256
from .aes import AES, aes_ctr, open_aead, seal_aead
from .ed25519 import Ed25519KeyPair, SigningKey
from .mldsa import ML_DSA_44, ML_DSA_65, ML_DSA_87, MLDSA
from .mlkem import ML_KEM_512, ML_KEM_768, ML_KEM_1024, MLKEM
from .hybrid import HybridKeyPair, HybridPublicKey
from .kdf import derive_key, derive_seed_pair

__all__ = [
    "sha3_256", "sha3_512", "shake128", "shake256",
    "AES", "aes_ctr", "seal_aead", "open_aead",
    "Ed25519KeyPair", "SigningKey",
    "MLDSA", "ML_DSA_44", "ML_DSA_65", "ML_DSA_87",
    "MLKEM", "ML_KEM_512", "ML_KEM_768", "ML_KEM_1024",
    "HybridKeyPair", "HybridPublicKey",
    "derive_key", "derive_seed_pair",
]

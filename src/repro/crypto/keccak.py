"""Pure-Python Keccak-f[1600] sponge, SHA-3 and SHAKE (FIPS 202).

The CONVOLVE paper (Section III-A/III-B) uses Keccak both as a hardware
accelerator target (it is a subroutine of BIKE and CRYSTALS-Dilithium) and
as the measurement hash of the Keystone security monitor.  This module is
the software reference used by the TEE substrate (:mod:`repro.tee`) and by
ML-DSA (:mod:`repro.crypto.mldsa`).

The implementation is written from scratch and is cross-validated against
``hashlib`` in the test suite.  It favours clarity over raw speed; the
sponge processes whole lanes with Python integers.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: Round constants for the iota step of Keccak-f[1600].
ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

def _rho_offsets() -> tuple:
    """Compute the FIPS 202 rho rotation offsets, indexed ``[x][y]``.

    Derived from the defining recurrence: starting at lane (1, 0), step t
    rotates by (t+1)(t+2)/2 and moves to (y, 2x + 3y mod 5).
    """
    offsets = [[0] * 5 for _ in range(5)]
    x, y = 1, 0
    for t in range(24):
        offsets[x][y] = ((t + 1) * (t + 2) // 2) % 64
        x, y = y, (2 * x + 3 * y) % 5
    return tuple(tuple(row) for row in offsets)


#: FIPS 202 rho-step rotation offsets, indexed ``[x][y]``.
ROTATION_OFFSETS = _rho_offsets()


def _rotl64(value: int, shift: int) -> int:
    """Rotate a 64-bit lane left by ``shift`` bits."""
    shift %= 64
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def keccak_f1600(lanes: list) -> list:
    """Apply the Keccak-f[1600] permutation to 25 lanes (5x5, row-major x).

    ``lanes`` is a flat list of 25 integers where lane ``(x, y)`` lives at
    index ``x + 5 * y``.  A new list is returned; the input is not mutated.
    """
    a = list(lanes)
    for rc in ROUND_CONSTANTS:
        # theta
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20]
             for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] ^= d[x]
        # rho and pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                nx, ny = y, (2 * x + 3 * y) % 5
                b[nx + 5 * ny] = _rotl64(a[x + 5 * y],
                                         ROTATION_OFFSETS[x][y])
        # chi
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] = b[x + 5 * y] ^ (
                    (~b[(x + 1) % 5 + 5 * y] & _MASK64)
                    & b[(x + 2) % 5 + 5 * y])
        # iota
        a[0] ^= rc
    return a


class KeccakSponge:
    """Incremental Keccak sponge with a byte-granular rate.

    Parameters
    ----------
    rate_bytes:
        Sponge rate in bytes (block size); capacity is ``200 - rate``.
    domain_suffix:
        Padding domain-separation byte (``0x06`` for SHA-3, ``0x1F`` for
        SHAKE, ``0x01`` for original Keccak).
    """

    def __init__(self, rate_bytes: int, domain_suffix: int):
        if not 0 < rate_bytes < 200:
            raise ValueError(f"rate must be in (0, 200), got {rate_bytes}")
        self.rate_bytes = rate_bytes
        self.domain_suffix = domain_suffix
        self._lanes = [0] * 25
        self._buffer = bytearray()
        self._squeezing = False
        self._squeeze_offset = 0

    def absorb(self, data: bytes) -> "KeccakSponge":
        """Absorb ``data`` into the sponge; chainable."""
        if self._squeezing:
            raise RuntimeError("cannot absorb after squeezing has begun")
        self._buffer.extend(data)
        while len(self._buffer) >= self.rate_bytes:
            block = bytes(self._buffer[:self.rate_bytes])
            del self._buffer[:self.rate_bytes]
            self._absorb_block(block)
        return self

    def _absorb_block(self, block: bytes) -> None:
        for i in range(len(block) // 8):
            lane = int.from_bytes(block[8 * i:8 * i + 8], "little")
            self._lanes[i] ^= lane
        # A partial trailing chunk only occurs for the padded final block,
        # which _pad always extends to the full rate, so nothing remains.
        self._lanes = keccak_f1600(self._lanes)

    def _pad(self) -> None:
        pad_len = self.rate_bytes - (len(self._buffer) % self.rate_bytes)
        padding = bytearray(pad_len)
        padding[0] = self.domain_suffix
        padding[-1] ^= 0x80
        self._buffer.extend(padding)
        while len(self._buffer) >= self.rate_bytes:
            block = bytes(self._buffer[:self.rate_bytes])
            del self._buffer[:self.rate_bytes]
            self._absorb_block(block)

    def squeeze(self, length: int) -> bytes:
        """Squeeze ``length`` output bytes; may be called repeatedly."""
        if not self._squeezing:
            self._pad()
            self._squeezing = True
            self._squeeze_offset = 0
        out = bytearray()
        while len(out) < length:
            if self._squeeze_offset == self.rate_bytes:
                self._lanes = keccak_f1600(self._lanes)
                self._squeeze_offset = 0
            lane_index, lane_byte = divmod(self._squeeze_offset, 8)
            lane = self._lanes[lane_index].to_bytes(8, "little")
            take = min(length - len(out),
                       8 - lane_byte,
                       self.rate_bytes - self._squeeze_offset)
            out.extend(lane[lane_byte:lane_byte + take])
            self._squeeze_offset += take
        return bytes(out)


def _fixed_output_hash(data: bytes, rate_bytes: int, out_len: int) -> bytes:
    sponge = KeccakSponge(rate_bytes, domain_suffix=0x06)
    sponge.absorb(data)
    return sponge.squeeze(out_len)


def pure_sha3_256(data: bytes) -> bytes:
    """SHA3-256 via the from-scratch sponge (32 bytes)."""
    return _fixed_output_hash(data, rate_bytes=136, out_len=32)


def pure_sha3_512(data: bytes) -> bytes:
    """SHA3-512 via the from-scratch sponge (64 bytes)."""
    return _fixed_output_hash(data, rate_bytes=72, out_len=64)


def pure_shake128(data: bytes, out_len: int) -> bytes:
    """SHAKE128 via the from-scratch sponge."""
    return KeccakSponge(168, domain_suffix=0x1F).absorb(data).squeeze(out_len)


def pure_shake256(data: bytes, out_len: int) -> bytes:
    """SHAKE256 via the from-scratch sponge."""
    return KeccakSponge(136, domain_suffix=0x1F).absorb(data).squeeze(out_len)


# ---------------------------------------------------------------------------
# Accelerated dispatch.
#
# The pure sponge above is the reference; the test suite proves it
# byte-identical to CPython's C implementation of FIPS 202.  Because the
# simulator hashes megabytes (ROM images, SM binaries, ML-DSA expansion),
# the *public* entry points below dispatch to hashlib when it provides
# SHA-3 — same functions, ~100x faster — and fall back to the pure sponge
# otherwise.  Set ``ACCELERATED = False`` to force the pure path.

try:
    import hashlib as _hashlib
    ACCELERATED = hasattr(_hashlib, "sha3_256")
except ImportError:  # pragma: no cover - hashlib is always present
    ACCELERATED = False


def sha3_256(data: bytes) -> bytes:
    """SHA3-256 digest of ``data`` (32 bytes)."""
    if ACCELERATED:
        return _hashlib.sha3_256(data).digest()
    return pure_sha3_256(data)


def sha3_512(data: bytes) -> bytes:
    """SHA3-512 digest of ``data`` (64 bytes)."""
    if ACCELERATED:
        return _hashlib.sha3_512(data).digest()
    return pure_sha3_512(data)


def shake128(data: bytes, out_len: int) -> bytes:
    """SHAKE128 extendable-output function."""
    if ACCELERATED:
        return _hashlib.shake_128(data).digest(out_len)
    return pure_shake128(data, out_len)


def shake256(data: bytes, out_len: int) -> bytes:
    """SHAKE256 extendable-output function."""
    if ACCELERATED:
        return _hashlib.shake_256(data).digest(out_len)
    return pure_shake256(data, out_len)


class _IncrementalXof:
    """Absorb-then-stream XOF with the same backend dispatch."""

    _RATE = None
    _HASHLIB_NAME = None

    def __init__(self, data: bytes = b""):
        if ACCELERATED:
            self._state = _hashlib.new(self._HASHLIB_NAME)
            self._offset = 0
            self._reading = False
        else:
            self._state = KeccakSponge(self._RATE, domain_suffix=0x1F)
        if data:
            self.absorb(data)

    def absorb(self, data: bytes):
        if ACCELERATED:
            if self._reading:
                raise RuntimeError("cannot absorb after squeezing")
            self._state.update(data)
        else:
            self._state.absorb(data)
        return self

    def read(self, length: int) -> bytes:
        if ACCELERATED:
            self._reading = True
            end = self._offset + length
            out = self._state.digest(end)[self._offset:end]
            self._offset = end
            return out
        return self._state.squeeze(length)


class Shake128(_IncrementalXof):
    """Incremental SHAKE128 (absorb-then-stream)."""

    _RATE = 168
    _HASHLIB_NAME = "shake_128"


class Shake256(_IncrementalXof):
    """Incremental SHAKE256 (absorb-then-stream)."""

    _RATE = 136
    _HASHLIB_NAME = "shake_256"

"""Pure-Python Keccak-f[1600] sponge, SHA-3 and SHAKE (FIPS 202).

The CONVOLVE paper (Section III-A/III-B) uses Keccak both as a hardware
accelerator target (it is a subroutine of BIKE and CRYSTALS-Dilithium) and
as the measurement hash of the Keystone security monitor.  This module is
the software reference used by the TEE substrate (:mod:`repro.tee`) and by
ML-DSA (:mod:`repro.crypto.mldsa`).

The implementation is written from scratch and is cross-validated against
``hashlib`` in the test suite.  The permutation is a fully unrolled
Keccak-f[1600] round over 25 local lane variables (generated and pinned
by ``scripts/gen_keccak_unrolled.py``); the original loop form is
retained as :func:`keccak_f1600_reference` and the two are pinned
byte-equal by hypothesis property tests.  The sponge absorbs and
squeezes whole blocks at a time via ``struct``.
"""

from __future__ import annotations

import struct

import numpy as np

from ..obs.perf import PERF

_MASK64 = (1 << 64) - 1

#: Round constants for the iota step of Keccak-f[1600].
ROUND_CONSTANTS = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

def _rho_offsets() -> tuple:
    """Compute the FIPS 202 rho rotation offsets, indexed ``[x][y]``.

    Derived from the defining recurrence: starting at lane (1, 0), step t
    rotates by (t+1)(t+2)/2 and moves to (y, 2x + 3y mod 5).
    """
    offsets = [[0] * 5 for _ in range(5)]
    x, y = 1, 0
    for t in range(24):
        offsets[x][y] = ((t + 1) * (t + 2) // 2) % 64
        x, y = y, (2 * x + 3 * y) % 5
    return tuple(tuple(row) for row in offsets)


#: FIPS 202 rho-step rotation offsets, indexed ``[x][y]``.
ROTATION_OFFSETS = _rho_offsets()


def _rotl64(value: int, shift: int) -> int:
    """Rotate a 64-bit lane left by ``shift`` bits."""
    shift %= 64
    if shift == 0:
        return value
    return ((value << shift) | (value >> (64 - shift))) & _MASK64


def keccak_f1600_reference(lanes: list) -> list:
    """The loop-form Keccak-f[1600] the unrolled permutation is pinned to.

    Same contract as :func:`keccak_f1600`: a flat list of 25 lanes in,
    a new list out.  Kept as the readable semantic reference; the test
    suite proves ``keccak_f1600`` byte-equal to it on random states.
    """
    a = list(lanes)
    for rc in ROUND_CONSTANTS:
        # theta
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20]
             for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] ^= d[x]
        # rho and pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                nx, ny = y, (2 * x + 3 * y) % 5
                b[nx + 5 * ny] = _rotl64(a[x + 5 * y],
                                         ROTATION_OFFSETS[x][y])
        # chi
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] = b[x + 5 * y] ^ (
                    (~b[(x + 1) % 5 + 5 * y] & _MASK64)
                    & b[(x + 2) % 5 + 5 * y])
        # iota
        a[0] ^= rc
    return a


# BEGIN GENERATED (scripts/gen_keccak_unrolled.py)
def keccak_f1600(lanes: list) -> list:
    """Apply the Keccak-f[1600] permutation to 25 lanes (5x5, row-major x).

    ``lanes`` is a flat list of 25 integers where lane ``(x, y)`` lives at
    index ``x + 5 * y``.  A new list is returned; the input is not mutated.

    The round body is fully unrolled over 25 locals (generated and pinned
    by ``scripts/gen_keccak_unrolled.py``); ``keccak_f1600_reference``
    keeps the loop form the unrolled code is tested against.
    """
    if PERF.enabled:
        PERF.inc("crypto.keccak.permutations")
    m = _MASK64
    (a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12,
     a13, a14, a15, a16, a17, a18, a19, a20, a21, a22, a23, a24) = lanes
    for rc in ROUND_CONSTANTS:
        # theta
        c0 = a0 ^ a5 ^ a10 ^ a15 ^ a20
        c1 = a1 ^ a6 ^ a11 ^ a16 ^ a21
        c2 = a2 ^ a7 ^ a12 ^ a17 ^ a22
        c3 = a3 ^ a8 ^ a13 ^ a18 ^ a23
        c4 = a4 ^ a9 ^ a14 ^ a19 ^ a24
        d0 = c4 ^ (((c1 << 1) | (c1 >> 63)) & m)
        d1 = c0 ^ (((c2 << 1) | (c2 >> 63)) & m)
        d2 = c1 ^ (((c3 << 1) | (c3 >> 63)) & m)
        d3 = c2 ^ (((c4 << 1) | (c4 >> 63)) & m)
        d4 = c3 ^ (((c0 << 1) | (c0 >> 63)) & m)
        # rho + pi (theta's d folded into the rotation input)
        b0 = a0 ^ d0
        t = a5 ^ d0
        b16 = ((t << 36) | (t >> 28)) & m
        t = a10 ^ d0
        b7 = ((t << 3) | (t >> 61)) & m
        t = a15 ^ d0
        b23 = ((t << 41) | (t >> 23)) & m
        t = a20 ^ d0
        b14 = ((t << 18) | (t >> 46)) & m
        t = a1 ^ d1
        b10 = ((t << 1) | (t >> 63)) & m
        t = a6 ^ d1
        b1 = ((t << 44) | (t >> 20)) & m
        t = a11 ^ d1
        b17 = ((t << 10) | (t >> 54)) & m
        t = a16 ^ d1
        b8 = ((t << 45) | (t >> 19)) & m
        t = a21 ^ d1
        b24 = ((t << 2) | (t >> 62)) & m
        t = a2 ^ d2
        b20 = ((t << 62) | (t >> 2)) & m
        t = a7 ^ d2
        b11 = ((t << 6) | (t >> 58)) & m
        t = a12 ^ d2
        b2 = ((t << 43) | (t >> 21)) & m
        t = a17 ^ d2
        b18 = ((t << 15) | (t >> 49)) & m
        t = a22 ^ d2
        b9 = ((t << 61) | (t >> 3)) & m
        t = a3 ^ d3
        b5 = ((t << 28) | (t >> 36)) & m
        t = a8 ^ d3
        b21 = ((t << 55) | (t >> 9)) & m
        t = a13 ^ d3
        b12 = ((t << 25) | (t >> 39)) & m
        t = a18 ^ d3
        b3 = ((t << 21) | (t >> 43)) & m
        t = a23 ^ d3
        b19 = ((t << 56) | (t >> 8)) & m
        t = a4 ^ d4
        b15 = ((t << 27) | (t >> 37)) & m
        t = a9 ^ d4
        b6 = ((t << 20) | (t >> 44)) & m
        t = a14 ^ d4
        b22 = ((t << 39) | (t >> 25)) & m
        t = a19 ^ d4
        b13 = ((t << 8) | (t >> 56)) & m
        t = a24 ^ d4
        b4 = ((t << 14) | (t >> 50)) & m
        # chi + iota
        a0 = (b0 ^ ((b1 ^ m) & b2)) ^ rc
        a1 = (b1 ^ ((b2 ^ m) & b3))
        a2 = (b2 ^ ((b3 ^ m) & b4))
        a3 = (b3 ^ ((b4 ^ m) & b0))
        a4 = (b4 ^ ((b0 ^ m) & b1))
        a5 = (b5 ^ ((b6 ^ m) & b7))
        a6 = (b6 ^ ((b7 ^ m) & b8))
        a7 = (b7 ^ ((b8 ^ m) & b9))
        a8 = (b8 ^ ((b9 ^ m) & b5))
        a9 = (b9 ^ ((b5 ^ m) & b6))
        a10 = (b10 ^ ((b11 ^ m) & b12))
        a11 = (b11 ^ ((b12 ^ m) & b13))
        a12 = (b12 ^ ((b13 ^ m) & b14))
        a13 = (b13 ^ ((b14 ^ m) & b10))
        a14 = (b14 ^ ((b10 ^ m) & b11))
        a15 = (b15 ^ ((b16 ^ m) & b17))
        a16 = (b16 ^ ((b17 ^ m) & b18))
        a17 = (b17 ^ ((b18 ^ m) & b19))
        a18 = (b18 ^ ((b19 ^ m) & b15))
        a19 = (b19 ^ ((b15 ^ m) & b16))
        a20 = (b20 ^ ((b21 ^ m) & b22))
        a21 = (b21 ^ ((b22 ^ m) & b23))
        a22 = (b22 ^ ((b23 ^ m) & b24))
        a23 = (b23 ^ ((b24 ^ m) & b20))
        a24 = (b24 ^ ((b20 ^ m) & b21))
    return [a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11, a12,
            a13, a14, a15, a16, a17, a18, a19, a20, a21, a22, a23, a24]
# END GENERATED


def _rotl64_np(value: "np.ndarray", shift: int) -> "np.ndarray":
    """Rotate each uint64 element of ``value`` left by ``shift`` bits."""
    shift %= 64
    if shift == 0:
        return value
    return (value << np.uint64(shift)) | (value >> np.uint64(64 - shift))


def keccak_f1600_many(states: "np.ndarray") -> "np.ndarray":
    """Keccak-f[1600] applied lane-parallel to a ``(batch, 25)`` state.

    ``states`` is a uint64 array where row ``b`` holds the 25 lanes of
    state ``b`` in the same ``x + 5 * y`` order as :func:`keccak_f1600`.
    A new array is returned; the input is not mutated.  The permutation
    counter ticks once per row, so batch and per-state totals agree.
    """
    if PERF.enabled:
        PERF.inc("crypto.keccak.permutations", int(states.shape[0]))
    a = [states[:, i].copy() for i in range(25)]
    for rc in ROUND_CONSTANTS:
        # theta
        c = [a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20]
             for x in range(5)]
        d = [c[(x - 1) % 5] ^ _rotl64_np(c[(x + 1) % 5], 1)
             for x in range(5)]
        # rho and pi
        b = [None] * 25
        for x in range(5):
            for y in range(5):
                nx, ny = y, (2 * x + 3 * y) % 5
                b[nx + 5 * ny] = _rotl64_np(a[x + 5 * y] ^ d[x],
                                            ROTATION_OFFSETS[x][y])
        # chi
        for x in range(5):
            for y in range(5):
                a[x + 5 * y] = b[x + 5 * y] ^ (
                    ~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y])
        # iota
        a[0] = a[0] ^ np.uint64(rc)
    return np.stack(a, axis=1)


def _sponge_lockstep(messages, rate_bytes: int, domain_suffix: int,
                     out_len: int) -> list:
    """Lockstep batch sponge over messages with ONE padded block count.

    Every message pads to the same number of rate-sized blocks (the
    caller buckets by ``len(m) // rate``), so the batch absorbs (and
    squeezes) in lockstep: one vectorized permutation per block position
    instead of one scalar permutation per message per block.  The pad
    position differs per message — each padded row is built
    independently — but the block *schedule* is shared, which is all
    lockstep needs.  Byte-identical to the scalar sponge per message,
    with the same permutation counter totals.
    """
    n = len(messages)
    parts = []
    for m in messages:
        pad_len = rate_bytes - (len(m) % rate_bytes)
        padding = bytearray(pad_len)
        padding[0] = domain_suffix
        padding[-1] ^= 0x80
        parts.append(bytes(m))
        parts.append(bytes(padding))
    padded = b"".join(parts)
    total = len(padded) // n
    lanes_per_block = rate_bytes // 8
    words = np.frombuffer(padded, dtype="<u8").reshape(
        n, total // rate_bytes, lanes_per_block)
    states = np.zeros((n, 25), dtype=np.uint64)
    for block in range(words.shape[1]):
        states[:, :lanes_per_block] ^= words[:, block, :]
        states = keccak_f1600_many(states)
    chunks = [states[:, :lanes_per_block]]
    produced = rate_bytes
    while produced < out_len:
        states = keccak_f1600_many(states)
        chunks.append(states[:, :lanes_per_block])
        produced += rate_bytes
    stream = np.ascontiguousarray(np.concatenate(chunks, axis=1))
    raw = stream.astype("<u8").tobytes()
    per = stream.shape[1] * 8
    return [raw[i * per:i * per + out_len] for i in range(n)]


def _sponge_many(messages, rate_bytes: int, domain_suffix: int,
                 out_len: int) -> list:
    """Hash a (possibly ragged-length) batch through lockstep sponges.

    Messages are bucketed by padded block count — ``len(m) // rate``,
    since FIPS 202 padding always adds between 1 and ``rate`` bytes —
    and each bucket runs one lockstep pass (:func:`_sponge_lockstep`).
    Results come back in input order, and the permutation counter total
    is exactly the sum of the scalar per-message schedules, independent
    of how the lengths bucket.  Only lane-aligned rates (the FIPS 202
    ones) are supported.
    """
    if rate_bytes % 8:
        raise ValueError("batch sponge requires a lane-aligned rate")
    if not len(messages):
        return []
    buckets = {}
    for i, m in enumerate(messages):
        buckets.setdefault(len(m) // rate_bytes, []).append(i)
    out = [None] * len(messages)
    for _blocks, indices in sorted(buckets.items()):
        digests = _sponge_lockstep([messages[i] for i in indices],
                                   rate_bytes, domain_suffix, out_len)
        for i, digest in zip(indices, digests):
            out[i] = digest
    return out


class KeccakSponge:
    """Incremental Keccak sponge with a byte-granular rate.

    Parameters
    ----------
    rate_bytes:
        Sponge rate in bytes (block size); capacity is ``200 - rate``.
    domain_suffix:
        Padding domain-separation byte (``0x06`` for SHA-3, ``0x1F`` for
        SHAKE, ``0x01`` for original Keccak).
    """

    def __init__(self, rate_bytes: int, domain_suffix: int):
        if not 0 < rate_bytes < 200:
            raise ValueError(f"rate must be in (0, 200), got {rate_bytes}")
        self.rate_bytes = rate_bytes
        self.domain_suffix = domain_suffix
        self._lanes = [0] * 25
        self._buffer = bytearray()
        self._squeezing = False
        self._squeeze_offset = 0

    def absorb(self, data: bytes) -> "KeccakSponge":
        """Absorb ``data`` into the sponge; chainable."""
        if self._squeezing:
            raise RuntimeError("cannot absorb after squeezing has begun")
        buffer = self._buffer
        buffer.extend(data)
        rate = self.rate_bytes
        if len(buffer) >= rate:
            blocks = len(buffer) // rate
            chunk = bytes(buffer[:blocks * rate])
            del buffer[:blocks * rate]
            self._absorb_blocks(chunk)
        return self

    def _absorb_blocks(self, chunk: bytes) -> None:
        """XOR-and-permute whole rate-sized blocks (``chunk`` is a
        multiple of the rate)."""
        rate = self.rate_bytes
        lanes_per_block = rate // 8
        # A partial trailing lane only occurs for non-lane-aligned rates;
        # the padded final block always fills the rate, so for the
        # standard FIPS 202 rates nothing remains.
        fmt = f"<{lanes_per_block}Q"
        lanes = self._lanes
        for offset in range(0, len(chunk), rate):
            words = struct.unpack_from(fmt, chunk, offset)
            for i in range(lanes_per_block):
                lanes[i] ^= words[i]
            lanes = keccak_f1600(lanes)
        self._lanes = lanes

    def _pad(self) -> None:
        pad_len = self.rate_bytes - (len(self._buffer) % self.rate_bytes)
        padding = bytearray(pad_len)
        padding[0] = self.domain_suffix
        padding[-1] ^= 0x80
        self._buffer.extend(padding)
        chunk = bytes(self._buffer)
        del self._buffer[:]
        self._absorb_blocks(chunk)

    def _serialize_rate(self) -> bytes:
        """The rate-sized prefix of the state as bytes (one output
        block of the squeezing phase)."""
        full, extra = divmod(self.rate_bytes, 8)
        block = struct.pack(f"<{full}Q", *self._lanes[:full])
        if extra:
            block += self._lanes[full].to_bytes(8, "little")[:extra]
        return block

    def squeeze(self, length: int) -> bytes:
        """Squeeze ``length`` output bytes; may be called repeatedly."""
        if not self._squeezing:
            self._pad()
            self._squeezing = True
            self._squeeze_offset = 0
            self._block = self._serialize_rate()
        out = bytearray()
        rate = self.rate_bytes
        while len(out) < length:
            if self._squeeze_offset == rate:
                self._lanes = keccak_f1600(self._lanes)
                self._block = self._serialize_rate()
                self._squeeze_offset = 0
            take = min(length - len(out), rate - self._squeeze_offset)
            out.extend(self._block[self._squeeze_offset:
                                   self._squeeze_offset + take])
            self._squeeze_offset += take
        return bytes(out)


def _fixed_output_hash(data: bytes, rate_bytes: int, out_len: int) -> bytes:
    sponge = KeccakSponge(rate_bytes, domain_suffix=0x06)
    sponge.absorb(data)
    return sponge.squeeze(out_len)


def pure_sha3_256(data: bytes) -> bytes:
    """SHA3-256 via the from-scratch sponge (32 bytes)."""
    return _fixed_output_hash(data, rate_bytes=136, out_len=32)


def pure_sha3_512(data: bytes) -> bytes:
    """SHA3-512 via the from-scratch sponge (64 bytes)."""
    return _fixed_output_hash(data, rate_bytes=72, out_len=64)


def pure_shake128(data: bytes, out_len: int) -> bytes:
    """SHAKE128 via the from-scratch sponge."""
    return KeccakSponge(168, domain_suffix=0x1F).absorb(data).squeeze(out_len)


def pure_shake256(data: bytes, out_len: int) -> bytes:
    """SHAKE256 via the from-scratch sponge."""
    return KeccakSponge(136, domain_suffix=0x1F).absorb(data).squeeze(out_len)


# ---------------------------------------------------------------------------
# Accelerated dispatch.
#
# The pure sponge above is the reference; the test suite proves it
# byte-identical to CPython's C implementation of FIPS 202.  Because the
# simulator hashes megabytes (ROM images, SM binaries, ML-DSA expansion),
# the *public* entry points below dispatch to hashlib when it provides
# SHA-3 — same functions, ~100x faster — and fall back to the pure sponge
# otherwise.  Set ``ACCELERATED = False`` to force the pure path.

try:
    import hashlib as _hashlib
    ACCELERATED = hasattr(_hashlib, "sha3_256")
except ImportError:  # pragma: no cover - hashlib is always present
    ACCELERATED = False


def sha3_256(data: bytes) -> bytes:
    """SHA3-256 digest of ``data`` (32 bytes)."""
    if ACCELERATED:
        return _hashlib.sha3_256(data).digest()
    return pure_sha3_256(data)


def sha3_512(data: bytes) -> bytes:
    """SHA3-512 digest of ``data`` (64 bytes)."""
    if ACCELERATED:
        return _hashlib.sha3_512(data).digest()
    return pure_sha3_512(data)


def shake128(data: bytes, out_len: int) -> bytes:
    """SHAKE128 extendable-output function."""
    if ACCELERATED:
        return _hashlib.shake_128(data).digest(out_len)
    return pure_shake128(data, out_len)


def shake256(data: bytes, out_len: int) -> bytes:
    """SHAKE256 extendable-output function."""
    if ACCELERATED:
        return _hashlib.shake_256(data).digest(out_len)
    return pure_shake256(data, out_len)


def pure_sha3_256_many(messages) -> list:
    """SHA3-256 of a (possibly ragged) batch via the bucketed sponge."""
    return _sponge_many(messages, 136, 0x06, 32)


def pure_sha3_512_many(messages) -> list:
    """SHA3-512 of a (possibly ragged) batch via the bucketed sponge."""
    return _sponge_many(messages, 72, 0x06, 64)


def pure_shake128_many(messages, out_len: int) -> list:
    """SHAKE128 of a (possibly ragged) batch via the bucketed sponge."""
    return _sponge_many(messages, 168, 0x1F, out_len)


def pure_shake256_many(messages, out_len: int) -> list:
    """SHAKE256 of a (possibly ragged) batch via the bucketed sponge."""
    return _sponge_many(messages, 136, 0x1F, out_len)


def sha3_256_many(messages) -> list:
    """SHA3-256 digests of a message batch (lengths may differ)."""
    if ACCELERATED:
        return [_hashlib.sha3_256(m).digest() for m in messages]
    return pure_sha3_256_many(messages)


def sha3_512_many(messages) -> list:
    """SHA3-512 digests of a message batch (lengths may differ)."""
    if ACCELERATED:
        return [_hashlib.sha3_512(m).digest() for m in messages]
    return pure_sha3_512_many(messages)


def shake128_many(messages, out_len: int) -> list:
    """SHAKE128 outputs of a message batch (lengths may differ)."""
    if ACCELERATED:
        return [_hashlib.shake_128(m).digest(out_len) for m in messages]
    return pure_shake128_many(messages, out_len)


def shake256_many(messages, out_len: int) -> list:
    """SHAKE256 outputs of a message batch (lengths may differ)."""
    if ACCELERATED:
        return [_hashlib.shake_256(m).digest(out_len) for m in messages]
    return pure_shake256_many(messages, out_len)


class _IncrementalXof:
    """Absorb-then-stream XOF with the same backend dispatch."""

    _RATE = None
    _HASHLIB_NAME = None

    def __init__(self, data: bytes = b""):
        if ACCELERATED:
            self._state = _hashlib.new(self._HASHLIB_NAME)
            self._offset = 0
            self._reading = False
        else:
            self._state = KeccakSponge(self._RATE, domain_suffix=0x1F)
        if data:
            self.absorb(data)

    def absorb(self, data: bytes):
        if ACCELERATED:
            if self._reading:
                raise RuntimeError("cannot absorb after squeezing")
            self._state.update(data)
        else:
            self._state.absorb(data)
        return self

    def read(self, length: int) -> bytes:
        if ACCELERATED:
            self._reading = True
            end = self._offset + length
            out = self._state.digest(end)[self._offset:end]
            self._offset = end
            return out
        return self._state.squeeze(length)


class Shake128(_IncrementalXof):
    """Incremental SHAKE128 (absorb-then-stream)."""

    _RATE = 168
    _HASHLIB_NAME = "shake_128"


class Shake256(_IncrementalXof):
    """Incremental SHAKE256 (absorb-then-stream)."""

    _RATE = 136
    _HASHLIB_NAME = "shake_256"

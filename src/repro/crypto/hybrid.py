"""Hybrid Ed25519 + ML-DSA signatures.

The paper's PQ-enabled Keystone signs everything with *both* schemes so
that "security is always at least as that of Ed25519, while also ensuring
long-term security from quantum attackers" (Section III-B).  This module
implements that hybrid: a hybrid signature verifies only if both
component signatures verify over the same message.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ed25519
from .mldsa import ML_DSA_44, MLDSA, MLDSAParams

ED25519_PK_LEN = ed25519.PUBLIC_KEY_LEN
ED25519_SIG_LEN = ed25519.SIGNATURE_LEN


@dataclass(frozen=True)
class HybridPublicKey:
    """Concatenation-style hybrid public key."""

    ed25519: bytes
    mldsa: bytes

    def encode(self) -> bytes:
        return self.ed25519 + self.mldsa

    @classmethod
    def decode(cls, data: bytes,
               params: MLDSAParams = ML_DSA_44) -> "HybridPublicKey":
        expected = ED25519_PK_LEN + params.public_key_bytes
        if len(data) != expected:
            raise ValueError(f"hybrid public key must be {expected} bytes")
        return cls(data[:ED25519_PK_LEN], data[ED25519_PK_LEN:])


class HybridKeyPair:
    """A signing identity holding one Ed25519 and one ML-DSA key pair.

    Both keys are derived deterministically from their 32-byte seeds, so
    a device can persist two seeds (64 bytes) instead of expanded keys —
    the bootrom-size mitigation the paper describes.
    """

    def __init__(self, ed25519_seed: bytes, mldsa_seed: bytes,
                 params: MLDSAParams = ML_DSA_44):
        self.params = params
        self._scheme = MLDSA(params)
        self._ed_seed = bytes(ed25519_seed)
        self._mldsa_seed = bytes(mldsa_seed)
        # Keyed signing contexts: the Ed25519 comb precomputation and
        # the ML-DSA NTT-domain key expansion happen once here, not on
        # every sign() call.  Signatures stay byte-identical to the
        # one-shot module functions.
        self._ed_signer = ed25519.SigningKey(self._ed_seed)
        self._ed_public = self._ed_signer.public
        self._mldsa_public, self._mldsa_secret = (
            self._scheme.key_gen(self._mldsa_seed))
        self._mldsa_signer = self._scheme.signer(self._mldsa_secret)

    @property
    def public(self) -> HybridPublicKey:
        return HybridPublicKey(self._ed_public, self._mldsa_public)

    def sign(self, message: bytes) -> bytes:
        """Sign with both schemes; layout ``ed25519_sig || mldsa_sig``."""
        classical = self._ed_signer.sign(message)
        post_quantum = self._mldsa_signer.sign(message)
        return classical + post_quantum

    def sign_many(self, messages) -> list:
        """Batch :meth:`sign`: byte-identical signatures, with the
        ML-DSA rejection loops batched through ``sign_many``."""
        messages = list(messages)
        classical = [self._ed_signer.sign(m) for m in messages]
        post_quantum = self._mldsa_signer.sign_many(messages)
        return [c + p for c, p in zip(classical, post_quantum)]

    def signature_length(self) -> int:
        return ED25519_SIG_LEN + self.params.signature_bytes


def verify(public: HybridPublicKey, message: bytes, signature: bytes,
           params: MLDSAParams = ML_DSA_44) -> bool:
    """True only if *both* component signatures verify."""
    expected = ED25519_SIG_LEN + params.signature_bytes
    if len(signature) != expected:
        return False
    classical = signature[:ED25519_SIG_LEN]
    post_quantum = signature[ED25519_SIG_LEN:]
    if not ed25519.verify(public.ed25519, message, classical):
        return False
    # Cached verifier context (NTT-domain key expansion paid per key).
    try:
        verifier = MLDSA(params).verifier(public.mldsa)
    except ValueError:
        return False
    return verifier.verify(message, post_quantum)


def verify_many(public: HybridPublicKey, messages, signatures,
                params: MLDSAParams = ML_DSA_44) -> list:
    """Batch :func:`verify` under one public key: entry *i* equals
    ``verify(public, messages[i], signatures[i], params)``.

    Classical halves go through the Ed25519 random-linear-combination
    batch check; post-quantum halves through ML-DSA ``verify_many``.
    Boolean-identical to the scalar loop (counters may differ — no
    short-circuit between the two schemes).
    """
    messages = list(messages)
    signatures = list(signatures)
    if len(messages) != len(signatures):
        raise ValueError("messages and signatures length mismatch")
    expected = ED25519_SIG_LEN + params.signature_bytes
    results = [False] * len(messages)
    lanes = [i for i, s in enumerate(signatures)
             if len(s) == expected]
    if not lanes:
        return results
    classical_ok = ed25519.verify_batch(
        [(public.ed25519, messages[i],
          signatures[i][:ED25519_SIG_LEN]) for i in lanes])
    lanes = [i for i, ok in zip(lanes, classical_ok) if ok]
    if not lanes:
        return results
    pq_ok = MLDSA(params).verify_many(
        public.mldsa, [messages[i] for i in lanes],
        [signatures[i][ED25519_SIG_LEN:] for i in lanes])
    for i, ok in zip(lanes, pq_ok):
        results[i] = ok
    return results

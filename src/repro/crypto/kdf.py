"""Key-derivation helpers built on SHAKE256.

The Keystone boot flow (paper Section III-B) derives the security
monitor's signing keys from the unique device key and the SM measurement,
and sealing keys from the SM secrets plus the enclave hash.  All of those
derivations funnel through :func:`derive_key`, a domain-separated
SHAKE256 KDF.
"""

from __future__ import annotations

from .keccak import shake256


def derive_key(secret: bytes, label: str, context: bytes = b"",
               length: int = 32) -> bytes:
    """Derive ``length`` bytes bound to ``label`` and ``context``.

    The encoding is injective: every field is length-prefixed, so distinct
    (secret, label, context) triples can never collide.
    """
    if not label:
        raise ValueError("derivation label must be non-empty")
    encoded_label = label.encode("utf-8")
    material = (len(secret).to_bytes(4, "big") + secret
                + len(encoded_label).to_bytes(4, "big") + encoded_label
                + len(context).to_bytes(4, "big") + context)
    return shake256(b"convolve-kdf-v1" + material, length)


def derive_seed_pair(secret: bytes, label: str,
                     context: bytes = b"") -> tuple:
    """Derive two independent 32-byte seeds (classical, post-quantum).

    Used to expand one root secret into an Ed25519 seed and an ML-DSA
    seed without the two ever sharing bytes.
    """
    material = derive_key(secret, label, context, length=64)
    return material[:32], material[32:]

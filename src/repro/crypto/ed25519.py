"""Pure-Python Ed25519 signatures (RFC 8032).

Ed25519 is the *default* Keystone signature scheme (paper Table III).  The
PQ-enabled TEE keeps it alongside ML-DSA-44 in a hybrid, so that security
is never weaker than the classical baseline even if one scheme falls.

Implementation notes: twisted Edwards curve arithmetic in extended
homogeneous coordinates; SHA-512 from the standard library (the from-
scratch hashing effort of this project is Keccak, see
:mod:`repro.crypto.keccak`).  Not constant-time — it is a behavioural
model for the TEE simulator, not production crypto.

Hot paths use windowed arithmetic (pinned bit-equal to the bitwise
double-and-add reference by hypothesis property tests):

* fixed-base multiplication walks a lazily built 4-bit comb table of
  ``d * 16^i * B`` multiples in Niels form (affine ``(y+x, y-x, 2dt)``
  triples, batch-normalized with one field inversion) — ~64 cheap
  additions and zero doublings per ``k * B``,
* verification runs one Straus/Shamir double-scalar multiplication:
  ``s*B - k*A`` interleaved over a shared doubling chain with wNAF
  digits (width 7 for the fixed base, width 5 for ``A``),
* doubling uses the dedicated extended-coordinate formula
  (:func:`_point_double`, 4M+4S) split out of the general addition,
  and skips the ``T`` product when the next operation is another
  doubling.

:class:`SigningKey` caches the expensive per-secret state (clamped
scalar, prefix, compressed public key) so repeated signatures — the SM
re-attesting, the bootrom re-certifying — skip the key-derivation
scalar multiplication entirely.  Building precomputed state is *not*
charged to the ``crypto.ed25519.point_adds`` PERF counter; only
per-operation online work is, so counter totals stay independent of
cache warmth (the ISSUE 4 parallel-parity contract).
"""

from __future__ import annotations

import hashlib
import threading

from ..obs import TELEMETRY
from ..obs.perf import PERF
from ..runtime.memo import Memo
from .keccak import shake256

P = 2 ** 255 - 19
L = 2 ** 252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, P - 2, P)) % P

PUBLIC_KEY_LEN = 32
SECRET_KEY_LEN = 32
SIGNATURE_LEN = 64


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, P - 2, P)


# Points are (X, Y, Z, T) with x = X/Z, y = Y/Z, x*y = T/Z.
_IDENTITY = (0, 1, 1, 0)


def _point_add(p, q):
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * D % P
    d = 2 * z1 * z2 % P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_double(p, need_t: bool = True):
    """Dedicated extended-coordinate doubling (dbl-2008-hwcd, a = -1).

    4 multiplications + 4 squarings against the general addition's 9
    multiplications; produces the same projective point ``2p`` (any
    representative — compression normalizes by 1/Z).  ``need_t=False``
    skips the ``T`` product — valid only when the next operation is
    another doubling, which never reads ``T``.
    """
    x1, y1, z1 = p[0], p[1], p[2]
    a = x1 * x1 % P
    b = y1 * y1 % P
    c = 2 * z1 * z1 % P
    e = ((x1 + y1) * (x1 + y1) - a - b) % P
    g = b - a                    # a*A + B with a = -1
    f = g - c
    h = -a - b                   # a*A - B
    return (e * f % P, g * h % P, f * g % P,
            e * h % P if need_t else 0)


def _point_negate(p):
    x, y, z, t = p
    return (-x % P, y, z, -t % P)


def _point_mul(scalar: int, point):
    """Bitwise double-and-add — the retained semantic reference the
    windowed paths are pinned against by the parity suite."""
    result = _IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        scalar >>= 1
    return result


def _point_equal(p, q) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


_SQRT_M1 = pow(2, (P - 1) // 4, P)


def _recover_x(y: int, sign: int) -> int:
    """RFC 8032 x-recovery with the combined-exponent square root:
    ``x = u*v^3 * (u*v^7)^((P-5)/8)`` costs ONE modexp where the naive
    ``inv`` + ``sqrt`` route costs two or three.  The candidate equals
    ``(u/v)^((P+3)/8)`` exactly (the v exponents agree mod P-1), so
    recovered points are bit-identical to the naive form."""
    if y >= P:
        raise ValueError("invalid point encoding")
    u = (y * y - 1) % P
    v = (D * y * y + 1) % P
    if u == 0 or v == 0:
        if sign:
            raise ValueError("invalid point encoding")
        return 0
    v3 = v * v * v % P
    x = u * v3 * pow(u * v3 * v3 * v % P, (P - 5) // 8, P) % P
    vxx = v * x * x % P
    if vxx != u:
        if vxx != P - u:
            raise ValueError("invalid point encoding")
        x = x * _SQRT_M1 % P
    if (x & 1) != sign:
        x = P - x
    return x


_BASE_Y = 4 * _inv(5) % P
_BASE_X = _recover_x(_BASE_Y, 0)
BASE_POINT = (_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % P)


# -- precomputed-form arithmetic --------------------------------------------
#
# Niels form: an *affine* precomputed point stored as (y+x, y-x, 2dt).
# Adding one to an extended point costs 7 multiplications (vs 9 for the
# general addition).  Cached form is the projective analogue
# (y+x, y-x, 2dt, 2z) for runtime points whose Z is not 1.


def _add_niels(p, n):
    x1, y1, z1, t1 = p
    yp, ym, t2d = n
    a = (y1 - x1) * ym % P
    b = (y1 + x1) * yp % P
    c = t1 * t2d % P
    d = z1 + z1
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _neg_niels(n):
    yp, ym, t2d = n
    return (ym, yp, -t2d % P)


def _to_cached(p):
    x, y, z, t = p
    return ((y + x) % P, (y - x) % P, 2 * t * D % P, z + z)


def _add_cached(p, q):
    x1, y1, z1, t1 = p
    yp, ym, t2d, z2x2 = q
    a = (y1 - x1) * ym % P
    b = (y1 + x1) * yp % P
    c = t1 * t2d % P
    d = z1 * z2x2 % P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _neg_cached(q):
    yp, ym, t2d, z2x2 = q
    return (ym, yp, -t2d % P, z2x2)


def _batch_niels(points) -> list:
    """Normalize extended points to Niels form with ONE field inversion
    (Montgomery's simultaneous-inversion trick)."""
    zs = [p[2] for p in points]
    prefix = [1] * (len(zs) + 1)
    for i, z in enumerate(zs):
        prefix[i + 1] = prefix[i] * z % P
    inv_acc = _inv(prefix[-1])
    out = [None] * len(points)
    for i in range(len(points) - 1, -1, -1):
        zinv = prefix[i] * inv_acc % P
        inv_acc = inv_acc * zs[i] % P
        x = points[i][0] * zinv % P
        y = points[i][1] * zinv % P
        out[i] = ((y + x) % P, (y - x) % P, 2 * D * x * y % P)
    return out


_INV2 = _inv(2)


def _niels_to_extended(n):
    """Affine Niels ``(y+x, y-x, 2dt)`` back to extended coordinates.

    Two constant multiplications by ``1/2`` — cheap enough that MSM
    buckets can stay in Niels form until a second addition actually
    lands on them (the lazy-promotion trick that makes sparse buckets
    nearly free)."""
    yp, ym, _t2d = n
    x = (yp - ym) * _INV2 % P
    y = (yp + ym) * _INV2 % P
    return (x, y, 1, x * y % P)


#: Comb window width (bits) for fixed-base multiplication.
_WINDOW = 4
_WINDOWS = 256 // _WINDOW
#: wNAF widths for the Straus chain (fixed base / variable point).
_WNAF_BASE = 7
_WNAF_POINT = 5

_PRECOMP = None


def _precomp():
    """Lazily built fixed-base tables, batch-normalized to Niels form.

    ``comb[i][d - 1] == d * 16^i * B`` for ``d`` in 1..15 (any scalar
    below 2^256 is one addition per nonzero 4-bit digit, no doublings)
    and ``odd[j] == (2j + 1) * B`` up to 2^_WNAF_BASE - 1 for the
    verify chain.  Built once per process with uncounted additions
    (precomputation, not per-operation work).
    """
    global _PRECOMP
    if _PRECOMP is None:
        raw = []
        row_base = BASE_POINT
        for _ in range(_WINDOWS):
            row = [row_base]
            for _ in range(14):
                row.append(_point_add(row[-1], row_base))
            raw.extend(row)
            row_base = _point_add(row[-1], row_base)
        base2 = _point_double(BASE_POINT)
        odd = [BASE_POINT]
        for _ in range((1 << (_WNAF_BASE - 1)) // 2 - 1):
            odd.append(_point_add(odd[-1], base2))
        niels = _batch_niels(raw + odd)
        comb = tuple(tuple(niels[15 * i:15 * i + 15])
                     for i in range(_WINDOWS))
        _PRECOMP = (comb, tuple(niels[15 * _WINDOWS:]))
    return _PRECOMP


def _comb(scalar: int):
    """Uncounted comb-table walk: ``(scalar * B, additions used)``."""
    comb_table, _ = _precomp()
    result = _IDENTITY
    adds = 0
    index = 0
    while scalar:
        digit = scalar & 15
        if digit:
            result = _add_niels(result, comb_table[index][digit - 1])
            adds += 1
        scalar >>= 4
        index += 1
    return result, adds


def _point_mul_base(scalar: int):
    """``scalar * B`` via the comb table (``0 <= scalar < 2^256``)."""
    result, adds = _comb(scalar)
    if PERF.enabled:
        PERF.inc("crypto.ed25519.point_adds", adds)
    return result


def _wnaf(scalar: int, width: int) -> list:
    """Width-``w`` non-adjacent form, least-significant digit first;
    digits are zero or odd in ``(-2^(w-1), 2^(w-1))``."""
    digits = []
    span = 1 << width
    half = span >> 1
    while scalar:
        if scalar & 1:
            digit = scalar & (span - 1)
            if digit >= half:
                digit -= span
            scalar -= digit
            digits.append(digit)
        else:
            digits.append(0)
        scalar >>= 1
    return digits


def _point_table(point, width: int = _WNAF_POINT) -> list:
    """Cached-form odd multiples ``1, 3, .., 2^w - 1`` of ``point``.

    Table construction is precomputation (uncounted, like the comb
    table): verification memoizes it per public key, and counter totals
    must not depend on cache warmth.
    """
    point2 = _point_double(point)
    cur = point
    table = [_to_cached(point)]
    for _ in range((1 << (width - 1)) // 2 - 1):
        cur = _point_add(cur, point2)
        table.append(_to_cached(cur))
    return table


def _double_scalar_mul(s: int, k: int, point, point_table=None):
    """``s * B + k * point`` by Straus/Shamir interleaving.

    One shared doubling chain over wNAF digits of both scalars; the
    ``B`` digits index the fixed odd-multiple Niels table, the
    ``point`` digits ``point_table`` (built on the fly when not
    supplied).  Doublings skip the ``T`` product whenever both digits
    at a position are zero.
    """
    _, odd_base = _precomp()
    if point_table is None:
        point_table = _point_table(point)
    adds = 0
    s_digits = _wnaf(s, _WNAF_BASE)
    k_digits = _wnaf(k, _WNAF_POINT)
    n_s, n_k = len(s_digits), len(k_digits)
    # Event positions (nonzero digit somewhere), highest first; runs of
    # all-zero positions between events become tight doubling loops.
    events = [i for i in range(max(n_s, n_k) - 1, -1, -1)
              if (i < n_s and s_digits[i]) or (i < n_k and k_digits[i])]
    result = _IDENTITY
    position = events[0] if events else 0
    for i in events:
        runs = position - i
        if runs:
            # Inline doublings: only the last one in the run feeds an
            # addition, so only it needs the T product.
            x1, y1, z1, _ = result
            for _ in range(runs - 1):
                a = x1 * x1 % P
                b = y1 * y1 % P
                c = 2 * z1 * z1 % P
                e = ((x1 + y1) * (x1 + y1) - a - b) % P
                g = b - a
                f = g - c
                x1, y1, z1 = e * f % P, g * (-a - b) % P, f * g % P
            result = _point_double((x1, y1, z1, 0))
        ds = s_digits[i] if i < n_s else 0
        if ds:
            entry = odd_base[ds >> 1] if ds > 0 else \
                _neg_niels(odd_base[(-ds) >> 1])
            result = _add_niels(result, entry)
            adds += 1
        dk = k_digits[i] if i < n_k else 0
        if dk:
            entry = point_table[dk >> 1] if dk > 0 else \
                _neg_cached(point_table[(-dk) >> 1])
            result = _add_cached(result, entry)
            adds += 1
        position = i
    # Horner tail: the lowest event sits at bit ``position``; finish
    # with that many doublings (T needed only on the last).
    if position:
        x1, y1, z1, _ = result
        for _ in range(position - 1):
            a = x1 * x1 % P
            b = y1 * y1 % P
            c = 2 * z1 * z1 % P
            e = ((x1 + y1) * (x1 + y1) - a - b) % P
            g = b - a
            f = g - c
            x1, y1, z1 = e * f % P, g * (-a - b) % P, f * g % P
        result = _point_double((x1, y1, z1, 0))
    if PERF.enabled:
        PERF.inc("crypto.ed25519.point_adds", adds)
    return result


#: wNAF width for the long combined scalars of the batch-verify chain
#: (the ``z_i * k_i`` terms are ~253 bits, so the wider window pays).
_WNAF_BATCH = 6


def _multi_scalar_mul(base_scalar: int, pairs):
    """``base_scalar * B + sum(scalar_i * P_i)`` by interleaved Straus.

    Every scalar's wNAF digits share ONE doubling chain — the whole
    point of batch verification: ~253 doublings total instead of ~253
    per signature.  ``pairs`` supplies ``(scalar, width, cached_table)``
    with the odd-multiple table of each ``P_i`` built for ``width`` (see
    :func:`_point_table`).  Doublings skip the ``T`` product when no
    digit lands on a position.
    """
    _, odd_base = _precomp()
    s_digits = _wnaf(base_scalar, _WNAF_BASE)
    top = len(s_digits)
    slots = [[] for _ in range(max(top, 1))]
    for scalar, width, table in pairs:
        digits = _wnaf(scalar, width)
        if len(digits) > top:
            top = len(digits)
            slots.extend([] for _ in range(top - len(slots)))
        for i, digit in enumerate(digits):
            if digit:
                slots[i].append(table[digit >> 1] if digit > 0 else
                                _neg_cached(table[(-digit) >> 1]))
    adds = 0
    result = _IDENTITY
    started = False
    for i in range(top - 1, -1, -1):
        base_digit = s_digits[i] if i < len(s_digits) else 0
        entries = slots[i]
        if started:
            result = _point_double(result,
                                   need_t=bool(entries or base_digit))
        if base_digit:
            result = _add_niels(
                result,
                odd_base[base_digit >> 1] if base_digit > 0 else
                _neg_niels(odd_base[(-base_digit) >> 1]))
            adds += 1
        for entry in entries:
            result = _add_cached(result, entry)
            adds += 1
        if entries or base_digit:
            started = True
    if PERF.enabled:
        PERF.inc("crypto.ed25519.point_adds", adds)
    return result


#: Lane-count crossover at which the batch-verify combined equation
#: switches from interleaved Straus to the Pippenger bucket MSM.  Below
#: it the Straus chain (which reuses memoized per-key tables) wins; at
#: and above it Pippenger's O(n / log n) bucket amortization takes over
#: (measured ~1.4x at 64 lanes, ~1.9x at 256+ on this interpreter).
#: Tests and the attestation-service bench monkeypatch this to force
#: either path.
_MSM_LANES = 64


def _msm_window(n_points: int) -> int:
    """Bucket window width (bits) for :func:`_multi_scalar_mul_pippenger`.

    The classic ``log2(n) - 2`` heuristic, floored at 6: measured best
    on this interpreter at 129 points (c=6), 513 (c=7), 1025 (c=8).
    """
    return max(6, n_points.bit_length() - 3)


def _multi_scalar_mul_pippenger(base_scalar: int, pairs):
    """``base_scalar * B + sum(scalar_i * P_i)`` by Pippenger bucket MSM.

    ``pairs`` supplies ``(scalar, point)`` with extended-coordinate
    points — no per-point wNAF tables, which is the big-batch win over
    :func:`_multi_scalar_mul`: instead of 8-16 precomputed odd multiples
    per point, every point is batch-normalized to Niels form once (one
    shared field inversion) and contributes one bucket addition per
    ``c``-bit window.  Digits are *signed* (in ``[-2^(c-1), 2^(c-1)]``),
    halving the bucket count; buckets hold the raw Niels entry until a
    second addition lands (lazy promotion via :func:`_niels_to_extended`)
    so sparse buckets cost nothing.  Per window, the running-sum walk
    ``sum(d * bucket_d)`` needs two additions per occupied bucket, and
    ``c`` doublings chain the windows (T products skipped mid-run).

    Produces the same group element as the Straus chain — the
    batch-verify acceptance bit is identical whichever path runs.  PERF:
    ``crypto.ed25519.msm_points`` / ``msm_point_adds`` /
    ``msm_doublings`` attribute the online work (all deterministic in
    the inputs, so serial/parallel counter parity holds).
    """
    points = [BASE_POINT]
    scalars = [base_scalar % L]
    for scalar, point in pairs:
        points.append(point)
        scalars.append(scalar % L)
    c = _msm_window(len(points))
    half = 1 << (c - 1)
    mask = (1 << c) - 1
    nwin = -(-253 // c)
    digit_lists = []
    maxwin = nwin
    for s in scalars:
        # Signed c-bit digits with carry: d in [-half, half], and a
        # possible extra top window when the final carry survives.
        digits = []
        carry = 0
        for _ in range(nwin):
            d = (s & mask) + carry
            s >>= c
            if d > half:
                d -= 1 << c
                carry = 1
            else:
                carry = 0
            digits.append(d)
        if carry:
            digits.append(1)
            maxwin = nwin + 1
        digit_lists.append(digits)
    niels = _batch_niels(points)
    negs = [_neg_niels(entry) for entry in niels]
    adds = 0
    doublings = 0
    result = None
    for w in range(maxwin - 1, -1, -1):
        if result is not None:
            for _ in range(c - 1):
                result = _point_double(result, need_t=False)
            result = _point_double(result)
            doublings += c
        buckets = [None] * (half + 1)
        for i, digits in enumerate(digit_lists):
            if w >= len(digits):
                continue
            d = digits[w]
            if not d:
                continue
            entry = niels[i] if d > 0 else negs[i]
            if d < 0:
                d = -d
            bucket = buckets[d]
            if bucket is None:
                buckets[d] = entry
            else:
                if len(bucket) == 3:
                    bucket = _niels_to_extended(bucket)
                buckets[d] = _add_niels(bucket, entry)
                adds += 1
        # sum(d * bucket_d) = sum of suffix sums: running accumulates
        # bucket_half..bucket_d, acc accumulates the runnings.
        running = None
        acc = None
        for d in range(half, 0, -1):
            bucket = buckets[d]
            if bucket is not None:
                if len(bucket) == 3:
                    bucket = _niels_to_extended(bucket)
                if running is None:
                    running = bucket
                else:
                    running = _point_add(running, bucket)
                    adds += 1
            if running is not None:
                if acc is None:
                    acc = running
                else:
                    acc = _point_add(acc, running)
                    adds += 1
        if acc is not None:
            if result is None:
                result = acc
            else:
                result = _point_add(result, acc)
                adds += 1
    if PERF.enabled:
        PERF.inc("crypto.ed25519.msm_points", len(points))
        PERF.inc("crypto.ed25519.msm_point_adds", adds)
        PERF.inc("crypto.ed25519.msm_doublings", doublings)
    return result if result is not None else _IDENTITY


#: Domain separator for deterministic batch-verification coefficients.
_BATCH_DOMAIN = b"repro.ed25519.batch-verify.v1"


def _batch_coefficients(lanes) -> list:
    """128-bit random-linear-combination coefficients, derived
    deterministically by SHAKE256 over the whole batch contents.

    Deterministic derivation keeps campaign replays byte-stable (no
    process randomness) while remaining unpredictable to anyone who
    cannot already choose the full batch; forcing each coefficient odd
    makes it a unit mod 8, so a single lane whose defect is a small-
    torsion point can never be annihilated by its own coefficient.
    """
    hasher_input = [_BATCH_DOMAIN, len(lanes).to_bytes(4, "little")]
    for _i, public, message, signature in lanes:
        hasher_input += [public, signature, _sha512(message)]
    stream = shake256(b"".join(hasher_input), 16 * len(lanes))
    return [int.from_bytes(stream[16 * i:16 * i + 16], "little") | 1
            for i in range(len(lanes))]


def verify_batch(items) -> list:
    """Batch Ed25519 verification: one random-linear-combination check
    for the whole batch, per-signature fallback on failure.

    ``items`` is a sequence of ``(public, message, signature)`` triples;
    entry *i* of the result equals ``verify(*items[i])``.  Structurally
    invalid lanes (bad lengths, invalid encodings, ``s >= L``) are
    rejected up front; the remaining lanes are checked as one combined
    equation ``sum(z_i * (s_i*B - R_i - k_i*A_i)) == identity`` over a
    single shared doubling chain — ~4x fewer point operations per lane
    than the per-signature Straus chain.  If the combined check fails,
    every lane is re-verified individually, which localizes the
    offending signature(s) exactly (the attestation-service triage
    path).  PERF: lanes entering the combined check tick
    ``crypto.ed25519.batch_verifies``; fallback re-verifies tick the
    scalar ``crypto.ed25519.verify`` as usual.

    Edge cases short-circuit before any batch machinery: an empty batch
    returns ``[]`` without even allocating a TELEMETRY span (the
    micro-batching service flushes empty deadline ticks constantly),
    and a batch of one runs the scalar :func:`verify` directly — the
    RLC combination cannot amortize anything across one lane, and the
    scalar Straus chain with its narrower per-point window is strictly
    cheaper.
    """
    items = list(items)
    if not items:
        return []
    if len(items) == 1:
        return [verify(*items[0])]
    with TELEMETRY.span("crypto.ed25519.verify_batch",
                        batch=len(items)), \
            TELEMETRY.timer("crypto.ed25519.verify_seconds"):
        return _verify_batch(items)


def _verify_batch(items) -> list:
    results = [False] * len(items)
    lanes = []
    points = []
    for i, (public, message, signature) in enumerate(items):
        if len(public) != PUBLIC_KEY_LEN \
                or len(signature) != SIGNATURE_LEN:
            continue
        neg_a = _batch_verify_point(public)
        if neg_a is None:
            continue
        if int.from_bytes(signature[32:], "little") >= L:
            continue
        try:
            r_point = _decompress(signature[:32])
        except ValueError:
            # compression never produces this encoding, so the scalar
            # path's compare-against-R would reject it too
            continue
        lanes.append((i, bytes(public), bytes(message),
                      bytes(signature)))
        points.append((neg_a, r_point))
    if not lanes:
        return results
    if PERF.enabled:
        PERF.inc("crypto.ed25519.batch_verifies", len(lanes))
    coefficients = _batch_coefficients(lanes)
    use_msm = len(lanes) >= _MSM_LANES
    # Batch-local A-table sharing (Straus path): duplicate public keys
    # in one batch — the common service shape, many reports from few
    # devices — build their wNAF table exactly once even when the
    # global memo is cold or thrashing.
    a_tables = {} if not use_msm else None
    s_combined = 0
    pairs = []
    for (i, public, message, signature), (neg_a, r_point), z in \
            zip(lanes, points, coefficients):
        s_combined = (s_combined + z * int.from_bytes(
            signature[32:], "little")) % L
        k = int.from_bytes(_sha512(signature[:32] + public + message),
                           "little") % L
        if use_msm:
            pairs.append((z, _point_negate(r_point)))
            pairs.append((z * k % L, neg_a))
        else:
            table = a_tables.get(public)
            if table is None:
                table = _batch_verify_table(public)
                a_tables[public] = table
            pairs.append((z, _WNAF_POINT,
                          _point_table(_point_negate(r_point))))
            pairs.append((z * k % L, _WNAF_BATCH, table))
    if use_msm:
        combined = _multi_scalar_mul_pippenger(s_combined, pairs)
    else:
        combined = _multi_scalar_mul(s_combined, pairs)
    if _point_equal(combined, _IDENTITY):
        for i, _public, _message, _signature in lanes:
            results[i] = True
        return results
    for i, public, message, signature in lanes:
        results[i] = verify(public, message, signature)
    return results


#: Per-public-key verification state: the wNAF odd-multiple table of
#: ``-A``.  Attestation verifies the same handful of device / SM keys
#: thousands of times, so the decompression square root and the table
#: build are paid once per key.  ``None`` caches an invalid encoding.
_VERIFY_MEMO = Memo(maxsize=256)
_VERIFY_LOCK = threading.Lock()


def _verify_table(public: bytes):
    """Memoized cached-form odd multiples of ``-A`` for a compressed
    public key; ``None`` when the encoding is invalid."""
    with _VERIFY_LOCK:
        found, table = _VERIFY_MEMO.lookup(public)
    if found:
        return table
    try:
        table = _point_table(_point_negate(_decompress(public)))
    except ValueError:
        table = None
    with _VERIFY_LOCK:
        _VERIFY_MEMO.store(bytes(public), table)
    return table


def _batch_verify_point(public: bytes):
    """Memoized decompressed ``-A`` (extended coordinates, ``Z=1``) for
    a compressed public key; ``None`` when the encoding is invalid.

    The MSM batch path consumes the bare point — Pippenger needs no
    per-point table — while the Straus path derives its width-6 table
    from it (:func:`_batch_verify_table`), so the decompression square
    root is paid once per key either way."""
    key = (b"point", bytes(public))
    with _VERIFY_LOCK:
        found, point = _VERIFY_MEMO.lookup(key)
    if found:
        return point
    try:
        point = _point_negate(_decompress(public))
    except ValueError:
        point = None
    with _VERIFY_LOCK:
        _VERIFY_MEMO.store(key, point)
    return point


def _batch_verify_table(public: bytes):
    """Like :func:`_verify_table` but width-:data:`_WNAF_BATCH`, for the
    long combined scalars of the batch-verify chain."""
    key = (b"batch", bytes(public))
    with _VERIFY_LOCK:
        found, table = _VERIFY_MEMO.lookup(key)
    if found:
        return table
    neg_a = _batch_verify_point(public)
    table = None if neg_a is None else _point_table(neg_a, _WNAF_BATCH)
    with _VERIFY_LOCK:
        _VERIFY_MEMO.store(key, table)
    return table


def _compress(point) -> bytes:
    x, y, z, _ = point
    zinv = _inv(z)
    x, y = x * zinv % P, y * zinv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _decompress(data: bytes):
    if len(data) != 32:
        raise ValueError("point encoding must be 32 bytes")
    encoded = int.from_bytes(data, "little")
    sign = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    x = _recover_x(y, sign)
    return (x, y, 1, x * y % P)


def _clamp(scalar_bytes: bytes) -> int:
    a = bytearray(scalar_bytes)
    a[0] &= 248
    a[31] &= 127
    a[31] |= 64
    return int.from_bytes(a, "little")


def public_key(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    if len(secret) != SECRET_KEY_LEN:
        raise ValueError("Ed25519 secret must be 32 bytes")
    a = _clamp(_sha512(secret)[:32])
    return _compress(_point_mul_base(a))


class SigningKey:
    """Precomputed signing context for one 32-byte secret seed.

    Caches the clamped scalar, the deterministic-nonce prefix and the
    compressed public key, so each :meth:`sign` is a single fixed-base
    scalar multiplication (the reference one-shot path pays two).
    Signatures are byte-identical to :func:`sign`.
    """

    __slots__ = ("secret", "public", "_a", "_prefix")

    def __init__(self, secret: bytes):
        if len(secret) != SECRET_KEY_LEN:
            raise ValueError("Ed25519 secret must be 32 bytes")
        self.secret = bytes(secret)
        digest = _sha512(self.secret)
        self._a = _clamp(digest[:32])
        self._prefix = digest[32:]
        # Context setup is precomputation, deliberately uncounted (like
        # the comb-table build): ``crypto.ed25519.point_adds`` totals
        # must not depend on which caller warmed a cached context.
        self.public = _compress(_comb(self._a)[0])

    def sign(self, message: bytes) -> bytes:
        """Produce the 64-byte deterministic signature for ``message``."""
        if PERF.enabled:
            PERF.inc("crypto.ed25519.sign")
        with TELEMETRY.span("crypto.ed25519.sign",
                            message_bytes=len(message)), \
                TELEMETRY.timer("crypto.ed25519.sign_seconds"):
            r = int.from_bytes(_sha512(self._prefix + message),
                               "little") % L
            r_point = _compress(_point_mul_base(r))
            k = int.from_bytes(_sha512(r_point + self.public + message),
                               "little") % L
            s = (r + k * self._a) % L
            return r_point + s.to_bytes(32, "little")

    def verify(self, message: bytes, signature: bytes) -> bool:
        return verify(self.public, message, signature)


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte deterministic Ed25519 signature."""
    if len(secret) != SECRET_KEY_LEN:
        raise ValueError("Ed25519 secret must be 32 bytes")
    if PERF.enabled:
        PERF.inc("crypto.ed25519.sign")
    with TELEMETRY.span("crypto.ed25519.sign",
                        message_bytes=len(message)), \
            TELEMETRY.timer("crypto.ed25519.sign_seconds"):
        return _sign(secret, message)


def _sign(secret: bytes, message: bytes) -> bytes:
    digest = _sha512(secret)
    a = _clamp(digest[:32])
    prefix = digest[32:]
    public = _compress(_point_mul_base(a))
    r = int.from_bytes(_sha512(prefix + message), "little") % L
    r_point = _compress(_point_mul_base(r))
    k = int.from_bytes(_sha512(r_point + public + message), "little") % L
    s = (r + k * a) % L
    return r_point + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature; returns False on any malformation."""
    if PERF.enabled:
        PERF.inc("crypto.ed25519.verify")
    with TELEMETRY.span("crypto.ed25519.verify",
                        message_bytes=len(message)), \
            TELEMETRY.timer("crypto.ed25519.verify_seconds"):
        return _verify(public, message, signature)


def _verify(public: bytes, message: bytes, signature: bytes) -> bool:
    if len(public) != PUBLIC_KEY_LEN or len(signature) != SIGNATURE_LEN:
        return False
    neg_a_table = _verify_table(public)
    if neg_a_table is None:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message),
                       "little") % L
    # s*B == R + k*A  <=>  s*B - k*A == R.  Comparing the *canonical*
    # compression of the left side against the R bytes is equivalent to
    # decompress-and-compare: compression never produces a non-canonical
    # or invalid encoding, so every R the reference rejects mismatches
    # here too — and it saves R's square-root recovery.
    q = _double_scalar_mul(s, k, None, point_table=neg_a_table)
    return _compress(q) == signature[:32]


def verify_reference(public: bytes, message: bytes,
                     signature: bytes) -> bool:
    """The pre-fast-path verification flow, kept verbatim: decompress
    both points and check ``s*B == R + k*A`` with two double-and-add
    :func:`_point_mul` chains.  The windowed :func:`verify` is pinned
    equivalent to this path by the parity suite, and the crypto bench
    gates the fast path's speedup against it."""
    if len(public) != PUBLIC_KEY_LEN or len(signature) != SIGNATURE_LEN:
        return False
    try:
        a = _decompress(public)
        r = _decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message),
                       "little") % L
    sb = _point_mul(s, BASE_POINT)
    ka = _point_mul(k, a)
    return _point_equal(sb, _point_add(r, ka))


class Ed25519KeyPair:
    """Convenience wrapper pairing a seed with its derived public key."""

    def __init__(self, secret: bytes):
        self._signer = SigningKey(secret)
        self.secret = self._signer.secret
        self.public = self._signer.public

    def sign(self, message: bytes) -> bytes:
        return self._signer.sign(message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return verify(self.public, message, signature)

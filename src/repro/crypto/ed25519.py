"""Pure-Python Ed25519 signatures (RFC 8032).

Ed25519 is the *default* Keystone signature scheme (paper Table III).  The
PQ-enabled TEE keeps it alongside ML-DSA-44 in a hybrid, so that security
is never weaker than the classical baseline even if one scheme falls.

Implementation notes: twisted Edwards curve arithmetic in extended
homogeneous coordinates; SHA-512 from the standard library (the from-
scratch hashing effort of this project is Keccak, see
:mod:`repro.crypto.keccak`).  Not constant-time — it is a behavioural
model for the TEE simulator, not production crypto.
"""

from __future__ import annotations

import hashlib

from ..obs import TELEMETRY
from ..obs.perf import PERF

P = 2 ** 255 - 19
L = 2 ** 252 + 27742317777372353535851937790883648493
D = (-121665 * pow(121666, P - 2, P)) % P

PUBLIC_KEY_LEN = 32
SECRET_KEY_LEN = 32
SIGNATURE_LEN = 64


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, P - 2, P)


# Points are (X, Y, Z, T) with x = X/Z, y = Y/Z, x*y = T/Z.
_IDENTITY = (0, 1, 1, 0)


def _point_add(p, q):
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * D % P
    d = 2 * z1 * z2 % P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_mul(scalar: int, point):
    result = _IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        scalar >>= 1
    return result


def _point_equal(p, q) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


def _recover_x(y: int, sign: int) -> int:
    if y >= P:
        raise ValueError("invalid point encoding")
    x2 = (y * y - 1) * _inv(D * y * y + 1) % P
    if x2 == 0:
        if sign:
            raise ValueError("invalid point encoding")
        return 0
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * pow(2, (P - 1) // 4, P) % P
    if (x * x - x2) % P != 0:
        raise ValueError("invalid point encoding")
    if (x & 1) != sign:
        x = P - x
    return x


_BASE_Y = 4 * _inv(5) % P
_BASE_X = _recover_x(_BASE_Y, 0)
BASE_POINT = (_BASE_X, _BASE_Y, 1, _BASE_X * _BASE_Y % P)


def _compress(point) -> bytes:
    x, y, z, _ = point
    zinv = _inv(z)
    x, y = x * zinv % P, y * zinv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _decompress(data: bytes):
    if len(data) != 32:
        raise ValueError("point encoding must be 32 bytes")
    encoded = int.from_bytes(data, "little")
    sign = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    x = _recover_x(y, sign)
    return (x, y, 1, x * y % P)


def _clamp(scalar_bytes: bytes) -> int:
    a = bytearray(scalar_bytes)
    a[0] &= 248
    a[31] &= 127
    a[31] |= 64
    return int.from_bytes(a, "little")


def public_key(secret: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte secret seed."""
    if len(secret) != SECRET_KEY_LEN:
        raise ValueError("Ed25519 secret must be 32 bytes")
    a = _clamp(_sha512(secret)[:32])
    return _compress(_point_mul(a, BASE_POINT))


def sign(secret: bytes, message: bytes) -> bytes:
    """Produce a 64-byte deterministic Ed25519 signature."""
    if len(secret) != SECRET_KEY_LEN:
        raise ValueError("Ed25519 secret must be 32 bytes")
    if PERF.enabled:
        PERF.inc("crypto.ed25519.sign")
    with TELEMETRY.span("crypto.ed25519.sign",
                        message_bytes=len(message)), \
            TELEMETRY.timer("crypto.ed25519.sign_seconds"):
        return _sign(secret, message)


def _sign(secret: bytes, message: bytes) -> bytes:
    digest = _sha512(secret)
    a = _clamp(digest[:32])
    prefix = digest[32:]
    public = _compress(_point_mul(a, BASE_POINT))
    r = int.from_bytes(_sha512(prefix + message), "little") % L
    r_point = _compress(_point_mul(r, BASE_POINT))
    k = int.from_bytes(_sha512(r_point + public + message), "little") % L
    s = (r + k * a) % L
    return r_point + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Check an Ed25519 signature; returns False on any malformation."""
    if PERF.enabled:
        PERF.inc("crypto.ed25519.verify")
    with TELEMETRY.span("crypto.ed25519.verify",
                        message_bytes=len(message)), \
            TELEMETRY.timer("crypto.ed25519.verify_seconds"):
        return _verify(public, message, signature)


def _verify(public: bytes, message: bytes, signature: bytes) -> bool:
    if len(public) != PUBLIC_KEY_LEN or len(signature) != SIGNATURE_LEN:
        return False
    try:
        a_point = _decompress(public)
        r_point = _decompress(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message),
                       "little") % L
    left = _point_mul(s, BASE_POINT)
    right = _point_add(r_point, _point_mul(k, a_point))
    return _point_equal(left, right)


class Ed25519KeyPair:
    """Convenience wrapper pairing a seed with its derived public key."""

    def __init__(self, secret: bytes):
        self.secret = bytes(secret)
        self.public = public_key(self.secret)

    def sign(self, message: bytes) -> bytes:
        return sign(self.secret, message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return verify(self.public, message, signature)

"""Pure-Python ML-KEM (FIPS 203, a.k.a. CRYSTALS-Kyber).

Kyber is the HADES flagship case study (paper Table I: the Kyber-CPA
and Kyber-CCA design spaces; "We obtain the first arbitrary-order
masked implementation of CRYSTALs-Kyber") and the natural key-
establishment mechanism for CONVOLVE's long-term secure channels: a
remote party encapsulates a shared secret to a device's enclave after
verifying its attestation report.

This module implements the full standard from scratch: the incomplete
NTT over Z_3329[x]/(x^256+1), centred-binomial sampling, ciphertext
compression, the K-PKE core and the Fujisaki-Okamoto transform with
implicit rejection.  All three parameter sets are provided; the
CONVOLVE flows use :data:`ML_KEM_768`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .keccak import Shake128, sha3_256, sha3_512, shake256

Q = 3329
N = 256
ZETA = 17


def _bitrev7(value: int) -> int:
    result = 0
    for _ in range(7):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


#: zeta^bitrev7(i) — butterfly twiddles of the 7-layer incomplete NTT.
ZETAS = tuple(pow(ZETA, _bitrev7(i), Q) for i in range(128))
#: zeta^(2*bitrev7(i)+1) — the per-pair constants of BaseCaseMultiply.
GAMMAS = tuple(pow(ZETA, 2 * _bitrev7(i) + 1, Q) for i in range(128))

_INV_128 = pow(128, Q - 2, Q)


def ntt(coeffs: list) -> list:
    """Forward NTT (FIPS 203 Algorithm 9)."""
    a = list(coeffs)
    k = 1
    length = 128
    while length >= 2:
        start = 0
        while start < N:
            zeta = ZETAS[k]
            k += 1
            for j in range(start, start + length):
                t = zeta * a[j + length] % Q
                a[j + length] = (a[j] - t) % Q
                a[j] = (a[j] + t) % Q
            start += 2 * length
        length //= 2
    return a


def intt(coeffs: list) -> list:
    """Inverse NTT (FIPS 203 Algorithm 10)."""
    a = list(coeffs)
    k = 127
    length = 2
    while length <= 128:
        start = 0
        while start < N:
            zeta = ZETAS[k]
            k -= 1
            for j in range(start, start + length):
                t = a[j]
                a[j] = (t + a[j + length]) % Q
                a[j + length] = zeta * (a[j + length] - t) % Q
            start += 2 * length
        length *= 2
    return [x * _INV_128 % Q for x in a]


def ntt_mul(a: list, b: list) -> list:
    """Pairwise product in the NTT domain (128 degree-1 factors)."""
    c = [0] * N
    for i in range(128):
        a0, a1 = a[2 * i], a[2 * i + 1]
        b0, b1 = b[2 * i], b[2 * i + 1]
        c[2 * i] = (a0 * b0 + a1 * b1 % Q * GAMMAS[i]) % Q
        c[2 * i + 1] = (a0 * b1 + a1 * b0) % Q
    return c


def poly_add(a: list, b: list) -> list:
    return [(x + y) % Q for x, y in zip(a, b)]


def poly_sub(a: list, b: list) -> list:
    return [(x - y) % Q for x, y in zip(a, b)]


# ---------------------------------------------------------------------------
# Compression and byte encodings


def compress(value: int, bits: int) -> int:
    """Compress_d: round(2^d / q * x) mod 2^d."""
    return ((value << bits) + Q // 2) // Q % (1 << bits)


def decompress(value: int, bits: int) -> int:
    """Decompress_d: round(q / 2^d * y)."""
    return (value * Q + (1 << (bits - 1))) >> bits


def byte_encode(coeffs: list, bits: int) -> bytes:
    """Pack each coefficient into ``bits`` bits, little-endian order."""
    acc = 0
    acc_bits = 0
    out = bytearray()
    for c in coeffs:
        acc |= c << acc_bits
        acc_bits += bits
        while acc_bits >= 8:
            out.append(acc & 0xFF)
            acc >>= 8
            acc_bits -= 8
    if acc_bits:
        out.append(acc & 0xFF)
    return bytes(out)


def byte_decode(data: bytes, bits: int) -> list:
    total = int.from_bytes(data, "little")
    mask = (1 << bits) - 1
    return [(total >> (bits * i)) & mask for i in range(N)]


# ---------------------------------------------------------------------------
# Sampling


def sample_ntt(seed: bytes) -> list:
    """SampleNTT: uniform NTT-domain polynomial by 12-bit rejection."""
    xof = Shake128(seed)
    coeffs = []
    while len(coeffs) < N:
        chunk = xof.read(3 * 168)
        for i in range(0, len(chunk), 3):
            d1 = chunk[i] | ((chunk[i + 1] & 0x0F) << 8)
            d2 = (chunk[i + 1] >> 4) | (chunk[i + 2] << 4)
            if d1 < Q:
                coeffs.append(d1)
                if len(coeffs) == N:
                    break
            if d2 < Q and len(coeffs) < N:
                coeffs.append(d2)
                if len(coeffs) == N:
                    break
    return coeffs


def sample_cbd(data: bytes, eta: int) -> list:
    """SamplePolyCBD: centred binomial distribution from 64*eta bytes."""
    if len(data) != 64 * eta:
        raise ValueError(f"CBD_{eta} needs {64 * eta} bytes")
    bits = int.from_bytes(data, "little")
    coeffs = []
    for i in range(N):
        a = 0
        b = 0
        for j in range(eta):
            a += (bits >> (2 * i * eta + j)) & 1
            b += (bits >> (2 * i * eta + eta + j)) & 1
        coeffs.append((a - b) % Q)
    return coeffs


def _prf(seed: bytes, nonce: int, eta: int) -> bytes:
    return shake256(seed + bytes([nonce]), 64 * eta)


def _g(data: bytes) -> tuple:
    digest = sha3_512(data)
    return digest[:32], digest[32:]


def _j(data: bytes) -> bytes:
    return shake256(data, 32)


# ---------------------------------------------------------------------------
# Parameter sets


@dataclass(frozen=True)
class MLKEMParams:
    """One FIPS 203 parameter set."""

    name: str
    k: int
    eta1: int
    eta2: int
    du: int
    dv: int

    @property
    def ek_bytes(self) -> int:
        return 384 * self.k + 32

    @property
    def dk_bytes(self) -> int:
        return 768 * self.k + 96

    @property
    def ciphertext_bytes(self) -> int:
        return 32 * (self.du * self.k + self.dv)


ML_KEM_512 = MLKEMParams("ML-KEM-512", k=2, eta1=3, eta2=2, du=10, dv=4)
ML_KEM_768 = MLKEMParams("ML-KEM-768", k=3, eta1=2, eta2=2, du=10, dv=4)
ML_KEM_1024 = MLKEMParams("ML-KEM-1024", k=4, eta1=2, eta2=2, du=11,
                          dv=5)

KEM_PARAMETER_SETS = {p.name: p for p in (ML_KEM_512, ML_KEM_768,
                                          ML_KEM_1024)}

SHARED_SECRET_LEN = 32


# ---------------------------------------------------------------------------
# K-PKE (the CPA-secure core — the paper's "Kyber-CPA")


def _expand_matrix(rho: bytes, k: int, transpose: bool = False) -> list:
    matrix = []
    for i in range(k):
        row = []
        for j in range(k):
            if transpose:
                row.append(sample_ntt(rho + bytes([i, j])))
            else:
                row.append(sample_ntt(rho + bytes([j, i])))
        matrix.append(row)
    return matrix


def _pke_keygen(d: bytes, params: MLKEMParams) -> tuple:
    rho, sigma = _g(d + bytes([params.k]))
    a_hat = _expand_matrix(rho, params.k)
    nonce = 0
    s = []
    for _ in range(params.k):
        s.append(sample_cbd(_prf(sigma, nonce, params.eta1),
                            params.eta1))
        nonce += 1
    e = []
    for _ in range(params.k):
        e.append(sample_cbd(_prf(sigma, nonce, params.eta1),
                            params.eta1))
        nonce += 1
    s_hat = [ntt(poly) for poly in s]
    e_hat = [ntt(poly) for poly in e]
    t_hat = []
    for i in range(params.k):
        acc = [0] * N
        for j in range(params.k):
            acc = poly_add(acc, ntt_mul(a_hat[i][j], s_hat[j]))
        t_hat.append(poly_add(acc, e_hat[i]))
    ek = b"".join(byte_encode(poly, 12) for poly in t_hat) + rho
    dk = b"".join(byte_encode(poly, 12) for poly in s_hat)
    return ek, dk


def _pke_encrypt(ek: bytes, message: bytes, randomness: bytes,
                 params: MLKEMParams) -> bytes:
    k = params.k
    t_hat = [byte_decode(ek[384 * i:384 * (i + 1)], 12)
             for i in range(k)]
    rho = ek[384 * k:]
    at_hat = _expand_matrix(rho, k, transpose=True)
    nonce = 0
    y = []
    for _ in range(k):
        y.append(sample_cbd(_prf(randomness, nonce, params.eta1),
                            params.eta1))
        nonce += 1
    e1 = []
    for _ in range(k):
        e1.append(sample_cbd(_prf(randomness, nonce, params.eta2),
                             params.eta2))
        nonce += 1
    e2 = sample_cbd(_prf(randomness, nonce, params.eta2), params.eta2)
    y_hat = [ntt(poly) for poly in y]
    u = []
    for i in range(k):
        acc = [0] * N
        for j in range(k):
            acc = poly_add(acc, ntt_mul(at_hat[i][j], y_hat[j]))
        u.append(poly_add(intt(acc), e1[i]))
    message_bits = byte_decode(message, 1)
    mu = [decompress(bit, 1) for bit in message_bits]
    acc = [0] * N
    for j in range(k):
        acc = poly_add(acc, ntt_mul(t_hat[j], y_hat[j]))
    v = poly_add(poly_add(intt(acc), e2), mu)
    c1 = b"".join(byte_encode([compress(c, params.du) for c in poly],
                              params.du) for poly in u)
    c2 = byte_encode([compress(c, params.dv) for c in v], params.dv)
    return c1 + c2


def _pke_decrypt(dk: bytes, ciphertext: bytes,
                 params: MLKEMParams) -> bytes:
    k = params.k
    du_bytes = 32 * params.du
    u = []
    for i in range(k):
        packed = ciphertext[du_bytes * i:du_bytes * (i + 1)]
        u.append([decompress(c, params.du)
                  for c in byte_decode(packed, params.du)])
    v = [decompress(c, params.dv)
         for c in byte_decode(ciphertext[du_bytes * k:], params.dv)]
    s_hat = [byte_decode(dk[384 * i:384 * (i + 1)], 12)
             for i in range(k)]
    acc = [0] * N
    for j in range(k):
        acc = poly_add(acc, ntt_mul(s_hat[j], ntt(u[j])))
    w = poly_sub(v, intt(acc))
    return byte_encode([compress(c, 1) for c in w], 1)


# ---------------------------------------------------------------------------
# The KEM (FO transform with implicit rejection)


class MLKEM:
    """An ML-KEM instance for one parameter set.

    >>> kem = MLKEM(ML_KEM_768)
    >>> ek, dk = kem.key_gen(bytes(32), bytes(32))
    >>> key, ct = kem.encaps(ek, bytes(32))
    >>> kem.decaps(dk, ct) == key
    True
    """

    def __init__(self, params: MLKEMParams = ML_KEM_768):
        self.params = params

    def key_gen(self, d: bytes = None, z: bytes = None) -> tuple:
        """Generate (encapsulation key, decapsulation key).

        Deterministic in the 32-byte seeds ``d`` and ``z`` — like
        ML-DSA, a device can store 64 bytes instead of 2400.
        """
        d = os.urandom(32) if d is None else d
        z = os.urandom(32) if z is None else z
        if len(d) != 32 or len(z) != 32:
            raise ValueError("ML-KEM seeds must be 32 bytes")
        ek, dk_pke = _pke_keygen(d, self.params)
        dk = dk_pke + ek + sha3_256(ek) + z
        return ek, dk

    def encaps(self, ek: bytes, m: bytes = None) -> tuple:
        """Encapsulate: returns (shared_secret, ciphertext)."""
        if len(ek) != self.params.ek_bytes:
            raise ValueError(f"{self.params.name} encapsulation key "
                             f"must be {self.params.ek_bytes} bytes")
        # Modulus check (FIPS 203 input validation): every encoded
        # coefficient must already be reduced.
        for i in range(self.params.k):
            coeffs = byte_decode(ek[384 * i:384 * (i + 1)], 12)
            if any(c >= Q for c in coeffs):
                raise ValueError("encapsulation key not reduced mod q")
        m = os.urandom(32) if m is None else m
        if len(m) != 32:
            raise ValueError("encapsulation randomness must be 32 bytes")
        key, randomness = _g(m + sha3_256(ek))
        ciphertext = _pke_encrypt(ek, m, randomness, self.params)
        return key, ciphertext

    def decaps(self, dk: bytes, ciphertext: bytes) -> bytes:
        """Decapsulate; implicit rejection on malformed ciphertexts."""
        params = self.params
        if len(dk) != params.dk_bytes:
            raise ValueError(f"{params.name} decapsulation key must be "
                             f"{params.dk_bytes} bytes")
        if len(ciphertext) != params.ciphertext_bytes:
            raise ValueError(f"{params.name} ciphertext must be "
                             f"{params.ciphertext_bytes} bytes")
        dk_pke = dk[:384 * params.k]
        ek = dk[384 * params.k:768 * params.k + 32]
        h_ek = dk[768 * params.k + 32:768 * params.k + 64]
        z = dk[768 * params.k + 64:]
        m_prime = _pke_decrypt(dk_pke, ciphertext, params)
        key_prime, randomness_prime = _g(m_prime + h_ek)
        rejection_key = _j(z + ciphertext)
        ciphertext_prime = _pke_encrypt(ek, m_prime, randomness_prime,
                                        params)
        if ciphertext != ciphertext_prime:
            return rejection_key        # implicit rejection
        return key_prime
